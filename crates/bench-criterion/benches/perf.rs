//! Criterion benches of the simulator itself: how fast the substrate can
//! generate, serialize, analyze, and route. These are the numbers a
//! downstream user of the library cares about when sizing sweeps.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use pstime::DataRate;
use signal::jitter::JitterBudget;
use signal::{AnalogWaveform, BitStream, DigitalWaveform, EdgeShape, EyeDiagram, LevelSet};
use vortex::traffic::{run_load, Pattern};
use vortex::VortexParams;

fn bench_signal_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("signal");
    let rate = DataRate::from_gbps(2.5);
    let budget = JitterBudget::new().with_rj_rms_ps(3.2).with_dcd_ps(10.0).with_isi_ps(13.0);

    group.throughput(Throughput::Elements(8_192));
    group.bench_function("digital_waveform_8k_bits", |b| {
        let bits = BitStream::alternating(8_192);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            DigitalWaveform::from_bits(&bits, rate, &budget, seed)
        })
    });

    group.bench_function("eye_analysis_4k_bits", |b| {
        let bits = {
            let mut lfsr = dlc::Lfsr::new(dlc::PrbsPolynomial::Prbs15, 0xACE1);
            lfsr.generate(4_096)
        };
        let d = DigitalWaveform::from_bits(&bits, rate, &budget, 7);
        let wave = AnalogWaveform::new(d, LevelSet::pecl(), EdgeShape::default());
        b.iter(|| EyeDiagram::analyze(&wave, rate).expect("analyzable"))
    });

    group.bench_function("mux_tree_16to1_8k_bits", |b| {
        let tree = pecl::MuxTree::new(16).expect("power of two");
        let lanes: Vec<BitStream> = (0..16).map(|_| BitStream::alternating(512)).collect();
        b.iter_batched(
            || lanes.clone(),
            |lanes| tree.serialize(&lanes).expect("equal lanes"),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("prbs15_generation_32k", |b| {
        b.iter(|| {
            let mut lfsr = dlc::Lfsr::new(dlc::PrbsPolynomial::Prbs15, 0x1234);
            lfsr.generate(32_768)
        })
    });

    group.bench_function("jitter_spectrum_4k_ui", |b| {
        let budget = JitterBudget::new()
            .with_pj(pstime::Duration::from_ps(5), pstime::Frequency::from_mhz(50), 0.0)
            .with_rj_rms_ps(2.0);
        let d = DigitalWaveform::from_bits(&BitStream::alternating(8_192), rate, &budget, 3);
        b.iter(|| signal::jitter_spectrum(&d, rate).expect("spectrum"))
    });

    group.bench_function("mask_test_512_ui", |b| {
        let budget = JitterBudget::new().with_rj_rms_ps(3.2).with_dcd_ps(10.0);
        let d = DigitalWaveform::from_bits(&BitStream::alternating(512), rate, &budget, 5);
        let wave = AnalogWaveform::new(d, LevelSet::pecl(), EdgeShape::default());
        let mask = signal::EyeMask::paper_pecl();
        b.iter(|| signal::mask_test(&wave, rate, &mask, 32).expect("mask test"))
    });
    group.finish();
}

fn bench_vortex(c: &mut Criterion) {
    let mut group = c.benchmark_group("vortex");
    group.sample_size(10);
    group.bench_function("eight_node_load_0.5_200slots", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_load(VortexParams::eight_node(), Pattern::UniformRandom, 0.5, 200, seed)
        })
    });
    group.bench_function("thirty_two_node_load_0.3_100slots", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_load(VortexParams::thirty_two_node(), Pattern::UniformRandom, 0.3, 100, seed)
        })
    });
    group.finish();
}

fn bench_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("system");
    group.sample_size(10);
    group.bench_function("dlc_boot", |b| {
        b.iter(|| {
            let mut core = dlc::DigitalLogicCore::new();
            core.program_flash_via_jtag(&dlc::Bitstream::example_design()).expect("flash ok");
            core.power_up().expect("boot ok");
            core
        })
    });
    group.bench_function("minitester_prbs_5g_2k_bits", |b| {
        let mut path = minitester::MiniTesterDatapath::new().expect("boots");
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            path.prbs_stimulus(DataRate::from_gbps(5.0), 2_048, seed).expect("renders")
        })
    });

    group.bench_function("testbed_stream_8_slots", |b| {
        let timing = testbed::frame::SlotTiming::paper();
        let mut tx = testbed::Transmitter::new(timing).expect("boots");
        let slots: Vec<testbed::PacketSlot> = (0..8)
            .map(|i| testbed::PacketSlot::new(timing, [i; 4], (i % 16) as u8))
            .collect();
        let rx = testbed::StreamReceiver::new(timing);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let stream = tx.transmit_stream(&slots, seed).expect("renders");
            rx.receive_stream(&stream).expect("decodes")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_signal_path, bench_vortex, bench_system);
criterion_main!(benches);
