//! Ablation benches: isolate the design choices DESIGN.md calls out and
//! measure what each one buys.
//!
//! * **Jitter-budget decomposition** — rebuild the test-bed chain with RJ
//!   only, RJ+DCD, and RJ+DCD+ISI; the eye must close step by step toward
//!   the paper's 0.88 UI. Shows which impairment dominates.
//! * **Mux-tree depth** — serialize through 2:1 … 16:1 trees; deeper trees
//!   add DCD/RJ but sub-linearly (retiming absorbs most of it).
//! * **Calibration on/off** — channel-to-channel skew before and after
//!   vernier deskew; the ±25 ps claim only holds *with* calibration.
//! * **Protocol overhead** — the three slot layouts' efficiency and
//!   viability against the test-bed receiver.

use criterion::{criterion_group, criterion_main, Criterion};
use pecl::chain::SignalChain;
use pecl::{ClockFanout, MuxTree};
use pstime::{DataRate, Duration};
use signal::{BitStream, EyeDiagram};

fn prbs_bits(n: usize) -> BitStream {
    let mut lfsr = dlc::Lfsr::new(dlc::PrbsPolynomial::Prbs15, 0x1DEA);
    lfsr.generate(n)
}

fn chain_with(rj: bool, dcd: bool, isi: bool) -> SignalChain {
    let mut chain = SignalChain::builder("ablation")
        .add_sige_buffer(&pecl::SiGeOutputBuffer::new())
        .build();
    if rj {
        chain.add_rj(Duration::from_ps_f64(3.2));
    }
    if dcd {
        chain.add_dcd(Duration::from_ps(10));
    }
    if isi {
        chain.add_isi(Duration::from_ps(13), 1.0);
    }
    chain
}

fn bench_jitter_budget_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_jitter_budget");
    group.sample_size(10);
    let rate = DataRate::from_gbps(2.5);
    let bits = prbs_bits(4_096);

    let cases: [(&str, bool, bool, bool); 4] = [
        ("clean", false, false, false),
        ("rj_only", true, false, false),
        ("rj_dcd", true, true, false),
        ("rj_dcd_isi", true, true, true),
    ];
    let mut openings = Vec::new();
    for (name, rj, dcd, isi) in cases {
        let chain = chain_with(rj, dcd, isi);
        let wave = chain.render(&bits, rate, 7).expect("renders");
        let eye = EyeDiagram::analyze(&wave, rate).expect("analyzable");
        openings.push((name, eye.opening_ui().value()));
        group.bench_function(name, |b| {
            b.iter(|| {
                let wave = chain.render(&bits, rate, 7).expect("renders");
                EyeDiagram::analyze(&wave, rate).expect("analyzable")
            })
        });
    }
    group.finish();

    // The ablation claim: each impairment closes the eye further, and the
    // full budget lands at the paper's 0.88 UI.
    for pair in openings.windows(2) {
        assert!(
            pair[1].1 < pair[0].1 + 0.005,
            "adding impairments must not open the eye: {openings:?}"
        );
    }
    let full = openings.last().expect("cases ran").1;
    assert!((full - 0.88).abs() < 0.05, "full budget opening {full}, paper 0.88");
}

fn bench_mux_depth_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_mux_depth");
    group.sample_size(10);

    let mut budgets = Vec::new();
    for ways in [2usize, 4, 8, 16] {
        let tree = MuxTree::new(ways).expect("power of two");
        budgets.push((ways, tree.total_dcd(), tree.total_added_rj()));
        let lanes: Vec<BitStream> =
            (0..ways).map(|_| BitStream::alternating(4_096 / ways)).collect();
        group.bench_function(format!("serialize_{ways}to1"), |b| {
            b.iter(|| tree.serialize(&lanes).expect("equal lanes"))
        });
    }
    group.finish();

    // Deeper trees cost more DCD/RJ but *sub-linearly* — the retiming
    // argument the architecture rests on.
    let (_, dcd2, rj2) = budgets[0];
    let (_, dcd16, rj16) = budgets[3];
    assert!(dcd16 > dcd2 && dcd16 < dcd2 * 2, "DCD growth not sub-linear: {budgets:?}");
    assert!(rj16 > rj2 && rj16 < rj2 * 3, "RJ growth not sub-linear: {budgets:?}");
}

fn bench_calibration_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_calibration");
    group.sample_size(10);
    let rate = DataRate::from_gbps(2.5);
    let fanout = ClockFanout::new(8, Duration::from_ps(1));

    // Without calibration: the raw fanout spread.
    let uncalibrated = fanout.max_skew_spread();

    // With calibration (measured): run the full deskew loop.
    group.bench_function("deskew_8_channels", |b| {
        b.iter(|| {
            ate::calibration::deskew_channels(&fanout, rate, ate::calibration::paper_accuracy_target())
                .expect("converges")
        })
    });
    group.finish();

    let result = ate::calibration::deskew_channels(
        &fanout,
        rate,
        ate::calibration::paper_accuracy_target(),
    )
    .expect("converges");
    assert!(
        uncalibrated > result.worst_residual * 3,
        "calibration must dominate: raw {uncalibrated} vs residual {}",
        result.worst_residual
    );
}

fn bench_protocol_ablation(c: &mut Criterion) {
    use testbed::protocol::{evaluate_catalog, ReceiverRequirements};
    let mut group = c.benchmark_group("ablation_protocol");
    group.sample_size(10);
    group.bench_function("evaluate_catalog", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            evaluate_catalog(&ReceiverRequirements::testbed(), seed).expect("evaluates")
        })
    });
    group.finish();

    let evals = evaluate_catalog(&ReceiverRequirements::testbed(), 1).expect("evaluates");
    // The paper's layout must be viable; the catalog must contain a spread
    // of efficiencies.
    assert!(evals.iter().any(|e| e.name == "paper-fig4" && e.viable()));
    let effs: Vec<f64> = evals.iter().map(|e| e.efficiency).collect();
    assert!(effs.windows(2).all(|w| w[0] < w[1]), "catalog should span efficiencies: {effs:?}");
}

criterion_group!(
    benches,
    bench_jitter_budget_ablation,
    bench_mux_depth_ablation,
    bench_calibration_ablation,
    bench_protocol_ablation
);
criterion_main!(benches);
