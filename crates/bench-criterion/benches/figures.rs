//! Criterion benches: one target per paper figure.
//!
//! Each bench runs the figure's full experiment (generation + measurement)
//! and asserts the paper-comparison verdict, so `cargo bench` both times
//! the harness and re-validates the reproduction.

use criterion::{criterion_group, criterion_main, Criterion};

fn assert_ok(report: &ate::Report) {
    assert!(report.all_within_tolerance(), "experiment drifted from the paper:\n{report}");
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig04_packet_slot", |b| {
        b.iter(|| {
            let r = bench_support::fig04_packet_slot().expect("experiment runs");
            assert_ok(&r);
            r
        })
    });
    group.bench_function("fig06_tx_waveforms", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            bench_support::fig06_tx_waveforms(seed).expect("experiment runs")
        })
    });
    group.bench_function("fig07_eye_2g5", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            bench_support::fig07_eye_2g5(seed).expect("experiment runs")
        })
    });
    group.bench_function("fig08_eye_4g0", |b| {
        let mut seed = 100u64;
        b.iter(|| {
            seed += 1;
            bench_support::fig08_eye_4g0(seed).expect("experiment runs")
        })
    });
    group.bench_function("fig09_edge_jitter", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            bench_support::fig09_edge_jitter(500, seed).expect("experiment runs")
        })
    });
    group.bench_function("fig10_fig11_levels", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let r = bench_support::fig10_fig11_levels(seed).expect("experiment runs");
            assert_ok(&r);
            r
        })
    });
    group.bench_function("fig13_parallel_probe", |b| {
        b.iter(|| {
            let r = bench_support::fig13_parallel_probe().expect("experiment runs");
            assert_ok(&r);
            r
        })
    });
    group.bench_function("fig16_mini_eye_1g0", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            bench_support::fig16_mini_eye_1g0(seed).expect("experiment runs")
        })
    });
    group.bench_function("fig17_mini_eye_2g5", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            bench_support::fig17_mini_eye_2g5(seed).expect("experiment runs")
        })
    });
    group.bench_function("fig18_mini_5g_pattern", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            bench_support::fig18_mini_5g_pattern(seed).expect("experiment runs")
        })
    });
    group.bench_function("fig19_mini_eye_5g0", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            bench_support::fig19_mini_eye_5g0(seed).expect("experiment runs")
        })
    });
    group.bench_function("summary_timing_accuracy", |b| {
        b.iter(|| {
            let r = bench_support::summary_timing_accuracy().expect("experiment runs");
            assert_ok(&r);
            r
        })
    });
    group.bench_function("datavortex_routing", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let r = bench_support::datavortex_routing(seed).expect("experiment runs");
            assert_ok(&r);
            r
        })
    });
    group.bench_function("ext_terabit_scaling", |b| {
        b.iter(|| {
            let r = bench_support::ext_terabit_scaling().expect("experiment runs");
            assert_ok(&r);
            r
        })
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
