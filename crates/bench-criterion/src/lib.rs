//! Empty library target; this package exists only to host the criterion
//! bench targets in `benches/` outside the offline workspace graph.
