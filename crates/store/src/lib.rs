//! # gigatest-store — the durable tier behind the result cache
//!
//! A test head that forgets its wafer-run history on every restart
//! forfeits the cache-hit economics the probe-card split is built on
//! (paper §4): the heavy lifting happens at the head, so the head must
//! be able to serve what it already computed — across process restarts,
//! not just across requests. This crate is that durable tier: a
//! persistent content-addressed store of canonical `JobResult` bytes,
//! keyed by the same FNV-1a digest of the spec's canonical key bytes
//! that the in-memory LRU and the farm's consistent-hash ring use.
//! Routing affinity, cache affinity, and disk affinity are one
//! mechanism.
//!
//! ## Shape
//!
//! * [`record`] — the fixed on-disk record grammar: magic, FNV-1a
//!   spec-key digest, key/payload lengths, the key and payload bytes,
//!   and a trailing FNV-1a checksum over everything after the magic.
//!   Disk bytes are parsed with the same hostility as wire bytes: every
//!   length is bounds-checked against [`limits`] before it sizes an
//!   allocation or enters length arithmetic.
//! * [`Store`] — append-only segment files with size-bounded rotation,
//!   an in-memory FNV index rebuilt by scanning the segments at open,
//!   and offline [`Store::compact`]ion that rewrites live records into
//!   a fresh segment and swaps it in atomically (write-new, fsync,
//!   rename).
//!
//! ## Invariants
//!
//! * **Recovery**: a torn or corrupt tail — a record cut short at any
//!   byte, or any checksum mismatch — is detected at open, truncated,
//!   and never served. Everything before the first bad byte is served
//!   intact, and the reclaimed byte count is reported in
//!   [`StoreStats::reclaimed_bytes`].
//! * **Identity**: [`Store::get`] returns exactly the bytes that were
//!   [`Store::put`]; a digest collision between two distinct keys
//!   degrades to a miss (the full key bytes are stored and compared),
//!   never to the wrong payload.
//! * **Determinism**: nothing here reads a clock or iterates a hash
//!   map; recency is a logical write sequence, so eviction order and
//!   compaction output are functions of the put history alone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod record;
mod segment;

pub use error::{RecordError, StoreError};
pub use segment::{
    CompactionReport, Store, StoreConfig, StoreStats, DEFAULT_MAX_BYTES, DEFAULT_SEGMENT_BYTES,
    MIN_SEGMENT_BYTES,
};

/// Admission ceilings for quantities decoded from disk. Segment bytes
/// are treated as hostile the way wire bytes are: a length read from a
/// record header must pass these bounds before it sizes an allocation.
pub mod limits {
    /// Largest spec key a record may carry. Canonical spec keys are tens
    /// of bytes; anything near this ceiling is corruption.
    pub const MAX_KEY_BYTES: usize = 4096;

    /// Largest payload a record may carry — matches the wire protocol's
    /// 1 MiB frame ceiling, since payloads are canonical result
    /// encodings that must fit in a frame to be served.
    pub const MAX_PAYLOAD_BYTES: usize = 1 << 20;
}

/// FNV-1a 64-bit over `bytes` — byte-for-byte the digest
/// `atd::cache::fnv1a64` computes, reimplemented here so the store stays
/// dependency-free. The spec digest the LRU indexes by, the farm ring
/// routes by, and this store addresses by are all this function over the
/// same canonical key bytes.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_the_published_vectors() {
        // Same check the atd cache pins: offset basis for "", and the
        // classic single-byte vector.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
