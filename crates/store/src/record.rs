//! The on-disk record grammar.
//!
//! ```text
//! offset  size  field
//! 0       4     record magic "ASR1"
//! 4       8     key digest: FNV-1a 64 of the key bytes (big-endian)
//! 12      4     key length k (big-endian u32)
//! 16      4     payload length n (big-endian u32)
//! 20      k     key bytes (the spec's canonical key)
//! 20+k    n     payload bytes (the canonical JobResult encoding)
//! 20+k+n  8     checksum: FNV-1a 64 over bytes [4, 20+k+n) (big-endian)
//! ```
//!
//! Everything after the magic — digest, lengths, key, payload — is
//! covered by the trailing checksum, so a record cut short at *any*
//! byte, or flipped anywhere, fails to verify and marks the torn tail.
//! The lengths come off disk before anything is verified, so they are
//! hostile until they pass the [`crate::limits`] ceilings; nothing here
//! sizes an allocation or does length arithmetic on an unchecked value.

use crate::error::RecordError;
use crate::{fnv1a64, limits};

/// The four bytes every record starts with.
pub const RECORD_MAGIC: [u8; 4] = *b"ASR1";

/// Fixed bytes before the key: magic + digest + two lengths.
pub const HEADER_BYTES: usize = 20;

/// Trailing checksum width.
pub const CHECKSUM_BYTES: usize = 8;

/// Fixed overhead of a record: header plus checksum.
pub const RECORD_OVERHEAD: usize = HEADER_BYTES + CHECKSUM_BYTES;

/// The raw, unverified record header. The lengths are exactly what the
/// disk claims — callers must not trust them past the ceilings
/// [`decode`] enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordHeader {
    /// The stored FNV-1a digest of the key bytes.
    pub key_digest: u64,
    /// Declared key length.
    pub key_len: usize,
    /// Declared payload length.
    pub payload_len: usize,
}

/// One verified record, borrowing from the segment bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record<'a> {
    /// The FNV-1a digest of `key` (verified against the stored digest).
    pub key_digest: u64,
    /// The spec's canonical key bytes.
    pub key: &'a [u8],
    /// The canonical result bytes.
    pub payload: &'a [u8],
}

fn be_u32(bytes: &[u8]) -> Option<u32> {
    <[u8; 4]>::try_from(bytes).ok().map(u32::from_be_bytes)
}

fn be_u64(bytes: &[u8]) -> Option<u64> {
    <[u8; 8]>::try_from(bytes).ok().map(u64::from_be_bytes)
}

fn field(bytes: &[u8], start: usize, len: usize) -> Result<&[u8], RecordError> {
    bytes
        .get(start..start.saturating_add(len))
        .ok_or(RecordError::Truncated { needed: start.saturating_add(len), have: bytes.len() })
}

/// Parses the fixed 20-byte header at the start of `bytes`. Only the
/// magic is verified; the returned lengths are disk-controlled and must
/// pass the [`crate::limits`] ceilings before use.
///
/// # Errors
///
/// [`RecordError::Truncated`] with fewer than [`HEADER_BYTES`] bytes,
/// [`RecordError::BadMagic`] when the magic does not match.
pub fn decode_header(bytes: &[u8]) -> Result<RecordHeader, RecordError> {
    if bytes.len() < HEADER_BYTES {
        return Err(RecordError::Truncated { needed: HEADER_BYTES, have: bytes.len() });
    }
    if field(bytes, 0, 4)? != RECORD_MAGIC {
        return Err(RecordError::BadMagic);
    }
    let key_digest = be_u64(field(bytes, 4, 8)?).ok_or(RecordError::BadMagic)?;
    let key_len = be_u32(field(bytes, 12, 4)?).ok_or(RecordError::BadMagic)?;
    let payload_len = be_u32(field(bytes, 16, 4)?).ok_or(RecordError::BadMagic)?;
    Ok(RecordHeader {
        key_digest,
        key_len: usize::try_from(key_len).unwrap_or(usize::MAX),
        payload_len: usize::try_from(payload_len).unwrap_or(usize::MAX),
    })
}

/// Decodes and fully verifies the record at the start of `bytes`,
/// returning it and the number of bytes it spans. Lengths are checked
/// against the [`crate::limits`] ceilings before any length arithmetic,
/// the stored digest is checked against the key bytes, and the trailing
/// checksum is checked against everything after the magic.
///
/// # Errors
///
/// Any [`RecordError`]; during recovery the caller treats every variant
/// as the torn tail.
pub fn decode(bytes: &[u8]) -> Result<(Record<'_>, usize), RecordError> {
    let header = decode_header(bytes)?;
    let key_len = header.key_len;
    let payload_len = header.payload_len;
    if key_len > limits::MAX_KEY_BYTES {
        return Err(RecordError::Oversized {
            what: "key",
            len: key_len,
            max: limits::MAX_KEY_BYTES,
        });
    }
    if payload_len > limits::MAX_PAYLOAD_BYTES {
        return Err(RecordError::Oversized {
            what: "payload",
            len: payload_len,
            max: limits::MAX_PAYLOAD_BYTES,
        });
    }
    let body_end = HEADER_BYTES + key_len + payload_len;
    let total = body_end + CHECKSUM_BYTES;
    if bytes.len() < total {
        return Err(RecordError::Truncated { needed: total, have: bytes.len() });
    }
    let key = field(bytes, HEADER_BYTES, key_len)?;
    let payload = field(bytes, HEADER_BYTES + key_len, payload_len)?;
    let stored = be_u64(field(bytes, body_end, CHECKSUM_BYTES)?).ok_or(RecordError::BadChecksum)?;
    if fnv1a64(field(bytes, 4, body_end - 4)?) != stored {
        return Err(RecordError::BadChecksum);
    }
    if fnv1a64(key) != header.key_digest {
        return Err(RecordError::KeyDigestMismatch);
    }
    Ok((Record { key_digest: header.key_digest, key, payload }, total))
}

/// Encodes one record.
///
/// # Errors
///
/// [`RecordError::Oversized`] when the key or payload exceeds its
/// ceiling; nothing oversized is ever written, so nothing oversized is
/// ever read back.
pub fn encode(key: &[u8], payload: &[u8]) -> Result<Vec<u8>, RecordError> {
    if key.len() > limits::MAX_KEY_BYTES {
        return Err(RecordError::Oversized {
            what: "key",
            len: key.len(),
            max: limits::MAX_KEY_BYTES,
        });
    }
    if payload.len() > limits::MAX_PAYLOAD_BYTES {
        return Err(RecordError::Oversized {
            what: "payload",
            len: payload.len(),
            max: limits::MAX_PAYLOAD_BYTES,
        });
    }
    let mut bytes = Vec::with_capacity(RECORD_OVERHEAD + key.len() + payload.len());
    bytes.extend_from_slice(&RECORD_MAGIC);
    bytes.extend_from_slice(&fnv1a64(key).to_be_bytes());
    bytes.extend_from_slice(&u32::try_from(key.len()).unwrap_or(u32::MAX).to_be_bytes());
    bytes.extend_from_slice(&u32::try_from(payload.len()).unwrap_or(u32::MAX).to_be_bytes());
    bytes.extend_from_slice(key);
    bytes.extend_from_slice(payload);
    let checksum = fnv1a64(bytes.get(4..).unwrap_or_default());
    bytes.extend_from_slice(&checksum.to_be_bytes());
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_key_and_payload() {
        let bytes = encode(b"spec-key", b"result payload").expect("encode");
        assert_eq!(bytes.len(), RECORD_OVERHEAD + 8 + 14);
        let (record, used) = decode(&bytes).expect("decode");
        assert_eq!(used, bytes.len());
        assert_eq!(record.key, b"spec-key");
        assert_eq!(record.payload, b"result payload");
        assert_eq!(record.key_digest, fnv1a64(b"spec-key"));
    }

    #[test]
    fn every_truncation_prefix_is_rejected() {
        let bytes = encode(b"k", b"v").expect("encode");
        for cut in 0..bytes.len() {
            let torn = &bytes[..cut];
            assert!(decode(torn).is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn any_flipped_byte_fails_the_checksum() {
        let good = encode(b"key", b"payload").expect("encode");
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(decode(&bad).is_err(), "flip at byte {i} must not verify");
        }
    }

    #[test]
    fn hostile_lengths_are_rejected_before_sizing_anything() {
        let mut bytes = encode(b"key", b"payload").expect("encode");
        // Claim a 16 MiB payload in a 40-ish byte record: the ceiling
        // check must fire before the length is believed.
        bytes[16..20].copy_from_slice(&0x0100_0000_u32.to_be_bytes());
        assert!(matches!(decode(&bytes), Err(RecordError::Oversized { what: "payload", .. })));
        let mut bytes = encode(b"key", b"payload").expect("encode");
        bytes[12..16].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(decode(&bytes), Err(RecordError::Oversized { what: "key", .. })));
    }

    #[test]
    fn oversized_inputs_are_never_encoded() {
        let big = vec![0u8; limits::MAX_KEY_BYTES + 1];
        assert!(matches!(encode(&big, b"v"), Err(RecordError::Oversized { what: "key", .. })));
        let big = vec![0u8; limits::MAX_PAYLOAD_BYTES + 1];
        assert!(matches!(encode(b"k", &big), Err(RecordError::Oversized { what: "payload", .. })));
    }

    #[test]
    fn a_mismatched_key_digest_is_rejected() {
        let mut bytes = encode(b"key", b"payload").expect("encode");
        // Swap in a digest for different bytes and re-seal the checksum:
        // the digest/key cross-check must still catch it.
        bytes[4..12].copy_from_slice(&fnv1a64(b"other").to_be_bytes());
        let body_end = bytes.len() - CHECKSUM_BYTES;
        let reseal = fnv1a64(&bytes[4..body_end]);
        bytes[body_end..].copy_from_slice(&reseal.to_be_bytes());
        assert_eq!(decode(&bytes), Err(RecordError::KeyDigestMismatch));
    }
}
