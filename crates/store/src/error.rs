//! Typed failures for the persistent store.

use core::fmt;

/// Why a record failed to decode from segment bytes.
///
/// During recovery these are not surfaced: the first bad record marks
/// the torn tail, which is truncated and reclaimed. They become
/// [`StoreError::Record`] only when a record the index vouched for goes
/// bad *after* open — disk corruption under a running store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RecordError {
    /// Fewer bytes than the record claims to span.
    Truncated {
        /// Bytes the record needs.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The record does not start with the record magic.
    BadMagic,
    /// A declared length exceeds its admission ceiling.
    Oversized {
        /// Which length field.
        what: &'static str,
        /// The declared length.
        len: usize,
        /// The ceiling it violated.
        max: usize,
    },
    /// The trailing checksum does not match the record bytes.
    BadChecksum,
    /// The stored key digest does not match the stored key bytes.
    KeyDigestMismatch,
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Truncated { needed, have } => {
                write!(f, "record truncated: needs {needed} bytes, {have} available")
            }
            RecordError::BadMagic => write!(f, "bad record magic"),
            RecordError::Oversized { what, len, max } => {
                write!(f, "declared {what} length {len} exceeds the {max}-byte ceiling")
            }
            RecordError::BadChecksum => write!(f, "record checksum mismatch"),
            RecordError::KeyDigestMismatch => write!(f, "stored key digest does not match the key"),
        }
    }
}

impl std::error::Error for RecordError {}

/// Errors raised by the store.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StoreError {
    /// A filesystem operation failed.
    Io {
        /// What was being attempted, e.g. `"append record"`.
        op: &'static str,
        /// The path involved.
        path: String,
        /// The OS error text.
        message: String,
    },
    /// A record the index vouched for failed to decode — the segment
    /// changed underneath a running store.
    Record(RecordError),
    /// A key or payload offered to [`crate::Store::put`] exceeds its
    /// admission ceiling; nothing was written.
    Oversized {
        /// Which input.
        what: &'static str,
        /// Its length.
        len: usize,
        /// The ceiling it violated.
        max: usize,
    },
}

impl StoreError {
    pub(crate) fn io(op: &'static str, path: &std::path::Path, e: &std::io::Error) -> Self {
        StoreError::Io { op, path: path.display().to_string(), message: e.to_string() }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, message } => {
                write!(f, "store i/o failure during {op} on {path}: {message}")
            }
            StoreError::Record(e) => write!(f, "store record error: {e}"),
            StoreError::Oversized { what, len, max } => {
                write!(f, "{what} of {len} bytes exceeds the {max}-byte store ceiling")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Record(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RecordError> for StoreError {
    fn from(e: RecordError) -> Self {
        StoreError::Record(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_sources() {
        let e = RecordError::Truncated { needed: 28, have: 3 };
        assert!(e.to_string().contains("28"));
        let e = StoreError::from(RecordError::BadChecksum);
        assert!(e.to_string().contains("checksum"));
        assert!(e.source().is_some());
        let e = StoreError::Oversized { what: "payload", len: 2 << 20, max: 1 << 20 };
        assert!(e.to_string().contains("payload"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<StoreError>();
        assert_traits::<RecordError>();
    }
}
