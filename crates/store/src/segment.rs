//! Append-only segment files, the FNV index, recovery, and compaction.
//!
//! A store is a directory of `seg-<id>.atds` files. Each starts with an
//! 8-byte segment magic and continues as a plain concatenation of
//! records (see [`crate::record`]). Writes only ever append to the
//! highest-id (active) segment; once the active segment passes the
//! rotation threshold it is sealed and a fresh one opened. The in-memory
//! index maps the FNV-1a key digest to the newest record for that
//! digest, and is rebuilt by scanning every segment in id order at open
//! — later records win, which is also what makes the compaction swap
//! crash-safe: the compacted segment takes an id *above* every segment
//! it replaces, so a crash between the rename and the old-segment
//! cleanup leaves a store that recovers to the identical index.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::error::{RecordError, StoreError};
use crate::{fnv1a64, record};

/// The eight bytes every segment file starts with.
pub const SEGMENT_MAGIC: [u8; 8] = *b"ATDSTOR1";

/// Bytes of segment-file overhead before the first record.
pub const SEGMENT_HEADER_BYTES: u64 = 8;

/// Default rotation threshold: seal the active segment once it passes
/// 1 MiB.
pub const DEFAULT_SEGMENT_BYTES: u64 = 1 << 20;

/// Default bound on total disk use before eviction + compaction.
pub const DEFAULT_MAX_BYTES: u64 = 64 << 20;

/// Smallest accepted rotation threshold; lower settings are clamped up
/// so a degenerate knob cannot produce a segment per record.
pub const MIN_SEGMENT_BYTES: u64 = 4096;

/// Scratch name a compaction writes into before the atomic rename; a
/// leftover (crash mid-compaction) is deleted at open, never read.
const COMPACT_TMP: &str = "compact.tmp";

/// Where and how large.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreConfig {
    /// Directory holding the segment files; created if absent.
    pub dir: PathBuf,
    /// Rotation threshold per segment file.
    pub segment_bytes: u64,
    /// Total disk bound; exceeding it evicts oldest-written records and
    /// compacts.
    pub max_bytes: u64,
}

impl StoreConfig {
    /// A config over `dir` with the default thresholds.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            dir: dir.into(),
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            max_bytes: DEFAULT_MAX_BYTES,
        }
    }

    /// Sets the rotation threshold, clamped to [`MIN_SEGMENT_BYTES`].
    #[must_use]
    pub fn segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes.max(MIN_SEGMENT_BYTES);
        self
    }

    /// Sets the total disk bound, clamped to the rotation threshold.
    #[must_use]
    pub fn max_bytes(mut self, bytes: u64) -> Self {
        self.max_bytes = bytes.max(self.segment_bytes);
        self
    }
}

/// A snapshot of the store's counters and footprint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Live (indexed) records.
    pub records: u64,
    /// Bytes of live records.
    pub live_bytes: u64,
    /// Bytes on disk across all segments, dead records included.
    pub disk_bytes: u64,
    /// Segment files, active included.
    pub segments: u64,
    /// Records recovered into the index when the store opened.
    pub recovered_records: u64,
    /// Torn/corrupt tail bytes truncated when the store opened.
    pub reclaimed_bytes: u64,
    /// Lookups served.
    pub hits: u64,
    /// Lookups that found nothing (or a digest collision).
    pub misses: u64,
    /// Records appended.
    pub inserts: u64,
    /// Appends that superseded an older record for the same digest.
    pub replaced: u64,
    /// Records evicted (oldest-written first) to respect the disk bound.
    pub evicted: u64,
    /// Compactions performed.
    pub compactions: u64,
}

/// What one [`Store::compact`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// Live records carried into the fresh segment.
    pub live_records: u64,
    /// Disk bytes before.
    pub bytes_before: u64,
    /// Disk bytes after.
    pub bytes_after: u64,
}

/// Where a live record sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RecordLoc {
    segment: u64,
    offset: u64,
    len: u64,
    /// Logical write sequence — recency without a clock. Eviction is
    /// lowest-sequence first; compaction preserves sequence order.
    seq: u64,
}

/// The persistent content-addressed store.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    segment_bytes: u64,
    max_bytes: u64,
    /// Segment id → file length, active segment included.
    segments: BTreeMap<u64, u64>,
    active: u64,
    active_file: File,
    index: BTreeMap<u64, RecordLoc>,
    next_seq: u64,
    live_bytes: u64,
    recovered_records: u64,
    reclaimed_bytes: u64,
    hits: u64,
    misses: u64,
    inserts: u64,
    replaced: u64,
    evicted: u64,
    compactions: u64,
}

fn segment_file_name(id: u64) -> String {
    format!("seg-{id:08x}.atds")
}

/// Parses `seg-<hex>.atds` back to its id; `None` for anything else.
fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("seg-")?.strip_suffix(".atds")?;
    u64::from_str_radix(hex, 16).ok()
}

fn saturating_u64(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

impl Store {
    /// Opens (or creates) the store at `config.dir`, rebuilding the
    /// index by scanning every segment in id order. A torn or corrupt
    /// tail — in any segment — is truncated and counted in
    /// [`StoreStats::reclaimed_bytes`]; every record before it is
    /// served. A leftover compaction scratch file is deleted unread.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory or a segment cannot be
    /// created, read, or truncated.
    pub fn open(config: StoreConfig) -> Result<Self, StoreError> {
        let dir = config.dir;
        std::fs::create_dir_all(&dir).map_err(|e| StoreError::io("create store dir", &dir, &e))?;
        let tmp = dir.join(COMPACT_TMP);
        if tmp.exists() {
            // An interrupted compaction never renamed, so the old
            // segments are intact and the scratch is garbage.
            std::fs::remove_file(&tmp).map_err(|e| StoreError::io("remove scratch", &tmp, &e))?;
        }

        let mut ids: Vec<u64> = Vec::new();
        let entries =
            std::fs::read_dir(&dir).map_err(|e| StoreError::io("list store dir", &dir, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::io("list store dir", &dir, &e))?;
            if let Some(id) = entry.file_name().to_str().and_then(parse_segment_name) {
                ids.push(id);
            }
        }
        ids.sort_unstable();

        // The active append handle can be opened before recovery runs:
        // O_APPEND writes land at the file's end *at write time*, so a
        // recovery truncation through a separate handle stays coherent.
        let fresh = ids.is_empty();
        let active = ids.last().copied().unwrap_or(0);
        let active_path = dir.join(segment_file_name(active));
        let mut active_file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&active_path)
            .map_err(|e| StoreError::io("open active segment", &active_path, &e))?;
        if fresh {
            active_file
                .write_all(&SEGMENT_MAGIC)
                .map_err(|e| StoreError::io("write segment header", &active_path, &e))?;
        }

        let mut store = Store {
            dir,
            segment_bytes: config.segment_bytes.max(MIN_SEGMENT_BYTES),
            max_bytes: config.max_bytes.max(config.segment_bytes).max(MIN_SEGMENT_BYTES),
            segments: BTreeMap::new(),
            active,
            active_file,
            index: BTreeMap::new(),
            next_seq: 0,
            live_bytes: 0,
            recovered_records: 0,
            reclaimed_bytes: 0,
            hits: 0,
            misses: 0,
            inserts: 0,
            replaced: 0,
            evicted: 0,
            compactions: 0,
        };

        if fresh {
            store.segments.insert(active, SEGMENT_HEADER_BYTES);
        } else {
            for id in ids {
                store.recover_segment(id)?;
            }
        }
        store.recovered_records = saturating_u64(store.index.len());
        Ok(store)
    }

    /// The directory the segments live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Live records.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no live records.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// A snapshot of the counters and footprint.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            records: saturating_u64(self.index.len()),
            live_bytes: self.live_bytes,
            disk_bytes: self.disk_bytes(),
            segments: saturating_u64(self.segments.len()),
            recovered_records: self.recovered_records,
            reclaimed_bytes: self.reclaimed_bytes,
            hits: self.hits,
            misses: self.misses,
            inserts: self.inserts,
            replaced: self.replaced,
            evicted: self.evicted,
            compactions: self.compactions,
        }
    }

    /// Looks up the payload stored for `key`. The full key bytes are
    /// compared, so a digest collision is a miss, never a wrong payload.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the segment cannot be read, or
    /// [`StoreError::Record`] when a record the index vouched for no
    /// longer verifies — the segment changed underneath the store.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        let digest = fnv1a64(key);
        let Some(loc) = self.index.get(&digest).copied() else {
            self.misses += 1;
            return Ok(None);
        };
        let bytes = self.read_record_bytes(loc)?;
        let (found, _) = record::decode(&bytes).map_err(StoreError::Record)?;
        if found.key != key {
            self.misses += 1;
            return Ok(None);
        }
        self.hits += 1;
        Ok(Some(found.payload.to_vec()))
    }

    /// Appends a record for `key`, superseding any older record with the
    /// same digest, rotating the active segment past the threshold and
    /// enforcing the disk bound afterwards.
    ///
    /// # Errors
    ///
    /// [`StoreError::Oversized`] for inputs past the ceilings (nothing
    /// is written), or [`StoreError::Io`] when the append fails.
    pub fn put(&mut self, key: &[u8], payload: &[u8]) -> Result<(), StoreError> {
        let bytes = record::encode(key, payload).map_err(|e| match e {
            RecordError::Oversized { what, len, max } => StoreError::Oversized { what, len, max },
            other => StoreError::Record(other),
        })?;
        let len = saturating_u64(bytes.len());
        self.rotate_if_needed(len)?;
        let offset = self.segments.get(&self.active).copied().unwrap_or(SEGMENT_HEADER_BYTES);
        let path = self.segment_path(self.active);
        self.active_file
            .write_all(&bytes)
            .map_err(|e| StoreError::io("append record", &path, &e))?;
        self.segments.insert(self.active, offset.saturating_add(len));
        let loc = RecordLoc { segment: self.active, offset, len, seq: self.next_seq };
        self.next_seq += 1;
        if let Some(old) = self.index.insert(fnv1a64(key), loc) {
            self.live_bytes = self.live_bytes.saturating_sub(old.len);
            self.replaced += 1;
        }
        self.live_bytes = self.live_bytes.saturating_add(len);
        self.inserts += 1;
        if self.disk_bytes() > self.max_bytes {
            self.enforce_bound()?;
        }
        Ok(())
    }

    /// Rewrites the live records — in write-sequence order — into a
    /// fresh segment and swaps it in atomically: write to a scratch
    /// file, fsync, rename to a segment id above every existing one,
    /// then delete the superseded segments and open a fresh active
    /// segment. Record bytes are copied verbatim, so every
    /// [`Store::get`] answers byte-identically before and after. A crash
    /// at any point recovers to the same index: before the rename the
    /// scratch is deleted unread; after it, the compacted segment's
    /// higher id wins the last-record-wins scan over any old segment the
    /// cleanup did not reach.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the scratch cannot be written, synced, or
    /// renamed.
    pub fn compact(&mut self) -> Result<CompactionReport, StoreError> {
        let bytes_before = self.disk_bytes();
        let mut live: Vec<(u64, RecordLoc)> =
            self.index.iter().map(|(digest, loc)| (*digest, *loc)).collect();
        live.sort_unstable_by_key(|(_, loc)| loc.seq);

        let tmp = self.dir.join(COMPACT_TMP);
        let mut out = File::create(&tmp)
            .map_err(|e| StoreError::io("create compaction scratch", &tmp, &e))?;
        out.write_all(&SEGMENT_MAGIC)
            .map_err(|e| StoreError::io("write compaction scratch", &tmp, &e))?;
        let mut rebuilt: BTreeMap<u64, RecordLoc> = BTreeMap::new();
        let mut offset = SEGMENT_HEADER_BYTES;
        let compacted = self.segments.keys().next_back().map_or(1, |id| id.saturating_add(1));
        for (digest, loc) in &live {
            let bytes = self.read_record_bytes(*loc)?;
            out.write_all(&bytes)
                .map_err(|e| StoreError::io("write compaction scratch", &tmp, &e))?;
            rebuilt.insert(
                *digest,
                RecordLoc { segment: compacted, offset, len: loc.len, seq: loc.seq },
            );
            offset = offset.saturating_add(loc.len);
        }
        out.sync_all().map_err(|e| StoreError::io("sync compaction scratch", &tmp, &e))?;
        drop(out);
        let compacted_path = self.segment_path(compacted);
        std::fs::rename(&tmp, &compacted_path)
            .map_err(|e| StoreError::io("swap compacted segment", &compacted_path, &e))?;
        // Make the rename itself durable. Best-effort: not every
        // platform lets a directory be opened and synced, and a lost
        // rename only costs the compaction, never a record.
        let _ = File::open(&self.dir).and_then(|d| d.sync_all());
        // Dead segments: removal failures are tolerable because the
        // compacted segment's higher id supersedes them at recovery.
        let superseded: Vec<u64> = self.segments.keys().copied().collect();
        for id in superseded {
            let _ = std::fs::remove_file(self.segment_path(id));
        }
        self.segments = BTreeMap::from([(compacted, offset)]);
        self.index = rebuilt;
        self.create_segment(compacted.saturating_add(1))?;
        self.compactions += 1;
        Ok(CompactionReport {
            live_records: saturating_u64(self.index.len()),
            bytes_before,
            bytes_after: self.disk_bytes(),
        })
    }

    /// Total bytes on disk across all segments, dead records included.
    fn disk_bytes(&self) -> u64 {
        self.segments.values().fold(0u64, |sum, len| sum.saturating_add(*len))
    }

    fn segment_path(&self, id: u64) -> PathBuf {
        self.dir.join(segment_file_name(id))
    }

    /// Creates an empty segment `id` and makes it the active one.
    fn create_segment(&mut self, id: u64) -> Result<(), StoreError> {
        let path = self.segment_path(id);
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| StoreError::io("create segment", &path, &e))?;
        file.write_all(&SEGMENT_MAGIC)
            .map_err(|e| StoreError::io("write segment header", &path, &e))?;
        self.segments.insert(id, SEGMENT_HEADER_BYTES);
        self.active = id;
        self.active_file = file;
        Ok(())
    }

    /// Seals the active segment and opens the next id when the incoming
    /// record would push it past the rotation threshold.
    fn rotate_if_needed(&mut self, incoming: u64) -> Result<(), StoreError> {
        let current = self.segments.get(&self.active).copied().unwrap_or(SEGMENT_HEADER_BYTES);
        if current > SEGMENT_HEADER_BYTES && current.saturating_add(incoming) > self.segment_bytes {
            self.create_segment(self.active.saturating_add(1))?;
        }
        Ok(())
    }

    /// Reads one record's raw bytes back off its segment.
    fn read_record_bytes(&self, loc: RecordLoc) -> Result<Vec<u8>, StoreError> {
        let path = self.segment_path(loc.segment);
        let mut file = File::open(&path).map_err(|e| StoreError::io("open segment", &path, &e))?;
        file.seek(SeekFrom::Start(loc.offset))
            .map_err(|e| StoreError::io("seek record", &path, &e))?;
        let len = usize::try_from(loc.len).unwrap_or(0);
        let mut bytes = vec![0u8; len];
        file.read_exact(&mut bytes).map_err(|e| StoreError::io("read record", &path, &e))?;
        Ok(bytes)
    }

    /// Scans segment `id` into the index. The scan stops at the first
    /// byte that fails to verify — a short header, a bad magic, an
    /// over-ceiling length, a checksum mismatch — and truncates the file
    /// there: the torn tail is reclaimed, never served. Within and
    /// across segments, the newest record for a digest wins.
    fn recover_segment(&mut self, id: u64) -> Result<(), StoreError> {
        let path = self.segment_path(id);
        let bytes = std::fs::read(&path).map_err(|e| StoreError::io("read segment", &path, &e))?;
        let file_len = saturating_u64(bytes.len());
        let mut valid = if bytes.get(..SEGMENT_MAGIC.len()) == Some(&SEGMENT_MAGIC[..]) {
            SEGMENT_HEADER_BYTES
        } else {
            // Even the segment header is torn (or foreign): nothing in
            // this file is trustworthy.
            0
        };
        if valid > 0 {
            loop {
                let offset = usize::try_from(valid).unwrap_or(usize::MAX);
                let Some(rest) = bytes.get(offset..) else { break };
                if rest.is_empty() {
                    break;
                }
                let Ok((found, used)) = record::decode(rest) else { break };
                let loc = RecordLoc {
                    segment: id,
                    offset: valid,
                    len: saturating_u64(used),
                    seq: self.next_seq,
                };
                self.next_seq += 1;
                if let Some(old) = self.index.insert(found.key_digest, loc) {
                    self.live_bytes = self.live_bytes.saturating_sub(old.len);
                }
                self.live_bytes = self.live_bytes.saturating_add(loc.len);
                valid = valid.saturating_add(loc.len);
            }
        }
        if valid < file_len {
            self.reclaimed_bytes = self.reclaimed_bytes.saturating_add(file_len - valid);
            let file = OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| StoreError::io("open segment for truncation", &path, &e))?;
            file.set_len(valid).map_err(|e| StoreError::io("truncate torn tail", &path, &e))?;
        }
        if valid == 0 {
            // The whole file was reclaimed; rewrite it as a valid empty
            // segment so the append path can continue into it.
            let mut file = OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| StoreError::io("reset segment", &path, &e))?;
            file.write_all(&SEGMENT_MAGIC)
                .map_err(|e| StoreError::io("rewrite segment header", &path, &e))?;
            valid = SEGMENT_HEADER_BYTES;
        }
        self.segments.insert(id, valid);
        Ok(())
    }

    /// Evicts oldest-written records until the live set fits the disk
    /// bound, then compacts so the dead bytes actually leave the disk.
    fn enforce_bound(&mut self) -> Result<(), StoreError> {
        let budget = self.max_bytes.saturating_sub(2 * SEGMENT_HEADER_BYTES);
        while self.live_bytes > budget {
            let Some(oldest) =
                self.index.iter().min_by_key(|(_, loc)| loc.seq).map(|(digest, _)| *digest)
            else {
                break;
            };
            if let Some(old) = self.index.remove(&oldest) {
                self.live_bytes = self.live_bytes.saturating_sub(old.len);
                self.evicted += 1;
            }
        }
        self.compact()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gigatest-store-unit-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_survive_reopen() {
        let dir = scratch_dir("reopen");
        let mut store = Store::open(StoreConfig::new(&dir)).expect("open");
        store.put(b"alpha", b"payload-a").expect("put");
        store.put(b"beta", b"payload-b").expect("put");
        assert_eq!(store.get(b"alpha").expect("get"), Some(b"payload-a".to_vec()));
        assert_eq!(store.get(b"gamma").expect("get"), None);
        drop(store);

        let mut reopened = Store::open(StoreConfig::new(&dir)).expect("reopen");
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.stats().recovered_records, 2);
        assert_eq!(reopened.stats().reclaimed_bytes, 0);
        assert_eq!(reopened.get(b"beta").expect("get"), Some(b"payload-b".to_vec()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn newest_record_wins_for_a_key() {
        let dir = scratch_dir("newest");
        let mut store = Store::open(StoreConfig::new(&dir)).expect("open");
        store.put(b"key", b"v1").expect("put");
        store.put(b"key", b"v2").expect("put");
        assert_eq!(store.get(b"key").expect("get"), Some(b"v2".to_vec()));
        assert_eq!(store.stats().replaced, 1);
        drop(store);
        let mut reopened = Store::open(StoreConfig::new(&dir)).expect("reopen");
        assert_eq!(reopened.get(b"key").expect("get"), Some(b"v2".to_vec()));
        assert_eq!(reopened.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_seals_segments_at_the_threshold() {
        let dir = scratch_dir("rotate");
        let config = StoreConfig::new(&dir).segment_bytes(MIN_SEGMENT_BYTES);
        let mut store = Store::open(config).expect("open");
        let payload = vec![0xA5u8; 1500];
        for i in 0..8u32 {
            store.put(&i.to_be_bytes(), &payload).expect("put");
        }
        assert!(store.stats().segments > 1, "1500-byte records must rotate a 4 KiB segment");
        for i in 0..8u32 {
            assert_eq!(store.get(&i.to_be_bytes()).expect("get"), Some(payload.clone()));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_is_byte_identical_and_drops_dead_records() {
        let dir = scratch_dir("compact");
        let mut store = Store::open(StoreConfig::new(&dir)).expect("open");
        for round in 0..3u32 {
            for key in 0..10u32 {
                let payload = format!("round-{round}-key-{key}");
                store.put(&key.to_be_bytes(), payload.as_bytes()).expect("put");
            }
        }
        let before: Vec<Option<Vec<u8>>> =
            (0..10u32).map(|key| store.get(&key.to_be_bytes()).expect("get")).collect();
        let report = store.compact().expect("compact");
        assert_eq!(report.live_records, 10);
        assert!(
            report.bytes_after < report.bytes_before,
            "two dead generations must be reclaimed ({} -> {})",
            report.bytes_before,
            report.bytes_after
        );
        let after: Vec<Option<Vec<u8>>> =
            (0..10u32).map(|key| store.get(&key.to_be_bytes()).expect("get")).collect();
        assert_eq!(before, after, "compaction must not change a single served byte");
        drop(store);
        let mut reopened = Store::open(StoreConfig::new(&dir)).expect("reopen");
        let recovered: Vec<Option<Vec<u8>>> =
            (0..10u32).map(|key| reopened.get(&key.to_be_bytes()).expect("get")).collect();
        assert_eq!(before, recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn the_disk_bound_evicts_oldest_written_first() {
        let dir = scratch_dir("bound");
        let config = StoreConfig::new(&dir).segment_bytes(MIN_SEGMENT_BYTES).max_bytes(8192);
        let mut store = Store::open(config).expect("open");
        let payload = vec![0x5Au8; 1024];
        for i in 0..20u32 {
            store.put(&i.to_be_bytes(), &payload).expect("put");
        }
        let stats = store.stats();
        assert!(stats.evicted > 0, "20 KiB into an 8 KiB bound must evict");
        assert!(stats.disk_bytes <= 8192, "disk stays bounded, got {}", stats.disk_bytes);
        // The newest key always survives; the oldest is gone.
        assert!(store.get(&19u32.to_be_bytes()).expect("get").is_some());
        assert_eq!(store.get(&0u32.to_be_bytes()).expect("get"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_leftover_compaction_scratch_is_deleted_unread() {
        let dir = scratch_dir("scratch");
        let mut store = Store::open(StoreConfig::new(&dir)).expect("open");
        store.put(b"key", b"value").expect("put");
        drop(store);
        std::fs::write(dir.join(COMPACT_TMP), b"half-written garbage").expect("plant scratch");
        let mut reopened = Store::open(StoreConfig::new(&dir)).expect("reopen");
        assert!(!dir.join(COMPACT_TMP).exists(), "scratch must be gone");
        assert_eq!(reopened.get(b"key").expect("get"), Some(b"value".to_vec()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_foreign_file_in_the_dir_is_ignored() {
        let dir = scratch_dir("foreign");
        let mut store = Store::open(StoreConfig::new(&dir)).expect("open");
        store.put(b"key", b"value").expect("put");
        drop(store);
        std::fs::write(dir.join("README.txt"), b"not a segment").expect("plant file");
        let mut reopened = Store::open(StoreConfig::new(&dir)).expect("reopen");
        assert_eq!(reopened.get(b"key").expect("get"), Some(b"value".to_vec()));
        assert!(dir.join("README.txt").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
