//! Crash-recovery sweep: a segment truncated at *every* byte offset of
//! its final record must open clean, serve every intact record, and
//! report the reclaimed tail — the store-level analogue of the THP
//! golden tests' truncation-prefix sweep.

use store::{fnv1a64, record, Store, StoreConfig};

use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("gigatest-store-recovery-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Builds a single-segment store with `keep` intact records and one
/// final record, returning the segment path and the final record's span.
fn seed_store(dir: &PathBuf, keep: u32) -> (PathBuf, u64, u64) {
    let mut store = Store::open(StoreConfig::new(dir)).expect("open");
    for i in 0..keep {
        let key = format!("spec-{i:04}");
        let payload = format!("result-for-{i:04}-{}", "x".repeat(usize::try_from(i).unwrap_or(0)));
        store.put(key.as_bytes(), payload.as_bytes()).expect("put");
    }
    let before_final = segment_len(dir);
    store.put(b"spec-final", b"the record the crash tears").expect("put final");
    let after_final = segment_len(dir);
    drop(store);
    (segment_path(dir), before_final, after_final)
}

fn segment_path(dir: &PathBuf) -> PathBuf {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "atds"))
        .collect();
    segments.sort();
    assert_eq!(segments.len(), 1, "seed must fit one segment");
    segments.remove(0)
}

fn segment_len(dir: &PathBuf) -> u64 {
    std::fs::metadata(segment_path(dir)).expect("metadata").len()
}

#[test]
fn truncation_at_every_offset_of_the_final_record_recovers_clean() {
    let keep = 12u32;
    for_every_cut(keep, |cut, dir, full_len, final_start| {
        let mut reopened = Store::open(StoreConfig::new(dir)).expect("reopen after torn tail");
        let stats = reopened.stats();

        // Every intact record is served, byte-for-byte.
        for i in 0..keep {
            let key = format!("spec-{i:04}");
            let expected =
                format!("result-for-{i:04}-{}", "x".repeat(usize::try_from(i).unwrap_or(0)));
            assert_eq!(
                reopened.get(key.as_bytes()).expect("get"),
                Some(expected.into_bytes()),
                "cut at {cut}: intact record {i} must survive"
            );
        }

        if cut == full_len {
            // Nothing was actually torn: the final record survives too.
            assert_eq!(
                reopened.get(b"spec-final").expect("get"),
                Some(b"the record the crash tears".to_vec())
            );
            assert_eq!(stats.reclaimed_bytes, 0, "cut at {cut} tore nothing");
            assert_eq!(stats.recovered_records, u64::from(keep) + 1);
        } else {
            // The torn final record is never served, and the tail is
            // reported reclaimed.
            assert_eq!(
                reopened.get(b"spec-final").expect("get"),
                None,
                "cut at {cut}: a torn record must never be served"
            );
            assert_eq!(
                stats.reclaimed_bytes,
                cut.saturating_sub(final_start),
                "cut at {cut}: reclaimed bytes must cover the torn tail"
            );
            assert_eq!(stats.recovered_records, u64::from(keep));
        }

        // The store stays writable after recovery.
        reopened.put(b"post-crash", b"appended after recovery").expect("put after recovery");
        assert_eq!(
            reopened.get(b"post-crash").expect("get"),
            Some(b"appended after recovery".to_vec())
        );
    });
}

/// Runs `check` for every truncation point from the start of the final
/// record through the full file length.
fn for_every_cut(keep: u32, check: impl Fn(u64, &PathBuf, u64, u64)) {
    let dir = scratch_dir("sweep");
    let (seg, final_start, full_len) = seed_store(&dir, keep);
    let pristine = std::fs::read(&seg).expect("read segment");
    assert_eq!(u64::try_from(pristine.len()).expect("len"), full_len);

    for cut in final_start..=full_len {
        let torn = pristine.get(..usize::try_from(cut).expect("cut fits")).expect("slice");
        std::fs::write(&seg, torn).expect("write torn segment");
        check(cut, &dir, full_len, final_start);
        // Recovery truncated (and possibly appended); restore pristine
        // bytes for the next cut.
        std::fs::write(&seg, &pristine).expect("restore segment");
        // Recovery may have rotated nothing, but a post-crash append adds
        // no new segment below the rotation threshold; assert that so the
        // restore above really resets the world.
        assert_eq!(segment_len(&dir), full_len);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corruption_in_the_middle_truncates_from_the_first_bad_byte() {
    let dir = scratch_dir("midflip");
    let (seg, _, _) = seed_store(&dir, 6);
    let pristine = std::fs::read(&seg).expect("read");

    // Flip one byte in the middle of the file: everything from the
    // record containing that byte onward is the torn tail.
    let mid = pristine.len() / 2;
    let mut bad = pristine.clone();
    if let Some(byte) = bad.get_mut(mid) {
        *byte ^= 0xFF;
    }
    std::fs::write(&seg, &bad).expect("write corrupted");

    let reopened = Store::open(StoreConfig::new(&dir)).expect("reopen");
    let stats = reopened.stats();
    assert!(stats.reclaimed_bytes > 0, "a mid-file flip must reclaim a tail");
    assert!(stats.recovered_records < 7, "the flipped record must not be indexed");
    // Whatever was recovered verifies; the file was truncated before the
    // flip, so a second open reclaims nothing further.
    drop(reopened);
    let reopened = Store::open(StoreConfig::new(&dir)).expect("second reopen");
    assert_eq!(reopened.stats().reclaimed_bytes, 0, "recovery must converge in one pass");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_store_digest_matches_the_record_module_digest() {
    // The content address is one function end to end: the digest the
    // index is keyed by equals the digest embedded in the record header.
    let bytes = record::encode(b"shared-key", b"payload").expect("encode");
    let (decoded, _) = record::decode(&bytes).expect("decode");
    assert_eq!(decoded.key_digest, fnv1a64(b"shared-key"));
}
