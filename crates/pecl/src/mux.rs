//! PECL parallel-to-serial multiplexers.
//!
//! The paper's serializers are trees of commercial PECL muxes: the Optical
//! Test Bed serializes FPGA words into 2.5 Gbps channels, and the
//! mini-tester combines "two groups of eight \[~312 Mbps\] signals … to form
//! two independent data sources at higher speeds (up to 2.5 Gbps). These are
//! then combined in a second-stage multiplexer to obtain double the final
//! signal (up to 5.0 Gbps)" (§4).
//!
//! Bit-level behaviour is exact interleaving; each physical stage also
//! contributes timing impairments (duty-cycle distortion from select-clock
//! asymmetry, a little random jitter) which are accounted in the composite
//! budget carried by [`crate::chain::SignalChain`].

use pstime::Duration;
use signal::BitStream;

use crate::{PeclError, Result};

/// One 2:1 PECL multiplexer stage.
///
/// The final stage runs DDR off the select clock: input A is emitted on the
/// high half-period, input B on the low half-period.
///
/// # Examples
///
/// ```
/// use pecl::Mux2;
/// use signal::BitStream;
///
/// let mux = Mux2::new();
/// let a = BitStream::from_str_bits("1100");
/// let b = BitStream::from_str_bits("1010");
/// let out = mux.serialize(&a, &b)?;
/// assert_eq!(out.to_string(), "11100100");
/// # Ok::<(), pecl::PeclError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mux2 {
    dcd: Duration,
    added_rj: Duration,
    max_rate_gbps: f64,
}

impl Mux2 {
    /// A production-grade PECL 2:1 mux: 4 ps DCD, 0.8 ps added RJ, usable
    /// to ~5 Gbps ("at the upper limit of some of the individual PECL
    /// components", §3).
    pub fn new() -> Self {
        Mux2 { dcd: Duration::from_ps(4), added_rj: Duration::from_ps_f64(0.8), max_rate_gbps: 5.0 }
    }

    /// Customizes the impairments.
    ///
    /// # Panics
    ///
    /// Panics if any impairment is negative or the rate limit is not
    /// positive.
    pub fn with_impairments(dcd: Duration, added_rj: Duration, max_rate_gbps: f64) -> Self {
        assert!(!dcd.is_negative(), "DCD must be nonnegative");
        assert!(!added_rj.is_negative(), "added RJ must be nonnegative");
        assert!(max_rate_gbps > 0.0, "rate limit must be positive");
        Mux2 { dcd, added_rj, max_rate_gbps }
    }

    /// Duty-cycle distortion contributed by this stage.
    pub fn dcd(&self) -> Duration {
        self.dcd
    }

    /// Random jitter added by this stage.
    pub fn added_rj(&self) -> Duration {
        self.added_rj
    }

    /// Maximum output rate.
    pub fn max_rate_gbps(&self) -> f64 {
        self.max_rate_gbps
    }

    /// Interleaves two equal-length lanes (A first).
    ///
    /// # Errors
    ///
    /// [`PeclError::LaneMismatch`] if lengths differ.
    pub fn serialize(&self, a: &BitStream, b: &BitStream) -> Result<BitStream> {
        if a.len() != b.len() {
            return Err(PeclError::LaneMismatch { expected: a.len(), got: b.len() });
        }
        Ok(BitStream::interleave(&[a.clone(), b.clone()]))
    }
}

impl Default for Mux2 {
    fn default() -> Self {
        Mux2::new()
    }
}

/// An N:1 multiplexer tree built from log₂N levels of [`Mux2`] stages.
///
/// `ways` must be a power of two. The mini-tester uses two 8:1 trees and a
/// final 2:1 (16:1 total); the test bed serializes FPGA words with 8:1
/// trees per channel.
///
/// # Examples
///
/// ```
/// use pecl::MuxTree;
/// use signal::BitStream;
///
/// let tree = MuxTree::new(8)?;
/// let lanes: Vec<BitStream> = (0..8).map(|i| BitStream::from_word_msb_first(i as u64 % 2, 4)).collect();
/// let out = tree.serialize(&lanes)?;
/// assert_eq!(out.len(), 32);
/// # Ok::<(), pecl::PeclError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MuxTree {
    ways: usize,
    stage: Mux2,
}

impl MuxTree {
    /// Creates a `ways`:1 tree of default [`Mux2`] stages.
    ///
    /// # Errors
    ///
    /// [`PeclError::LaneMismatch`] if `ways` is not a power of two ≥ 2.
    pub fn new(ways: usize) -> Result<Self> {
        if ways < 2 || !ways.is_power_of_two() {
            return Err(PeclError::LaneMismatch { expected: 2, got: ways });
        }
        Ok(MuxTree { ways, stage: Mux2::new() })
    }

    /// Creates a tree with custom per-stage impairments.
    ///
    /// # Errors
    ///
    /// As [`new`](Self::new).
    pub fn with_stage(ways: usize, stage: Mux2) -> Result<Self> {
        let mut tree = MuxTree::new(ways)?;
        tree.stage = stage;
        Ok(tree)
    }

    /// Fan-in of the tree.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Number of 2:1 levels (`log₂ ways`).
    pub fn levels(&self) -> u32 {
        self.ways.trailing_zeros()
    }

    /// Serializes `ways` equal-length lanes into one stream, lane 0 first.
    ///
    /// # Errors
    ///
    /// [`PeclError::LaneMismatch`] on wrong lane count or unequal lengths.
    pub fn serialize(&self, lanes: &[BitStream]) -> Result<BitStream> {
        if lanes.len() != self.ways {
            return Err(PeclError::LaneMismatch { expected: self.ways, got: lanes.len() });
        }
        let n = lanes[0].len();
        if lanes.iter().any(|l| l.len() != n) {
            return Err(PeclError::LaneMismatch { expected: n, got: 0 });
        }
        // Recursive 2:1 combining over bit-reverse-permuted lanes: a
        // pairwise tree emits lane indices in bit-reversed order, so the
        // physical board wires lane i to tree input bitrev(i) to get
        // sequential (round-robin) output order.
        let bits = self.levels();
        let mut level: Vec<BitStream> = (0..self.ways)
            .map(|i| {
                let j = (i as u32).reverse_bits() >> (32 - bits);
                lanes[j as usize].clone() // xlint::allow(panic-reachable, bit-reversing i < ways within levels() bits permutes 0..ways, and the guard above pins lanes.len() to ways)
            })
            .collect();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len() / 2);
            for pair in level.chunks(2) {
                // Within a pair, the two lanes alternate bit-by-bit of the
                // *current* level stream.
                next.push(self.stage.serialize(&pair[0], &pair[1])?);
            }
            level = next;
        }
        // xlint::allow(no-panic-in-lib, level starts with self.ways >= 1 streams and halving a nonempty vector never empties it)
        Ok(level.pop().expect("nonempty level"))
    }

    /// Total duty-cycle distortion: only the final stage's select-clock
    /// asymmetry appears at full rate; earlier levels are retimed by the
    /// next stage, contributing a residual quarter each.
    pub fn total_dcd(&self) -> Duration {
        let residual: f64 = (1..self.levels()).map(|l| 0.25f64.powi(l as i32)).sum();
        self.stage.dcd() + self.stage.dcd().mul_f64(residual)
    }

    /// Total added random jitter (stages sum in quadrature).
    pub fn total_added_rj(&self) -> Duration {
        let per_stage = self.stage.added_rj().as_fs() as f64;
        let total = (self.levels() as f64).sqrt() * per_stage;
        Duration::from_fs(total.round() as i64)
    }

    /// Maximum output rate of the tree (the final stage's limit).
    pub fn max_rate_gbps(&self) -> f64 {
        self.stage.max_rate_gbps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mux2_interleaves() {
        let m = Mux2::new();
        let out =
            m.serialize(&BitStream::from_str_bits("10"), &BitStream::from_str_bits("01")).unwrap();
        assert_eq!(out.to_string(), "1001");
        assert!(m.serialize(&BitStream::ones(2), &BitStream::ones(3)).is_err());
        assert_eq!(m.dcd(), Duration::from_ps(4));
        assert_eq!(m.added_rj(), Duration::from_ps_f64(0.8));
        assert!((m.max_rate_gbps() - 5.0).abs() < 1e-12);
        assert_eq!(Mux2::default(), Mux2::new());
    }

    #[test]
    fn tree_matches_round_robin_interleave() {
        // The pairwise-recursive tree must equal flat round-robin
        // interleaving — that's the bit order a synchronous mux tree
        // produces with properly phased divided clocks.
        for ways in [2usize, 4, 8, 16] {
            let tree = MuxTree::new(ways).unwrap();
            let lanes: Vec<BitStream> = (0..ways)
                .map(|i| BitStream::from_fn(8, move |j| (i * 7 + j * 3) % 5 < 2))
                .collect();
            let tree_out = tree.serialize(&lanes).unwrap();
            let flat = BitStream::interleave(&lanes);
            assert_eq!(tree_out, flat, "ways = {ways}");
        }
    }

    #[test]
    fn tree_rejects_bad_configs() {
        assert!(MuxTree::new(3).is_err());
        assert!(MuxTree::new(0).is_err());
        assert!(MuxTree::new(1).is_err());
        let tree = MuxTree::new(4).unwrap();
        assert!(tree.serialize(&vec![BitStream::ones(4); 3]).is_err());
        let uneven =
            vec![BitStream::ones(4), BitStream::ones(4), BitStream::ones(4), BitStream::ones(5)];
        assert!(tree.serialize(&uneven).is_err());
    }

    #[test]
    fn tree_geometry() {
        let t8 = MuxTree::new(8).unwrap();
        assert_eq!(t8.ways(), 8);
        assert_eq!(t8.levels(), 3);
        let t16 = MuxTree::new(16).unwrap();
        assert_eq!(t16.levels(), 4);
    }

    #[test]
    fn impairment_budgets_scale_with_depth() {
        let t2 = MuxTree::new(2).unwrap();
        let t16 = MuxTree::new(16).unwrap();
        // Deeper trees have slightly more DCD and RJ, but far less than
        // linear (retiming absorbs most of it).
        assert!(t16.total_dcd() > t2.total_dcd());
        assert!(t16.total_dcd() < t2.total_dcd() * 2);
        assert!(t16.total_added_rj() > t2.total_added_rj());
        assert!((t16.max_rate_gbps() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn custom_stage_impairments() {
        let stage = Mux2::with_impairments(Duration::from_ps(10), Duration::from_ps(2), 4.0);
        let tree = MuxTree::with_stage(8, stage).unwrap();
        assert!(tree.total_dcd() >= Duration::from_ps(10));
        assert!((tree.max_rate_gbps() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn sixteen_to_one_mini_tester_path() {
        // Two 8:1 groups then a 2:1: must equal a flat 16:1.
        let lanes: Vec<BitStream> =
            (0..16).map(|i| BitStream::from_fn(4, move |j| (i + j) % 3 == 0)).collect();
        let t8 = MuxTree::new(8).unwrap();
        let groups: Vec<BitStream> = lanes.chunks(8).map(|g| t8.serialize(g).unwrap()).collect();
        let final_mux = Mux2::new();
        let two_stage = final_mux.serialize(&groups[0], &groups[1]).unwrap();
        // Two-stage order: group A bit, group B bit, … where each group
        // internally interleaves its 8 lanes. That equals interleaving the
        // lane order [0,8,1,9,2,10,…].
        let reordered: Vec<BitStream> =
            (0..16).map(|i| lanes[if i % 2 == 0 { i / 2 } else { 8 + i / 2 }].clone()).collect();
        assert_eq!(two_stage, BitStream::interleave(&reordered));
    }

    #[test]
    #[should_panic(expected = "DCD must be nonnegative")]
    fn negative_dcd_panics() {
        let _ = Mux2::with_impairments(Duration::from_ps(-1), Duration::ZERO, 5.0);
    }
}
