//! The XOR timing generator (the "XOR" block of the paper's Fig. 15).
//!
//! A PECL XOR gate fed with a clock and a delayed copy of itself produces a
//! pulse train with **two pulses per clock period** — a cheap frequency
//! doubler whose pulse width equals the programmed delay. The mini-tester
//! uses this trick to derive sampling strobes and double-rate select
//! signals from the single RF input without another oscillator.

use pstime::{Duration, Frequency, Instant};
use signal::{DigitalWaveform, EdgePolarity};

use crate::clock::RfClockSource;
use crate::delay::ProgrammableDelayLine;
use crate::Result;

/// The XOR timing generator: clock source + programmable delay + XOR.
///
/// # Examples
///
/// ```
/// use pecl::timing::TimingGenerator;
/// use pstime::{Duration, Frequency};
///
/// let mut gen = TimingGenerator::new(Frequency::from_ghz(1.25));
/// gen.set_pulse_width(Duration::from_ps(100))?;
/// let pulses = gen.generate_pulses(8, 0);
/// // Two pulses per input period (minus the unpaired final edge).
/// assert_eq!(pulses.len(), 15);
/// # Ok::<(), pecl::PeclError>(())
/// ```
#[derive(Debug)]
pub struct TimingGenerator {
    clock: RfClockSource,
    delay: ProgrammableDelayLine,
}

/// One generated strobe pulse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pulse {
    /// Rising edge of the pulse.
    pub start: Instant,
    /// Falling edge of the pulse.
    pub end: Instant,
}

impl Pulse {
    /// Pulse width.
    pub fn width(&self) -> Duration {
        self.end - self.start
    }

    /// Pulse centre — where a sampler strobed by this pulse decides.
    pub fn centre(&self) -> Instant {
        self.start + self.width() / 2
    }
}

impl TimingGenerator {
    /// Creates a generator off a clean (bench-grade) RF clock at `freq`.
    pub fn new(freq: Frequency) -> Self {
        TimingGenerator {
            clock: RfClockSource::bench_instrument(freq),
            delay: ProgrammableDelayLine::standard(),
        }
    }

    /// Uses a custom clock source (e.g. with a specific jitter).
    pub fn with_clock(clock: RfClockSource) -> Self {
        TimingGenerator { clock, delay: ProgrammableDelayLine::standard() }
    }

    /// The clock frequency.
    pub fn frequency(&self) -> Frequency {
        self.clock.frequency()
    }

    /// Programs the pulse width (= the XOR path delay), quantized to the
    /// vernier's 10 ps grid.
    ///
    /// # Errors
    ///
    /// Propagates vernier range errors.
    pub fn set_pulse_width(&mut self, width: Duration) -> Result<u32> {
        self.delay.set_delay(width)
    }

    /// The programmed (nominal) pulse width.
    pub fn pulse_width(&self) -> Duration {
        self.delay.nominal_delay()
    }

    /// Generates the doubled-rate XOR output waveform for `cycles` input
    /// clock periods.
    pub fn generate_waveform(&self, cycles: usize, seed: u64) -> DigitalWaveform {
        let clk = self.clock.generate(cycles, seed);
        // The XOR sees the clock and its delayed copy; the vernier's
        // insertion delay is common mode inside the gate, so only the
        // programmed (actual) delay matters for the pulse width.
        let delayed = clk.delayed(self.delay.actual_delay());
        clk.xor(&delayed)
    }

    /// Generates the pulse list (rising-to-falling pairs) for `cycles`
    /// input periods — the strobe times a sampler consumes.
    pub fn generate_pulses(&self, cycles: usize, seed: u64) -> Vec<Pulse> {
        let wave = self.generate_waveform(cycles, seed);
        let mut pulses = Vec::new();
        let mut start: Option<Instant> = None;
        for e in wave.edges() {
            match e.polarity {
                EdgePolarity::Rising => start = Some(e.at),
                EdgePolarity::Falling => {
                    if let Some(s) = start.take() {
                        pulses.push(Pulse { start: s, end: e.at });
                    }
                }
            }
        }
        pulses
    }

    /// The doubled output frequency.
    pub fn output_frequency(&self) -> Frequency {
        self.clock.frequency().multiply(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_the_clock() {
        let mut gen = TimingGenerator::new(Frequency::from_ghz(1.25));
        gen.set_pulse_width(Duration::from_ps(200)).unwrap();
        assert_eq!(gen.output_frequency(), Frequency::from_ghz(2.5));
        let pulses = gen.generate_pulses(16, 0);
        // Two pulses per 800 ps period; the final clock edge has no
        // delayed partner, so a 2N-bit burst yields 2N-1 pulses.
        assert_eq!(pulses.len(), 31);
        // Pulse spacing is one half-period.
        let spacing = pulses[1].start - pulses[0].start;
        assert!((spacing - Duration::from_ps(400)).abs() < Duration::from_ps(10));
    }

    #[test]
    fn pulse_width_follows_the_vernier() {
        let mut gen = TimingGenerator::new(Frequency::from_ghz(1.0));
        for width_ps in [50i64, 100, 150, 250] {
            gen.set_pulse_width(Duration::from_ps(width_ps)).unwrap();
            assert_eq!(gen.pulse_width(), Duration::from_ps(width_ps));
            let pulses = gen.generate_pulses(8, 0);
            for p in &pulses {
                // Width within the vernier INL of the programmed value.
                assert!(
                    (p.width() - Duration::from_ps(width_ps)).abs() <= Duration::from_ps(3),
                    "width {} at setting {width_ps} ps",
                    p.width()
                );
            }
        }
    }

    #[test]
    fn pulse_geometry() {
        let p = Pulse { start: Instant::from_ps(100), end: Instant::from_ps(180) };
        assert_eq!(p.width(), Duration::from_ps(80));
        assert_eq!(p.centre(), Instant::from_ps(140));
    }

    #[test]
    fn quantizes_to_ten_ps() {
        let mut gen = TimingGenerator::new(Frequency::from_ghz(1.25));
        gen.set_pulse_width(Duration::from_ps(104)).unwrap();
        assert_eq!(gen.pulse_width(), Duration::from_ps(100));
        gen.set_pulse_width(Duration::from_ps(106)).unwrap();
        assert_eq!(gen.pulse_width(), Duration::from_ps(110));
    }

    #[test]
    fn jittered_clock_jitters_the_pulses() {
        use pstime::Duration as D;
        let clock = RfClockSource::new(Frequency::from_ghz(1.25), D::from_ps(3));
        let mut gen = TimingGenerator::with_clock(clock);
        gen.set_pulse_width(D::from_ps(100)).unwrap();
        assert_eq!(gen.frequency(), Frequency::from_ghz(1.25));
        let pulses = gen.generate_pulses(512, 9);
        // Pulse starts deviate from the ideal 400 ps grid.
        let off_grid = pulses.iter().filter(|p| p.start.as_fs() % 400_000 != 0).count();
        assert!(off_grid > pulses.len() / 2);
        // Widths stay near the programmed value (common-mode jitter
        // cancels in the XOR, leaving only decorrelation over the delay).
        for p in &pulses {
            assert!((p.width() - D::from_ps(100)).abs() < D::from_ps(20));
        }
    }

    #[test]
    fn strobes_drive_a_sampler() {
        // Close the loop with the sampler: strobe a known waveform at XOR
        // pulse centres.
        use pstime::{DataRate, Millivolts};
        use signal::jitter::NoJitter;
        use signal::{AnalogWaveform, BitStream, EdgeShape, LevelSet};

        let rate = DataRate::from_gbps(2.5);
        let bits = BitStream::from_str_bits("1011001110001011");
        let wave = AnalogWaveform::new(
            DigitalWaveform::from_bits(&bits, rate, &NoJitter, 0),
            LevelSet::pecl(),
            EdgeShape::default(),
        );
        // 1.25 GHz XOR-doubled = one strobe per 400 ps bit. Pulse k is
        // centred at 400·(k+1) + width/2, so stepping back 250 ps lands
        // each strobe mid-bit k.
        let mut gen = TimingGenerator::new(Frequency::from_ghz(1.25));
        gen.set_pulse_width(Duration::from_ps(100)).unwrap();
        let sampler = crate::StrobedSampler::new(Millivolts::new(-1300), Duration::ZERO);
        let mut rng = rng::Rng::seed_from_u64(0);
        // One extra cycle: the pulse train loses its last pulse at the
        // burst end (no delayed partner).
        let pulses = gen.generate_pulses(bits.len() / 2 + 1, 0);
        let captured: BitStream = pulses
            .iter()
            .take(bits.len())
            .map(|p| sampler.sample_at(&wave, p.centre() - Duration::from_ps(250), &mut rng))
            .collect();
        let (errors, n) = captured.hamming_distance(&bits);
        assert_eq!(n, 16);
        assert_eq!(errors, 0, "captured {captured} vs {bits}");
    }
}
