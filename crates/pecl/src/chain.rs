//! Signal-chain composition: from components to a rendered waveform.
//!
//! ATE signal paths are engineered by budget: each stage contributes random
//! jitter (summing in quadrature), bounded deterministic jitter (summing
//! linearly), and bandwidth (20–80 % times cascading root-sum-square). A
//! [`SignalChain`] accumulates those contributions from the concrete
//! components in this crate and renders bit streams into analog waveforms
//! whose *measured* eyes land where the paper's oscilloscope photos do.
//!
//! Two calibrated presets reproduce the paper's two systems:
//!
//! * [`SignalChain::testbed_transmitter`] — the Optical Test Bed output
//!   path (§3): SiGe buffers, ~3.2 ps rms RJ (Fig. 9), ≈47 ps total jitter
//!   on PRBS eyes (Figs. 7–8).
//! * [`SignalChain::minitester_datapath`] — the wafer-prober path (§4):
//!   two 8:1 groups + final 2:1, 120 ps CMOS output buffer, ≈50 ps total
//!   jitter (Figs. 16–19).

use core::fmt;

use pstime::{DataRate, Duration, UnitInterval};
use signal::jitter::{
    gaussian_extreme_q, DutyCycleDistortion, IsiJitter, JitterBudget, RandomJitter,
};
use signal::{AnalogWaveform, BitStream, DigitalWaveform, EdgeShape, LevelSet};

use crate::buffer::{CmosIoBuffer, SiGeOutputBuffer};
use crate::clock::{ClockFanout, RfClockSource};
use crate::delay::ProgrammableDelayLine;
use crate::mux::MuxTree;
use crate::{PeclError, Result};

/// A composed PECL signal path with an accumulated impairment budget.
///
/// Build one from components with the `add_*` methods, or use a calibrated
/// preset. Then [`render`](SignalChain::render) bit streams through it.
///
/// # Examples
///
/// ```
/// use pecl::chain::SignalChain;
/// use pecl::{Mux2, MuxTree, RfClockSource, SiGeOutputBuffer};
/// use pstime::{DataRate, Duration, Frequency};
/// use signal::BitStream;
///
/// let chain = SignalChain::builder("custom")
///     .add_clock(&RfClockSource::bench_instrument(Frequency::from_ghz(1.25)))
///     .add_mux_tree(&MuxTree::new(8)?)
///     .add_sige_buffer(&SiGeOutputBuffer::new())
///     .build();
/// let wave = chain.render(&BitStream::alternating(64), DataRate::from_gbps(2.5), 1)?;
/// assert_eq!(wave.digital().num_edges(), 63);
/// # Ok::<(), pecl::PeclError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SignalChain {
    name: String,
    rj_rms_sq_fs2: f64,
    dcd: Duration,
    isi_max: Duration,
    isi_tau_bits: f64,
    shape: EdgeShape,
    levels: LevelSet,
    max_rate_gbps: f64,
    prop_delay: Duration,
    stages: Vec<String>,
}

impl SignalChain {
    /// Starts an empty chain builder.
    pub fn builder(name: impl Into<String>) -> SignalChainBuilder {
        SignalChainBuilder {
            chain: SignalChain {
                name: name.into(),
                rj_rms_sq_fs2: 0.0,
                dcd: Duration::ZERO,
                isi_max: Duration::ZERO,
                isi_tau_bits: 1.0,
                shape: EdgeShape::from_rise_2080_ps(30.0), // bare PECL edge
                levels: LevelSet::pecl(),
                max_rate_gbps: 10.0,
                prop_delay: Duration::ZERO,
                stages: Vec::new(),
            },
        }
    }

    /// The Optical Test Bed transmitter path (§3), calibrated so that:
    /// single-edge jitter ≈ 3.2 ps rms / 24 ps p-p (Fig. 9), PRBS total
    /// jitter ≈ 47 ps p-p at 2.5 and 4.0 Gbps (Figs. 7–8), transitions
    /// 70–75 ps (Fig. 6).
    pub fn testbed_transmitter() -> Self {
        use pstime::Frequency;
        let clock = RfClockSource::new(Frequency::from_ghz(1.25), Duration::from_ps_f64(1.6));
        let fanout = ClockFanout::new(8, Duration::from_ps_f64(1.2));
        // xlint::allow(no-panic-in-lib, MuxTree::new only fails on a non-power-of-two way count and 8 is constant)
        let tree = MuxTree::new(8).expect("8 is a power of two");
        let buffer = SiGeOutputBuffer::new();
        let mut chain = SignalChain::builder("optical-testbed-tx")
            .add_clock(&clock)
            .add_fanout(&fanout)
            .add_mux_tree(&tree)
            .add_sige_buffer(&buffer)
            .build();
        // Board-level data-dependent jitter (connectors, AC coupling):
        // sized so PRBS TJ lands at the measured ~47 ps.
        chain.add_isi(Duration::from_ps(13), 1.0);
        chain.add_rj(Duration::from_ps_f64(2.2)); // residual supply/thermal
        chain.add_dcd(Duration::from_ps(6));
        chain
    }

    /// The miniature wafer-prober datapath (§4): two 8:1 groups + final
    /// 2:1, 120 ps output buffer. Calibrated to Figs. 16–19: ≈50 ps p-p
    /// total jitter ⇒ 0.95 / 0.87 / 0.75 UI eyes at 1.0 / 2.5 / 5.0 Gbps.
    pub fn minitester_datapath() -> Self {
        use pstime::Frequency;
        let clock = RfClockSource::new(Frequency::from_ghz(1.25), Duration::from_ps_f64(1.8));
        let fanout = ClockFanout::new(4, Duration::from_ps_f64(1.4));
        // xlint::allow(no-panic-in-lib, MuxTree::new only fails on a non-power-of-two way count and 8 is constant)
        let tree = MuxTree::new(8).expect("8 is a power of two");
        let final_mux = crate::mux::Mux2::new();
        let buffer = CmosIoBuffer::new();
        let mut chain = SignalChain::builder("minitester-datapath")
            .add_clock(&clock)
            .add_fanout(&fanout)
            .add_mux_tree(&tree)
            .add_mux2(&final_mux)
            .add_cmos_buffer(&buffer)
            .build();
        chain.add_isi(Duration::from_ps(13), 1.0);
        chain.add_rj(Duration::from_ps_f64(1.6));
        chain.add_dcd(Duration::from_ps(3));
        chain
    }

    /// The chain's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stage descriptions, in order.
    pub fn stages(&self) -> &[String] {
        &self.stages
    }

    /// Adds raw Gaussian jitter (quadrature).
    pub fn add_rj(&mut self, rms: Duration) {
        let fs = rms.as_fs() as f64;
        self.rj_rms_sq_fs2 += fs * fs;
        self.stages.push(format!("rj +{rms}"));
    }

    /// Adds raw duty-cycle distortion (linear).
    pub fn add_dcd(&mut self, pp: Duration) {
        self.dcd += pp;
        self.stages.push(format!("dcd +{pp}"));
    }

    /// Adds data-dependent jitter with a settling constant in bit periods.
    pub fn add_isi(&mut self, max: Duration, tau_bits: f64) {
        self.isi_max += max;
        self.isi_tau_bits = tau_bits;
        self.stages.push(format!("isi +{max}"));
    }

    /// Total random jitter (rms, quadrature sum).
    pub fn rj_rms(&self) -> Duration {
        Duration::from_fs(self.rj_rms_sq_fs2.sqrt().round() as i64)
    }

    /// Total bounded deterministic jitter (peak-to-peak, linear sum).
    pub fn dj_pp(&self) -> Duration {
        self.dcd + self.isi_max
    }

    /// The output transition shape after all bandwidth cascades.
    pub fn shape(&self) -> &EdgeShape {
        &self.shape
    }

    /// The programmed output levels.
    pub fn levels(&self) -> &LevelSet {
        &self.levels
    }

    /// Reprograms the output levels (the DAC write path of Figs. 10–11).
    pub fn set_levels(&mut self, levels: LevelSet) {
        self.levels = levels;
    }

    /// The path's maximum usable rate.
    pub fn max_rate_gbps(&self) -> f64 {
        self.max_rate_gbps
    }

    /// Total propagation delay through the chain.
    pub fn prop_delay(&self) -> Duration {
        self.prop_delay
    }

    /// The composite jitter model all of this chain's edges see.
    pub fn jitter_budget(&self) -> JitterBudget {
        let mut budget = JitterBudget::new();
        let rj = self.rj_rms();
        if !rj.is_zero() {
            budget = budget.with_model(RandomJitter::new(rj));
        }
        if !self.dcd.is_zero() {
            budget = budget.with_model(DutyCycleDistortion::new(self.dcd));
        }
        if !self.isi_max.is_zero() {
            budget = budget.with_model(IsiJitter::new(self.isi_max, self.isi_tau_bits));
        }
        budget
    }

    /// Predicted total peak-to-peak jitter over `n_edges` observations
    /// (`DJ + 2·Q(n)·RJ`).
    pub fn predicted_tj_pp(&self, n_edges: u64) -> Duration {
        self.dj_pp() + self.rj_rms().mul_f64(2.0 * gaussian_extreme_q(n_edges))
    }

    /// Predicted horizontal eye opening at `rate` over `n_edges`.
    pub fn predicted_opening(&self, rate: DataRate, n_edges: u64) -> UnitInterval {
        (UnitInterval::ONE - UnitInterval::from_duration(self.predicted_tj_pp(n_edges), rate))
            .clamp_unit()
    }

    /// Renders a serial bit stream through the chain at `rate`.
    ///
    /// # Errors
    ///
    /// [`PeclError::RateTooHigh`] beyond the chain's rate limit.
    pub fn render(&self, bits: &BitStream, rate: DataRate, seed: u64) -> Result<AnalogWaveform> {
        if rate.as_gbps() > self.max_rate_gbps {
            return Err(PeclError::RateTooHigh {
                requested_gbps: rate.as_gbps(),
                limit_gbps: self.max_rate_gbps,
            });
        }
        let budget = self.jitter_budget();
        let digital =
            DigitalWaveform::from_bits(bits, rate, &budget, seed).delayed(self.prop_delay);
        Ok(AnalogWaveform::new(digital, self.levels, self.shape))
    }

    /// Serializes 16 parallel lanes (two 8:1 groups into a final 2:1, the
    /// mini-tester topology) and renders at `out_rate`.
    ///
    /// # Errors
    ///
    /// [`PeclError::LaneMismatch`] for a wrong lane count;
    /// [`PeclError::RateTooHigh`] beyond the rate limit.
    pub fn serialize_16(
        &self,
        lanes: &[BitStream],
        out_rate: DataRate,
        seed: u64,
    ) -> Result<AnalogWaveform> {
        if lanes.len() != 16 {
            return Err(PeclError::LaneMismatch { expected: 16, got: lanes.len() });
        }
        // xlint::allow(no-panic-in-lib, MuxTree::new only fails on a non-power-of-two way count and 8 is constant)
        let tree = MuxTree::new(8).expect("8 is a power of two");
        let group_a = tree.serialize(&lanes[..8])?; // xlint::allow(panic-reachable, the LaneMismatch guard above pins lanes.len() to 16)
        let group_b = tree.serialize(&lanes[8..])?;
        let final_mux = crate::mux::Mux2::new();
        let serial = final_mux.serialize(&group_a, &group_b)?;
        self.render(&serial, out_rate, seed)
    }

    /// Serializes 8 parallel lanes through one 8:1 tree and renders.
    ///
    /// # Errors
    ///
    /// As [`serialize_16`](Self::serialize_16), expecting 8 lanes.
    pub fn serialize_8(
        &self,
        lanes: &[BitStream],
        out_rate: DataRate,
        seed: u64,
    ) -> Result<AnalogWaveform> {
        if lanes.len() != 8 {
            return Err(PeclError::LaneMismatch { expected: 8, got: lanes.len() });
        }
        // xlint::allow(no-panic-in-lib, MuxTree::new only fails on a non-power-of-two way count and 8 is constant)
        let tree = MuxTree::new(8).expect("8 is a power of two");
        let serial = tree.serialize(lanes)?;
        self.render(&serial, out_rate, seed)
    }
}

impl fmt::Display for SignalChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: RJ {} rms, DJ {} p-p, rise {} (max {} Gbps, {} stages)",
            self.name,
            self.rj_rms(),
            self.dj_pp(),
            self.shape.rise_2080(),
            self.max_rate_gbps,
            self.stages.len()
        )
    }
}

/// Builder accumulating components into a [`SignalChain`].
#[derive(Debug, Clone)]
pub struct SignalChainBuilder {
    chain: SignalChain,
}

impl SignalChainBuilder {
    /// Adds the RF reference clock's phase jitter.
    #[must_use]
    pub fn add_clock(mut self, clock: &RfClockSource) -> Self {
        self.chain.add_rj(clock.rj_rms());
        let n = self.chain.stages.len();
        self.chain.stages[n - 1] =
            format!("rf-clock {} ({} rms)", clock.frequency(), clock.rj_rms());
        self
    }

    /// Adds a clock fanout's additive jitter.
    #[must_use]
    pub fn add_fanout(mut self, fanout: &ClockFanout) -> Self {
        self.chain.add_rj(fanout.added_rj());
        let n = self.chain.stages.len();
        self.chain.stages[n - 1] =
            format!("clock-fanout x{} (+{} rms)", fanout.outputs(), fanout.added_rj());
        self
    }

    /// Adds a mux tree's DCD, RJ, and rate limit.
    #[must_use]
    pub fn add_mux_tree(mut self, tree: &MuxTree) -> Self {
        self.chain.dcd += tree.total_dcd();
        let fs = tree.total_added_rj().as_fs() as f64;
        self.chain.rj_rms_sq_fs2 += fs * fs;
        self.chain.max_rate_gbps = self.chain.max_rate_gbps.min(tree.max_rate_gbps());
        self.chain.stages.push(format!("mux-tree {}:1", tree.ways()));
        self
    }

    /// Adds a single 2:1 mux stage.
    #[must_use]
    pub fn add_mux2(mut self, mux: &crate::mux::Mux2) -> Self {
        self.chain.dcd += mux.dcd();
        let fs = mux.added_rj().as_fs() as f64;
        self.chain.rj_rms_sq_fs2 += fs * fs;
        self.chain.max_rate_gbps = self.chain.max_rate_gbps.min(mux.max_rate_gbps());
        self.chain.stages.push("mux 2:1".to_string());
        self
    }

    /// Adds a delay line's insertion delay (its programmed value is applied
    /// separately when the line is used for deskew).
    #[must_use]
    pub fn add_delay_line(mut self, line: &ProgrammableDelayLine) -> Self {
        self.chain.prop_delay += line.insertion_delay();
        self.chain.stages.push(format!("delay-line ({} step)", line.step()));
        self
    }

    /// Adds the SiGe output buffer: sets the output shape and levels.
    #[must_use]
    pub fn add_sige_buffer(mut self, buffer: &SiGeOutputBuffer) -> Self {
        self.chain.shape = *buffer.shape();
        self.chain.levels = *buffer.levels();
        let fs = buffer.added_rj().as_fs() as f64;
        self.chain.rj_rms_sq_fs2 += fs * fs;
        self.chain.stages.push("sige-buffer".to_string());
        self
    }

    /// Adds the slower CMOS I/O buffer: sets shape/levels and a 5 Gbps
    /// ceiling.
    #[must_use]
    pub fn add_cmos_buffer(mut self, buffer: &CmosIoBuffer) -> Self {
        self.chain.shape = *buffer.shape();
        self.chain.levels = *buffer.levels();
        let fs = buffer.added_rj().as_fs() as f64;
        self.chain.rj_rms_sq_fs2 += fs * fs;
        self.chain.max_rate_gbps = self.chain.max_rate_gbps.min(5.0);
        self.chain.stages.push("cmos-io-buffer".to_string());
        self
    }

    /// Finishes the chain.
    pub fn build(self) -> SignalChain {
        self.chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal::EyeDiagram;

    #[test]
    fn testbed_chain_budget_matches_fig9() {
        let chain = SignalChain::testbed_transmitter();
        // Single-edge RJ: ~3.2 ps rms => ~24 ps p-p over 1e4 acquisitions.
        let rms = chain.rj_rms().as_ps_f64();
        assert!((rms - 3.2).abs() < 0.4, "RJ rms {rms} ps, expected ~3.2");
        let pp = chain.rj_rms().mul_f64(2.0 * gaussian_extreme_q(10_000));
        assert!(
            (pp.as_ps_f64() - 24.0).abs() < 3.0,
            "single-edge p-p {} ps, expected ~24",
            pp.as_ps_f64()
        );
    }

    #[test]
    fn testbed_chain_predicts_fig7_eye() {
        let chain = SignalChain::testbed_transmitter();
        let opening = chain.predicted_opening(DataRate::from_gbps(2.5), 4000);
        assert!(
            (opening.value() - 0.88).abs() < 0.02,
            "predicted opening {opening} at 2.5 Gbps, expected ~0.88 UI"
        );
        let opening4 = chain.predicted_opening(DataRate::from_gbps(4.0), 4000);
        assert!(
            (opening4.value() - 0.81).abs() < 0.03,
            "predicted opening {opening4} at 4 Gbps, expected ~0.81 UI"
        );
    }

    #[test]
    fn minitester_chain_predicts_fig16_19_eyes() {
        let chain = SignalChain::minitester_datapath();
        let cases = [(1.0, 0.95), (2.5, 0.87), (5.0, 0.75)];
        for (gbps, want) in cases {
            let got = chain.predicted_opening(DataRate::from_gbps(gbps), 4000);
            assert!(
                (got.value() - want).abs() < 0.025,
                "at {gbps} Gbps predicted {got}, paper says ~{want} UI"
            );
        }
    }

    #[test]
    fn rendered_eye_matches_prediction() {
        // End-to-end: render PRBS-ish data and measure the eye.
        let chain = SignalChain::testbed_transmitter();
        let rate = DataRate::from_gbps(2.5);
        // Use a mixed pattern with runs (ISI needs them).
        let mut bits = BitStream::new();
        let mut lfsr_state = 0xACE1u32;
        for _ in 0..4000 {
            let bit = lfsr_state & 1 == 1;
            let fb = (lfsr_state ^ (lfsr_state >> 1)) & 1;
            lfsr_state = (lfsr_state >> 1) | (fb << 14);
            bits.push(bit);
        }
        let wave = chain.render(&bits, rate, 42).unwrap();
        let eye = EyeDiagram::analyze(&wave, rate).unwrap();
        let measured = eye.jitter_pp().as_ps_f64();
        assert!((40.0..55.0).contains(&measured), "measured TJ {measured} ps, expected ~47");
        let opening = eye.opening_ui().value();
        assert!((opening - 0.88).abs() < 0.03, "measured opening {opening}");
    }

    #[test]
    fn rate_limit_enforced() {
        let chain = SignalChain::minitester_datapath();
        let err =
            chain.render(&BitStream::alternating(16), DataRate::from_gbps(6.0), 0).unwrap_err();
        assert!(matches!(err, PeclError::RateTooHigh { .. }));
        assert!((chain.max_rate_gbps() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn serialize_16_lane_structure() {
        let chain = SignalChain::minitester_datapath();
        let lanes: Vec<BitStream> = (0..16).map(|_| BitStream::alternating(8)).collect();
        let wave = chain.serialize_16(&lanes, DataRate::from_gbps(5.0), 1).unwrap();
        assert_eq!(wave.digital().span(), DataRate::from_gbps(5.0).unit_interval() * 128);
        assert!(chain.serialize_16(&lanes[..8], DataRate::from_gbps(5.0), 1).is_err());
    }

    #[test]
    fn serialize_8_lane_structure() {
        let chain = SignalChain::testbed_transmitter();
        let lanes: Vec<BitStream> = (0..8).map(|_| BitStream::ones(4)).collect();
        let wave = chain.serialize_8(&lanes, DataRate::from_gbps(2.5), 1).unwrap();
        assert_eq!(wave.digital().num_edges(), 0); // all ones
        assert!(chain.serialize_8(&lanes[..4], DataRate::from_gbps(2.5), 1).is_err());
    }

    #[test]
    fn builder_accumulates_stages() {
        let chain = SignalChain::testbed_transmitter();
        assert!(chain.stages().len() >= 4);
        assert!(chain.name().contains("testbed"));
        let text = chain.to_string();
        assert!(text.contains("RJ"));
        assert!(text.contains("DJ"));
        assert!(chain.prop_delay() == Duration::ZERO);
    }

    #[test]
    fn delay_line_contributes_insertion_delay() {
        let line = ProgrammableDelayLine::standard();
        let chain = SignalChain::builder("with-delay").add_delay_line(&line).build();
        assert_eq!(chain.prop_delay(), Duration::from_ps(1200));
        let wave =
            chain.render(&BitStream::from_str_bits("10"), DataRate::from_gbps(1.0), 0).unwrap();
        assert_eq!(wave.digital().start(), pstime::Instant::from_ps(1200));
    }

    #[test]
    fn levels_reprogramming() {
        let mut chain = SignalChain::testbed_transmitter();
        let reduced = LevelSet::pecl().with_swing(pstime::Millivolts::new(400));
        chain.set_levels(reduced);
        assert_eq!(chain.levels().swing(), pstime::Millivolts::new(400));
        let wave = chain.render(&BitStream::alternating(8), DataRate::from_gbps(1.25), 0).unwrap();
        assert_eq!(wave.levels().swing(), pstime::Millivolts::new(400));
    }
}
