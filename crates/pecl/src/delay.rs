//! Programmable delay verniers: 10 ps resolution over a 10 ns range.
//!
//! "The relative timing for leading and trailing edges … must be controlled
//! with 10 ps resolution in the Optical Test Bed. A 10 ns range for the
//! placement of these edges is also required" (§3). The mini-tester's
//! strobe placement uses the same parts (§4).
//!
//! Real delay lines are not perfectly linear; the model includes a
//! deterministic integral-nonlinearity (INL) curve so the calibration layer
//! in `ate` has something real to calibrate out.

use pstime::Duration;
use signal::DigitalWaveform;

use crate::{PeclError, Result};

/// A programmable delay line: `codes` settings of `step` each, with a
/// sinusoidal INL of `inl_peak`.
///
/// # Examples
///
/// ```
/// use pecl::ProgrammableDelayLine;
/// use pstime::Duration;
///
/// let mut delay = ProgrammableDelayLine::standard();
/// assert_eq!(delay.step(), Duration::from_ps(10));
/// assert_eq!(delay.range(), Duration::from_ps(10_240));
/// delay.set_code(40)?;
/// // 40 steps of 10 ps, within the ±2 ps INL band.
/// let actual = delay.actual_delay();
/// assert!((actual - Duration::from_ps(400)).abs() <= Duration::from_ps(2));
/// # Ok::<(), pecl::PeclError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProgrammableDelayLine {
    step: Duration,
    codes: u32,
    code: u32,
    inl_peak: Duration,
    insertion_delay: Duration,
}

impl ProgrammableDelayLine {
    /// Creates a delay line.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not positive, `codes` is zero, or `inl_peak` is
    /// negative.
    pub fn new(step: Duration, codes: u32, inl_peak: Duration, insertion_delay: Duration) -> Self {
        assert!(step > Duration::ZERO, "delay step must be positive");
        assert!(codes > 0, "delay line needs at least one code");
        assert!(!inl_peak.is_negative(), "INL peak must be nonnegative");
        ProgrammableDelayLine { step, codes, code: 0, inl_peak, insertion_delay }
    }

    /// The paper's vernier: 10 ps steps, 1024 codes (10.24 ns > the 10 ns
    /// requirement), ±2 ps INL, 1.2 ns insertion delay.
    pub fn standard() -> Self {
        ProgrammableDelayLine::new(
            Duration::from_ps(10),
            1024,
            Duration::from_ps(2),
            Duration::from_ps(1200),
        )
    }

    /// The programmed step size.
    pub fn step(&self) -> Duration {
        self.step
    }

    /// Number of valid codes.
    pub fn codes(&self) -> u32 {
        self.codes
    }

    /// Full programmable range (`codes × step`).
    pub fn range(&self) -> Duration {
        self.step * self.codes as i64 // xlint::allow(no-lossy-cast, u32 code count widens losslessly into i64)
    }

    /// The current code.
    pub fn code(&self) -> u32 {
        self.code
    }

    /// The fixed insertion delay (code 0 latency).
    pub fn insertion_delay(&self) -> Duration {
        self.insertion_delay
    }

    /// Programs a raw code.
    ///
    /// # Errors
    ///
    /// [`PeclError::DelayCodeOutOfRange`] beyond the last code.
    pub fn set_code(&mut self, code: u32) -> Result<()> {
        if code >= self.codes {
            return Err(PeclError::DelayCodeOutOfRange { code, codes: self.codes });
        }
        self.code = code;
        Ok(())
    }

    /// Programs the nearest code to a requested delay (relative to the
    /// insertion delay).
    ///
    /// Returns the code chosen.
    ///
    /// # Errors
    ///
    /// [`PeclError::DelayOutOfRange`] if the request exceeds the range.
    pub fn set_delay(&mut self, delay: Duration) -> Result<u32> {
        if delay.is_negative() || delay > self.range() {
            return Err(PeclError::DelayOutOfRange {
                requested_ps: delay.as_ps_f64(),
                range_ps: self.range().as_ps_f64(),
            });
        }
        let code = (delay.as_fs() + self.step.as_fs() / 2) / self.step.as_fs();
        let code = (code as u32).min(self.codes - 1); // xlint::allow(no-lossy-cast, code is a nonnegative fs quotient already clamped below self.codes)
        self.code = code;
        Ok(code)
    }

    /// The ideal (linear) delay of the current code, excluding insertion
    /// delay.
    pub fn nominal_delay(&self) -> Duration {
        self.step * self.code as i64 // xlint::allow(no-lossy-cast, u32 code widens losslessly into i64)
    }

    /// The *actual* delay of the current code: nominal + INL, excluding
    /// insertion delay. The INL is a fixed sinusoid over the code range —
    /// deterministic per part, as in real verniers.
    pub fn actual_delay(&self) -> Duration {
        self.nominal_delay() + self.inl_at(self.code)
    }

    /// The INL error at a given code.
    pub fn inl_at(&self, code: u32) -> Duration {
        let phase = 2.0 * core::f64::consts::PI * code as f64 / self.codes as f64; // xlint::allow(no-lossy-cast, u32 code and count convert exactly to f64)
        self.inl_peak.mul_f64(phase.sin())
    }

    /// Worst-case INL across all codes.
    pub fn max_inl(&self) -> Duration {
        (0..self.codes).map(|c| self.inl_at(c).abs()).max().unwrap_or(Duration::ZERO)
    }

    /// The differential nonlinearity at `code` (step error vs. the ideal
    /// step).
    ///
    /// # Panics
    ///
    /// Panics if `code` is 0 (DNL is defined between adjacent codes).
    pub fn dnl_at(&self, code: u32) -> Duration {
        assert!(code > 0, "DNL is defined for codes >= 1");
        (self.inl_at(code) - self.inl_at(code - 1)).abs()
    }

    /// Applies the current setting to a waveform: insertion + actual delay.
    pub fn apply(&self, wave: &DigitalWaveform) -> DigitalWaveform {
        wave.delayed(self.insertion_delay + self.actual_delay())
    }
}

impl Default for ProgrammableDelayLine {
    fn default() -> Self {
        ProgrammableDelayLine::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstime::{DataRate, Instant};
    use signal::jitter::NoJitter;
    use signal::BitStream;

    #[test]
    fn standard_meets_paper_spec() {
        let d = ProgrammableDelayLine::standard();
        assert_eq!(d.step(), Duration::from_ps(10));
        assert!(d.range() >= Duration::from_ns(10), "range {} >= 10 ns", d.range());
        assert_eq!(d.codes(), 1024);
        assert!(d.max_inl() <= Duration::from_ps(2));
        assert_eq!(d.insertion_delay(), Duration::from_ps(1200));
        assert_eq!(ProgrammableDelayLine::default(), d);
    }

    #[test]
    fn code_programming() {
        let mut d = ProgrammableDelayLine::standard();
        d.set_code(100).unwrap();
        assert_eq!(d.code(), 100);
        assert_eq!(d.nominal_delay(), Duration::from_ps(1000));
        assert!(matches!(
            d.set_code(1024),
            Err(PeclError::DelayCodeOutOfRange { code: 1024, codes: 1024 })
        ));
    }

    #[test]
    fn delay_programming_rounds_to_step() {
        let mut d = ProgrammableDelayLine::standard();
        let code = d.set_delay(Duration::from_ps(404)).unwrap();
        assert_eq!(code, 40);
        let code = d.set_delay(Duration::from_ps(406)).unwrap();
        assert_eq!(code, 41);
        assert!(d.set_delay(Duration::from_ns(11)).is_err());
        assert!(d.set_delay(Duration::from_ps(-10)).is_err());
        // Full-range request maps to the top code.
        let code = d.set_delay(d.range()).unwrap();
        assert_eq!(code, 1023);
    }

    #[test]
    fn inl_is_bounded_and_repeatable() {
        let d = ProgrammableDelayLine::standard();
        for code in [0u32, 17, 255, 256, 511, 767, 1023] {
            assert!(d.inl_at(code).abs() <= Duration::from_ps(2));
        }
        // Deterministic per part.
        let d2 = ProgrammableDelayLine::standard();
        assert_eq!(d.inl_at(300), d2.inl_at(300));
        // Peak near quarter range.
        assert!(d.inl_at(256).abs() >= Duration::from_ps(1));
    }

    #[test]
    fn dnl_is_small() {
        let d = ProgrammableDelayLine::standard();
        for code in 1..1024 {
            assert!(d.dnl_at(code) < Duration::from_ps(1), "DNL at {code}");
        }
    }

    #[test]
    fn monotonicity() {
        // INL of ±2 ps on 10 ps steps can never reorder codes.
        let d = ProgrammableDelayLine::standard();
        let mut prev = Duration::from_ps(-1);
        for code in 0..1024 {
            let mut probe = d.clone();
            probe.set_code(code).unwrap();
            let delay = probe.actual_delay();
            assert!(delay > prev, "non-monotonic at code {code}");
            prev = delay;
        }
    }

    #[test]
    fn apply_shifts_waveform() {
        let rate = DataRate::from_gbps(2.5);
        let w = DigitalWaveform::from_bits(&BitStream::from_str_bits("10"), rate, &NoJitter, 0);
        let mut d = ProgrammableDelayLine::new(
            Duration::from_ps(10),
            100,
            Duration::ZERO,
            Duration::from_ps(1000),
        );
        d.set_code(5).unwrap();
        let shifted = d.apply(&w);
        assert_eq!(shifted.edges()[0].at, Instant::from_ps(400 + 1000 + 50));
    }

    #[test]
    fn edge_placement_resolution_experiment() {
        // The SUMMARY experiment: sweep codes, confirm 10 ps placement with
        // <= 2 ps INL error — i.e. ±25 ps accuracy claim holds trivially.
        let mut d = ProgrammableDelayLine::standard();
        let mut worst = Duration::ZERO;
        for code in 0..1024 {
            d.set_code(code).unwrap();
            let err = (d.actual_delay() - d.nominal_delay()).abs();
            worst = worst.max(err);
        }
        assert!(worst <= Duration::from_ps(2));
    }

    #[test]
    #[should_panic(expected = "DNL is defined for codes >= 1")]
    fn dnl_at_zero_panics() {
        let _ = ProgrammableDelayLine::standard().dnl_at(0);
    }
}
