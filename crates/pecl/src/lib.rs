//! # gigatest-pecl — the PECL multi-gigahertz signal path
//!
//! Models the positive emitter-coupled logic (PECL) front end that turns the
//! DLC's moderate-speed CMOS signals into the paper's 1–5 Gbps test
//! waveforms, and samples the responses back:
//!
//! * [`clock`] — the external low-jitter RF reference (0.5–2.5 GHz,
//!   picosecond phase noise) and the clock fanout that distributes it with
//!   per-output skew.
//! * [`delay`] — programmable delay verniers: **10 ps steps over a 10 ns
//!   range**, with a deterministic integral-nonlinearity model, the parts
//!   behind the paper's edge-placement claims.
//! * [`mux`] — 2:1 / 8:1 / 16:1 parallel-to-serial multiplexer trees (two
//!   8:1 groups into a final 2:1 gives the mini-tester's 5 Gbps).
//! * [`buffer`] — SiGe output buffers (70–75 ps 20–80 % transitions,
//!   sub-ps added jitter) and the slower CMOS I/O buffers (120 ps).
//! * [`levels`] — the voltage-tuning DACs that step VOH/VOL/mid-bias in
//!   100 mV increments (Figs. 10–11).
//! * [`sampler`] — the strobed picosecond sampling circuit used by the
//!   mini-tester's capture path.
//! * [`chain`] — composition: a [`SignalChain`] accumulates every stage's
//!   jitter and bandwidth contribution and renders final waveforms whose
//!   measured eyes land where the paper's do.
//!
//! ## Example: the mini-tester's 16:1 serializer at 5 Gbps
//!
//! ```
//! use pecl::chain::SignalChain;
//! use pstime::DataRate;
//! use signal::BitStream;
//!
//! let chain = SignalChain::minitester_datapath();
//! let lanes: Vec<BitStream> = (0..16).map(|i| BitStream::alternating(32 + i % 2)).collect();
//! // Render a 5 Gbps burst from 16 CMOS lanes at 312.5 Mbps each.
//! let lanes: Vec<BitStream> = (0..16).map(|_| BitStream::alternating(32)).collect();
//! let wave = chain.serialize_16(&lanes, DataRate::from_gbps(5.0), 7)?;
//! assert_eq!(wave.digital().span(), DataRate::from_gbps(5.0).unit_interval() * 512);
//! # Ok::<(), pecl::PeclError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod chain;
pub mod clock;
pub mod delay;
mod error;
pub mod levels;
pub mod mux;
pub mod sampler;
pub mod timing;

pub use buffer::{CmosIoBuffer, SiGeOutputBuffer};
pub use chain::SignalChain;
pub use clock::{ClockFanout, RfClockSource};
pub use delay::ProgrammableDelayLine;
pub use error::PeclError;
pub use levels::VoltageTuningDac;
pub use mux::{Mux2, MuxTree};
pub use sampler::StrobedSampler;
pub use timing::TimingGenerator;

/// Convenient result alias for PECL operations.
pub type Result<T> = std::result::Result<T, PeclError>;
