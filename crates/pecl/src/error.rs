//! Error type for PECL signal-path operations.

use core::fmt;

/// Errors raised by PECL components.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PeclError {
    /// A delay code outside the vernier's range.
    DelayCodeOutOfRange {
        /// Requested code.
        code: u32,
        /// Number of valid codes.
        codes: u32,
    },
    /// A requested delay outside the vernier's 10 ns range.
    DelayOutOfRange {
        /// Requested delay in picoseconds.
        requested_ps: f64,
        /// Range limit in picoseconds.
        range_ps: f64,
    },
    /// Mux input lanes had mismatched lengths or counts.
    LaneMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        got: usize,
    },
    /// A DAC code outside its range.
    DacCodeOutOfRange {
        /// Requested code.
        code: u32,
        /// Number of valid codes.
        codes: u32,
    },
    /// The requested output rate exceeds a component's capability.
    RateTooHigh {
        /// Requested rate (Gbps).
        requested_gbps: f64,
        /// Component limit (Gbps).
        limit_gbps: f64,
    },
    /// A signal-analysis error bubbled up from the `signal` crate.
    Signal(signal::SignalError),
}

impl fmt::Display for PeclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeclError::DelayCodeOutOfRange { code, codes } => {
                write!(f, "delay code {code} out of range (0..{codes})")
            }
            PeclError::DelayOutOfRange { requested_ps, range_ps } => {
                write!(f, "delay {requested_ps} ps outside 0..{range_ps} ps range")
            }
            PeclError::LaneMismatch { expected, got } => {
                write!(f, "mux lane mismatch: expected {expected}, got {got}")
            }
            PeclError::DacCodeOutOfRange { code, codes } => {
                write!(f, "DAC code {code} out of range (0..{codes})")
            }
            PeclError::RateTooHigh { requested_gbps, limit_gbps } => {
                write!(
                    f,
                    "requested {requested_gbps} Gbps exceeds component limit {limit_gbps} Gbps"
                )
            }
            PeclError::Signal(e) => write!(f, "signal analysis failed: {e}"),
        }
    }
}

impl std::error::Error for PeclError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PeclError::Signal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<signal::SignalError> for PeclError {
    fn from(e: signal::SignalError) -> Self {
        PeclError::Signal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        let e = PeclError::DelayCodeOutOfRange { code: 2000, codes: 1024 };
        assert!(e.to_string().contains("2000"));
        assert!(e.source().is_none());
        let inner = signal::SignalError::EmptyWaveform { context: "x" };
        let e = PeclError::from(inner.clone());
        assert!(e.to_string().contains("signal analysis failed"));
        assert!(e.source().is_some());
        assert_eq!(e, PeclError::Signal(inner));
        assert!(PeclError::LaneMismatch { expected: 8, got: 7 }.to_string().contains("8"));
        assert!(PeclError::RateTooHigh { requested_gbps: 6.0, limit_gbps: 5.0 }
            .to_string()
            .contains("6"));
        assert!(PeclError::DacCodeOutOfRange { code: 9, codes: 8 }.to_string().contains("9"));
        assert!(PeclError::DelayOutOfRange { requested_ps: 1e5, range_ps: 10240.0 }
            .to_string()
            .contains("10240"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<PeclError>();
    }
}
