//! Voltage-tuning DACs for the PECL output levels.
//!
//! Figs. 10–11 of the paper: "the high logic level is shown at its maximum
//! value and at three lower values in 100 mV steps. Similar control is
//! available on the low logic level and the midpoint bias. By controlling
//! these values, a wide range of amplitude swings and midpoint bias values
//! can be generated for characterizing the Data Vortex performance under
//! non-ideal signal conditions."

use pstime::Millivolts;
use signal::LevelSet;

use crate::{PeclError, Result};

/// The three independently tunable quantities of the output stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LevelKnob {
    /// The high output level (VOH).
    High,
    /// The low output level (VOL).
    Low,
    /// The midpoint bias (VOH and VOL shift together).
    MidBias,
    /// The amplitude swing (VOH and VOL move apart symmetrically).
    Swing,
}

/// A multi-channel voltage-tuning DAC bank driving a [`LevelSet`].
///
/// Codes step monotonically from the maximum value downward, matching the
/// paper's presentation ("at its maximum value and at three lower values in
/// 100 mV steps").
///
/// # Examples
///
/// ```
/// use pecl::levels::LevelKnob;
/// use pecl::VoltageTuningDac;
/// use pstime::Millivolts;
///
/// let mut dac = VoltageTuningDac::new();
/// // Fig. 10: lower VOH by two 100 mV steps.
/// dac.set_code(LevelKnob::High, 2)?;
/// assert_eq!(dac.levels().voh(), Millivolts::new(-1100));
/// # Ok::<(), pecl::PeclError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoltageTuningDac {
    base: LevelSet,
    high_step: Millivolts,
    low_step: Millivolts,
    bias_step: Millivolts,
    swing_step: Millivolts,
    codes: u32,
    high_code: u32,
    low_code: u32,
    bias_code: u32,
    swing_code: u32,
}

impl VoltageTuningDac {
    /// The paper's DAC bank: 100 mV steps on VOH/VOL/bias, 200 mV on swing
    /// (Fig. 11), 8 codes each, starting from standard PECL levels.
    pub fn new() -> Self {
        VoltageTuningDac {
            base: LevelSet::pecl(),
            high_step: Millivolts::new(100),
            low_step: Millivolts::new(100),
            bias_step: Millivolts::new(100),
            swing_step: Millivolts::new(200),
            codes: 8,
            high_code: 0,
            low_code: 0,
            bias_code: 0,
            swing_code: 0,
        }
    }

    /// Number of codes per knob.
    pub fn codes(&self) -> u32 {
        self.codes
    }

    /// The step size of a knob.
    pub fn step(&self, knob: LevelKnob) -> Millivolts {
        match knob {
            LevelKnob::High => self.high_step,
            LevelKnob::Low => self.low_step,
            LevelKnob::MidBias => self.bias_step,
            LevelKnob::Swing => self.swing_step,
        }
    }

    /// The current code of a knob.
    pub fn code(&self, knob: LevelKnob) -> u32 {
        match knob {
            LevelKnob::High => self.high_code,
            LevelKnob::Low => self.low_code,
            LevelKnob::MidBias => self.bias_code,
            LevelKnob::Swing => self.swing_code,
        }
    }

    /// Programs a knob code. Code 0 is the nominal value; each increment
    /// lowers VOH / raises VOL / lowers the bias / shrinks the swing by one
    /// step.
    ///
    /// # Errors
    ///
    /// [`PeclError::DacCodeOutOfRange`] beyond the last code, and for
    /// swing codes that would collapse the swing to zero or less.
    pub fn set_code(&mut self, knob: LevelKnob, code: u32) -> Result<()> {
        if code >= self.codes {
            return Err(PeclError::DacCodeOutOfRange { code, codes: self.codes });
        }
        match knob {
            LevelKnob::High => self.high_code = code,
            LevelKnob::Low => self.low_code = code,
            LevelKnob::MidBias => self.bias_code = code,
            LevelKnob::Swing => {
                // Reject swing settings that invert the levels.
                let shrink = self.swing_step * code as i32;
                if shrink.as_mv() >= self.base.swing().as_mv() {
                    return Err(PeclError::DacCodeOutOfRange { code, codes: self.codes });
                }
                self.swing_code = code;
            }
        }
        Ok(())
    }

    /// The [`LevelSet`] produced by the current codes.
    ///
    /// Knob composition order: swing first (about the nominal midpoint),
    /// then individual VOH/VOL offsets, then the common-mode bias shift.
    pub fn levels(&self) -> LevelSet {
        let swung = if self.swing_code > 0 {
            let new_swing = self.base.swing() - self.swing_step * self.swing_code as i32;
            self.base.with_swing(new_swing)
        } else {
            self.base
        };
        let voh = swung.voh() - self.high_step * self.high_code as i32;
        let vol = swung.vol() + self.low_step * self.low_code as i32;
        let set = LevelSet::new(voh, vol);
        let bias_shift = self.bias_step * self.bias_code as i32;
        set.with_mid(set.mid() - bias_shift)
    }

    /// Resets every knob to code 0 (nominal PECL).
    pub fn reset(&mut self) {
        self.high_code = 0;
        self.low_code = 0;
        self.bias_code = 0;
        self.swing_code = 0;
    }

    /// Sweeps one knob across `n` codes from 0, returning the level set at
    /// each code — the data series behind Figs. 10 and 11.
    ///
    /// # Errors
    ///
    /// [`PeclError::DacCodeOutOfRange`] if `n` exceeds the code range.
    pub fn sweep(&self, knob: LevelKnob, n: u32) -> Result<Vec<LevelSet>> {
        let mut probe = self.clone();
        (0..n)
            .map(|code| {
                probe.set_code(knob, code)?;
                Ok(probe.levels())
            })
            .collect()
    }
}

impl Default for VoltageTuningDac {
    fn default() -> Self {
        VoltageTuningDac::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_levels() {
        let dac = VoltageTuningDac::new();
        assert_eq!(dac.levels(), LevelSet::pecl());
        assert_eq!(dac.codes(), 8);
        assert_eq!(dac.code(LevelKnob::High), 0);
        assert_eq!(dac.step(LevelKnob::Swing), Millivolts::new(200));
        assert_eq!(VoltageTuningDac::default(), dac);
    }

    #[test]
    fn fig10_voh_steps() {
        // Fig. 10: VOH at max and three lower values in 100 mV steps.
        let dac = VoltageTuningDac::new();
        let series = dac.sweep(LevelKnob::High, 4).unwrap();
        let vohs: Vec<i32> = series.iter().map(|l| l.voh().as_mv()).collect();
        assert_eq!(vohs, vec![-900, -1000, -1100, -1200]);
        // VOL untouched.
        assert!(series.iter().all(|l| l.vol() == Millivolts::new(-1700)));
    }

    #[test]
    fn fig11_swing_steps() {
        // Fig. 11: amplitude swing in 200 mV steps around a fixed midpoint.
        let dac = VoltageTuningDac::new();
        let series = dac.sweep(LevelKnob::Swing, 3).unwrap();
        let swings: Vec<i32> = series.iter().map(|l| l.swing().as_mv()).collect();
        assert_eq!(swings, vec![800, 600, 400]);
        let mids: Vec<i32> = series.iter().map(|l| l.mid().as_mv()).collect();
        assert!(mids.windows(2).all(|w| w[0] == w[1]), "midpoint drifts: {mids:?}");
    }

    #[test]
    fn vol_and_bias_knobs() {
        let mut dac = VoltageTuningDac::new();
        dac.set_code(LevelKnob::Low, 2).unwrap();
        assert_eq!(dac.levels().vol(), Millivolts::new(-1500));
        dac.reset();
        dac.set_code(LevelKnob::MidBias, 3).unwrap();
        let l = dac.levels();
        assert_eq!(l.mid(), Millivolts::new(-1600));
        assert_eq!(l.swing(), Millivolts::new(800));
    }

    #[test]
    fn knob_composition() {
        let mut dac = VoltageTuningDac::new();
        dac.set_code(LevelKnob::Swing, 1).unwrap(); // swing 600
        dac.set_code(LevelKnob::High, 1).unwrap(); // voh -100 more
        let l = dac.levels();
        // swing 600 about mid -1300: voh -1000, vol -1600; then voh -100.
        assert_eq!(l.voh(), Millivolts::new(-1100));
        assert_eq!(l.vol(), Millivolts::new(-1600));
    }

    #[test]
    fn code_range_enforced() {
        let mut dac = VoltageTuningDac::new();
        assert!(matches!(
            dac.set_code(LevelKnob::High, 8),
            Err(PeclError::DacCodeOutOfRange { code: 8, codes: 8 })
        ));
        // Swing code 4 would shrink 800 mV by 800 mV -> rejected.
        assert!(dac.set_code(LevelKnob::Swing, 4).is_err());
        assert!(dac.set_code(LevelKnob::Swing, 3).is_ok());
    }

    #[test]
    fn reset_restores_nominal() {
        let mut dac = VoltageTuningDac::new();
        dac.set_code(LevelKnob::High, 3).unwrap();
        dac.set_code(LevelKnob::MidBias, 2).unwrap();
        dac.reset();
        assert_eq!(dac.levels(), LevelSet::pecl());
    }
}
