//! Output buffers: SiGe drivers and CMOS I/O buffers.
//!
//! "These fast transition times were produced using silicon germanium
//! (SiGe) buffers in the final output stage" (§3, 70–75 ps measured 20–80 %
//! rise). The mini-tester's final I/O buffers are slower: "the rise time of
//! the I/O buffers, measured at 120 ps for 20 % to 80 %, begins to limit
//! amplitude swing" at 5 Gbps (§4).

use pstime::Duration;
use signal::{EdgeShape, LevelSet};

/// A SiGe differential output buffer: fast edges, very low added jitter,
/// programmable output levels.
///
/// # Examples
///
/// ```
/// use pecl::SiGeOutputBuffer;
/// use pstime::Duration;
///
/// let buf = SiGeOutputBuffer::new();
/// assert_eq!(buf.shape().rise_2080(), Duration::from_ps(72));
/// assert!(buf.added_rj() < Duration::from_ps(1));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SiGeOutputBuffer {
    shape: EdgeShape,
    added_rj: Duration,
    levels: LevelSet,
}

impl SiGeOutputBuffer {
    /// The paper's output stage: 72 ps rise / 73 ps fall (the measured
    /// "70 to 75 ps" band), 0.5 ps added RJ, standard PECL levels.
    pub fn new() -> Self {
        SiGeOutputBuffer {
            shape: EdgeShape::from_rise_fall_2080_ps(72.0, 73.0),
            added_rj: Duration::from_ps_f64(0.5),
            levels: LevelSet::pecl(),
        }
    }

    /// Customizes the transition shape.
    #[must_use]
    pub fn with_shape(mut self, shape: EdgeShape) -> Self {
        self.shape = shape;
        self
    }

    /// Customizes the output levels (driven by the tuning DACs).
    #[must_use]
    pub fn with_levels(mut self, levels: LevelSet) -> Self {
        self.levels = levels;
        self
    }

    /// The transition shape.
    pub fn shape(&self) -> &EdgeShape {
        &self.shape
    }

    /// Random jitter the buffer adds.
    pub fn added_rj(&self) -> Duration {
        self.added_rj
    }

    /// The programmed output levels.
    pub fn levels(&self) -> &LevelSet {
        &self.levels
    }

    /// Reprograms the output levels in place (the DAC write path).
    pub fn set_levels(&mut self, levels: LevelSet) {
        self.levels = levels;
    }
}

impl Default for SiGeOutputBuffer {
    fn default() -> Self {
        SiGeOutputBuffer::new()
    }
}

/// The mini-tester's final CMOS-compatible I/O buffer: 120 ps 20–80 %
/// transitions, slightly more added jitter than SiGe.
#[derive(Debug, Clone, PartialEq)]
pub struct CmosIoBuffer {
    shape: EdgeShape,
    added_rj: Duration,
    levels: LevelSet,
}

impl CmosIoBuffer {
    /// The measured mini-tester buffer: 120 ps 20–80 %, 1 ps added RJ.
    pub fn new() -> Self {
        CmosIoBuffer {
            shape: EdgeShape::from_rise_2080_ps(120.0),
            added_rj: Duration::from_ps(1),
            levels: LevelSet::pecl(),
        }
    }

    /// The transition shape.
    pub fn shape(&self) -> &EdgeShape {
        &self.shape
    }

    /// Random jitter the buffer adds.
    pub fn added_rj(&self) -> Duration {
        self.added_rj
    }

    /// The programmed output levels.
    pub fn levels(&self) -> &LevelSet {
        &self.levels
    }

    /// Customizes the output levels.
    #[must_use]
    pub fn with_levels(mut self, levels: LevelSet) -> Self {
        self.levels = levels;
        self
    }
}

impl Default for CmosIoBuffer {
    fn default() -> Self {
        CmosIoBuffer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstime::Millivolts;

    #[test]
    fn sige_buffer_matches_fig6() {
        let buf = SiGeOutputBuffer::new();
        let rise = buf.shape().rise_2080().as_ps_f64();
        let fall = buf.shape().fall_2080().as_ps_f64();
        assert!((70.0..=75.0).contains(&rise), "rise {rise}");
        assert!((70.0..=75.0).contains(&fall), "fall {fall}");
        assert!(buf.added_rj() <= Duration::from_ps(1));
        assert_eq!(buf.levels().swing(), Millivolts::new(800));
        assert_eq!(SiGeOutputBuffer::default(), SiGeOutputBuffer::new());
    }

    #[test]
    fn cmos_buffer_matches_fig18() {
        let buf = CmosIoBuffer::new();
        assert_eq!(buf.shape().rise_2080(), Duration::from_ps(120));
        assert!(buf.added_rj() >= SiGeOutputBuffer::new().added_rj());
        assert_eq!(CmosIoBuffer::default(), CmosIoBuffer::new());
    }

    #[test]
    fn level_programming() {
        let mut buf = SiGeOutputBuffer::new();
        let reduced = LevelSet::pecl().with_voh(Millivolts::new(-1000));
        buf.set_levels(reduced);
        assert_eq!(buf.levels().voh(), Millivolts::new(-1000));
        let buf2 = SiGeOutputBuffer::new().with_levels(reduced);
        assert_eq!(buf2.levels(), buf.levels());
        let cmos = CmosIoBuffer::new().with_levels(reduced);
        assert_eq!(cmos.levels().voh(), Millivolts::new(-1000));
    }

    #[test]
    fn shape_customization() {
        let fast = SiGeOutputBuffer::new().with_shape(EdgeShape::from_rise_2080_ps(50.0));
        assert_eq!(fast.shape().rise_2080(), Duration::from_ps(50));
    }
}
