//! The strobed picosecond sampling circuit.
//!
//! "A high-speed PECL sampling circuit is designed to capture the returned
//! signal, also with 10 ps resolution" (§1, §4). The sampler compares the
//! input against a programmable threshold at strobe instants placed by a
//! delay vernier; sweeping the strobe across the bit period reconstructs
//! the eye in equivalent time — exactly how the mini-tester measures a DUT
//! without a bench oscilloscope.

use pstime::{DataRate, Duration, Instant, Millivolts};
use rng::{Rng, SeedTree, StreamId};
use signal::{AnalogWaveform, BitStream};

/// Substream identity for capture aperture-jitter draws.
pub const SAMPLER_STREAM: StreamId = StreamId::named("pecl.sampler");

/// A strobed comparator sampler with programmable threshold and aperture
/// jitter.
///
/// # Examples
///
/// ```
/// use pecl::StrobedSampler;
/// use pstime::{DataRate, Duration, Instant, Millivolts};
/// use signal::jitter::NoJitter;
/// use signal::{AnalogWaveform, BitStream, DigitalWaveform, EdgeShape, LevelSet};
///
/// let rate = DataRate::from_gbps(2.5);
/// let bits = BitStream::from_str_bits("1011");
/// let wave = AnalogWaveform::new(
///     DigitalWaveform::from_bits(&bits, rate, &NoJitter, 0),
///     LevelSet::pecl(),
///     EdgeShape::default(),
/// );
/// let sampler = StrobedSampler::new(Millivolts::new(-1300), Duration::ZERO);
/// let captured = sampler.capture(&wave, rate, Duration::from_ps(200), 4, 1);
/// assert_eq!(captured, bits);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StrobedSampler {
    threshold: Millivolts,
    aperture_rj: Duration,
    input_offset: Millivolts,
}

impl StrobedSampler {
    /// Creates a sampler with a decision threshold and Gaussian aperture
    /// jitter.
    ///
    /// # Panics
    ///
    /// Panics if `aperture_rj` is negative.
    pub fn new(threshold: Millivolts, aperture_rj: Duration) -> Self {
        assert!(!aperture_rj.is_negative(), "aperture jitter must be nonnegative");
        StrobedSampler { threshold, aperture_rj, input_offset: Millivolts::ZERO }
    }

    /// The mini-tester's capture comparator: mid-PECL threshold, 2 ps
    /// aperture jitter.
    pub fn minitester() -> Self {
        StrobedSampler::new(Millivolts::new(-1300), Duration::from_ps(2))
    }

    /// The decision threshold.
    pub fn threshold(&self) -> Millivolts {
        self.threshold
    }

    /// Reprograms the decision threshold (the vertical axis of a shmoo).
    pub fn set_threshold(&mut self, threshold: Millivolts) {
        self.threshold = threshold;
    }

    /// The aperture jitter rms.
    pub fn aperture_rj(&self) -> Duration {
        self.aperture_rj
    }

    /// Comparator input-referred offset (defaults to zero; settable for
    /// fault-injection studies).
    pub fn input_offset(&self) -> Millivolts {
        self.input_offset
    }

    /// Sets the comparator offset.
    pub fn set_input_offset(&mut self, offset: Millivolts) {
        self.input_offset = offset;
    }

    /// Samples the waveform once at `strobe` (with aperture jitter drawn
    /// from `rng`).
    pub fn sample_at(&self, wave: &AnalogWaveform, strobe: Instant, rng: &mut Rng) -> bool {
        let t = if self.aperture_rj.is_zero() {
            strobe
        } else {
            strobe + gaussian(rng, self.aperture_rj)
        };
        wave.value_at(t) >= (self.threshold + self.input_offset).as_f64()
    }

    /// Captures `n` bits: one strobe per unit interval at phase offset
    /// `strobe_phase` into each bit, starting from the waveform start.
    pub fn capture(
        &self,
        wave: &AnalogWaveform,
        rate: DataRate,
        strobe_phase: Duration,
        n: usize,
        seed: u64,
    ) -> BitStream {
        let ui = rate.unit_interval();
        let start = wave.digital().start();
        let mut rng = SeedTree::new(seed).derive(SAMPLER_STREAM).rng();
        BitStream::from_fn(n, |i| {
            self.sample_at(wave, start + ui * i as i64 + strobe_phase, &mut rng)
        })
    }

    /// Equivalent-time scan: sweeps the strobe phase across one UI in
    /// `steps` increments, capturing `n` bits at each phase, and returns
    /// the per-phase error count against `expected`.
    ///
    /// This is the mini-tester's software-scope mode: the pass band of the
    /// resulting curve *is* the horizontal eye opening.
    pub fn phase_scan(
        &self,
        wave: &AnalogWaveform,
        rate: DataRate,
        expected: &BitStream,
        steps: usize,
        seed: u64,
    ) -> Vec<(Duration, usize)> {
        let ui = rate.unit_interval();
        let n = expected.len();
        let tree = SeedTree::new(seed).stream("pecl.sampler.phase-scan");
        (0..steps)
            .map(|k| {
                let phase = ui.mul_f64(k as f64 / steps as f64);
                let captured = self.capture(wave, rate, phase, n, tree.index(k as u64).seed());
                let (errors, _) = captured.hamming_distance(expected);
                (phase, errors)
            })
            .collect()
    }
}

fn gaussian(rng: &mut Rng, sigma: Duration) -> Duration {
    Duration::from_fs((rng.gaussian() * sigma.as_fs() as f64).round() as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal::jitter::{JitterBudget, NoJitter};
    use signal::{DigitalWaveform, EdgeShape, LevelSet};

    fn wave(bits: &str, gbps: f64) -> (AnalogWaveform, DataRate, BitStream) {
        let rate = DataRate::from_gbps(gbps);
        let bs = BitStream::from_str_bits(bits);
        let w = AnalogWaveform::new(
            DigitalWaveform::from_bits(&bs, rate, &NoJitter, 0),
            LevelSet::pecl(),
            EdgeShape::default(),
        );
        (w, rate, bs)
    }

    #[test]
    fn clean_capture_recovers_bits() {
        let (w, rate, bits) = wave("1011001110001010", 2.5);
        let sampler = StrobedSampler::new(Millivolts::new(-1300), Duration::ZERO);
        let captured = sampler.capture(&w, rate, Duration::from_ps(200), bits.len(), 0);
        assert_eq!(captured, bits);
    }

    #[test]
    fn minitester_defaults() {
        let s = StrobedSampler::minitester();
        assert_eq!(s.threshold(), Millivolts::new(-1300));
        assert_eq!(s.aperture_rj(), Duration::from_ps(2));
        assert_eq!(s.input_offset(), Millivolts::ZERO);
    }

    #[test]
    fn threshold_programming_affects_decisions() {
        let (w, _rate, _) = wave("1111", 2.5);
        let mut s = StrobedSampler::new(Millivolts::new(-1300), Duration::ZERO);
        let mut rng = Rng::seed_from_u64(0);
        assert!(s.sample_at(&w, Instant::from_ps(600), &mut rng));
        // Raise the threshold above VOH: everything reads low.
        s.set_threshold(Millivolts::new(-800));
        assert!(!s.sample_at(&w, Instant::from_ps(600), &mut rng));
        // Comparator offset shifts the effective threshold.
        s.set_threshold(Millivolts::new(-1300));
        s.set_input_offset(Millivolts::new(500));
        assert!(!s.sample_at(&w, Instant::from_ps(600), &mut rng));
        assert_eq!(s.input_offset(), Millivolts::new(500));
    }

    #[test]
    fn strobing_near_an_edge_is_unreliable_with_aperture_jitter() {
        let (w, rate, _) = wave("10101010101010101010", 2.5);
        let s = StrobedSampler::new(Millivolts::new(-1300), Duration::from_ps(20));
        // Strobe exactly on the transitions: decisions flip randomly.
        let captured = s.capture(&w, rate, Duration::ZERO, 20, 7);
        let ones = captured.count_ones();
        assert!(ones > 0 && ones < 20, "expected metastable-ish capture, got {captured}");
    }

    #[test]
    fn capture_is_seed_deterministic() {
        let (w, rate, _) = wave("1010110010", 2.5);
        let s = StrobedSampler::minitester();
        let a = s.capture(&w, rate, Duration::from_ps(200), 10, 3);
        let b = s.capture(&w, rate, Duration::from_ps(200), 10, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn phase_scan_shows_open_eye() {
        // A clean 2.5 Gbps signal: errors at the crossover phases, none at
        // the eye centre.
        let rate = DataRate::from_gbps(2.5);
        let bits = BitStream::alternating(64);
        let w = AnalogWaveform::new(
            DigitalWaveform::from_bits(&bits, rate, &JitterBudget::new().with_rj_rms_ps(3.0), 5),
            LevelSet::pecl(),
            EdgeShape::default(),
        );
        let s = StrobedSampler::minitester();
        let scan = s.phase_scan(&w, rate, &bits, 40, 11);
        assert_eq!(scan.len(), 40);
        // Eye centre (phase ~UI/2) must be clean.
        let centre = &scan[20];
        assert_eq!(centre.1, 0, "errors at centre phase {}", centre.0);
        // Crossover (phase ~0) must not be clean.
        assert!(scan[0].1 > 0, "expected errors at the crossover");
    }

    #[test]
    #[should_panic(expected = "aperture jitter must be nonnegative")]
    fn negative_aperture_panics() {
        let _ = StrobedSampler::new(Millivolts::ZERO, Duration::from_ps(-1));
    }
}
