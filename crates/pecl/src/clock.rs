//! RF clock source and fanout distribution.
//!
//! "An RF clock source (usually an external instrument) provides a low-jitter
//! (picosecond) timing reference. This serves as both a master clock … and as
//! a reference for all timing-critical signals" (§1). The fanout buffer then
//! distributes it to the mux tree with per-output skew — the skew the
//! calibration layer in `ate` must null out.

use pstime::{Duration, Frequency, Instant};
use signal::jitter::JitterBudget;
use signal::{BitStream, DigitalWaveform};

/// A low-jitter RF reference clock (the external instrument in Fig. 1).
///
/// # Examples
///
/// ```
/// use pecl::RfClockSource;
/// use pstime::{Duration, Frequency};
///
/// let rf = RfClockSource::new(Frequency::from_ghz(1.25), Duration::from_ps_f64(1.0));
/// let clk = rf.generate(16, 0);
/// assert_eq!(clk.num_edges(), 31); // 16 cycles = 32 half-periods
/// ```
#[derive(Debug)]
pub struct RfClockSource {
    freq: Frequency,
    rj_rms: Duration,
}

impl RfClockSource {
    /// Creates a reference at `freq` with Gaussian phase jitter `rj_rms`.
    ///
    /// # Panics
    ///
    /// Panics if `rj_rms` is negative.
    pub fn new(freq: Frequency, rj_rms: Duration) -> Self {
        assert!(!rj_rms.is_negative(), "clock jitter must be nonnegative");
        RfClockSource { freq, rj_rms }
    }

    /// The paper's typical bench source: 1 ps rms at the requested
    /// frequency.
    pub fn bench_instrument(freq: Frequency) -> Self {
        RfClockSource::new(freq, Duration::from_ps(1))
    }

    /// The output frequency.
    pub fn frequency(&self) -> Frequency {
        self.freq
    }

    /// The phase-jitter rms.
    pub fn rj_rms(&self) -> Duration {
        self.rj_rms
    }

    /// Generates `cycles` clock cycles as a digital waveform starting at
    /// [`Instant::ZERO`], with phase jitter applied per edge.
    pub fn generate(&self, cycles: usize, seed: u64) -> DigitalWaveform {
        // A clock is an alternating bit pattern at twice the frequency.
        let bits = BitStream::alternating(cycles * 2);
        let half_rate = pstime::DataRate::from_bps(self.freq.as_hz() * 2);
        let budget = JitterBudget::new().with_model(signal::jitter::RandomJitter::new(self.rj_rms));
        DigitalWaveform::from_bits(&bits, half_rate, &budget, seed)
    }

    /// The jitter model this source contributes to a chain budget.
    pub fn jitter_budget(&self) -> JitterBudget {
        JitterBudget::new().with_model(signal::jitter::RandomJitter::new(self.rj_rms))
    }
}

/// A clock fanout/distribution buffer: N copies of the input, each with a
/// fixed skew and a small additive random jitter.
///
/// # Examples
///
/// ```
/// use pecl::{ClockFanout, RfClockSource};
/// use pstime::{Duration, Frequency};
///
/// let fanout = ClockFanout::new(4, Duration::from_ps_f64(0.5));
/// assert_eq!(fanout.outputs(), 4);
/// // Output 2 inherits its calibrated skew.
/// let skew = fanout.skew(2);
/// assert!(skew.abs() <= Duration::from_ps(30));
/// ```
#[derive(Debug, Clone)]
pub struct ClockFanout {
    skews: Vec<Duration>,
    added_rj: Duration,
}

impl ClockFanout {
    /// Creates a fanout with `outputs` legs and per-leg additive jitter
    /// `added_rj`. Leg skews default to a deterministic spread of ±25 ps —
    /// the uncalibrated part-to-part variation the paper's ±25 ps accuracy
    /// figure is about.
    ///
    /// # Panics
    ///
    /// Panics if `outputs` is zero or `added_rj` negative.
    pub fn new(outputs: usize, added_rj: Duration) -> Self {
        assert!(outputs > 0, "fanout needs at least one output");
        assert!(!added_rj.is_negative(), "added jitter must be nonnegative");
        // Deterministic pseudo-random skews in [-25, +25] ps.
        let skews = (0..outputs)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
                let frac = (h % 51) as i64 - 25; // -25..=25
                Duration::from_ps(frac)
            })
            .collect();
        ClockFanout { skews, added_rj }
    }

    /// Number of output legs.
    pub fn outputs(&self) -> usize {
        self.skews.len()
    }

    /// The skew of output `leg`.
    ///
    /// # Panics
    ///
    /// Panics if `leg` is out of range.
    pub fn skew(&self, leg: usize) -> Duration {
        self.skews[leg]
    }

    /// Overrides the skew of output `leg` (what deskew calibration does via
    /// the delay verniers upstream).
    ///
    /// # Panics
    ///
    /// Panics if `leg` is out of range.
    pub fn set_skew(&mut self, leg: usize, skew: Duration) {
        self.skews[leg] = skew;
    }

    /// The additive per-leg random jitter.
    pub fn added_rj(&self) -> Duration {
        self.added_rj
    }

    /// Distributes `clock` to output `leg`: skewed copy (jitter is
    /// accounted in the chain budget rather than re-sampled per edge, which
    /// is the standard budgeting treatment for distribution buffers).
    ///
    /// # Panics
    ///
    /// Panics if `leg` is out of range.
    pub fn distribute(&self, clock: &DigitalWaveform, leg: usize) -> DigitalWaveform {
        clock.delayed(self.skews[leg])
    }

    /// Worst-case leg-to-leg skew.
    pub fn max_skew_spread(&self) -> Duration {
        let min = self.skews.iter().copied().min().unwrap_or(Duration::ZERO);
        let max = self.skews.iter().copied().max().unwrap_or(Duration::ZERO);
        max - min
    }
}

/// Measures the mean period of a clock waveform from its rising edges.
///
/// Returns `None` if fewer than two rising edges exist.
pub fn measure_period(clock: &DigitalWaveform) -> Option<Duration> {
    let rising: Vec<Instant> = clock
        .edges()
        .iter()
        .filter(|e| e.polarity == signal::EdgePolarity::Rising)
        .map(|e| e.at)
        .collect();
    if rising.len() < 2 {
        return None;
    }
    let total = rising[rising.len() - 1] - rising[0];
    Some(total / (rising.len() as i64 - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_generation_period() {
        let rf = RfClockSource::new(Frequency::from_ghz(1.25), Duration::ZERO);
        let clk = rf.generate(64, 0);
        assert_eq!(clk.num_edges(), 127);
        let period = measure_period(&clk).unwrap();
        assert_eq!(period, Duration::from_ps(800));
        assert_eq!(rf.frequency(), Frequency::from_ghz(1.25));
    }

    #[test]
    fn clock_jitter_applied() {
        let rf = RfClockSource::bench_instrument(Frequency::from_ghz(2.5));
        assert_eq!(rf.rj_rms(), Duration::from_ps(1));
        let clk = rf.generate(1000, 3);
        // Mean period still correct.
        let period = measure_period(&clk).unwrap();
        assert!((period - Duration::from_ps(400)).abs() < Duration::from_ps(1));
        // But edges deviate from the ideal grid.
        let off_grid = clk.edges().iter().filter(|e| e.at.as_fs() % 200_000 != 0).count();
        assert!(off_grid > clk.num_edges() / 2);
    }

    #[test]
    fn clock_is_seed_deterministic() {
        let rf = RfClockSource::bench_instrument(Frequency::from_ghz(1.25));
        assert_eq!(rf.generate(32, 5), rf.generate(32, 5));
        assert_ne!(rf.generate(32, 5), rf.generate(32, 6));
    }

    #[test]
    fn fanout_skews_are_bounded_and_deterministic() {
        let f = ClockFanout::new(8, Duration::from_ps_f64(0.5));
        assert_eq!(f.outputs(), 8);
        for leg in 0..8 {
            assert!(f.skew(leg).abs() <= Duration::from_ps(25));
        }
        let f2 = ClockFanout::new(8, Duration::from_ps_f64(0.5));
        for leg in 0..8 {
            assert_eq!(f.skew(leg), f2.skew(leg));
        }
        assert!(f.max_skew_spread() <= Duration::from_ps(50));
        assert_eq!(f.added_rj(), Duration::from_ps_f64(0.5));
    }

    #[test]
    fn distribute_applies_skew() {
        let rf = RfClockSource::new(Frequency::from_ghz(1.25), Duration::ZERO);
        let clk = rf.generate(4, 0);
        let mut fanout = ClockFanout::new(2, Duration::ZERO);
        fanout.set_skew(1, Duration::from_ps(30));
        let leg = fanout.distribute(&clk, 1);
        assert_eq!(leg.edges()[0].at - clk.edges()[0].at, Duration::from_ps(30));
    }

    #[test]
    fn measure_period_needs_edges() {
        let rf = RfClockSource::new(Frequency::from_ghz(1.0), Duration::ZERO);
        let clk = rf.generate(1, 0);
        assert!(measure_period(&clk).is_none()); // one cycle = one rising edge
    }

    #[test]
    #[should_panic(expected = "at least one output")]
    fn zero_outputs_panics() {
        let _ = ClockFanout::new(0, Duration::ZERO);
    }
}
