//! Property-based tests for the PECL front end: mux trees, delay verniers,
//! DACs, and the sampler.

use proptest::collection::vec;
use proptest::prelude::*;

use pecl::levels::LevelKnob;
use pecl::{Mux2, MuxTree, ProgrammableDelayLine, VoltageTuningDac};
use pstime::{DataRate, Duration, Millivolts};
use signal::BitStream;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mux_tree_is_lossless_and_ordered(
        ways_pow in 1u32..5,
        lane_bits in 1usize..32,
        seed in any::<u64>(),
    ) {
        let ways = 1usize << ways_pow;
        let tree = MuxTree::new(ways).unwrap();
        let lanes: Vec<BitStream> = (0..ways)
            .map(|i| {
                BitStream::from_fn(lane_bits, |j| {
                    seed.rotate_left(((i + 3) * (j + 7)) as u32 % 63) & 1 == 1
                })
            })
            .collect();
        let serial = tree.serialize(&lanes).unwrap();
        prop_assert_eq!(serial.len(), ways * lane_bits);
        // Bit k of the serial stream is lane (k % ways), bit (k / ways).
        for k in 0..serial.len() {
            prop_assert_eq!(serial[k], lanes[k % ways][k / ways]);
        }
    }

    #[test]
    fn two_stage_equals_tree_with_regrouped_lanes(lane_bits in 1usize..16, seed in any::<u64>()) {
        // 8:1 + 8:1 + 2:1 equals 16:1 on lanes reordered [0,8,1,9,...].
        let lanes: Vec<BitStream> = (0..16)
            .map(|i| BitStream::from_fn(lane_bits, |j| seed.rotate_left((i * 5 + j * 11) as u32 % 63) & 1 == 1))
            .collect();
        let t8 = MuxTree::new(8).unwrap();
        let a = t8.serialize(&lanes[..8]).unwrap();
        let b = t8.serialize(&lanes[8..]).unwrap();
        let two_stage = Mux2::new().serialize(&a, &b).unwrap();

        let reordered: Vec<BitStream> = (0..16)
            .map(|i| lanes[if i % 2 == 0 { i / 2 } else { 8 + i / 2 }].clone())
            .collect();
        prop_assert_eq!(two_stage, BitStream::interleave(&reordered));
    }

    #[test]
    fn delay_line_is_monotone_and_accurate(codes in vec(0u32..1024, 1..32)) {
        let mut vernier = ProgrammableDelayLine::standard();
        for code in codes {
            vernier.set_code(code).unwrap();
            let err = vernier.actual_delay() - vernier.nominal_delay();
            prop_assert!(err.abs() <= Duration::from_ps(2), "INL {err}");
        }
    }

    #[test]
    fn delay_requests_quantize_within_half_step(ps in 0i64..10_240) {
        let mut vernier = ProgrammableDelayLine::standard();
        let requested = Duration::from_ps(ps);
        vernier.set_delay(requested).unwrap();
        let err = (vernier.nominal_delay() - requested).abs();
        prop_assert!(err <= Duration::from_ps(5), "quantization {err}");
    }

    #[test]
    fn dac_codes_step_linearly(knob_idx in 0usize..3, code in 0u32..4) {
        let knob = [LevelKnob::High, LevelKnob::Low, LevelKnob::MidBias][knob_idx];
        let mut dac = VoltageTuningDac::new();
        dac.set_code(knob, code).unwrap();
        let levels = dac.levels();
        let expected_step = dac.step(knob) * code as i32;
        match knob {
            LevelKnob::High => {
                prop_assert_eq!(levels.voh(), Millivolts::new(-900) - expected_step)
            }
            LevelKnob::Low => {
                prop_assert_eq!(levels.vol(), Millivolts::new(-1700) + expected_step)
            }
            LevelKnob::MidBias => {
                prop_assert_eq!(levels.mid(), Millivolts::new(-1300) - expected_step)
            }
            LevelKnob::Swing => unreachable!(),
        }
        // Levels always stay ordered.
        prop_assert!(levels.voh() > levels.vol());
    }

    #[test]
    fn chain_render_is_seed_deterministic(bits in vec(any::<bool>(), 8..128), seed in any::<u64>()) {
        let chain = pecl::SignalChain::testbed_transmitter();
        let stream = BitStream::from(bits);
        let rate = DataRate::from_gbps(2.5);
        let a = chain.render(&stream, rate, seed).unwrap();
        let b = chain.render(&stream, rate, seed).unwrap();
        prop_assert_eq!(a.digital(), b.digital());
    }

    #[test]
    fn sampler_recovers_clean_data_at_any_sane_threshold(
        bits in vec(any::<bool>(), 8..64),
        threshold_mv in -1600i32..-1000,
    ) {
        use signal::jitter::NoJitter;
        use signal::{AnalogWaveform, DigitalWaveform, EdgeShape, LevelSet};
        let stream = BitStream::from(bits);
        let rate = DataRate::from_gbps(1.0); // slow: fully settled mid-bit
        let wave = AnalogWaveform::new(
            DigitalWaveform::from_bits(&stream, rate, &NoJitter, 0),
            LevelSet::pecl(),
            EdgeShape::from_rise_2080_ps(72.0),
        );
        let sampler = pecl::StrobedSampler::new(Millivolts::new(threshold_mv), Duration::ZERO);
        let captured = sampler.capture(&wave, rate, rate.unit_interval() / 2, stream.len(), 0);
        prop_assert_eq!(captured, stream);
    }
}
