//! Property-based tests for the PECL front end: mux trees, delay verniers,
//! DACs, and the sampler.
//!
//! Cases are drawn from named substreams of the first-party `rng` crate, so
//! every run covers the same randomized slice of the input space
//! deterministically.

use pecl::levels::LevelKnob;
use pecl::{Mux2, MuxTree, ProgrammableDelayLine, VoltageTuningDac};
use pstime::{DataRate, Duration, Millivolts};
use rng::{Rng, SeedTree};
use signal::BitStream;

const CASES: usize = 48;

fn cases(label: &str) -> (Rng, usize) {
    (SeedTree::new(0x9ec1).stream("pecl.proptests").stream(label).rng(), CASES)
}

fn random_bits(rng: &mut Rng, min_len: usize, max_len: usize) -> BitStream {
    let len = rng.range_usize(min_len..max_len);
    BitStream::from_fn(len, |_| rng.bool())
}

#[test]
fn mux_tree_is_lossless_and_ordered() {
    let (mut rng, n) = cases("mux-tree");
    for _ in 0..n {
        let ways = 1usize << rng.range_u32(1..5);
        let lane_bits = rng.range_usize(1..32);
        let tree = MuxTree::new(ways).unwrap();
        let lanes: Vec<BitStream> =
            (0..ways).map(|_| BitStream::from_fn(lane_bits, |_| rng.bool())).collect();
        let serial = tree.serialize(&lanes).unwrap();
        assert_eq!(serial.len(), ways * lane_bits);
        // Bit k of the serial stream is lane (k % ways), bit (k / ways).
        for k in 0..serial.len() {
            assert_eq!(serial[k], lanes[k % ways][k / ways], "ways={ways} k={k}");
        }
    }
}

#[test]
fn two_stage_equals_tree_with_regrouped_lanes() {
    // 8:1 + 8:1 + 2:1 equals 16:1 on lanes reordered [0,8,1,9,...].
    let (mut rng, n) = cases("two-stage");
    for _ in 0..n {
        let lane_bits = rng.range_usize(1..16);
        let lanes: Vec<BitStream> =
            (0..16).map(|_| BitStream::from_fn(lane_bits, |_| rng.bool())).collect();
        let t8 = MuxTree::new(8).unwrap();
        let a = t8.serialize(&lanes[..8]).unwrap();
        let b = t8.serialize(&lanes[8..]).unwrap();
        let two_stage = Mux2::new().serialize(&a, &b).unwrap();

        let reordered: Vec<BitStream> =
            (0..16).map(|i| lanes[if i % 2 == 0 { i / 2 } else { 8 + i / 2 }].clone()).collect();
        assert_eq!(two_stage, BitStream::interleave(&reordered), "lane_bits={lane_bits}");
    }
}

#[test]
fn delay_line_is_monotone_and_accurate() {
    let (mut rng, n) = cases("delay-inl");
    let mut vernier = ProgrammableDelayLine::standard();
    for _ in 0..n {
        let code = rng.range_u32(0..1024);
        vernier.set_code(code).unwrap();
        let err = vernier.actual_delay() - vernier.nominal_delay();
        assert!(err.abs() <= Duration::from_ps(2), "INL {err} (code={code})");
    }
}

#[test]
fn delay_requests_quantize_within_half_step() {
    let (mut rng, n) = cases("delay-quantize");
    let mut vernier = ProgrammableDelayLine::standard();
    for _ in 0..n {
        let ps = rng.range_i64(0..10_240);
        let requested = Duration::from_ps(ps);
        vernier.set_delay(requested).unwrap();
        let err = (vernier.nominal_delay() - requested).abs();
        assert!(err <= Duration::from_ps(5), "quantization {err} (ps={ps})");
    }
}

#[test]
fn dac_codes_step_linearly() {
    for knob in [LevelKnob::High, LevelKnob::Low, LevelKnob::MidBias] {
        for code in 0u32..4 {
            let mut dac = VoltageTuningDac::new();
            dac.set_code(knob, code).unwrap();
            let levels = dac.levels();
            let expected_step = dac.step(knob) * code as i32;
            match knob {
                LevelKnob::High => {
                    assert_eq!(levels.voh(), Millivolts::new(-900) - expected_step)
                }
                LevelKnob::Low => {
                    assert_eq!(levels.vol(), Millivolts::new(-1700) + expected_step)
                }
                LevelKnob::MidBias => {
                    assert_eq!(levels.mid(), Millivolts::new(-1300) - expected_step)
                }
                LevelKnob::Swing => unreachable!(),
            }
            // Levels always stay ordered.
            assert!(levels.voh() > levels.vol());
        }
    }
}

#[test]
fn chain_render_is_seed_deterministic() {
    let (mut rng, n) = cases("chain-deterministic");
    let chain = pecl::SignalChain::testbed_transmitter();
    for _ in 0..n.min(16) {
        let stream = random_bits(&mut rng, 8, 128);
        let seed = rng.next_u64();
        let rate = DataRate::from_gbps(2.5);
        let a = chain.render(&stream, rate, seed).unwrap();
        let b = chain.render(&stream, rate, seed).unwrap();
        assert_eq!(a.digital(), b.digital(), "seed={seed}");
    }
}

#[test]
fn sampler_recovers_clean_data_at_any_sane_threshold() {
    use signal::jitter::NoJitter;
    use signal::{AnalogWaveform, DigitalWaveform, EdgeShape, LevelSet};
    let (mut rng, n) = cases("sampler-threshold");
    for _ in 0..n {
        let stream = random_bits(&mut rng, 8, 64);
        let threshold_mv = rng.range_i32(-1600..-1000);
        let rate = DataRate::from_gbps(1.0); // slow: fully settled mid-bit
        let wave = AnalogWaveform::new(
            DigitalWaveform::from_bits(&stream, rate, &NoJitter, 0),
            LevelSet::pecl(),
            EdgeShape::from_rise_2080_ps(72.0),
        );
        let sampler = pecl::StrobedSampler::new(Millivolts::new(threshold_mv), Duration::ZERO);
        let captured = sampler.capture(&wave, rate, rate.unit_interval() / 2, stream.len(), 0);
        assert_eq!(captured, stream, "threshold={threshold_mv}");
    }
}
