//! Domain-separated seed derivation: [`StreamId`] and [`SeedTree`].
//!
//! Every stochastic component in the simulator (jitter samplers, slicer
//! noise, traffic generators, defect injection, …) draws from its own
//! substream, derived from the single user-facing master seed by *name*
//! rather than by hand-xor'd magic constants. The derivation is:
//!
//! * **Domain-separated** — `stream("pecl.sampler")` and
//!   `stream("vortex.traffic")` never collide, because labels are hashed
//!   (FNV-1a) and folded through the SplitMix64 finalizer with distinct
//!   domain tags for label vs. index derivation steps.
//! * **Order-independent** — a substream's seed depends only on the master
//!   seed and its derivation path, never on how many other streams were
//!   created first. `tree.stream("a").channel(3)` is the same seed whether
//!   channel 0 ran before it or not, which is what makes per-channel work
//!   shardable.
//! * **Stable** — the whole chain is `const`-friendly arithmetic on `u64`s
//!   with no dependence on allocator, platform, or crate versions.
//!
//! # Examples
//!
//! ```
//! use rng::SeedTree;
//!
//! let seed = SeedTree::new(2005);
//! let mut ch3 = seed.stream("pecl.sampler").channel(3).rng();
//! let mut again = seed.stream("pecl.sampler").channel(3).rng();
//! assert_eq!(ch3.next_u64(), again.next_u64());
//!
//! // A different label or index gives an unrelated stream.
//! let mut other = seed.stream("pecl.sampler").channel(4).rng();
//! assert_ne!(ch3.next_u64(), other.next_u64());
//! ```

use crate::splitmix::mix;
use crate::xoshiro::Rng;

// Domain tags keep label-derivation and index-derivation from aliasing:
// without them, a label whose hash equals some channel index would collide
// with `.channel(n)` on the parent. Arbitrary odd constants.
const LABEL_DOMAIN: u64 = 0x8f5c_4a32_61d8_a3b7;
const INDEX_DOMAIN: u64 = 0xc2b2_ae3d_27d4_eb4f;

/// The FNV-1a offset basis / prime, used to hash stream labels.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

const fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut i = 0;
    while i < bytes.len() {
        h ^= bytes[i] as u64; // xlint::allow(no-lossy-cast, widening u8 to u64 is lossless; u64::from is not usable in a const fn)
        h = h.wrapping_mul(FNV_PRIME);
        i += 1;
    }
    h
}

/// A named derivation step: the identity of one substream family.
///
/// Construct these with [`StreamId::named`] — usually as crate-level
/// constants so the label set is greppable:
///
/// ```
/// use rng::StreamId;
///
/// pub const SAMPLER_NOISE: StreamId = StreamId::named("pecl.sampler");
/// ```
///
/// The conventional label format is `"<crate>.<component>"`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(u64);

impl StreamId {
    /// Creates a stream identity from a label. `const`, so IDs can live as
    /// named constants next to the component they seed.
    pub const fn named(label: &str) -> Self {
        StreamId(mix(fnv1a(label.as_bytes()) ^ LABEL_DOMAIN))
    }

    /// The raw identity value (exposed for diagnostics/logging only).
    pub const fn raw(self) -> u64 {
        self.0
    }
}

/// A node in the seed-derivation tree.
///
/// The root is built from the master seed with [`SeedTree::new`]; children
/// are derived with [`stream`](SeedTree::stream) (by name) and
/// [`channel`](SeedTree::channel) / [`index`](SeedTree::index) (by number).
/// Any node can be materialized as a seed ([`seed`](SeedTree::seed)) or
/// directly as a generator ([`rng`](SeedTree::rng)).
///
/// `SeedTree` is `Copy`: deriving a child never mutates the parent, so a
/// tree value can be passed around and re-derived from freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedTree {
    node: u64,
}

impl SeedTree {
    /// The root of the tree for a master seed.
    pub const fn new(master: u64) -> Self {
        SeedTree { node: mix(master) }
    }

    /// The child stream named by `id`.
    pub const fn derive(self, id: StreamId) -> Self {
        SeedTree { node: mix(self.node ^ id.raw()) }
    }

    /// The child stream named by `label` — shorthand for
    /// `derive(StreamId::named(label))`.
    pub const fn stream(self, label: &str) -> Self {
        self.derive(StreamId::named(label))
    }

    /// The `i`-th numbered child (channel, lane, die, packet, …).
    pub const fn channel(self, i: u64) -> Self {
        SeedTree { node: mix(self.node ^ INDEX_DOMAIN ^ mix(i)) }
    }

    /// Alias of [`channel`](SeedTree::channel) for non-channel indices
    /// (replicates, packets, scan steps) where the name reads better.
    pub const fn index(self, i: u64) -> Self {
        self.channel(i)
    }

    /// This node's seed value, for APIs that take a `u64` seed.
    pub const fn seed(self) -> u64 {
        self.node
    }

    /// A generator for this node's substream.
    pub fn rng(self) -> Rng {
        Rng::seed_from_u64(self.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic_and_const() {
        const ROOT: SeedTree = SeedTree::new(2005);
        const CH: SeedTree = ROOT.stream("pecl.sampler").channel(3);
        assert_eq!(CH.seed(), SeedTree::new(2005).stream("pecl.sampler").channel(3).seed());
    }

    #[test]
    fn labels_and_indices_separate() {
        let root = SeedTree::new(42);
        let a = root.stream("signal.jitter").seed();
        let b = root.stream("pecl.sampler").seed();
        let c = root.stream("signal.jitter").channel(0).seed();
        let d = root.stream("signal.jitter").channel(1).seed();
        let all = [a, b, c, d];
        for (i, x) in all.iter().enumerate() {
            for y in &all[i + 1..] {
                assert_ne!(x, y);
            }
        }
    }

    #[test]
    fn order_independent() {
        // Deriving channel 7 must not depend on whether channels 0..6 were
        // derived first — SeedTree is pure, but assert the API contract.
        let root = SeedTree::new(9).stream("minitester.dut");
        let direct = root.channel(7).seed();
        let mut walked = 0;
        for ch in 0..8 {
            walked = root.channel(ch).seed();
        }
        assert_eq!(direct, walked);
    }

    #[test]
    fn label_index_no_aliasing() {
        // A numbered child never equals a named child, whatever the label.
        let root = SeedTree::new(1);
        for label in ["a", "pecl.sampler", "0", "7"] {
            for i in 0..16 {
                assert_ne!(root.stream(label).seed(), root.channel(i).seed());
            }
        }
    }

    #[test]
    fn sibling_streams_are_decorrelated() {
        // Draw 4k pairs from adjacent channels; correlation must be noise.
        let root = SeedTree::new(77).stream("vortex.traffic");
        let mut a = root.channel(0).rng();
        let mut b = root.channel(1).rng();
        let n = 4_096;
        let (mut sa, mut sb, mut sab, mut saa, mut sbb) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for _ in 0..n {
            let x = a.f64();
            let y = b.f64();
            sa += x;
            sb += y;
            sab += x * y;
            saa += x * x;
            sbb += y * y;
        }
        let nf = n as f64;
        let cov = sab / nf - (sa / nf) * (sb / nf);
        let var_a = saa / nf - (sa / nf) * (sa / nf);
        let var_b = sbb / nf - (sb / nf) * (sb / nf);
        let corr = cov / (var_a * var_b).sqrt();
        assert!(corr.abs() < 0.05, "corr {corr}");
    }

    #[test]
    fn master_seed_changes_everything() {
        let a = SeedTree::new(1).stream("x").channel(0).seed();
        let b = SeedTree::new(2).stream("x").channel(0).seed();
        assert_ne!(a, b);
    }
}
