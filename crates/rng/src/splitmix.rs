//! SplitMix64: the seed expander and mixing finalizer.
//!
//! SplitMix64 (Steele, Lea & Flood, "Fast splittable pseudorandom number
//! generators", OOPSLA 2014) is the standard choice for turning one 64-bit
//! seed into the larger state of a better generator: a Weyl sequence with a
//! strong avalanche finalizer. Its finalizer is also exactly what a
//! domain-separation scheme needs — a cheap bijective u64 → u64 hash whose
//! outputs are statistically independent for related inputs — so the whole
//! [`crate::SeedTree`] derivation is built on [`mix`].

/// The golden-ratio increment of the SplitMix64 Weyl sequence.
pub const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// The SplitMix64 finalizer: a bijective avalanche hash on `u64`.
///
/// Two inputs differing in a single bit produce outputs differing in ~32
/// bits, which is what makes adjacent seeds (and adjacent channel indices)
/// yield decorrelated streams.
#[inline]
pub const fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The SplitMix64 generator itself: a Weyl sequence through [`mix`].
///
/// Used to expand one `u64` seed into the 256-bit state of
/// [`crate::Rng`]; also usable directly where a minimal generator is
/// enough.
///
/// # Examples
///
/// ```
/// use rng::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vectors() {
        // Reference values for seed 0 and seed 0x1234_5678, cross-checked
        // against the canonical Java/C implementations of SplitMix64.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(g.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(g.next_u64(), 0x06c4_5d18_8009_454f);

        let mut g = SplitMix64::new(0x1234_5678);
        assert_eq!(g.next_u64(), 0x38f1_dc39_d190_6b6f);
        assert_eq!(g.next_u64(), 0xdfe4_1422_36dd_9517);
    }

    #[test]
    fn mix_is_avalanching() {
        // Flipping one input bit flips a healthy fraction of output bits.
        for bit in 0..64 {
            let a = mix(0xdead_beef_cafe_f00d);
            let b = mix(0xdead_beef_cafe_f00d ^ (1u64 << bit));
            let flipped = (a ^ b).count_ones();
            assert!((16..=48).contains(&flipped), "bit {bit}: {flipped} flips");
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut g = SplitMix64::new(0);
        let draws: Vec<u64> = (0..8).map(|_| g.next_u64()).collect();
        assert!(draws.windows(2).all(|w| w[0] != w[1]));
    }
}
