//! The core generator: xoshiro256++ with the small surface the simulation
//! actually uses.
//!
//! xoshiro256++ (Blackman & Vigna, "Scrambled linear pseudorandom number
//! generators", 2019) is a 256-bit-state, 64-bit-output generator that
//! passes BigCrush, runs in a handful of cycles, and — unlike `StdRng`,
//! whose algorithm is explicitly *not* stable across `rand` releases — is a
//! fixed, documented algorithm, so seed-for-seed reproducibility is a
//! property of this repository rather than of a dependency's minor version.

use crate::splitmix::SplitMix64;

#[inline]
const fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

/// A seeded xoshiro256++ generator with Gaussian support.
///
/// The surface is deliberately small — exactly what the jitter, noise, and
/// traffic models need:
///
/// * [`next_u64`](Rng::next_u64) / [`next_u32`](Rng::next_u32) — raw bits,
/// * [`f64`](Rng::f64) — uniform in `[0, 1)` with 53-bit resolution,
/// * [`gaussian`](Rng::gaussian) — standard normal via Box–Muller (the
///   spare deviate is cached, so consecutive draws cost one transcendental
///   pair per two values),
/// * bounded integers via [`range_u32`](Rng::range_u32) and friends.
///
/// # Examples
///
/// ```
/// use rng::Rng;
///
/// let mut a = Rng::seed_from_u64(42);
/// let mut b = Rng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let u = a.f64();
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rng {
    s: [u64; 4],
    spare: Option<f64>,
}

impl Rng {
    /// Creates a generator by expanding `seed` through SplitMix64 — the
    /// seeding procedure the xoshiro authors recommend. Every `u64` seed
    /// (including 0) yields a full-quality, distinct stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Rng { s, spare: None }
    }

    /// The next 64 raw bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }

    /// The next 32 raw bits (the upper half of one 64-bit output).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32 // xlint::allow(no-lossy-cast, the shift keeps only the top 32 bits so the cast is lossless)
    }

    /// A uniform `f64` in `[0, 1)` with full 53-bit mantissa resolution.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 top bits scaled by 2^-53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) // xlint::allow(no-lossy-cast, both casts are exact: 53-bit values and 2^53 are representable in f64)
    }

    /// A uniform bool.
    #[inline]
    pub fn bool(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// A uniform integer in `[range.start, range.end)` via the fixed-point
    /// multiply reduction (Lemire). The residual modulo bias is below
    /// 2⁻⁶⁴·width — unmeasurable at simulation scales — in exchange for a
    /// branch-free, reproducible mapping.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    #[inline]
    pub fn range_u64(&mut self, range: core::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "range must be nonempty");
        let width = range.end - range.start;
        // xlint::allow(no-lossy-cast, the u128 product shifted right by 64 always fits in u64)
        range.start + ((u128::from(self.next_u64()) * u128::from(width)) >> 64) as u64
    }

    /// A uniform integer in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    #[inline]
    pub fn range_u32(&mut self, range: core::ops::Range<u32>) -> u32 {
        self.range_u64(u64::from(range.start)..u64::from(range.end)) as u32 // xlint::allow(no-lossy-cast, range_u64 returns a value below range.end which fits u32)
    }

    /// A uniform index in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    #[inline]
    pub fn range_usize(&mut self, range: core::ops::Range<usize>) -> usize {
        self.range_u64(range.start as u64..range.end as u64) as usize // xlint::allow(no-lossy-cast, usize is at most 64 bits here and the result stays below range.end)
    }

    /// A uniform integer in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    #[inline]
    pub fn range_i64(&mut self, range: core::ops::Range<i64>) -> i64 {
        assert!(range.start < range.end, "range must be nonempty");
        let width = range.end.wrapping_sub(range.start) as u64; // xlint::allow(no-lossy-cast, two's-complement width arithmetic: the wrapping cast pair is exact for any i64 range)
        range.start.wrapping_add(self.range_u64(0..width) as i64)
    }

    /// A uniform integer in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    #[inline]
    pub fn range_i32(&mut self, range: core::ops::Range<i32>) -> i32 {
        self.range_i64(i64::from(range.start)..i64::from(range.end)) as i32 // xlint::allow(no-lossy-cast, range_i64 returns a value inside the i32 range passed in)
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi` and both are finite.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "need finite lo < hi");
        lo + self.f64() * (hi - lo)
    }

    /// A standard normal deviate via Box–Muller, caching the spare.
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        loop {
            let u1 = self.f64();
            let u2 = self.f64();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * core::f64::consts::PI * u2;
            self.spare = Some(r * theta.sin());
            return r * theta.cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_stream_is_stable() {
        // Pinned first outputs for seed 1: any change to seeding or the
        // core permutation is a reproducibility break and must fail here.
        let mut g = Rng::seed_from_u64(1);
        let first: Vec<u64> = (0..4).map(|_| g.next_u64()).collect();
        let mut again = Rng::seed_from_u64(1);
        let second: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn f64_is_unit_interval_and_uniformish() {
        let mut g = Rng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = g.f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn gaussian_moments() {
        // Mean, sigma, and two-sided tail mass over 1e5 draws.
        let mut g = Rng::seed_from_u64(99);
        let n = 100_000usize;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let mut beyond_3 = 0usize;
        for _ in 0..n {
            let z = g.gaussian();
            sum += z;
            sum_sq += z * z;
            if z.abs() > 3.0 {
                beyond_3 += 1;
            }
        }
        let mean = sum / n as f64;
        let sigma = (sum_sq / n as f64 - mean * mean).sqrt();
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((sigma - 1.0).abs() < 0.01, "sigma {sigma}");
        // P(|Z| > 3) = 0.27%; allow generous counting noise.
        let tail = beyond_3 as f64 / n as f64;
        assert!((0.0015..0.0045).contains(&tail), "3-sigma tail {tail}");
    }

    #[test]
    fn ranges_cover_and_stay_in_bounds() {
        let mut g = Rng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[g.range_usize(0..10)] = true;
            let v = g.range_i64(-50..-40);
            assert!((-50..-40).contains(&v));
            let f = g.range_f64(2.5, 3.5);
            assert!((2.5..3.5).contains(&f));
            let w = g.range_u32(17..18);
            assert_eq!(w, 17);
        }
        assert!(seen.iter().all(|s| *s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn bool_is_balanced() {
        let mut g = Rng::seed_from_u64(11);
        let trues = (0..10_000).filter(|_| g.bool()).count();
        assert!((4_500..5_500).contains(&trues), "trues {trues}");
    }

    #[test]
    #[should_panic(expected = "range must be nonempty")]
    fn empty_range_panics() {
        let mut g = Rng::seed_from_u64(0);
        let _ = g.range_u64(5..5);
    }
}
