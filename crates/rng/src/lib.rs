//! # gigatest-rng — the hermetic determinism layer
//!
//! A zero-dependency, first-party random number stack for the whole
//! simulator: every stochastic effect (random jitter, slicer noise,
//! traffic arrivals, defect injection) draws from here, and every
//! substream is derived from one master seed through a named,
//! order-independent [`SeedTree`].
//!
//! ## Why first-party
//!
//! The paper's claim is *repeatable* picosecond-scale timing from
//! commodity parts; a reproduction whose noise depends on `rand`'s
//! unstable `StdRng` algorithm (and on registry access at build time)
//! can't make that claim. This crate pins the exact algorithms —
//! SplitMix64 for derivation, xoshiro256++ for generation, Box–Muller
//! for Gaussians — so seed-for-seed output is a property of this
//! repository, offline, forever.
//!
//! ## Layout
//!
//! * [`SplitMix64`] / [`mix`] — seed expansion and the avalanche
//!   finalizer underlying all derivation ([`splitmix`]).
//! * [`Rng`] — the xoshiro256++ generator with the small surface the
//!   simulation uses: `next_u64`, `f64()` in `[0, 1)`, `gaussian()`,
//!   bounded ranges ([`xoshiro`]).
//! * [`StreamId`] / [`SeedTree`] — domain-separated substream derivation
//!   ([`stream`]).
//!
//! ## The one idiom
//!
//! ```
//! use rng::SeedTree;
//!
//! // At a component boundary: derive the component's stream by name,
//! // then split per channel. Never xor magic constants into seeds.
//! fn capture(master_seed: u64, channel: u64) -> f64 {
//!     let mut rng = SeedTree::new(master_seed)
//!         .stream("pecl.sampler")
//!         .channel(channel)
//!         .rng();
//!     rng.gaussian()
//! }
//!
//! // Same master seed + same path = same draws, independent of what any
//! // other component did first.
//! assert_eq!(capture(2005, 3), capture(2005, 3));
//! assert_ne!(capture(2005, 3), capture(2005, 4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod splitmix;
pub mod stream;
pub mod xoshiro;

pub use splitmix::{mix, SplitMix64, GOLDEN_GAMMA};
pub use stream::{SeedTree, StreamId};
pub use xoshiro::Rng;
