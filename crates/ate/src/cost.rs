//! The cost model behind "significantly lower in cost than conventional
//! ATE".
//!
//! The paper's pitch is economic: commodity parts (a ~$300 FPGA, a handful
//! of PECL/SiGe devices, a USB microcontroller) replace a multi-gigahertz
//! ATE channel card that costs thousands of dollars **per pin**. This
//! module quantifies the claim with a transparent 2005-era bill of
//! materials and the standard per-pin comparison.

use core::fmt;

/// One bill-of-materials line.
#[derive(Debug, Clone, PartialEq)]
pub struct BomLine {
    /// Part description.
    pub part: String,
    /// Quantity.
    pub quantity: u32,
    /// Unit cost in dollars.
    pub unit_cost: f64,
}

impl BomLine {
    /// Creates a line.
    pub fn new(part: impl Into<String>, quantity: u32, unit_cost: f64) -> Self {
        BomLine { part: part.into(), quantity, unit_cost }
    }

    /// Extended cost of the line.
    pub fn extended(&self) -> f64 {
        f64::from(self.quantity) * self.unit_cost
    }
}

/// A bill of materials.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BillOfMaterials {
    lines: Vec<BomLine>,
}

impl BillOfMaterials {
    /// Creates an empty BOM.
    pub fn new() -> Self {
        BillOfMaterials::default()
    }

    /// Adds a line (builder style).
    #[must_use]
    pub fn with(mut self, part: impl Into<String>, quantity: u32, unit_cost: f64) -> Self {
        self.lines.push(BomLine::new(part, quantity, unit_cost));
        self
    }

    /// The lines.
    pub fn lines(&self) -> &[BomLine] {
        &self.lines
    }

    /// Total cost.
    pub fn total(&self) -> f64 {
        self.lines.iter().map(BomLine::extended).sum()
    }

    /// The DLC board itself (Fig. 2): FPGA, FLASH, USB µC, crystal,
    /// power, PCB. 2005-era catalog prices.
    pub fn dlc() -> Self {
        BillOfMaterials::new()
            .with("Xilinx XC2V1000 FPGA", 1, 320.0)
            .with("Configuration FLASH", 1, 12.0)
            .with("USB 2.0 microcontroller", 1, 9.0)
            .with("12 MHz crystal", 1, 1.5)
            .with("DC power regulation", 1, 18.0)
            .with("6-layer PCB + assembly", 1, 150.0)
    }

    /// The Optical Test Bed PECL board (§3): serializers, SiGe buffers,
    /// delay verniers, DACs, connectors — for 10 channels.
    pub fn testbed_pecl() -> Self {
        BillOfMaterials::new()
            .with("PECL 8:1 serializer", 5, 42.0)
            .with("SiGe output buffer", 10, 28.0)
            .with("Programmable delay line (10 ps)", 10, 55.0)
            .with("Level-tuning DAC", 3, 11.0)
            .with("Clock fanout buffer", 2, 24.0)
            .with("SMA connectors", 24, 6.5)
            .with("8-layer RF PCB + assembly", 1, 400.0)
    }

    /// The mini-tester PECL additions (§4): two 8:1 groups, final 2:1 mux,
    /// sampler, verniers.
    pub fn minitester_pecl() -> Self {
        BillOfMaterials::new()
            .with("PECL 8:1 serializer", 2, 42.0)
            .with("PECL 2:1 output mux", 1, 38.0)
            .with("Sampling comparator", 1, 65.0)
            .with("Programmable delay line (10 ps)", 4, 55.0)
            .with("Level-tuning DAC", 2, 11.0)
            .with("Clock fanout buffer", 1, 24.0)
            .with("Compact RF PCB + assembly", 1, 280.0)
    }
}

impl fmt::Display for BillOfMaterials {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for line in &self.lines {
            writeln!(f, "{:>3} x {:<36} ${:>8.2}", line.quantity, line.part, line.extended())?;
        }
        write!(f, "      {:<36} ${:>8.2}", "TOTAL", self.total())
    }
}

/// Comparison of a DLC+PECL system against conventional ATE for the same
/// pin count and speed class.
#[derive(Debug, Clone, PartialEq)]
pub struct CostComparison {
    /// The custom system's total cost.
    pub custom_total: f64,
    /// High-speed pins provided.
    pub pins: u32,
    /// Conventional ATE cost per multi-gigahertz pin (2005: $3k–$10k).
    pub ate_cost_per_pin: f64,
}

impl CostComparison {
    /// The §3 test bed: DLC + test-bed PECL, 10 multi-gigahertz channels,
    /// against a conservative $5 000/pin ATE figure.
    pub fn optical_testbed() -> Self {
        CostComparison {
            custom_total: BillOfMaterials::dlc().total() + BillOfMaterials::testbed_pecl().total(),
            pins: 10,
            ate_cost_per_pin: 5_000.0,
        }
    }

    /// The §4 mini-tester: DLC + mini-tester PECL, 2 at-speed pins (one
    /// stimulus, one capture), against the same ATE figure.
    pub fn mini_tester() -> Self {
        CostComparison {
            custom_total: BillOfMaterials::dlc().total()
                + BillOfMaterials::minitester_pecl().total(),
            pins: 2,
            ate_cost_per_pin: 5_000.0,
        }
    }

    /// The custom system's cost per high-speed pin.
    pub fn custom_cost_per_pin(&self) -> f64 {
        self.custom_total / f64::from(self.pins)
    }

    /// Equivalent conventional-ATE cost for the same pins.
    pub fn ate_total(&self) -> f64 {
        self.ate_cost_per_pin * f64::from(self.pins)
    }

    /// Cost advantage: ATE cost over custom cost.
    pub fn savings_factor(&self) -> f64 {
        self.ate_total() / self.custom_total
    }
}

impl fmt::Display for CostComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "custom ${:.0} for {} pins (${:.0}/pin) vs ATE ${:.0} (${:.0}/pin): {:.1}x cheaper",
            self.custom_total,
            self.pins,
            self.custom_cost_per_pin(),
            self.ate_total(),
            self.ate_cost_per_pin,
            self.savings_factor()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bom_arithmetic() {
        let bom = BillOfMaterials::new().with("widget", 3, 10.0).with("gadget", 1, 5.5);
        assert_eq!(bom.lines().len(), 2);
        assert!((bom.total() - 35.5).abs() < 1e-9);
        assert!((bom.lines()[0].extended() - 30.0).abs() < 1e-9);
        let text = bom.to_string();
        assert!(text.contains("TOTAL"));
        assert!(text.contains("widget"));
        assert_eq!(BillOfMaterials::default(), BillOfMaterials::new());
    }

    #[test]
    fn dlc_is_commodity_priced() {
        let dlc = BillOfMaterials::dlc();
        // A DLC board is a few hundred dollars, not tens of thousands.
        assert!(dlc.total() > 300.0 && dlc.total() < 1_000.0, "{}", dlc.total());
    }

    #[test]
    fn testbed_beats_ate_by_an_order_of_magnitude() {
        let cmp = CostComparison::optical_testbed();
        // ~$2.7k custom vs $50k of ATE channels.
        assert!(cmp.custom_total < 4_000.0, "custom {}", cmp.custom_total);
        assert!((cmp.ate_total() - 50_000.0).abs() < 1e-9);
        assert!(cmp.savings_factor() > 10.0, "savings {}", cmp.savings_factor());
        assert!(cmp.custom_cost_per_pin() < 500.0);
        assert!(cmp.to_string().contains("cheaper"));
    }

    #[test]
    fn minitester_still_wins_at_low_pin_count() {
        let cmp = CostComparison::mini_tester();
        // Two at-speed pins for ~$1.5k vs $10k of ATE.
        assert!(cmp.savings_factor() > 5.0, "savings {}", cmp.savings_factor());
        assert!(cmp.custom_total < 2_500.0);
    }
}
