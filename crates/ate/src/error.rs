//! Error type for the top-level test system.

use core::fmt;

/// Errors raised by the assembled test system.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AteError {
    /// A test program failed validation.
    BadProgram {
        /// Explanation.
        reason: &'static str,
    },
    /// Calibration could not converge to the accuracy target.
    CalibrationFailed {
        /// The residual error in picoseconds.
        residual_ps: f64,
        /// The target in picoseconds.
        target_ps: f64,
    },
    /// Error from the DLC layer.
    Dlc(dlc::DlcError),
    /// Error from the PECL layer.
    Pecl(pecl::PeclError),
    /// Error from signal analysis.
    Signal(signal::SignalError),
    /// Error from the test-bed application.
    Testbed(testbed::TestbedError),
    /// Error from the mini-tester application.
    MiniTester(minitester::MiniTesterError),
    /// Error from the parallel execution engine.
    Exec(exec::ExecError),
}

impl fmt::Display for AteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AteError::BadProgram { reason } => write!(f, "bad test program: {reason}"),
            AteError::CalibrationFailed { residual_ps, target_ps } => {
                write!(f, "calibration residual {residual_ps} ps exceeds target {target_ps} ps")
            }
            AteError::Dlc(e) => write!(f, "DLC error: {e}"),
            AteError::Pecl(e) => write!(f, "PECL error: {e}"),
            AteError::Signal(e) => write!(f, "signal error: {e}"),
            AteError::Testbed(e) => write!(f, "test-bed error: {e}"),
            AteError::MiniTester(e) => write!(f, "mini-tester error: {e}"),
            AteError::Exec(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for AteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AteError::Dlc(e) => Some(e),
            AteError::Pecl(e) => Some(e),
            AteError::Signal(e) => Some(e),
            AteError::Testbed(e) => Some(e),
            AteError::MiniTester(e) => Some(e),
            AteError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dlc::DlcError> for AteError {
    fn from(e: dlc::DlcError) -> Self {
        AteError::Dlc(e)
    }
}

impl From<pecl::PeclError> for AteError {
    fn from(e: pecl::PeclError) -> Self {
        AteError::Pecl(e)
    }
}

impl From<signal::SignalError> for AteError {
    fn from(e: signal::SignalError) -> Self {
        AteError::Signal(e)
    }
}

impl From<testbed::TestbedError> for AteError {
    fn from(e: testbed::TestbedError) -> Self {
        AteError::Testbed(e)
    }
}

impl From<minitester::MiniTesterError> for AteError {
    fn from(e: minitester::MiniTesterError) -> Self {
        AteError::MiniTester(e)
    }
}

impl From<exec::ExecError> for AteError {
    fn from(e: exec::ExecError) -> Self {
        AteError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn conversions_and_display() {
        assert!(AteError::BadProgram { reason: "no pattern" }.to_string().contains("no pattern"));
        let e = AteError::CalibrationFailed { residual_ps: 40.0, target_ps: 25.0 };
        assert!(e.to_string().contains("40"));
        assert!(e.source().is_none());
        assert!(AteError::from(dlc::DlcError::NotConfigured).source().is_some());
        assert!(AteError::from(pecl::PeclError::DacCodeOutOfRange { code: 1, codes: 1 })
            .to_string()
            .contains("PECL"));
        assert!(AteError::from(signal::SignalError::EmptyWaveform { context: "c" })
            .to_string()
            .contains("signal"));
        assert!(AteError::from(testbed::TestbedError::ClockRecoveryFailed { reason: "r" })
            .to_string()
            .contains("test-bed"));
        assert!(AteError::from(minitester::MiniTesterError::EyeClosed)
            .to_string()
            .contains("mini-tester"));
        let e = AteError::from(exec::ExecError::MissingResult { index: 0 });
        assert!(e.to_string().contains("execution"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<AteError>();
    }
}
