//! Test programs: the classic ATE pattern / timing / levels triad.
//!
//! Conventional ATE organizes a test as a pattern (what bits), a timing set
//! (where edges and strobes go within the period), and a level set (what
//! voltages). The DLC+PECL system supports the same decomposition, which is
//! what lets it substitute for the big iron.

use pstime::{DataRate, Duration, Millivolts};
use signal::BitStream;

use crate::{AteError, Result};

/// The pattern portion of a test program.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PatternPlan {
    /// PRBS-15 from the DLC LFSRs (`n_bits` total at the serial rate).
    Prbs {
        /// Total serialized bits.
        n_bits: usize,
    },
    /// A fixed serial pattern, repeated as needed.
    Fixed(BitStream),
    /// A `1010…` clock pattern.
    Clock {
        /// Total serialized bits.
        n_bits: usize,
    },
}

/// The timing portion: serial rate, strobe placement, and edge offsets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingPlan {
    /// The serial data rate.
    pub rate: DataRate,
    /// Receive-strobe offset into the bit period.
    pub strobe_offset: Duration,
    /// Additional programmed launch delay (through the verniers).
    pub launch_delay: Duration,
}

impl TimingPlan {
    /// Mid-bit strobing at `rate` with no extra launch delay.
    pub fn centered(rate: DataRate) -> Self {
        TimingPlan { rate, strobe_offset: rate.unit_interval() / 2, launch_delay: Duration::ZERO }
    }
}

/// The level portion: driver levels and comparator threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelPlan {
    /// Driver output levels.
    pub drive: signal::LevelSet,
    /// Receive comparator threshold.
    pub compare_threshold: Millivolts,
}

impl LevelPlan {
    /// Standard PECL levels with a mid-swing threshold.
    pub fn pecl() -> Self {
        let drive = signal::LevelSet::pecl();
        LevelPlan { compare_threshold: drive.mid(), drive }
    }
}

/// A complete test program.
///
/// # Examples
///
/// ```
/// use ate::TestProgram;
/// use pstime::DataRate;
///
/// let program = TestProgram::prbs_eye(DataRate::from_gbps(2.5), 2_048);
/// assert!(program.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TestProgram {
    /// The pattern plan.
    pub pattern: PatternPlan,
    /// The timing plan.
    pub timing: TimingPlan,
    /// The level plan.
    pub levels: LevelPlan,
}

impl TestProgram {
    /// The paper's eye-measurement program: PRBS at `rate`, centered
    /// strobes, nominal PECL levels.
    pub fn prbs_eye(rate: DataRate, n_bits: usize) -> Self {
        TestProgram {
            pattern: PatternPlan::Prbs { n_bits },
            timing: TimingPlan::centered(rate),
            levels: LevelPlan::pecl(),
        }
    }

    /// A fixed-pattern program (e.g. the Fig. 6 word transmissions).
    pub fn fixed(pattern: BitStream, rate: DataRate) -> Self {
        TestProgram {
            pattern: PatternPlan::Fixed(pattern),
            timing: TimingPlan::centered(rate),
            levels: LevelPlan::pecl(),
        }
    }

    /// A clock-pattern program (used for level sweeps, Figs. 10–11).
    pub fn clock(rate: DataRate, n_bits: usize) -> Self {
        TestProgram {
            pattern: PatternPlan::Clock { n_bits },
            timing: TimingPlan::centered(rate),
            levels: LevelPlan::pecl(),
        }
    }

    /// Number of serialized bits the program produces.
    pub fn n_bits(&self) -> usize {
        match &self.pattern {
            PatternPlan::Prbs { n_bits } | PatternPlan::Clock { n_bits } => *n_bits,
            PatternPlan::Fixed(bits) => bits.len(),
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// [`AteError::BadProgram`] on empty patterns, strobes outside the bit
    /// period, or thresholds outside the drive swing.
    pub fn validate(&self) -> Result<()> {
        if self.n_bits() == 0 {
            return Err(AteError::BadProgram { reason: "empty pattern" });
        }
        let ui = self.timing.rate.unit_interval();
        if self.timing.strobe_offset.is_negative() || self.timing.strobe_offset >= ui {
            return Err(AteError::BadProgram { reason: "strobe outside the bit period" });
        }
        if self.timing.launch_delay.is_negative() {
            return Err(AteError::BadProgram { reason: "negative launch delay" });
        }
        let th = self.levels.compare_threshold;
        if th <= self.levels.drive.vol() || th >= self.levels.drive.voh() {
            return Err(AteError::BadProgram { reason: "threshold outside the drive swing" });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(TestProgram::prbs_eye(DataRate::from_gbps(2.5), 1024).validate().is_ok());
        assert!(TestProgram::clock(DataRate::from_gbps(1.25), 64).validate().is_ok());
        let fixed = TestProgram::fixed(BitStream::from_str_bits("1100"), DataRate::from_gbps(4.0));
        assert!(fixed.validate().is_ok());
        assert_eq!(fixed.n_bits(), 4);
    }

    #[test]
    fn invalid_programs_rejected() {
        let mut p = TestProgram::prbs_eye(DataRate::from_gbps(2.5), 0);
        assert!(matches!(p.validate(), Err(AteError::BadProgram { reason: "empty pattern" })));
        p = TestProgram::prbs_eye(DataRate::from_gbps(2.5), 64);
        p.timing.strobe_offset = Duration::from_ps(400);
        assert!(p.validate().is_err());
        p.timing.strobe_offset = Duration::from_ps(-1);
        assert!(p.validate().is_err());
        p = TestProgram::prbs_eye(DataRate::from_gbps(2.5), 64);
        p.timing.launch_delay = Duration::from_ps(-5);
        assert!(p.validate().is_err());
        p = TestProgram::prbs_eye(DataRate::from_gbps(2.5), 64);
        p.levels.compare_threshold = Millivolts::new(0);
        assert!(p.validate().is_err());
    }

    #[test]
    fn centered_timing() {
        let t = TimingPlan::centered(DataRate::from_gbps(5.0));
        assert_eq!(t.strobe_offset, Duration::from_ps(100));
        assert_eq!(t.launch_delay, Duration::ZERO);
    }

    #[test]
    fn pecl_level_plan() {
        let l = LevelPlan::pecl();
        assert_eq!(l.compare_threshold, Millivolts::new(-1300));
        assert_eq!(l.drive.swing(), Millivolts::new(800));
    }

    #[test]
    fn n_bits_by_variant() {
        assert_eq!(TestProgram::prbs_eye(DataRate::from_gbps(1.0), 77).n_bits(), 77);
        assert_eq!(TestProgram::clock(DataRate::from_gbps(1.0), 12).n_bits(), 12);
    }
}
