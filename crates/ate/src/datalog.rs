//! The test datalog: per-measurement records with limits and dispositions.
//!
//! Production test equipment never just says pass/fail — it logs every
//! parametric measurement against its limits (the STDF file of a big-iron
//! tester). The DLC+PECL system needs the same artifact for yield analysis
//! and correlation, so this module provides a light-weight structured
//! datalog: typed records, limit checking, per-device grouping, and a
//! text rendering suitable for diffing.

use core::fmt;

/// Disposition of one measurement against its limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Within limits.
    Pass,
    /// Below the low limit.
    FailLow,
    /// Above the high limit.
    FailHigh,
    /// Recorded without limits (information only).
    Info,
}

/// One parametric test record.
#[derive(Debug, Clone, PartialEq)]
pub struct TestRecord {
    /// Test name (e.g. `eye_opening_ui`).
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Unit label.
    pub unit: String,
    /// Low limit, if any.
    pub lo_limit: Option<f64>,
    /// High limit, if any.
    pub hi_limit: Option<f64>,
}

impl TestRecord {
    /// A limited parametric record.
    pub fn parametric(
        name: impl Into<String>,
        value: f64,
        unit: impl Into<String>,
        lo_limit: Option<f64>,
        hi_limit: Option<f64>,
    ) -> Self {
        TestRecord { name: name.into(), value, unit: unit.into(), lo_limit, hi_limit }
    }

    /// An unlimited (informational) record.
    pub fn info(name: impl Into<String>, value: f64, unit: impl Into<String>) -> Self {
        TestRecord::parametric(name, value, unit, None, None)
    }

    /// The record's disposition.
    pub fn disposition(&self) -> Disposition {
        match (self.lo_limit, self.hi_limit) {
            (None, None) => Disposition::Info,
            (lo, hi) => {
                if let Some(lo) = lo {
                    if self.value < lo {
                        return Disposition::FailLow;
                    }
                }
                if let Some(hi) = hi {
                    if self.value > hi {
                        return Disposition::FailHigh;
                    }
                }
                Disposition::Pass
            }
        }
    }

    /// Whether the record passes (info records pass).
    pub fn passed(&self) -> bool {
        matches!(self.disposition(), Disposition::Pass | Disposition::Info)
    }
}

impl fmt::Display for TestRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let limits = match (self.lo_limit, self.hi_limit) {
            (Some(lo), Some(hi)) => format!("[{lo} .. {hi}]"),
            (Some(lo), None) => format!("[{lo} ..]"),
            (None, Some(hi)) => format!("[.. {hi}]"),
            (None, None) => "[info]".to_string(),
        };
        write!(
            f,
            "{:<28} {:>12.4} {:<6} {:<18} {}",
            self.name,
            self.value,
            self.unit,
            limits,
            match self.disposition() {
                Disposition::Pass => "P",
                Disposition::FailLow => "F<",
                Disposition::FailHigh => "F>",
                Disposition::Info => "-",
            }
        )
    }
}

/// A per-device group of records.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceLog {
    /// Device identifier (die coordinates, serial, …).
    pub device_id: String,
    records: Vec<TestRecord>,
}

impl DeviceLog {
    /// Starts a log for one device.
    pub fn new(device_id: impl Into<String>) -> Self {
        DeviceLog { device_id: device_id.into(), records: Vec::new() }
    }

    /// Appends a record.
    pub fn push(&mut self, record: TestRecord) {
        self.records.push(record);
    }

    /// The records.
    pub fn records(&self) -> &[TestRecord] {
        &self.records
    }

    /// The device passes when every record passes.
    pub fn passed(&self) -> bool {
        self.records.iter().all(TestRecord::passed)
    }

    /// The first failing record, if any.
    pub fn first_failure(&self) -> Option<&TestRecord> {
        self.records.iter().find(|r| !r.passed())
    }
}

/// A whole session's datalog: many devices, with summary statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Datalog {
    devices: Vec<DeviceLog>,
}

impl Datalog {
    /// Creates an empty datalog.
    pub fn new() -> Self {
        Datalog::default()
    }

    /// Appends a finished device log.
    pub fn push(&mut self, device: DeviceLog) {
        self.devices.push(device);
    }

    /// The device logs.
    pub fn devices(&self) -> &[DeviceLog] {
        &self.devices
    }

    /// Devices passing all tests.
    pub fn passing(&self) -> usize {
        self.devices.iter().filter(|d| d.passed()).count()
    }

    /// Session yield.
    pub fn yield_ratio(&self) -> f64 {
        if self.devices.is_empty() {
            return 0.0;
        }
        self.passing() as f64 / self.devices.len() as f64
    }

    /// Per-test statistics across devices: `(mean, min, max)` of every
    /// record with the given name.
    pub fn test_statistics(&self, name: &str) -> Option<(f64, f64, f64)> {
        let values: Vec<f64> = self
            .devices
            .iter()
            .flat_map(|d| d.records())
            .filter(|r| r.name == name)
            .map(|r| r.value)
            .collect();
        if values.is_empty() {
            return None;
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Some((mean, min, max))
    }

    /// Pareto of failures: `(test name, failure count)` sorted worst first.
    pub fn failure_pareto(&self) -> Vec<(String, usize)> {
        let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
        for device in &self.devices {
            for r in device.records() {
                if !r.passed() {
                    *counts.entry(r.name.clone()).or_default() += 1;
                }
            }
        }
        let mut pareto: Vec<(String, usize)> = counts.into_iter().collect();
        pareto.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pareto
    }
}

impl fmt::Display for Datalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for device in &self.devices {
            writeln!(
                f,
                "=== {} : {} ===",
                device.device_id,
                if device.passed() { "PASS" } else { "FAIL" }
            )?;
            for r in device.records() {
                writeln!(f, "  {r}")?;
            }
        }
        write!(
            f,
            "{} / {} devices passed ({:.1}% yield)",
            self.passing(),
            self.devices.len(),
            100.0 * self.yield_ratio()
        )
    }
}

/// Builds a session datalog from a wafer run: each die contributes its
/// BIST error count (limit 0) and, when measured, its loopback eye (limit
/// from `min_eye_ui`) — so wafer results flow straight into yield/pareto
/// analysis.
pub fn from_wafer(report: &minitester::WaferReport, min_eye_ui: f64) -> Datalog {
    let mut datalog = Datalog::new();
    for record in report.records() {
        let mut device = DeviceLog::new(format!("die{}", record.die));
        device.push(TestRecord::parametric(
            "bist_errors",
            record.bist_errors as f64,
            "bits",
            None,
            Some(0.0),
        ));
        if let Some(eye) = record.eye_ui {
            device.push(TestRecord::parametric("loopback_eye", eye, "UI", Some(min_eye_ui), None));
        }
        datalog.push(device);
    }
    datalog
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispositions() {
        let r = TestRecord::parametric("eye", 0.88, "UI", Some(0.7), Some(1.0));
        assert_eq!(r.disposition(), Disposition::Pass);
        assert!(r.passed());
        let low = TestRecord::parametric("eye", 0.5, "UI", Some(0.7), None);
        assert_eq!(low.disposition(), Disposition::FailLow);
        let high = TestRecord::parametric("jitter", 80.0, "ps", None, Some(50.0));
        assert_eq!(high.disposition(), Disposition::FailHigh);
        let info = TestRecord::info("temperature", 24.5, "C");
        assert_eq!(info.disposition(), Disposition::Info);
        assert!(info.passed());
    }

    #[test]
    fn record_rendering() {
        let r = TestRecord::parametric("jitter_pp", 46.7, "ps", None, Some(60.0));
        let text = r.to_string();
        assert!(text.contains("jitter_pp"));
        assert!(text.contains("46.7"));
        assert!(text.ends_with('P'));
        let f = TestRecord::parametric("jitter_pp", 80.0, "ps", None, Some(60.0));
        assert!(f.to_string().ends_with("F>"));
        let lo = TestRecord::parametric("eye", 0.1, "UI", Some(0.7), None);
        assert!(lo.to_string().ends_with("F<"));
        assert!(TestRecord::info("x", 1.0, "u").to_string().contains("[info]"));
    }

    #[test]
    fn device_log_aggregation() {
        let mut log = DeviceLog::new("die(3,4)");
        log.push(TestRecord::parametric("eye", 0.88, "UI", Some(0.7), None));
        log.push(TestRecord::parametric("errors", 0.0, "", None, Some(0.0)));
        assert!(log.passed());
        assert!(log.first_failure().is_none());
        log.push(TestRecord::parametric("jitter", 90.0, "ps", None, Some(60.0)));
        assert!(!log.passed());
        assert_eq!(log.first_failure().unwrap().name, "jitter");
        assert_eq!(log.records().len(), 3);
    }

    #[test]
    fn session_statistics_and_pareto() {
        let mut datalog = Datalog::new();
        for (i, (eye, jitter)) in
            [(0.9, 40.0), (0.85, 45.0), (0.6, 70.0), (0.88, 80.0)].iter().enumerate()
        {
            let mut d = DeviceLog::new(format!("die{i}"));
            d.push(TestRecord::parametric("eye", *eye, "UI", Some(0.7), None));
            d.push(TestRecord::parametric("jitter", *jitter, "ps", None, Some(60.0)));
            datalog.push(d);
        }
        assert_eq!(datalog.devices().len(), 4);
        assert_eq!(datalog.passing(), 2);
        assert!((datalog.yield_ratio() - 0.5).abs() < 1e-12);
        let (mean, min, max) = datalog.test_statistics("eye").unwrap();
        assert!((mean - 0.8075).abs() < 1e-9);
        assert!((min - 0.6).abs() < 1e-12);
        assert!((max - 0.9).abs() < 1e-12);
        assert!(datalog.test_statistics("nonexistent").is_none());
        let pareto = datalog.failure_pareto();
        assert_eq!(pareto.len(), 2);
        assert_eq!(pareto[0].1, 2); // jitter fails twice
        let text = datalog.to_string();
        assert!(text.contains("50.0% yield"));
        assert!(text.contains("die2"));
    }

    #[test]
    fn empty_session() {
        let datalog = Datalog::new();
        assert_eq!(datalog.yield_ratio(), 0.0);
        assert!(datalog.failure_pareto().is_empty());
    }

    #[test]
    fn datalog_from_a_wafer_run() {
        use minitester::{run_wafer, WaferRunConfig};
        let config = WaferRunConfig {
            dies: 12,
            columns: 4,
            sites: 4,
            hard_defect_rate: 0.3,
            marginal_rate: 0.0,
            test_bits: 256,
            seed: 11,
            ..WaferRunConfig::default()
        };
        let report = run_wafer(&config).unwrap();
        let datalog = from_wafer(&report, 0.8);
        assert_eq!(datalog.devices().len(), 12);
        // Datalog yield equals the wafer report's.
        assert!((datalog.yield_ratio() - report.yield_ratio()).abs() < 1e-12);
        // Defective dies show up in the pareto.
        let (hard, _) = report.injected_defects();
        if hard > 0 {
            let pareto = datalog.failure_pareto();
            assert_eq!(pareto[0].0, "bist_errors");
            assert_eq!(pareto[0].1, hard);
        }
        // Statistics over the measured eyes exist when any die passed BIST.
        if report.records().iter().any(|r| r.eye_ui.is_some()) {
            assert!(datalog.test_statistics("loopback_eye").is_some());
        }
    }

    #[test]
    fn datalog_from_a_real_run() {
        // Fill a datalog from actual system measurements.
        use crate::{TestProgram, TestSystem};
        use pstime::DataRate;
        let mut system = TestSystem::optical_testbed().unwrap();
        let mut datalog = Datalog::new();
        for device in 0..3u64 {
            let result = system
                .run(&TestProgram::prbs_eye(DataRate::from_gbps(2.5), 2_048), device)
                .unwrap();
            let mut log = DeviceLog::new(format!("unit{device}"));
            log.push(TestRecord::parametric(
                "eye_opening",
                result.eye.opening_ui().value(),
                "UI",
                Some(0.8),
                None,
            ));
            log.push(TestRecord::parametric(
                "jitter_pp",
                result.eye.jitter_pp().as_ps_f64(),
                "ps",
                None,
                Some(60.0),
            ));
            datalog.push(log);
        }
        assert_eq!(datalog.passing(), 3, "{datalog}");
        let (mean, _, _) = datalog.test_statistics("eye_opening").unwrap();
        assert!((mean - 0.88).abs() < 0.05);
    }
}
