//! Channel deskew and the ±25 ps timing-accuracy audit.
//!
//! The paper's summary claim: "We have demonstrated timing accuracy control
//! to about ±25 ps." In a multi-channel PECL system the accuracy budget is
//! dominated by uncalibrated channel-to-channel skew (fanout buffers, trace
//! mismatch); the 10 ps verniers exist to null it. This module implements
//! that calibration loop — measure each channel's skew against a reference,
//! program the verniers to cancel it, and verify the residual — plus the
//! delay-line linearity audit that bounds the post-calibration error.

use pecl::{ClockFanout, ProgrammableDelayLine};
use pstime::{DataRate, Duration, Instant};
use signal::measure::measure_skew;
use signal::{AnalogWaveform, BitStream, DigitalWaveform, EdgeShape, LevelSet};

use crate::{AteError, Result};

/// The result of deskewing one multi-channel group.
#[derive(Debug, Clone, PartialEq)]
pub struct DeskewResult {
    /// Programmed vernier code per channel.
    pub codes: Vec<u32>,
    /// Residual skew per channel after calibration.
    pub residuals: Vec<Duration>,
    /// Worst-case |residual|.
    pub worst_residual: Duration,
}

impl DeskewResult {
    /// Whether every channel meets the accuracy target.
    pub fn meets(&self, target: Duration) -> bool {
        self.worst_residual <= target
    }
}

/// The paper's accuracy target: ±25 ps.
pub fn paper_accuracy_target() -> Duration {
    Duration::from_ps(25)
}

/// Calibrates a channel group: measures each leg's skew off `fanout`
/// against leg 0 and programs per-channel verniers to align all edges.
///
/// The measurement loop is physical: each leg transmits an edge, the
/// mid-level crossing is measured (as the sampling circuit would), and the
/// vernier is programmed with the complementary delay. Because verniers can
/// only add delay, every channel is aligned to the *latest* leg.
///
/// # Errors
///
/// [`AteError::CalibrationFailed`] if the residual exceeds `target`;
/// propagates measurement errors.
pub fn deskew_channels(
    fanout: &ClockFanout,
    rate: DataRate,
    target: Duration,
) -> Result<DeskewResult> {
    let n = fanout.outputs();
    let shape = EdgeShape::from_rise_2080_ps(72.0);
    let levels = LevelSet::pecl();
    let reference_bits = BitStream::from_str_bits("0011");
    let base = DigitalWaveform::from_bits(&reference_bits, rate, &signal::jitter::NoJitter, 0);

    // Step 1: measure raw skew of every leg against leg 0.
    let leg_wave = |leg: usize| AnalogWaveform::new(fanout.distribute(&base, leg), levels, shape);
    let reference = leg_wave(0);
    let near = Instant::from_ps(800); // the 0->1 edge of "0011" at 2.5 Gbps
    let mut skews = Vec::with_capacity(n);
    for leg in 0..n {
        let wave = leg_wave(leg);
        let skew = measure_skew(&wave, &reference, near, rate)?;
        skews.push(skew);
    }

    // Step 2: align to the latest leg by adding delay everywhere else.
    let latest = skews.iter().copied().max().unwrap_or(Duration::ZERO);
    let mut codes = Vec::with_capacity(n);
    let mut corrected: Vec<AnalogWaveform> = Vec::with_capacity(n);
    for (leg, skew) in skews.iter().enumerate() {
        let needed = latest - *skew;
        let mut vernier = ProgrammableDelayLine::standard();
        let code = vernier.set_delay(needed)?;
        codes.push(code);
        corrected.push(AnalogWaveform::new(
            vernier.apply(&fanout.distribute(&base, leg)),
            levels,
            shape,
        ));
    }

    // Step 3: verify — re-measure every channel against corrected leg 0.
    // Channel-to-channel skew is the only observable (and the only thing
    // that matters); absolute delay is common-mode.
    let insertion = ProgrammableDelayLine::standard().insertion_delay();
    let verify_near = near + insertion + latest;
    let mut residuals = Vec::with_capacity(n);
    let mut worst = Duration::ZERO;
    for wave in &corrected {
        let residual = measure_skew(wave, &corrected[0], verify_near, rate)?;
        worst = worst.max(residual.abs());
        residuals.push(residual);
    }

    let result = DeskewResult { codes, residuals, worst_residual: worst };
    if !result.meets(target) {
        return Err(AteError::CalibrationFailed {
            residual_ps: worst.as_ps_f64(),
            target_ps: target.as_ps_f64(),
        });
    }
    Ok(result)
}

/// One row of the edge-placement linearity audit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementPoint {
    /// Requested edge placement.
    pub requested: Duration,
    /// Achieved placement (nominal code delay + INL).
    pub achieved: Duration,
}

impl PlacementPoint {
    /// Placement error.
    pub fn error(&self) -> Duration {
        self.achieved - self.requested
    }
}

/// Sweeps requested edge placements across `range` in `step` increments and
/// reports achieved placement — quantization plus INL. The worst-case error
/// bounds the system's edge-placement accuracy (the SUMMARY experiment).
///
/// # Errors
///
/// Propagates vernier range errors; [`AteError::BadProgram`] for a
/// non-positive step.
pub fn placement_audit(range: Duration, step: Duration) -> Result<Vec<PlacementPoint>> {
    placement_audit_with_pool(range, step, &exec::ExecPool::serial())
}

/// [`placement_audit`] fanned out over an explicit worker pool: each
/// requested placement `step × k` is an independent vernier programming,
/// so the audit is bit-identical for every thread count.
///
/// # Errors
///
/// Propagates vernier range and execution errors; [`AteError::BadProgram`]
/// for a non-positive step.
pub fn placement_audit_with_pool(
    range: Duration,
    step: Duration,
    pool: &exec::ExecPool,
) -> Result<Vec<PlacementPoint>> {
    if step <= Duration::ZERO {
        return Err(AteError::BadProgram { reason: "placement audit step must be positive" });
    }
    if range < Duration::ZERO {
        return Ok(Vec::new());
    }
    // requested = step * k for k = 0 ..= floor(range / step): the same
    // points the serial accumulation loop visits, computed directly so
    // each is an independent job.
    let count = usize::try_from(range.as_fs() / step.as_fs()).unwrap_or(0) + 1;
    let outcome = pool.run(count, |k| -> Result<PlacementPoint> {
        let requested = step * k as i64; // xlint::allow(no-lossy-cast, k <= range/step which fits i64)
        let mut vernier = ProgrammableDelayLine::standard();
        vernier.set_delay(requested)?;
        Ok(PlacementPoint { requested, achieved: vernier.actual_delay() })
    })?;
    outcome.results.into_iter().collect()
}

/// Worst-case absolute placement error in an audit.
pub fn worst_placement_error(points: &[PlacementPoint]) -> Duration {
    points.iter().map(|p| p.error().abs()).max().unwrap_or(Duration::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deskew_meets_the_paper_target() {
        // The fanout ships with ±25 ps of leg skew; calibration must bring
        // the group within the ±25 ps system target (it lands ≤ ~7 ps:
        // half a vernier step + INL).
        let fanout = ClockFanout::new(8, Duration::from_ps(1));
        let result =
            deskew_channels(&fanout, DataRate::from_gbps(2.5), paper_accuracy_target()).unwrap();
        assert_eq!(result.codes.len(), 8);
        assert!(
            result.worst_residual <= Duration::from_ps(8),
            "residual {}",
            result.worst_residual
        );
        assert!(result.meets(paper_accuracy_target()));
        // The uncalibrated spread was larger than the residual.
        assert!(fanout.max_skew_spread() > result.worst_residual);
    }

    #[test]
    fn deskew_fails_an_unreachable_target() {
        let fanout = ClockFanout::new(4, Duration::from_ps(1));
        let err =
            deskew_channels(&fanout, DataRate::from_gbps(2.5), Duration::from_fs(100)).unwrap_err();
        assert!(matches!(err, AteError::CalibrationFailed { .. }));
    }

    #[test]
    fn deskew_handles_manual_skews() {
        let mut fanout = ClockFanout::new(3, Duration::ZERO);
        fanout.set_skew(0, Duration::ZERO);
        fanout.set_skew(1, Duration::from_ps(100));
        fanout.set_skew(2, Duration::from_ps(-100));
        let result =
            deskew_channels(&fanout, DataRate::from_gbps(2.5), paper_accuracy_target()).unwrap();
        // Leg 1 is latest; leg 2 needs 200 ps = code 20, leg 0 needs 100 ps.
        assert_eq!(result.codes[1], 0);
        assert_eq!(result.codes[0], 10);
        assert_eq!(result.codes[2], 20);
    }

    #[test]
    fn placement_audit_bounds_error() {
        // Sweep the full 10 ns range in 137 ps requests (odd step exercises
        // quantization).
        let points = placement_audit(Duration::from_ns(10), Duration::from_ps(137)).unwrap();
        assert!(points.len() > 70);
        let worst = worst_placement_error(&points);
        // Half a 10 ps step + 2 ps INL = 7 ps, far inside ±25 ps.
        assert!(worst <= Duration::from_ps(7), "worst {worst}");
        assert!(worst <= paper_accuracy_target());
        // Errors are signed and both directions occur.
        assert!(points.iter().any(|p| p.error() > Duration::ZERO));
        assert!(points.iter().any(|p| p.error() < Duration::ZERO));
    }

    #[test]
    fn exact_requests_have_only_inl_error() {
        let points = placement_audit(Duration::from_ns(5), Duration::from_ps(10)).unwrap();
        let worst = worst_placement_error(&points);
        assert!(worst <= Duration::from_ps(2), "worst {worst}");
    }

    #[test]
    fn empty_audit() {
        assert_eq!(worst_placement_error(&[]), Duration::ZERO);
    }

    #[test]
    fn audit_is_thread_count_invariant() {
        let range = Duration::from_ns(10);
        let step = Duration::from_ps(137);
        let serial = placement_audit(range, step).unwrap();
        for threads in [2, 8] {
            let parallel =
                placement_audit_with_pool(range, step, &exec::ExecPool::new(threads)).unwrap();
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn audit_rejects_nonpositive_step() {
        let err = placement_audit(Duration::from_ns(1), Duration::ZERO).unwrap_err();
        assert!(matches!(err, AteError::BadProgram { .. }));
        assert!(placement_audit(Duration::from_ns(-1), Duration::from_ps(10)).unwrap().is_empty());
    }
}
