//! The assembled test system façade.

use pecl::SignalChain;
use pstime::DataRate;
use rng::{SeedTree, StreamId};
use signal::{AnalogWaveform, BitStream, EyeDiagram};

use crate::program::{PatternPlan, TestProgram};
use crate::Result;

/// Substream identity for per-lane PRBS generator seeds.
pub const PRBS_LANE_STREAM: StreamId = StreamId::named("ate.pattern.prbs-lane");

/// Master seed for pattern content. Pattern lanes are part of the *test
/// program*, not the noise realization, so they derive from a fixed master
/// rather than the per-run seed: every run of a program drives the same
/// bits, as a real pattern memory would.
const PATTERN_SEED: u64 = 0x1357;

/// Which of the paper's two systems is instantiated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// The §3 Optical Test Bed transmitter electronics.
    OpticalTestbed,
    /// The §4 miniature wafer-prober datapath.
    MiniTester,
}

/// The result of running one [`TestProgram`].
#[derive(Debug, Clone)]
pub struct ProgramResult {
    /// The rendered output waveform.
    pub waveform: AnalogWaveform,
    /// The eye analysis at the program's rate.
    pub eye: EyeDiagram,
    /// The serialized pattern that was driven.
    pub driven_bits: BitStream,
}

/// The complete low-cost test system: booted DLC + calibrated PECL chain,
/// in either of the paper's two configurations.
///
/// # Examples
///
/// ```
/// use ate::{SystemKind, TestProgram, TestSystem};
/// use pstime::DataRate;
///
/// let mut system = TestSystem::mini_tester()?;
/// assert_eq!(system.kind(), SystemKind::MiniTester);
/// let result = system.run(&TestProgram::prbs_eye(DataRate::from_gbps(5.0), 2_048), 1)?;
/// assert!(result.eye.opening_ui().value() > 0.7); // the paper's 0.75 UI
/// # Ok::<(), ate::AteError>(())
/// ```
#[derive(Debug)]
pub struct TestSystem {
    kind: SystemKind,
    core: dlc::DigitalLogicCore,
    chain: SignalChain,
}

impl TestSystem {
    /// Brings up the Optical Test Bed configuration.
    ///
    /// # Errors
    ///
    /// Propagates DLC boot failures.
    pub fn optical_testbed() -> Result<Self> {
        Self::bring_up(SystemKind::OpticalTestbed, SignalChain::testbed_transmitter())
    }

    /// Brings up the mini-tester configuration.
    ///
    /// # Errors
    ///
    /// Propagates DLC boot failures.
    pub fn mini_tester() -> Result<Self> {
        Self::bring_up(SystemKind::MiniTester, SignalChain::minitester_datapath())
    }

    fn bring_up(kind: SystemKind, chain: SignalChain) -> Result<Self> {
        let mut core = dlc::DigitalLogicCore::new();
        core.program_flash_via_jtag(&dlc::Bitstream::example_design())?;
        core.power_up()?;
        Ok(TestSystem { kind, core, chain })
    }

    /// Which configuration this is.
    pub fn kind(&self) -> SystemKind {
        self.kind
    }

    /// The PECL chain (budget queries, level programming).
    pub fn chain(&self) -> &SignalChain {
        &self.chain
    }

    /// Mutable chain access.
    pub fn chain_mut(&mut self) -> &mut SignalChain {
        &mut self.chain
    }

    /// The embedded DLC.
    pub fn core_mut(&mut self) -> &mut dlc::DigitalLogicCore {
        &mut self.core
    }

    /// Produces the serialized pattern bits for a program by running the
    /// DLC pattern engines.
    ///
    /// # Errors
    ///
    /// Propagates DLC errors; `BadProgram` for invalid programs.
    pub fn synthesize_pattern(&mut self, program: &TestProgram) -> Result<BitStream> {
        program.validate()?;
        let n_bits = program.n_bits();
        match &program.pattern {
            PatternPlan::Fixed(bits) => Ok(bits.clone()),
            PatternPlan::Clock { .. } => Ok(BitStream::alternating(n_bits)),
            PatternPlan::Prbs { .. } => {
                // The test bed serializes 8 lanes per channel, widening to
                // 16 when 8 would push a CMOS pin past its 400 Mbps
                // derating (e.g. the Fig. 8 run at 4 Gbps); the mini-tester
                // always uses its two 8:1 groups (16 lanes).
                let lanes_n: usize = match self.kind {
                    SystemKind::OpticalTestbed
                        if program.timing.rate.demux(8).as_bps() <= 400_000_000 =>
                    {
                        8
                    }
                    _ => 16,
                };
                let lane_rate = program.timing.rate.demux(u64::try_from(lanes_n).unwrap_or(16));
                let lane_tree = SeedTree::new(PATTERN_SEED).derive(PRBS_LANE_STREAM);
                for ch in 0..lanes_n {
                    let lane_seed = lane_tree.channel(u64::try_from(ch).unwrap_or(0)).seed();
                    self.core.configure_channel(
                        ch,
                        dlc::PatternKind::Prbs15 {
                            // Prbs15 keys on the low seed word; masking makes
                            // the truncation explicit and lossless.
                            seed: u32::try_from(lane_seed & 0xFFFF_FFFF).unwrap_or(0),
                        },
                        lane_rate,
                    )?;
                }
                let lane_bits = n_bits / lanes_n;
                let lanes: Vec<BitStream> = (0..lanes_n)
                    .map(|ch| {
                        let _warmup = self.core.generate(ch, 16)?;
                        self.core.generate(ch, lane_bits)
                    })
                    .collect::<dlc::Result<_>>()?;
                Ok(BitStream::interleave(&lanes))
            }
        }
    }

    /// Runs a program: synthesize the pattern, render it through the PECL
    /// chain at the program's levels, and analyze the eye.
    ///
    /// # Errors
    ///
    /// Program validation, DLC, PECL, and eye-analysis errors.
    pub fn run(&mut self, program: &TestProgram, seed: u64) -> Result<ProgramResult> {
        program.validate()?;
        let driven_bits = self.synthesize_pattern(program)?;
        self.chain.set_levels(program.levels.drive);
        let rendered = self.chain.render(&driven_bits, program.timing.rate, seed)?;
        let waveform = if program.timing.launch_delay.is_zero() {
            rendered
        } else {
            AnalogWaveform::new(
                rendered.digital().delayed(program.timing.launch_delay),
                *rendered.levels(),
                *rendered.shape(),
            )
        };
        let eye = EyeDiagram::analyze(&waveform, program.timing.rate)?;
        Ok(ProgramResult { waveform, eye, driven_bits })
    }

    /// Predicted eye opening for this system at `rate` over `n_edges`
    /// (from the chain's analytic budget — what a test engineer quotes
    /// before measuring).
    pub fn predicted_opening(&self, rate: DataRate, n_edges: u64) -> pstime::UnitInterval {
        self.chain.predicted_opening(rate, n_edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::TestProgram;
    use crate::AteError;
    use pstime::Duration;

    #[test]
    fn testbed_system_reproduces_fig7() {
        let mut system = TestSystem::optical_testbed().unwrap();
        assert_eq!(system.kind(), SystemKind::OpticalTestbed);
        let result =
            system.run(&TestProgram::prbs_eye(DataRate::from_gbps(2.5), 4_096), 3).unwrap();
        let opening = result.eye.opening_ui().value();
        assert!((opening - 0.88).abs() < 0.04, "opening {opening}");
        assert_eq!(result.driven_bits.len(), 4_096);
    }

    #[test]
    fn minitester_system_reproduces_fig19() {
        let mut system = TestSystem::mini_tester().unwrap();
        let result =
            system.run(&TestProgram::prbs_eye(DataRate::from_gbps(5.0), 4_096), 5).unwrap();
        let opening = result.eye.opening_ui().value();
        assert!((opening - 0.75).abs() < 0.05, "opening {opening}");
    }

    #[test]
    fn prediction_matches_measurement() {
        let mut system = TestSystem::optical_testbed().unwrap();
        let rate = DataRate::from_gbps(2.5);
        let predicted = system.predicted_opening(rate, 2_000).value();
        let measured =
            system.run(&TestProgram::prbs_eye(rate, 4_096), 7).unwrap().eye.opening_ui().value();
        assert!((predicted - measured).abs() < 0.05, "pred {predicted} vs meas {measured}");
    }

    #[test]
    fn clock_and_fixed_patterns() {
        let mut system = TestSystem::optical_testbed().unwrap();
        let clock = system.run(&TestProgram::clock(DataRate::from_gbps(1.25), 256), 0).unwrap();
        assert_eq!(clock.driven_bits.transition_count(), 255);
        let fixed = system
            .run(
                &TestProgram::fixed(
                    BitStream::from_str_bits("11001010").repeat(32),
                    DataRate::from_gbps(2.5),
                ),
                0,
            )
            .unwrap();
        assert_eq!(fixed.driven_bits.len(), 256);
    }

    #[test]
    fn launch_delay_shifts_the_waveform() {
        let mut system = TestSystem::optical_testbed().unwrap();
        let mut program = TestProgram::clock(DataRate::from_gbps(2.5), 64);
        program.timing.launch_delay = Duration::from_ps(500);
        let result = system.run(&program, 1).unwrap();
        assert_eq!(result.waveform.digital().start(), pstime::Instant::from_ps(500));
    }

    #[test]
    fn invalid_program_rejected_by_run() {
        let mut system = TestSystem::mini_tester().unwrap();
        let bad = TestProgram::prbs_eye(DataRate::from_gbps(2.5), 0);
        assert!(matches!(system.run(&bad, 0), Err(AteError::BadProgram { .. })));
    }

    #[test]
    fn level_programming_flows_through() {
        let mut system = TestSystem::optical_testbed().unwrap();
        let mut program = TestProgram::clock(DataRate::from_gbps(1.25), 128);
        program.levels.drive = signal::LevelSet::pecl().with_voh(pstime::Millivolts::new(-1000));
        program.levels.compare_threshold = program.levels.drive.mid();
        let result = system.run(&program, 2).unwrap();
        assert_eq!(result.waveform.levels().voh(), pstime::Millivolts::new(-1000));
        let _ = system.chain_mut();
        let _ = system.core_mut();
        assert_eq!(system.chain().levels().voh(), pstime::Millivolts::new(-1000));
    }
}
