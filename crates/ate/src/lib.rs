//! # gigatest-ate — the complete low-cost multi-gigahertz test system
//!
//! Top-level crate of the Gigatest workspace, a full software reproduction
//! of Keezer, Gray, Majid & Taher, *Low-Cost Multi-Gigahertz Test Systems
//! Using CMOS FPGAs and PECL* (DATE 2005). The paper's contribution is an
//! architecture: a CMOS FPGA **Digital Logic Core** for flexible pattern
//! synthesis and PC control, married to a custom **PECL** front end for
//! multi-gigahertz timing — at a small fraction of conventional ATE cost.
//!
//! This crate assembles the substrate crates into that system:
//!
//! * [`TestSystem`] — the façade: boot a DLC, attach a calibrated PECL
//!   chain, run [`TestProgram`]s, collect [`measurement`]s.
//! * [`program`] — the classic ATE triad: pattern, timing set, level set.
//! * [`calibration`] — channel deskew through the 10 ps verniers and the
//!   audit behind the paper's **±25 ps timing accuracy** claim.
//! * [`cost`] — the bill-of-materials model quantifying "significantly
//!   lower in cost than conventional ATE".
//! * [`measurement`] — paper-versus-measured comparison rows used by the
//!   benchmark harness and EXPERIMENTS.md.
//!
//! The application stacks live in their own crates and are re-exported
//! here: [`testbed`] (the Optical Test Bed + Data Vortex) and
//! [`minitester`] (the wafer-probe mini-tester).
//!
//! ## Quickstart
//!
//! ```
//! use ate::{TestProgram, TestSystem};
//! use pstime::DataRate;
//!
//! // Bring up the test-bed flavor of the system and run a PRBS eye test.
//! let mut system = TestSystem::optical_testbed()?;
//! let program = TestProgram::prbs_eye(DataRate::from_gbps(2.5), 2_048);
//! let result = system.run(&program, 42)?;
//! assert!(result.eye.opening_ui().value() > 0.8);
//! # Ok::<(), ate::AteError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod cost;
pub mod datalog;
mod error;
pub mod measurement;
pub mod program;
mod system;
pub mod textfmt;

pub use error::AteError;
pub use measurement::{Comparison, PaperValue, Report};
pub use program::{LevelPlan, PatternPlan, TestProgram, TimingPlan};
pub use system::{ProgramResult, SystemKind, TestSystem, PRBS_LANE_STREAM};

// Re-export the subsystem crates so downstream users need a single
// dependency.
pub use dlc;
pub use minitester;
pub use pecl;
pub use pstime;
pub use signal;
pub use testbed;
pub use vortex;

/// Convenient result alias for ATE operations.
pub type Result<T> = std::result::Result<T, AteError>;
