//! Paper-versus-measured comparison rows.
//!
//! Every experiment in the benchmark harness produces [`Comparison`] rows:
//! the value the paper reports, the value this reproduction measures, and a
//! tolerance verdict. `EXPERIMENTS.md` is generated from these.

use core::fmt;

/// A value quoted in the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperValue {
    /// The quoted number.
    pub value: f64,
    /// Acceptable relative deviation for the reproduction (e.g. `0.1` for
    /// ±10 %).
    pub rel_tolerance: f64,
}

impl PaperValue {
    /// A paper value with a tolerance.
    ///
    /// # Panics
    ///
    /// Panics if the tolerance is negative or not finite.
    pub fn new(value: f64, rel_tolerance: f64) -> Self {
        assert!(rel_tolerance.is_finite() && rel_tolerance >= 0.0, "tolerance must be nonnegative");
        PaperValue { value, rel_tolerance }
    }
}

/// One experiment-output comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Experiment identifier (e.g. `FIG7`).
    pub experiment: String,
    /// What is being compared (e.g. `jitter p-p`).
    pub quantity: String,
    /// Unit label.
    pub unit: String,
    /// The paper's number and tolerance.
    pub paper: PaperValue,
    /// This reproduction's measurement.
    pub measured: f64,
}

impl Comparison {
    /// Creates a comparison row.
    pub fn new(
        experiment: impl Into<String>,
        quantity: impl Into<String>,
        unit: impl Into<String>,
        paper: PaperValue,
        measured: f64,
    ) -> Self {
        Comparison {
            experiment: experiment.into(),
            quantity: quantity.into(),
            unit: unit.into(),
            paper,
            measured,
        }
    }

    /// Relative deviation of the measurement from the paper value.
    pub fn relative_error(&self) -> f64 {
        if self.paper.value == 0.0 {
            return self.measured.abs();
        }
        ((self.measured - self.paper.value) / self.paper.value).abs()
    }

    /// Whether the measurement lands inside the tolerance band.
    pub fn within_tolerance(&self) -> bool {
        self.relative_error() <= self.paper.rel_tolerance
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<8} {:<24} paper {:>9.3} {:<4} measured {:>9.3} {:<4} ({:>5.1}% off) {}",
            self.experiment,
            self.quantity,
            self.paper.value,
            self.unit,
            self.measured,
            self.unit,
            100.0 * self.relative_error(),
            if self.within_tolerance() { "OK" } else { "MISS" }
        )
    }
}

/// A collection of comparisons forming one experiment report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    rows: Vec<Comparison>,
}

impl Report {
    /// Creates an empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Adds a row.
    pub fn push(&mut self, row: Comparison) {
        self.rows.push(row);
    }

    /// The rows.
    pub fn rows(&self) -> &[Comparison] {
        &self.rows
    }

    /// Number of rows inside tolerance.
    pub fn passing(&self) -> usize {
        self.rows.iter().filter(|r| r.within_tolerance()).count()
    }

    /// Whether every row is inside tolerance.
    pub fn all_within_tolerance(&self) -> bool {
        self.passing() == self.rows.len()
    }
}

impl Extend<Comparison> for Report {
    fn extend<I: IntoIterator<Item = Comparison>>(&mut self, iter: I) {
        self.rows.extend(iter);
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.rows {
            writeln!(f, "{row}")?;
        }
        write!(f, "{} / {} within tolerance", self.passing(), self.rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_verdicts() {
        let ok = Comparison::new("FIG7", "jitter p-p", "ps", PaperValue::new(46.7, 0.10), 47.9);
        assert!(ok.within_tolerance());
        assert!(ok.relative_error() < 0.03);
        let miss = Comparison::new("FIG7", "jitter p-p", "ps", PaperValue::new(46.7, 0.05), 60.0);
        assert!(!miss.within_tolerance());
        assert!(ok.to_string().contains("OK"));
        assert!(miss.to_string().contains("MISS"));
    }

    #[test]
    fn zero_paper_value() {
        let exact = Comparison::new("X", "errors", "", PaperValue::new(0.0, 0.0), 0.0);
        assert!(exact.within_tolerance());
        let off = Comparison::new("X", "errors", "", PaperValue::new(0.0, 0.0), 1.0);
        assert!(!off.within_tolerance());
    }

    #[test]
    fn report_aggregation() {
        let mut report = Report::new();
        report.push(Comparison::new("A", "q", "u", PaperValue::new(1.0, 0.1), 1.05));
        report.extend([Comparison::new("B", "q", "u", PaperValue::new(1.0, 0.01), 2.0)]);
        assert_eq!(report.rows().len(), 2);
        assert_eq!(report.passing(), 1);
        assert!(!report.all_within_tolerance());
        let text = report.to_string();
        assert!(text.contains("1 / 2 within tolerance"));
    }

    #[test]
    #[should_panic(expected = "tolerance must be nonnegative")]
    fn bad_tolerance_panics() {
        let _ = PaperValue::new(1.0, -0.1);
    }
}
