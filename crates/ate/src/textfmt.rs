//! Text format for test programs.
//!
//! Every production tester loads its programs from files; this is the
//! DLC+PECL system's equivalent — a deliberately plain, line-oriented
//! format a test engineer can write by hand and diff in version control:
//!
//! ```text
//! # gigatest program v1
//! pattern prbs 4096
//! rate_gbps 2.5
//! strobe_ps 200
//! launch_ps 0
//! voh_mv -900
//! vol_mv -1700
//! threshold_mv -1300
//! ```
//!
//! Unknown keys are rejected (typos must not silently change a test), and
//! parsing round-trips exactly with [`to_text`].

use pstime::{DataRate, Duration, Millivolts};
use signal::{BitStream, LevelSet};

use crate::program::{LevelPlan, PatternPlan, TestProgram, TimingPlan};
use crate::{AteError, Result};

/// Serializes a program to the text format.
pub fn to_text(program: &TestProgram) -> String {
    let mut out = String::from("# gigatest program v1\n");
    match &program.pattern {
        PatternPlan::Prbs { n_bits } => out.push_str(&format!("pattern prbs {n_bits}\n")),
        PatternPlan::Clock { n_bits } => out.push_str(&format!("pattern clock {n_bits}\n")),
        PatternPlan::Fixed(bits) => out.push_str(&format!("pattern fixed {bits}\n")),
    }
    out.push_str(&format!("rate_gbps {}\n", program.timing.rate.as_gbps()));
    out.push_str(&format!("strobe_ps {}\n", program.timing.strobe_offset.as_ps_f64()));
    out.push_str(&format!("launch_ps {}\n", program.timing.launch_delay.as_ps_f64()));
    out.push_str(&format!("voh_mv {}\n", program.levels.drive.voh().as_mv()));
    out.push_str(&format!("vol_mv {}\n", program.levels.drive.vol().as_mv()));
    out.push_str(&format!("threshold_mv {}\n", program.levels.compare_threshold.as_mv()));
    out
}

/// Parses the text format back into a validated [`TestProgram`].
///
/// # Errors
///
/// [`AteError::BadProgram`] for syntax errors, unknown keys, missing
/// fields, or a program that fails [`TestProgram::validate`].
pub fn from_text(text: &str) -> Result<TestProgram> {
    let mut pattern: Option<PatternPlan> = None;
    let mut rate: Option<DataRate> = None;
    let mut strobe: Option<Duration> = None;
    let mut launch = Duration::ZERO;
    let mut voh: Option<Millivolts> = None;
    let mut vol: Option<Millivolts> = None;
    let mut threshold: Option<Millivolts> = None;

    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let Some(key) = parts.next() else {
            continue;
        };
        match key {
            "pattern" => {
                let kind =
                    parts.next().ok_or(AteError::BadProgram { reason: "pattern needs a kind" })?;
                let arg = parts
                    .next()
                    .ok_or(AteError::BadProgram { reason: "pattern needs an argument" })?;
                pattern = Some(match kind {
                    "prbs" => PatternPlan::Prbs {
                        n_bits: arg
                            .parse()
                            .map_err(|_| AteError::BadProgram { reason: "bad prbs length" })?,
                    },
                    "clock" => PatternPlan::Clock {
                        n_bits: arg
                            .parse()
                            .map_err(|_| AteError::BadProgram { reason: "bad clock length" })?,
                    },
                    "fixed" => {
                        if !arg.chars().all(|c| c == '0' || c == '1' || c == '_') {
                            return Err(AteError::BadProgram {
                                reason: "fixed pattern must be 0/1 digits",
                            });
                        }
                        PatternPlan::Fixed(BitStream::from_str_bits(arg))
                    }
                    _ => return Err(AteError::BadProgram { reason: "unknown pattern kind" }),
                });
            }
            "rate_gbps" => {
                let v: f64 = parse_f64(parts.next(), "rate_gbps")?;
                if !(v.is_finite() && v > 0.0) {
                    return Err(AteError::BadProgram { reason: "rate must be positive" });
                }
                rate = Some(DataRate::from_gbps(v));
            }
            "strobe_ps" => {
                strobe = Some(Duration::from_ps_f64(parse_f64(parts.next(), "strobe_ps")?));
            }
            "launch_ps" => {
                launch = Duration::from_ps_f64(parse_f64(parts.next(), "launch_ps")?);
            }
            "voh_mv" => voh = Some(Millivolts::new(parse_i32(parts.next(), "voh_mv")?)),
            "vol_mv" => vol = Some(Millivolts::new(parse_i32(parts.next(), "vol_mv")?)),
            "threshold_mv" => {
                threshold = Some(Millivolts::new(parse_i32(parts.next(), "threshold_mv")?))
            }
            _ => return Err(AteError::BadProgram { reason: "unknown key" }),
        }
        if parts.next().is_some() {
            return Err(AteError::BadProgram { reason: "trailing tokens on line" });
        }
    }

    let pattern = pattern.ok_or(AteError::BadProgram { reason: "missing pattern" })?;
    let rate = rate.ok_or(AteError::BadProgram { reason: "missing rate_gbps" })?;
    let voh = voh.ok_or(AteError::BadProgram { reason: "missing voh_mv" })?;
    let vol = vol.ok_or(AteError::BadProgram { reason: "missing vol_mv" })?;
    if voh <= vol {
        return Err(AteError::BadProgram { reason: "voh must exceed vol" });
    }
    let drive = LevelSet::new(voh, vol);
    let program = TestProgram {
        pattern,
        timing: TimingPlan {
            rate,
            strobe_offset: strobe.unwrap_or(rate.unit_interval() / 2),
            launch_delay: launch,
        },
        levels: LevelPlan { drive, compare_threshold: threshold.unwrap_or(drive.mid()) },
    };
    program.validate()?;
    Ok(program)
}

fn parse_f64(token: Option<&str>, key: &'static str) -> Result<f64> {
    token.and_then(|t| t.parse().ok()).ok_or(AteError::BadProgram { reason: key_err(key) })
}

fn parse_i32(token: Option<&str>, key: &'static str) -> Result<i32> {
    token.and_then(|t| t.parse().ok()).ok_or(AteError::BadProgram { reason: key_err(key) })
}

fn key_err(key: &'static str) -> &'static str {
    // Map each key to a static diagnostic (no formatting in error types).
    match key {
        "rate_gbps" => "bad rate_gbps value",
        "strobe_ps" => "bad strobe_ps value",
        "launch_ps" => "bad launch_ps value",
        "voh_mv" => "bad voh_mv value",
        "vol_mv" => "bad vol_mv value",
        "threshold_mv" => "bad threshold_mv value",
        _ => "bad value",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstime::DataRate;

    #[test]
    fn round_trips_every_preset() {
        let programs = [
            TestProgram::prbs_eye(DataRate::from_gbps(2.5), 4_096),
            TestProgram::clock(DataRate::from_gbps(1.25), 256),
            TestProgram::fixed(BitStream::from_str_bits("110010"), DataRate::from_gbps(4.0)),
        ];
        for p in programs {
            let text = to_text(&p);
            let back = from_text(&text).unwrap();
            assert_eq!(back, p, "round trip failed for:\n{text}");
        }
    }

    #[test]
    fn hand_written_program_parses() {
        let text = "\
# my eye test
pattern prbs 2048
rate_gbps 5.0
strobe_ps 100
voh_mv -900
vol_mv -1700
";
        let p = from_text(text).unwrap();
        assert_eq!(p.n_bits(), 2_048);
        assert_eq!(p.timing.rate, DataRate::from_gbps(5.0));
        // Defaults: threshold at mid, zero launch delay.
        assert_eq!(p.levels.compare_threshold, Millivolts::new(-1300));
        assert_eq!(p.timing.launch_delay, Duration::ZERO);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text =
            "\n# comment\npattern clock 64\n# another\nrate_gbps 1.0\n\nvoh_mv 0\nvol_mv -800\n";
        assert!(from_text(text).is_ok());
    }

    #[test]
    fn unknown_keys_rejected() {
        let text = "pattern prbs 64\nrate_gbps 1.0\nvoh_mv 0\nvol_mv -800\nwibble 3\n";
        assert!(matches!(from_text(text), Err(AteError::BadProgram { reason: "unknown key" })));
    }

    #[test]
    fn missing_fields_rejected() {
        assert!(matches!(
            from_text("rate_gbps 1.0\nvoh_mv 0\nvol_mv -800\n"),
            Err(AteError::BadProgram { reason: "missing pattern" })
        ));
        assert!(matches!(
            from_text("pattern prbs 64\nvoh_mv 0\nvol_mv -800\n"),
            Err(AteError::BadProgram { reason: "missing rate_gbps" })
        ));
        assert!(matches!(
            from_text("pattern prbs 64\nrate_gbps 1.0\nvol_mv -800\n"),
            Err(AteError::BadProgram { reason: "missing voh_mv" })
        ));
    }

    #[test]
    fn malformed_values_rejected() {
        for bad in [
            "pattern prbs lots\nrate_gbps 1.0\nvoh_mv 0\nvol_mv -800\n",
            "pattern prbs 64\nrate_gbps fast\nvoh_mv 0\nvol_mv -800\n",
            "pattern prbs 64\nrate_gbps -2\nvoh_mv 0\nvol_mv -800\n",
            "pattern prbs 64\nrate_gbps 1.0\nvoh_mv zero\nvol_mv -800\n",
            "pattern prbs 64\nrate_gbps 1.0\nvoh_mv 0\nvol_mv -800\nstrobe_ps wat\n",
            "pattern fixed 10x1\nrate_gbps 1.0\nvoh_mv 0\nvol_mv -800\n",
            "pattern wiggle 64\nrate_gbps 1.0\nvoh_mv 0\nvol_mv -800\n",
            "pattern prbs\nrate_gbps 1.0\nvoh_mv 0\nvol_mv -800\n",
            "pattern prbs 64 extra\nrate_gbps 1.0\nvoh_mv 0\nvol_mv -800\n",
        ] {
            assert!(from_text(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn inverted_levels_rejected() {
        let text = "pattern prbs 64\nrate_gbps 1.0\nvoh_mv -1700\nvol_mv -900\n";
        assert!(matches!(
            from_text(text),
            Err(AteError::BadProgram { reason: "voh must exceed vol" })
        ));
    }

    #[test]
    fn validation_applies_after_parse() {
        // Strobe outside the bit period: structurally fine, semantically
        // invalid.
        let text = "pattern prbs 64\nrate_gbps 2.5\nstrobe_ps 500\nvoh_mv -900\nvol_mv -1700\n";
        assert!(from_text(text).is_err());
    }

    #[test]
    fn parsed_program_actually_runs() {
        let text = to_text(&TestProgram::prbs_eye(DataRate::from_gbps(2.5), 2_048));
        let program = from_text(&text).unwrap();
        let mut system = crate::TestSystem::optical_testbed().unwrap();
        let result = system.run(&program, 3).unwrap();
        assert!(result.eye.opening_ui().value() > 0.8);
    }
}
