//! Property-based tests for test programs, the text format, and the cost
//! model.
//!
//! Cases are drawn from named substreams of the first-party `rng` crate, so
//! every run covers the same randomized slice of the input space
//! deterministically.

use ate::program::{LevelPlan, PatternPlan, TestProgram, TimingPlan};
use ate::textfmt::{from_text, to_text};
use pstime::{DataRate, Duration, Millivolts};
use rng::{Rng, SeedTree};
use signal::{BitStream, LevelSet};

const CASES: usize = 64;

fn cases(label: &str) -> (Rng, usize) {
    (SeedTree::new(0xa7e).stream("ate.proptests").stream(label).rng(), CASES)
}

fn arbitrary_program(rng: &mut Rng) -> TestProgram {
    let pattern = match rng.range_u32(0..3) {
        0 => PatternPlan::Prbs { n_bits: rng.range_usize(64..8_192) },
        1 => PatternPlan::Clock { n_bits: rng.range_usize(2..512) },
        _ => {
            let len = rng.range_usize(1..128);
            PatternPlan::Fixed(BitStream::from_fn(len, |_| rng.bool()))
        }
    };
    // Rates whose UI is exact in fs, drive levels strictly ordered.
    let rate_tenths = rng.range_u64(1..50);
    let strobe_pct = rng.range_i64(0..100);
    let voh = rng.range_i32(-1000..-800);
    let vol = rng.range_i32(-1800..-1600);
    let rate = DataRate::from_bps(rate_tenths * 100_000_000);
    let ui = rate.unit_interval();
    let drive = LevelSet::new(Millivolts::new(voh), Millivolts::new(vol));
    TestProgram {
        pattern,
        timing: TimingPlan {
            rate,
            strobe_offset: ui.mul_f64(strobe_pct as f64 / 101.0),
            launch_delay: Duration::from_ps(strobe_pct),
        },
        levels: LevelPlan { compare_threshold: drive.mid(), drive },
    }
}

/// Random text over the same alphabet the old proptest regex used:
/// `[a-z0-9_ .\n#-]{0,200}`.
fn arbitrary_text(rng: &mut Rng) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_ .\n#-";
    let len = rng.range_usize(0..201);
    (0..len).map(|_| ALPHABET[rng.range_usize(0..ALPHABET.len())] as char).collect()
}

#[test]
fn valid_programs_round_trip_through_text() {
    let (mut rng, n) = cases("text-round-trip");
    for _ in 0..n {
        let program = arbitrary_program(&mut rng);
        if program.validate().is_err() {
            continue;
        }
        let text = to_text(&program);
        let back = from_text(&text).expect("serialized program must parse");
        // The strobe may round at the femtosecond level through the ps
        // float; everything else is exact.
        assert_eq!(&back.pattern, &program.pattern);
        assert_eq!(back.timing.rate, program.timing.rate);
        assert_eq!(back.levels.drive, program.levels.drive);
        assert_eq!(back.levels.compare_threshold, program.levels.compare_threshold);
        assert!(
            (back.timing.strobe_offset - program.timing.strobe_offset).abs()
                <= Duration::from_fs(500),
            "strobe drift for {text}"
        );
        assert!(
            (back.timing.launch_delay - program.timing.launch_delay).abs()
                <= Duration::from_fs(500),
            "launch drift for {text}"
        );
    }
}

#[test]
fn parser_never_panics_on_arbitrary_text() {
    let (mut rng, n) = cases("parser-no-panic");
    for _ in 0..n {
        let text = arbitrary_text(&mut rng);
        // Outcome may be Ok or Err; it must not panic.
        let _ = from_text(&text);
    }
}

#[test]
fn validation_is_stable_under_round_trip() {
    let (mut rng, n) = cases("validation-stable");
    for _ in 0..n {
        let program = arbitrary_program(&mut rng);
        if program.validate().is_err() {
            continue;
        }
        let back = from_text(&to_text(&program)).expect("parses");
        assert!(back.validate().is_ok());
    }
}

#[test]
fn bom_totals_are_sums() {
    use ate::cost::BillOfMaterials;
    let (mut rng, n) = cases("bom-totals");
    for _ in 0..n {
        let lines: Vec<(u32, f64)> = (0..rng.range_usize(1..10))
            .map(|_| (rng.range_u32(1..10), rng.range_f64(0.0, 500.0)))
            .collect();
        let mut bom = BillOfMaterials::new();
        let mut expected = 0.0;
        for (i, (qty, cost)) in lines.iter().enumerate() {
            bom = bom.with(format!("part{i}"), *qty, *cost);
            expected += f64::from(*qty) * cost;
        }
        assert!((bom.total() - expected).abs() < 1e-9, "lines={lines:?}");
    }
}

#[test]
fn comparison_tolerance_is_symmetric_in_sign() {
    use ate::measurement::{Comparison, PaperValue};
    let (mut rng, n) = cases("comparison-symmetry");
    for _ in 0..n {
        let paper = rng.range_f64(0.1, 1000.0);
        let rel = rng.range_f64(-0.2, 0.2);
        let tol = rng.range_f64(0.0, 0.3);
        let above =
            Comparison::new("X", "q", "u", PaperValue::new(paper, tol), paper * (1.0 + rel));
        let below =
            Comparison::new("X", "q", "u", PaperValue::new(paper, tol), paper * (1.0 - rel));
        assert_eq!(
            above.within_tolerance(),
            below.within_tolerance(),
            "paper={paper} rel={rel} tol={tol}"
        );
        assert!(
            (above.relative_error() - rel.abs()).abs() < 1e-9,
            "paper={paper} rel={rel} tol={tol}"
        );
    }
}
