//! Property-based tests for test programs, the text format, and the cost
//! model.

use ate::program::{LevelPlan, PatternPlan, TestProgram, TimingPlan};
use ate::textfmt::{from_text, to_text};
use proptest::prelude::*;
use pstime::{DataRate, Duration, Millivolts};
use signal::{BitStream, LevelSet};

fn arbitrary_program() -> impl Strategy<Value = TestProgram> {
    let pattern = prop_oneof![
        (64usize..8_192).prop_map(|n| PatternPlan::Prbs { n_bits: n }),
        (2usize..512).prop_map(|n| PatternPlan::Clock { n_bits: n }),
        proptest::collection::vec(any::<bool>(), 1..128)
            .prop_map(|bits| PatternPlan::Fixed(BitStream::from(bits))),
    ];
    // Rates whose UI is exact in fs, drive levels strictly ordered.
    (pattern, 1u64..50, 0i64..100, -1000i32..-800, -1800i32..-1600).prop_map(
        |(pattern, rate_tenths, strobe_pct, voh, vol)| {
            let rate = DataRate::from_bps(rate_tenths * 100_000_000);
            let ui = rate.unit_interval();
            let drive = LevelSet::new(Millivolts::new(voh), Millivolts::new(vol));
            TestProgram {
                pattern,
                timing: TimingPlan {
                    rate,
                    strobe_offset: ui.mul_f64(strobe_pct as f64 / 101.0),
                    launch_delay: Duration::from_ps(strobe_pct),
                },
                levels: LevelPlan { compare_threshold: drive.mid(), drive },
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn valid_programs_round_trip_through_text(program in arbitrary_program()) {
        prop_assume!(program.validate().is_ok());
        let text = to_text(&program);
        let back = from_text(&text).expect("serialized program must parse");
        // The strobe may round at the femtosecond level through the ps
        // float; everything else is exact.
        prop_assert_eq!(&back.pattern, &program.pattern);
        prop_assert_eq!(back.timing.rate, program.timing.rate);
        prop_assert_eq!(back.levels.drive, program.levels.drive);
        prop_assert_eq!(back.levels.compare_threshold, program.levels.compare_threshold);
        prop_assert!(
            (back.timing.strobe_offset - program.timing.strobe_offset).abs()
                <= Duration::from_fs(500)
        );
        prop_assert!(
            (back.timing.launch_delay - program.timing.launch_delay).abs()
                <= Duration::from_fs(500)
        );
    }

    #[test]
    fn parser_never_panics_on_arbitrary_text(text in "[a-z0-9_ .\n#-]{0,200}") {
        // Outcome may be Ok or Err; it must not panic.
        let _ = from_text(&text);
    }

    #[test]
    fn validation_is_stable_under_round_trip(program in arbitrary_program()) {
        prop_assume!(program.validate().is_ok());
        let back = from_text(&to_text(&program)).expect("parses");
        prop_assert!(back.validate().is_ok());
    }

    #[test]
    fn bom_totals_are_sums(lines in proptest::collection::vec((1u32..10, 0.0f64..500.0), 1..10)) {
        use ate::cost::BillOfMaterials;
        let mut bom = BillOfMaterials::new();
        let mut expected = 0.0;
        for (i, (qty, cost)) in lines.iter().enumerate() {
            bom = bom.with(format!("part{i}"), *qty, *cost);
            expected += f64::from(*qty) * cost;
        }
        prop_assert!((bom.total() - expected).abs() < 1e-9);
    }

    #[test]
    fn comparison_tolerance_is_symmetric_in_sign(
        paper in 0.1f64..1000.0,
        rel in -0.2f64..0.2,
        tol in 0.0f64..0.3,
    ) {
        use ate::measurement::{Comparison, PaperValue};
        let above = Comparison::new("X", "q", "u", PaperValue::new(paper, tol), paper * (1.0 + rel));
        let below = Comparison::new("X", "q", "u", PaperValue::new(paper, tol), paper * (1.0 - rel));
        prop_assert_eq!(above.within_tolerance(), below.within_tolerance());
        prop_assert!((above.relative_error() - rel.abs()).abs() < 1e-9);
    }
}
