//! Property-based tests for the Digital Logic Core substrate.
//!
//! Cases are drawn from named substreams of the first-party `rng` crate, so
//! every run covers the same randomized slice of the input space
//! deterministically.

use dlc::flash::{Bitstream, FlashMemory};
use dlc::jtag::JtagPort;
use dlc::sram::Sram;
use dlc::usb::{Opcode, Packet};
use dlc::{Lfsr, PrbsPolynomial};
use rng::{Rng, SeedTree};
use signal::BitStream;

const CASES: usize = 48;

fn cases(label: &str) -> (Rng, usize) {
    (SeedTree::new(0xd1c).stream("dlc.proptests").stream(label).rng(), CASES)
}

fn random_u32_frames(rng: &mut Rng, max_len: usize) -> Vec<u32> {
    let len = rng.range_usize(1..max_len);
    (0..len).map(|_| rng.next_u32()).collect()
}

#[test]
fn lfsr_never_reaches_zero_state() {
    let (mut rng, n) = cases("lfsr-nonzero");
    for _ in 0..n {
        let seed = rng.next_u32();
        let steps = rng.range_usize(1..2_000);
        let mut lfsr = Lfsr::new(PrbsPolynomial::Prbs15, seed);
        for _ in 0..steps {
            lfsr.next_bit();
            assert_ne!(lfsr.state(), 0, "LFSR locked up (seed={seed:#x})");
        }
    }
}

#[test]
fn lfsr_windows_are_balanced() {
    // Any 1024-bit window of PRBS-15 is roughly half ones.
    let (mut rng, n) = cases("lfsr-balance");
    for _ in 0..n {
        let seed = rng.range_u32(1..0x7FFF);
        let mut lfsr = Lfsr::new(PrbsPolynomial::Prbs15, seed);
        let bits = lfsr.generate(1024);
        let ones = bits.count_ones();
        assert!((400..=624).contains(&ones), "ones = {ones} (seed={seed:#x})");
    }
}

#[test]
fn sram_bit_round_trip() {
    let (mut rng, n) = cases("sram-bits");
    for _ in 0..n {
        let len = rng.range_usize(1..512);
        let addr = rng.range_u32(0..16);
        let mut sram = Sram::new(1024);
        let bits = BitStream::from_fn(len, |_| rng.bool());
        sram.load_bits(addr, &bits).unwrap();
        assert_eq!(sram.read_bits(addr, bits.len()).unwrap(), bits, "addr={addr}");
    }
}

#[test]
fn sram_word_round_trip() {
    let (mut rng, n) = cases("sram-words");
    for _ in 0..n {
        let len = rng.range_usize(1..64);
        let addr = rng.range_u32(0..32);
        let words: Vec<u16> = (0..len).map(|_| rng.next_u32() as u16).collect();
        let mut sram = Sram::new(256);
        sram.load(addr, &words).unwrap();
        for (i, w) in words.iter().enumerate() {
            assert_eq!(sram.read(addr + i as u32).unwrap(), *w, "addr={addr} i={i}");
        }
    }
}

#[test]
fn bitstream_round_trips_and_rejects_any_single_bit_flip() {
    let (mut rng, n) = cases("bitstream-flip");
    for _ in 0..n {
        let frames = random_u32_frames(&mut rng, 64);
        let bs = Bitstream::new(dlc::flash::DEVICE_ID, frames);
        let words = bs.to_words();
        assert_eq!(Bitstream::from_words(&words).unwrap(), bs.clone());

        // Flip one bit anywhere: the image must never parse back equal to
        // the original. (Payload/CRC/framing flips fail parse outright; a
        // device-id flip parses but targets a different device, which the
        // FPGA's configure step rejects.)
        let mut corrupted = words.clone();
        let idx = rng.range_usize(0..corrupted.len());
        let flip_bit = rng.range_u32(0..32);
        corrupted[idx] ^= 1 << flip_bit;
        match Bitstream::from_words(&corrupted) {
            Err(_) => {}
            Ok(parsed) => {
                assert_ne!(parsed.device_id(), bs.device_id(), "idx={idx} bit={flip_bit}");
            }
        }
    }
}

#[test]
fn flash_program_verify_any_image() {
    let (mut rng, n) = cases("flash");
    for _ in 0..n {
        let frames = random_u32_frames(&mut rng, 64);
        let bs = Bitstream::new(dlc::flash::DEVICE_ID, frames);
        let mut flash = FlashMemory::new(512);
        flash.program(&bs.to_words()).unwrap();
        assert_eq!(flash.load_bitstream().unwrap(), bs);
    }
}

#[test]
fn jtag_flash_flow_for_arbitrary_images() {
    let (mut rng, n) = cases("jtag");
    for _ in 0..n {
        let frames = random_u32_frames(&mut rng, 32);
        let bs = Bitstream::new(dlc::flash::DEVICE_ID, frames);
        let mut port = JtagPort::new(256);
        port.program_flash(&bs).unwrap();
        assert_eq!(port.flash().load_bitstream().unwrap(), bs);
        // IDCODE still reads correctly afterwards.
        assert_eq!(port.read_idcode(), dlc::flash::DEVICE_ID);
    }
}

#[test]
fn usb_packets_round_trip() {
    let (mut rng, n) = cases("usb-round-trip");
    for _ in 0..n {
        let len = rng.range_usize(0..64);
        let payload: Vec<u16> = (0..len).map(|_| rng.next_u32() as u16).collect();
        let p = Packet::command(Opcode::LoadSram, &payload);
        let parsed = Packet::parse(p.as_bytes()).unwrap();
        assert_eq!(parsed.payload(), payload);
        assert_eq!(parsed.opcode().unwrap(), Opcode::LoadSram);
    }
}

#[test]
fn usb_detects_any_single_byte_corruption() {
    let (mut rng, n) = cases("usb-corruption");
    for _ in 0..n {
        let len = rng.range_usize(0..32);
        let payload: Vec<u16> = (0..len).map(|_| rng.next_u32() as u16).collect();
        let xor = rng.range_u32(1..256) as u8;
        let p = Packet::command(Opcode::ReadSram, &payload);
        let mut bytes = p.as_bytes().to_vec();
        let idx = rng.range_usize(0..bytes.len());
        bytes[idx] ^= xor;
        // Either parse fails (checksum/framing) or the opcode decodes to
        // something: a corrupted length byte is always caught; a corrupted
        // payload byte is caught by the checksum.
        if idx != 0 {
            assert!(Packet::parse(&bytes).is_err(), "idx={idx} xor={xor:#x}");
        }
    }
}

#[test]
fn tap_state_machine_always_recoverable() {
    use dlc::jtag::TapState;
    let (mut rng, n) = cases("tap");
    for _ in 0..n {
        let walk_len = rng.range_usize(0..64);
        let mut state = TapState::TestLogicReset;
        for _ in 0..walk_len {
            state = state.next(rng.bool());
        }
        // Five ones always reach reset, from anywhere.
        for _ in 0..5 {
            state = state.next(true);
        }
        assert_eq!(state, TapState::TestLogicReset);
    }
}
