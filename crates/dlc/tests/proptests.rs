//! Property-based tests for the Digital Logic Core substrate.

use proptest::collection::vec;
use proptest::prelude::*;

use dlc::flash::{Bitstream, FlashMemory};
use dlc::jtag::JtagPort;
use dlc::sram::Sram;
use dlc::usb::{Opcode, Packet};
use dlc::{Lfsr, PrbsPolynomial};
use signal::BitStream;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lfsr_never_reaches_zero_state(seed in any::<u32>(), steps in 1usize..2_000) {
        let mut lfsr = Lfsr::new(PrbsPolynomial::Prbs15, seed);
        for _ in 0..steps {
            lfsr.next_bit();
            prop_assert_ne!(lfsr.state(), 0, "LFSR locked up");
        }
    }

    #[test]
    fn lfsr_windows_are_balanced(seed in 1u32..0x7FFF) {
        // Any 1024-bit window of PRBS-15 is roughly half ones.
        let mut lfsr = Lfsr::new(PrbsPolynomial::Prbs15, seed);
        let bits = lfsr.generate(1024);
        let ones = bits.count_ones();
        prop_assert!((400..=624).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn sram_bit_round_trip(data in vec(any::<bool>(), 1..512), addr in 0u32..16) {
        let mut sram = Sram::new(1024);
        let bits = BitStream::from(data);
        sram.load_bits(addr, &bits).unwrap();
        prop_assert_eq!(sram.read_bits(addr, bits.len()).unwrap(), bits);
    }

    #[test]
    fn sram_word_round_trip(words in vec(any::<u16>(), 1..64), addr in 0u32..32) {
        let mut sram = Sram::new(256);
        sram.load(addr, &words).unwrap();
        for (i, w) in words.iter().enumerate() {
            prop_assert_eq!(sram.read(addr + i as u32).unwrap(), *w);
        }
    }

    #[test]
    fn bitstream_round_trips_and_rejects_any_single_bit_flip(
        frames in vec(any::<u32>(), 1..64),
        flip_word in any::<prop::sample::Index>(),
        flip_bit in 0u32..32,
    ) {
        let bs = Bitstream::new(dlc::flash::DEVICE_ID, frames);
        let words = bs.to_words();
        prop_assert_eq!(Bitstream::from_words(&words).unwrap(), bs.clone());

        // Flip one bit anywhere: the image must never parse back equal to
        // the original. (Payload/CRC/framing flips fail parse outright; a
        // device-id flip parses but targets a different device, which the
        // FPGA's configure step rejects.)
        let mut corrupted = words.clone();
        let idx = flip_word.index(corrupted.len());
        corrupted[idx] ^= 1 << flip_bit;
        match Bitstream::from_words(&corrupted) {
            Err(_) => {}
            Ok(parsed) => {
                prop_assert_ne!(parsed.device_id(), bs.device_id());
            }
        }
    }

    #[test]
    fn flash_program_verify_any_image(frames in vec(any::<u32>(), 1..64)) {
        let bs = Bitstream::new(dlc::flash::DEVICE_ID, frames);
        let mut flash = FlashMemory::new(512);
        flash.program(&bs.to_words()).unwrap();
        prop_assert_eq!(flash.load_bitstream().unwrap(), bs);
    }

    #[test]
    fn jtag_flash_flow_for_arbitrary_images(frames in vec(any::<u32>(), 1..32)) {
        let bs = Bitstream::new(dlc::flash::DEVICE_ID, frames);
        let mut port = JtagPort::new(256);
        port.program_flash(&bs).unwrap();
        prop_assert_eq!(port.flash().load_bitstream().unwrap(), bs);
        // IDCODE still reads correctly afterwards.
        prop_assert_eq!(port.read_idcode(), dlc::flash::DEVICE_ID);
    }

    #[test]
    fn usb_packets_round_trip(payload in vec(any::<u16>(), 0..64)) {
        let p = Packet::command(Opcode::LoadSram, &payload);
        let parsed = Packet::parse(p.as_bytes()).unwrap();
        prop_assert_eq!(parsed.payload(), payload);
        prop_assert_eq!(parsed.opcode().unwrap(), Opcode::LoadSram);
    }

    #[test]
    fn usb_detects_any_single_byte_corruption(
        payload in vec(any::<u16>(), 0..32),
        which in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let p = Packet::command(Opcode::ReadSram, &payload);
        let mut bytes = p.as_bytes().to_vec();
        let idx = which.index(bytes.len());
        bytes[idx] ^= xor;
        // Either parse fails (checksum/framing) or the opcode decodes to
        // something: a corrupted length byte is always caught; a corrupted
        // payload byte is caught by the checksum.
        if idx != 0 {
            prop_assert!(Packet::parse(&bytes).is_err());
        }
    }

    #[test]
    fn tap_state_machine_always_recoverable(walk in vec(any::<bool>(), 0..64)) {
        use dlc::jtag::TapState;
        let mut state = TapState::TestLogicReset;
        for tms in walk {
            state = state.next(tms);
        }
        // Five ones always reach reset, from anywhere.
        for _ in 0..5 {
            state = state.next(true);
        }
        prop_assert_eq!(state, TapState::TestLogicReset);
    }
}
