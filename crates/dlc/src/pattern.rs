//! Pattern engines: the FPGA state machines that synthesize test stimuli.
//!
//! §2: "State machines encoded in the FPGA, together with higher-speed PECL
//! multiplexers and sampling circuits synthesize the desired tests in real
//! time." The DLC offers three families of source, all implemented here:
//!
//! * **algorithmic** generators (the memory-test classics: counting,
//!   walking ones, checkerboard, plus clock and burst primitives),
//! * **LFSR/PRBS** sources (used for the paper's eye diagrams),
//! * **memory playback** from SRAM (when algorithmic generation "is not
//!   feasible").

use core::fmt;

use signal::BitStream;

use crate::lfsr::{Lfsr, PrbsPolynomial};
use crate::sram::Sram;
use crate::{DlcError, Result};

/// The pattern programmed onto one DLC channel.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PatternKind {
    /// Constant logic level.
    Constant(bool),
    /// `1010…` clock pattern, starting high.
    Clock,
    /// A clock divided by `2·half_period` bits per cycle (e.g. a frame
    /// marker much slower than the data).
    DividedClock {
        /// Bits per half period.
        half_period: usize,
    },
    /// Repeating fixed word, MSB first.
    Word {
        /// The word value.
        word: u64,
        /// Word width in bits (1–64).
        width: u32,
    },
    /// Counting pattern: successive values of an 8-bit counter, MSB first.
    Counting,
    /// Walking ones across `width` bits.
    WalkingOnes {
        /// Walk width in bits.
        width: u32,
    },
    /// 0101/1010 checkerboard alternating each `width`-bit row.
    Checkerboard {
        /// Row width in bits.
        width: u32,
    },
    /// PRBS-7 from the channel LFSR.
    Prbs7 {
        /// LFSR seed.
        seed: u32,
    },
    /// PRBS-15 from the channel LFSR (the paper's eye-diagram source).
    Prbs15 {
        /// LFSR seed.
        seed: u32,
    },
    /// PRBS-23 from the channel LFSR.
    Prbs23 {
        /// LFSR seed.
        seed: u32,
    },
    /// PRBS-31 from the channel LFSR.
    Prbs31 {
        /// LFSR seed.
        seed: u32,
    },
    /// Playback from SRAM: `n_bits` starting at word `addr`, looping.
    SramPlayback {
        /// Start word address.
        addr: u32,
        /// Pattern length in bits.
        n_bits: usize,
    },
    /// An arbitrary host-supplied pattern, looping.
    Explicit(BitStream),
}

impl fmt::Display for PatternKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternKind::Constant(level) => write!(f, "constant {}", u8::from(*level)),
            PatternKind::Clock => write!(f, "clock"),
            PatternKind::DividedClock { half_period } => {
                write!(f, "clock/{}", half_period * 2)
            }
            PatternKind::Word { word, width } => write!(f, "word {word:#x}/{width}"),
            PatternKind::Counting => write!(f, "counting"),
            PatternKind::WalkingOnes { width } => write!(f, "walking-ones/{width}"),
            PatternKind::Checkerboard { width } => write!(f, "checkerboard/{width}"),
            PatternKind::Prbs7 { .. } => write!(f, "PRBS-7"),
            PatternKind::Prbs15 { .. } => write!(f, "PRBS-15"),
            PatternKind::Prbs23 { .. } => write!(f, "PRBS-23"),
            PatternKind::Prbs31 { .. } => write!(f, "PRBS-31"),
            PatternKind::SramPlayback { addr, n_bits } => {
                write!(f, "sram@{addr:#x}+{n_bits}b")
            }
            PatternKind::Explicit(bits) => write!(f, "explicit[{}]", bits.len()),
        }
    }
}

/// A running pattern engine: the stateful generator for one channel.
///
/// # Examples
///
/// ```
/// use dlc::{PatternEngine, PatternKind};
///
/// let mut engine = PatternEngine::new(PatternKind::Clock)?;
/// assert_eq!(engine.generate(6).to_string(), "101010");
/// // State persists across calls.
/// assert_eq!(engine.generate(2).to_string(), "10");
/// # Ok::<(), dlc::DlcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PatternEngine {
    kind: PatternKind,
    state: EngineState,
}

#[derive(Debug, Clone)]
enum EngineState {
    Position(u64),
    Lfsr(Lfsr),
}

impl PatternEngine {
    /// Creates an engine for `kind` (SRAM playback needs
    /// [`new_with_sram`](Self::new_with_sram)).
    ///
    /// # Errors
    ///
    /// [`DlcError::InvalidBitstream`] for structurally invalid patterns
    /// (zero-width words, empty explicit patterns, SRAM playback without an
    /// SRAM).
    pub fn new(kind: PatternKind) -> Result<PatternEngine> {
        match &kind {
            PatternKind::Word { width, .. } if *width == 0 || *width > 64 => {
                return Err(DlcError::InvalidBitstream { reason: "word width must be 1..=64" })
            }
            PatternKind::WalkingOnes { width } | PatternKind::Checkerboard { width }
                if *width == 0 =>
            {
                return Err(DlcError::InvalidBitstream { reason: "pattern width must be nonzero" })
            }
            PatternKind::DividedClock { half_period } if *half_period == 0 => {
                return Err(DlcError::InvalidBitstream { reason: "half period must be nonzero" })
            }
            PatternKind::Explicit(bits) if bits.is_empty() => {
                return Err(DlcError::InvalidBitstream { reason: "explicit pattern is empty" })
            }
            PatternKind::SramPlayback { .. } => {
                return Err(DlcError::InvalidBitstream {
                    reason: "SRAM playback requires new_with_sram",
                })
            }
            _ => {}
        }
        let state = match &kind {
            PatternKind::Prbs7 { seed } => {
                EngineState::Lfsr(Lfsr::new(PrbsPolynomial::Prbs7, *seed))
            }
            PatternKind::Prbs15 { seed } => {
                EngineState::Lfsr(Lfsr::new(PrbsPolynomial::Prbs15, *seed))
            }
            PatternKind::Prbs23 { seed } => {
                EngineState::Lfsr(Lfsr::new(PrbsPolynomial::Prbs23, *seed))
            }
            PatternKind::Prbs31 { seed } => {
                EngineState::Lfsr(Lfsr::new(PrbsPolynomial::Prbs31, *seed))
            }
            _ => EngineState::Position(0),
        };
        Ok(PatternEngine { kind, state })
    }

    /// Creates an SRAM-playback engine, materializing the pattern from the
    /// memory at construction (the hardware streams it; the effect is the
    /// same).
    ///
    /// # Errors
    ///
    /// Propagates SRAM range errors; rejects zero-length playback.
    pub fn new_with_sram(addr: u32, n_bits: usize, sram: &Sram) -> Result<PatternEngine> {
        if n_bits == 0 {
            return Err(DlcError::InvalidBitstream { reason: "SRAM playback length is zero" });
        }
        let bits = sram.read_bits(addr, n_bits)?;
        Ok(PatternEngine {
            kind: PatternKind::SramPlayback { addr, n_bits },
            state: EngineState::Position(0),
        }
        .with_materialized(bits))
    }

    fn with_materialized(mut self, bits: BitStream) -> PatternEngine {
        // Stash the materialized pattern by replacing the kind's payload.
        if let PatternKind::SramPlayback { .. } = self.kind {
            self.kind = PatternKind::Explicit(bits);
        }
        self
    }

    /// The configured pattern.
    pub fn kind(&self) -> &PatternKind {
        &self.kind
    }

    /// The bit at stream position `pos` for stateless pattern families.
    fn bit_at(kind: &PatternKind, pos: u64) -> bool {
        match kind {
            PatternKind::Constant(level) => *level,
            PatternKind::Clock => pos.is_multiple_of(2),
            PatternKind::DividedClock { half_period } => {
                (pos / *half_period as u64).is_multiple_of(2)
            }
            PatternKind::Word { word, width } => {
                let bit = pos % *width as u64;
                (word >> (*width as u64 - 1 - bit)) & 1 == 1
            }
            PatternKind::Counting => {
                let value = (pos / 8) & 0xFF;
                let bit = pos % 8;
                (value >> (7 - bit)) & 1 == 1
            }
            PatternKind::WalkingOnes { width } => {
                let row = (pos / *width as u64) % *width as u64;
                let col = pos % *width as u64;
                row == col
            }
            PatternKind::Checkerboard { width } => {
                let row = pos / *width as u64;
                let col = pos % *width as u64;
                (row + col).is_multiple_of(2)
            }
            PatternKind::Explicit(bits) => bits[(pos % bits.len() as u64) as usize],
            // LFSR and SRAM variants never reach here.
            // xlint::allow(no-panic-in-lib, bit_at is only called from the EngineState::Position arm and the constructor pairs Position exclusively with stateless kinds)
            _ => unreachable!("stateful pattern in bit_at"),
        }
    }

    /// Generates the next `n` bits, advancing the engine state.
    pub fn generate(&mut self, n: usize) -> BitStream {
        match &mut self.state {
            EngineState::Lfsr(lfsr) => lfsr.generate(n),
            EngineState::Position(pos) => {
                let start = *pos;
                *pos += n as u64;
                let kind = &self.kind;
                BitStream::from_fn(n, |i| Self::bit_at(kind, start + i as u64))
            }
        }
    }

    /// Resets the engine to its initial state.
    pub fn reset(&mut self) {
        match &mut self.state {
            EngineState::Position(pos) => *pos = 0,
            EngineState::Lfsr(lfsr) => {
                *lfsr = match &self.kind {
                    PatternKind::Prbs7 { seed } => Lfsr::new(PrbsPolynomial::Prbs7, *seed),
                    PatternKind::Prbs15 { seed } => Lfsr::new(PrbsPolynomial::Prbs15, *seed),
                    PatternKind::Prbs23 { seed } => Lfsr::new(PrbsPolynomial::Prbs23, *seed),
                    PatternKind::Prbs31 { seed } => Lfsr::new(PrbsPolynomial::Prbs31, *seed),
                    // xlint::allow(no-panic-in-lib, the constructor pairs EngineState::Lfsr exclusively with the four PRBS kinds)
                    _ => unreachable!("LFSR state with non-PRBS kind"),
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_and_constant() {
        let mut clk = PatternEngine::new(PatternKind::Clock).unwrap();
        assert_eq!(clk.generate(8).to_string(), "10101010");
        let mut one = PatternEngine::new(PatternKind::Constant(true)).unwrap();
        assert_eq!(one.generate(4).to_string(), "1111");
        let mut zero = PatternEngine::new(PatternKind::Constant(false)).unwrap();
        assert_eq!(zero.generate(4).to_string(), "0000");
    }

    #[test]
    fn divided_clock_frames() {
        // The Fig. 4 frame bit: much slower than the data channels.
        let mut frame = PatternEngine::new(PatternKind::DividedClock { half_period: 4 }).unwrap();
        assert_eq!(frame.generate(16).to_string(), "1111000011110000");
    }

    #[test]
    fn word_repeats_msb_first() {
        let mut w = PatternEngine::new(PatternKind::Word { word: 0xA, width: 4 }).unwrap();
        assert_eq!(w.generate(12).to_string(), "101010101010");
        let mut k7 = PatternEngine::new(PatternKind::Word { word: 0b1100000, width: 7 }).unwrap();
        assert_eq!(k7.generate(14).to_string(), "11000001100000");
    }

    #[test]
    fn counting_pattern() {
        let mut c = PatternEngine::new(PatternKind::Counting).unwrap();
        // Values 0, 1, 2 in 8-bit MSB-first form.
        assert_eq!(c.generate(24).to_string(), "000000000000000100000010");
    }

    #[test]
    fn walking_ones_diagonal() {
        let mut w = PatternEngine::new(PatternKind::WalkingOnes { width: 4 }).unwrap();
        assert_eq!(w.generate(16).to_string(), "1000010000100001");
    }

    #[test]
    fn checkerboard_rows_alternate() {
        let mut c = PatternEngine::new(PatternKind::Checkerboard { width: 4 }).unwrap();
        assert_eq!(c.generate(8).to_string(), "10100101");
    }

    #[test]
    fn state_persists_across_generate_calls() {
        let mut clk = PatternEngine::new(PatternKind::Clock).unwrap();
        let a = clk.generate(3);
        let b = clk.generate(3);
        assert_eq!(a.concat(&b).to_string(), "101010");
        clk.reset();
        assert_eq!(clk.generate(2).to_string(), "10");
    }

    #[test]
    fn prbs_engines_match_raw_lfsr() {
        let mut engine = PatternEngine::new(PatternKind::Prbs15 { seed: 0x1234 }).unwrap();
        let direct = Lfsr::new(PrbsPolynomial::Prbs15, 0x1234).generate(128);
        assert_eq!(engine.generate(128), direct);
        engine.reset();
        assert_eq!(engine.generate(128), direct);
        assert_eq!(format!("{}", engine.kind()), "PRBS-15");
    }

    #[test]
    fn all_prbs_orders_construct() {
        for kind in [
            PatternKind::Prbs7 { seed: 1 },
            PatternKind::Prbs23 { seed: 1 },
            PatternKind::Prbs31 { seed: 1 },
        ] {
            let mut e = PatternEngine::new(kind).unwrap();
            assert_eq!(e.generate(64).len(), 64);
        }
    }

    #[test]
    fn explicit_pattern_loops() {
        let mut e =
            PatternEngine::new(PatternKind::Explicit(BitStream::from_str_bits("110"))).unwrap();
        assert_eq!(e.generate(9).to_string(), "110110110");
    }

    #[test]
    fn sram_playback() {
        let mut sram = Sram::new(8);
        sram.load_bits(0, &BitStream::from_str_bits("10110")).unwrap();
        let mut e = PatternEngine::new_with_sram(0, 5, &sram).unwrap();
        assert_eq!(e.generate(10).to_string(), "1011010110");
    }

    #[test]
    fn invalid_configurations() {
        assert!(PatternEngine::new(PatternKind::Word { word: 0, width: 0 }).is_err());
        assert!(PatternEngine::new(PatternKind::Word { word: 0, width: 65 }).is_err());
        assert!(PatternEngine::new(PatternKind::WalkingOnes { width: 0 }).is_err());
        assert!(PatternEngine::new(PatternKind::Checkerboard { width: 0 }).is_err());
        assert!(PatternEngine::new(PatternKind::DividedClock { half_period: 0 }).is_err());
        assert!(PatternEngine::new(PatternKind::Explicit(BitStream::new())).is_err());
        assert!(PatternEngine::new(PatternKind::SramPlayback { addr: 0, n_bits: 8 }).is_err());
        let sram = Sram::new(1);
        assert!(PatternEngine::new_with_sram(0, 0, &sram).is_err());
        assert!(PatternEngine::new_with_sram(0, 999, &sram).is_err());
    }

    #[test]
    fn display_names() {
        assert_eq!(PatternKind::Clock.to_string(), "clock");
        assert_eq!(PatternKind::Constant(true).to_string(), "constant 1");
        assert_eq!(PatternKind::DividedClock { half_period: 4 }.to_string(), "clock/8");
        assert_eq!(PatternKind::Word { word: 0xA, width: 4 }.to_string(), "word 0xa/4");
        assert_eq!(PatternKind::Counting.to_string(), "counting");
        assert_eq!(PatternKind::WalkingOnes { width: 8 }.to_string(), "walking-ones/8");
        assert_eq!(PatternKind::Checkerboard { width: 2 }.to_string(), "checkerboard/2");
        assert_eq!(PatternKind::SramPlayback { addr: 4, n_bits: 9 }.to_string(), "sram@0x4+9b");
        assert_eq!(
            PatternKind::Explicit(BitStream::from_str_bits("01")).to_string(),
            "explicit[2]"
        );
    }
}
