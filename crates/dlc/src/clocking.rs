//! FPGA clock management: the DCM between the RF input and the fabric.
//!
//! The paper's Fig. 2 routes the RF clock into the FPGA, where a Virtex-II
//! digital clock manager (DCM) synthesizes the fabric and I/O clocks:
//! divided clocks for the pattern state machines and (bounded) multiplied
//! clocks for the fastest I/O. A DCM is not free — it multiplies phase
//! noise and has a legal input/output frequency window — and those limits
//! decide how the 16 CMOS lanes can be clocked, so the model enforces
//! them.

use core::fmt;

use pstime::{Duration, Frequency};

use crate::{DlcError, Result};

/// Virtex-II-class DCM limits (low-frequency mode).
pub mod limits {
    /// Minimum input clock (Hz).
    pub const F_IN_MIN_HZ: u64 = 1_000_000;
    /// Maximum input clock (Hz).
    pub const F_IN_MAX_HZ: u64 = 420_000_000;
    /// Minimum synthesized output (Hz).
    pub const F_OUT_MIN_HZ: u64 = 1_500_000;
    /// Maximum synthesized output (Hz).
    pub const F_OUT_MAX_HZ: u64 = 420_000_000;
    /// Multiplier range.
    pub const MULT_RANGE: core::ops::RangeInclusive<u32> = 2..=32;
    /// Divider range.
    pub const DIV_RANGE: core::ops::RangeInclusive<u32> = 1..=32;
}

/// A configured digital clock manager: `f_out = f_in × multiply / divide`.
///
/// # Examples
///
/// ```
/// use dlc::clocking::Dcm;
/// use pstime::Frequency;
///
/// // 100 MHz board clock -> 312.5 MHz lane clock (x25 / 8).
/// let dcm = Dcm::new(Frequency::from_mhz(100), 25, 8)?;
/// assert_eq!(dcm.output().as_hz(), 312_500_000);
/// # Ok::<(), dlc::DlcError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dcm {
    input: Frequency,
    multiply: u32,
    divide: u32,
    input_jitter_rms: Duration,
}

impl Dcm {
    /// Configures a DCM, validating frequencies against the device limits.
    ///
    /// # Errors
    ///
    /// [`DlcError::InvalidBitstream`] when the input or synthesized output
    /// is outside the legal window, or multiply/divide are out of range.
    pub fn new(input: Frequency, multiply: u32, divide: u32) -> Result<Dcm> {
        if !limits::MULT_RANGE.contains(&multiply) {
            return Err(DlcError::InvalidBitstream { reason: "DCM multiplier out of range" });
        }
        if !limits::DIV_RANGE.contains(&divide) {
            return Err(DlcError::InvalidBitstream { reason: "DCM divider out of range" });
        }
        let f_in = input.as_hz();
        if !(limits::F_IN_MIN_HZ..=limits::F_IN_MAX_HZ).contains(&f_in) {
            return Err(DlcError::InvalidBitstream { reason: "DCM input frequency out of range" });
        }
        let f_out = f_in * u64::from(multiply) / u64::from(divide);
        if !(limits::F_OUT_MIN_HZ..=limits::F_OUT_MAX_HZ).contains(&f_out) {
            return Err(DlcError::InvalidBitstream { reason: "DCM output frequency out of range" });
        }
        Ok(Dcm { input, multiply, divide, input_jitter_rms: Duration::from_ps(1) })
    }

    /// Sets the input clock's jitter (defaults to 1 ps rms, a bench-grade
    /// source).
    #[must_use]
    pub fn with_input_jitter(mut self, rms: Duration) -> Dcm {
        self.input_jitter_rms = rms;
        self
    }

    /// The input frequency.
    pub fn input(&self) -> Frequency {
        self.input
    }

    /// The synthesized output frequency.
    pub fn output(&self) -> Frequency {
        Frequency::from_hz(self.input.as_hz() * u64::from(self.multiply) / u64::from(self.divide))
    }

    /// The multiply/divide configuration.
    pub fn ratio(&self) -> (u32, u32) {
        (self.multiply, self.divide)
    }

    /// Output jitter: the DCM's own synthesis jitter (≈ 60 ps p-p on
    /// Virtex-II, ≈ 10 ps rms) root-sum-squared with the input jitter —
    /// the reason multi-gigahertz timing must come from the PECL path, not
    /// from the FPGA.
    pub fn output_jitter_rms(&self) -> Duration {
        const DCM_SYNTH_RMS_FS: f64 = 10_000.0;
        let input_fs = self.input_jitter_rms.as_fs() as f64;
        Duration::from_fs(
            (input_fs * input_fs + DCM_SYNTH_RMS_FS * DCM_SYNTH_RMS_FS).sqrt().round() as i64,
        )
    }

    /// The highest serial rate the output clock can launch per I/O pin
    /// (SDR: one bit per cycle).
    pub fn max_lane_rate(&self) -> pstime::DataRate {
        pstime::DataRate::from_bps(self.output().as_hz())
    }

    /// Finds a (multiply, divide) pair synthesizing `target` from `input`
    /// exactly, preferring the smallest multiplier.
    ///
    /// # Errors
    ///
    /// [`DlcError::InvalidBitstream`] when no legal pair exists.
    pub fn solve(input: Frequency, target: Frequency) -> Result<Dcm> {
        for multiply in limits::MULT_RANGE {
            for divide in limits::DIV_RANGE {
                if input.as_hz() * u64::from(multiply) == target.as_hz() * u64::from(divide) {
                    if let Ok(dcm) = Dcm::new(input, multiply, divide) {
                        return Ok(dcm);
                    }
                }
            }
        }
        Err(DlcError::InvalidBitstream { reason: "no DCM ratio reaches the target" })
    }
}

impl fmt::Display for Dcm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DCM {} x{}/{} -> {} ({} rms out)",
            self.input,
            self.multiply,
            self.divide,
            self.output(),
            self.output_jitter_rms()
        )
    }
}

/// The DLC's clock plan for a serializer application: the DCM that clocks
/// the CMOS lanes plus the PECL-side DDR clock that the mux tree needs,
/// with a feasibility check tying them together.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockPlan {
    /// The fabric/lane-clock DCM.
    pub lane_dcm: Dcm,
    /// Number of mux lanes.
    pub lanes: u32,
    /// The serial output rate the plan supports.
    pub serial_rate: pstime::DataRate,
}

impl ClockPlan {
    /// Plans the clocking for `serial_rate` through a `lanes`:1 mux from a
    /// board `input` clock: the lane clock must be `serial_rate / lanes`.
    ///
    /// # Errors
    ///
    /// [`DlcError::InvalidBitstream`] when no DCM ratio produces the lane
    /// clock, or [`DlcError::RateTooHigh`] when the lane rate exceeds the
    /// 400 Mbps I/O derating.
    pub fn for_serializer(
        input: Frequency,
        serial_rate: pstime::DataRate,
        lanes: u32,
    ) -> Result<ClockPlan> {
        let lane_rate = serial_rate.demux(u64::from(lanes));
        let lane_mbps = lane_rate.as_bps() / 1_000_000;
        if lane_mbps > 400 {
            return Err(DlcError::RateTooHigh { requested_mbps: lane_mbps, limit_mbps: 400 });
        }
        let lane_dcm = Dcm::solve(input, Frequency::from_hz(lane_rate.as_bps()))?;
        Ok(ClockPlan { lane_dcm, lanes, serial_rate })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_synthesis() {
        let dcm = Dcm::new(Frequency::from_mhz(100), 25, 8).unwrap();
        assert_eq!(dcm.output().as_hz(), 312_500_000);
        assert_eq!(dcm.ratio(), (25, 8));
        assert_eq!(dcm.input(), Frequency::from_mhz(100));
        assert_eq!(dcm.max_lane_rate().as_bps(), 312_500_000);
        assert!(dcm.to_string().contains("x25/8"));
    }

    #[test]
    fn limits_enforced() {
        // Multiplier / divider ranges.
        assert!(Dcm::new(Frequency::from_mhz(100), 1, 1).is_err());
        assert!(Dcm::new(Frequency::from_mhz(100), 33, 1).is_err());
        assert!(Dcm::new(Frequency::from_mhz(100), 2, 0).is_err());
        assert!(Dcm::new(Frequency::from_mhz(100), 2, 33).is_err());
        // Input window.
        assert!(Dcm::new(Frequency::from_khz(500), 2, 1).is_err());
        assert!(Dcm::new(Frequency::from_mhz(500), 2, 2).is_err());
        // Output window: 400 MHz x 2 = 800 MHz > max.
        assert!(Dcm::new(Frequency::from_mhz(400), 2, 1).is_err());
        // And a legal corner.
        assert!(Dcm::new(Frequency::from_mhz(210), 2, 1).is_ok());
    }

    #[test]
    fn jitter_multiplies_through() {
        let clean =
            Dcm::new(Frequency::from_mhz(100), 4, 1).unwrap().with_input_jitter(Duration::ZERO);
        // Floor: the DCM's own synthesis jitter.
        assert_eq!(clean.output_jitter_rms(), Duration::from_ps(10));
        let noisy = Dcm::new(Frequency::from_mhz(100), 4, 1)
            .unwrap()
            .with_input_jitter(Duration::from_ps(10));
        // 10 RSS 10 = 14.14 ps.
        assert!((noisy.output_jitter_rms().as_ps_f64() - 14.14).abs() < 0.1);
        // Either way, orders of magnitude worse than the PECL path's
        // ~3 ps — the architectural point.
        assert!(clean.output_jitter_rms() > Duration::from_ps(3));
    }

    #[test]
    fn solve_finds_exact_ratios() {
        // 100 MHz -> 312.5 MHz needs x25/8 (or an equivalent).
        let dcm = Dcm::solve(Frequency::from_mhz(100), Frequency::from_hz(312_500_000)).unwrap();
        let (m, d) = dcm.ratio();
        assert_eq!(100_000_000u64 * u64::from(m) / u64::from(d), 312_500_000);
        // Unreachable target.
        assert!(Dcm::solve(Frequency::from_mhz(100), Frequency::from_hz(312_500_001)).is_err());
    }

    #[test]
    fn clock_plan_for_the_minitester() {
        // 5 Gbps / 16 lanes = 312.5 Mbps per lane from a 100 MHz board
        // clock: legal and inside the I/O derating.
        let plan = ClockPlan::for_serializer(
            Frequency::from_mhz(100),
            pstime::DataRate::from_gbps(5.0),
            16,
        )
        .unwrap();
        assert_eq!(plan.lanes, 16);
        assert_eq!(plan.lane_dcm.output().as_hz(), 312_500_000);
        // 5 Gbps / 8 lanes = 625 Mbps: violates the 400 Mbps derating.
        assert!(matches!(
            ClockPlan::for_serializer(
                Frequency::from_mhz(100),
                pstime::DataRate::from_gbps(5.0),
                8
            ),
            Err(DlcError::RateTooHigh { requested_mbps: 625, .. })
        ));
    }

    #[test]
    fn clock_plan_for_the_testbed() {
        // 2.5 Gbps / 8 lanes = 312.5 Mbps: the paper's test-bed clocking.
        let plan = ClockPlan::for_serializer(
            Frequency::from_mhz(125),
            pstime::DataRate::from_gbps(2.5),
            8,
        )
        .unwrap();
        assert_eq!(plan.lane_dcm.output().as_hz(), 312_500_000);
        assert_eq!(plan.serial_rate, pstime::DataRate::from_gbps(2.5));
    }
}
