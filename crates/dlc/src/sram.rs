//! SRAM pattern memory.
//!
//! The paper's DLC includes "a high-speed port to optional SRAM … \[which\]
//! can provide extended test pattern storage when algorithmic pattern
//! generation is not feasible" (§2). The paper does not use it in either
//! application; we implement it anyway (per the reproduction brief) and use
//! it for the memory-playback pattern engine.

use signal::BitStream;

use crate::{DlcError, Result};

/// A word-addressed static RAM holding test-pattern data.
///
/// Words are 16 bits, matching the register-file width the USB host uses to
/// fill it. Bit `0` of word `0` plays first.
///
/// # Examples
///
/// ```
/// use dlc::sram::Sram;
///
/// let mut sram = Sram::new(1024);
/// sram.write(0, 0b1010_1100_0011_0101)?;
/// assert_eq!(sram.read(0)?, 0b1010_1100_0011_0101);
/// let bits = sram.read_bits(0, 4)?;
/// assert_eq!(bits.to_string(), "1010"); // LSB-first playback
/// # Ok::<(), dlc::DlcError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sram {
    words: Vec<u16>,
}

impl Sram {
    /// Creates a zeroed SRAM with `capacity` 16-bit words.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "SRAM capacity must be nonzero");
        Sram { words: vec![0; capacity as usize] }
    }

    /// Device capacity in words.
    pub fn capacity(&self) -> u32 {
        self.words.len() as u32
    }

    /// Reads the word at `addr`.
    ///
    /// # Errors
    ///
    /// [`DlcError::SramOutOfRange`] past the end of the device.
    pub fn read(&self, addr: u32) -> Result<u16> {
        self.words
            .get(addr as usize)
            .copied()
            .ok_or(DlcError::SramOutOfRange { addr, capacity: self.capacity() })
    }

    /// Writes the word at `addr`.
    ///
    /// # Errors
    ///
    /// [`DlcError::SramOutOfRange`] past the end of the device.
    pub fn write(&mut self, addr: u32, value: u16) -> Result<()> {
        let cap = self.capacity();
        match self.words.get_mut(addr as usize) {
            Some(w) => {
                *w = value;
                Ok(())
            }
            None => Err(DlcError::SramOutOfRange { addr, capacity: cap }),
        }
    }

    /// Bulk-loads `data` starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`DlcError::SramOutOfRange`] if the block does not fit.
    pub fn load(&mut self, addr: u32, data: &[u16]) -> Result<()> {
        let end = addr as usize + data.len();
        if end > self.words.len() {
            return Err(DlcError::SramOutOfRange { addr: end as u32, capacity: self.capacity() });
        }
        self.words[addr as usize..end].copy_from_slice(data);
        Ok(())
    }

    /// Packs a bit stream into SRAM starting at word `addr`, LSB-first
    /// within each word, zero-padding the final word.
    ///
    /// Returns the number of words written.
    ///
    /// # Errors
    ///
    /// [`DlcError::SramOutOfRange`] if the pattern does not fit.
    pub fn load_bits(&mut self, addr: u32, bits: &BitStream) -> Result<u32> {
        let n_words = bits.len().div_ceil(16);
        let mut words = vec![0u16; n_words];
        for (i, b) in bits.iter().enumerate() {
            if b {
                words[i / 16] |= 1 << (i % 16);
            }
        }
        self.load(addr, &words)?;
        Ok(n_words as u32)
    }

    /// Reads `n_bits` back as a stream, starting at word `addr`, LSB-first.
    ///
    /// # Errors
    ///
    /// [`DlcError::SramOutOfRange`] if the range exceeds the device.
    pub fn read_bits(&self, addr: u32, n_bits: usize) -> Result<BitStream> {
        let n_words = n_bits.div_ceil(16);
        let end = addr as usize + n_words;
        if end > self.words.len() {
            return Err(DlcError::SramOutOfRange { addr: end as u32, capacity: self.capacity() });
        }
        Ok(BitStream::from_fn(n_bits, |i| {
            self.words[addr as usize + i / 16] & (1 << (i % 16)) != 0
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut s = Sram::new(16);
        assert_eq!(s.capacity(), 16);
        s.write(3, 0xBEEF).unwrap();
        assert_eq!(s.read(3).unwrap(), 0xBEEF);
        assert_eq!(s.read(0).unwrap(), 0);
    }

    #[test]
    fn out_of_range_errors() {
        let mut s = Sram::new(4);
        assert!(matches!(s.read(4), Err(DlcError::SramOutOfRange { addr: 4, capacity: 4 })));
        assert!(s.write(4, 0).is_err());
        assert!(s.load(2, &[1, 2, 3]).is_err());
        assert!(s.read_bits(3, 32).is_err());
    }

    #[test]
    fn bulk_load() {
        let mut s = Sram::new(8);
        s.load(2, &[10, 20, 30]).unwrap();
        assert_eq!(s.read(2).unwrap(), 10);
        assert_eq!(s.read(4).unwrap(), 30);
    }

    #[test]
    fn bit_round_trip() {
        let mut s = Sram::new(8);
        let pattern = BitStream::from_str_bits("1101_0010_1111_0000_101");
        let words = s.load_bits(0, &pattern).unwrap();
        assert_eq!(words, 2); // 19 bits -> 2 words
        let back = s.read_bits(0, pattern.len()).unwrap();
        assert_eq!(back, pattern);
    }

    #[test]
    fn bit_packing_order_is_lsb_first() {
        let mut s = Sram::new(1);
        s.load_bits(0, &BitStream::from_str_bits("1000")).unwrap();
        assert_eq!(s.read(0).unwrap(), 0b0001);
    }

    #[test]
    fn long_pattern_storage() {
        // 64 Kb pattern in a 4K-word device.
        let mut s = Sram::new(4096);
        let pattern = BitStream::alternating(65_536);
        s.load_bits(0, &pattern).unwrap();
        assert_eq!(s.read_bits(0, 65_536).unwrap(), pattern);
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_panics() {
        let _ = Sram::new(0);
    }
}
