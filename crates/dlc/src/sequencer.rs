//! The vector sequencer: ATE-style pattern microcode.
//!
//! Real test-pattern state machines are not flat bit lists — they are tiny
//! programs: emit a vector, repeat it, loop a block, halt. That is what
//! lets a 1-million-gate FPGA "synthesize the desired tests in real time"
//! (§2) instead of streaming gigabits from memory. This module implements
//! that sequencer for one channel group: a validated instruction list and
//! an executor that expands it (boundedly) into bits.

use core::fmt;

use signal::BitStream;

use crate::{DlcError, Result};

/// One sequencer instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Instruction {
    /// Emit these literal bits once.
    Vector(BitStream),
    /// Emit the previous vector again `count` more times.
    ///
    /// Invalid as the first instruction.
    Repeat {
        /// Additional emissions.
        count: u32,
    },
    /// Begin a loop body that will run `count` times.
    LoopStart {
        /// Total iterations (≥ 1).
        count: u32,
    },
    /// End the innermost loop body.
    LoopEnd,
    /// Stop the program (implicit at the end).
    Halt,
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::Vector(bits) => write!(f, "VEC {bits}"),
            Instruction::Repeat { count } => write!(f, "RPT {count}"),
            Instruction::LoopStart { count } => write!(f, "LOOP {count}"),
            Instruction::LoopEnd => write!(f, "ENDL"),
            Instruction::Halt => write!(f, "HALT"),
        }
    }
}

/// A validated sequencer program.
///
/// # Examples
///
/// ```
/// use dlc::sequencer::{Instruction, SequencerProgram};
/// use signal::BitStream;
///
/// // 3 x (preamble, 2 x payload)
/// let program = SequencerProgram::assemble(vec![
///     Instruction::LoopStart { count: 3 },
///     Instruction::Vector(BitStream::from_str_bits("1100")),
///     Instruction::Vector(BitStream::from_str_bits("01")),
///     Instruction::Repeat { count: 1 },
///     Instruction::LoopEnd,
/// ])?;
/// assert_eq!(program.run()?.to_string(), "110001011100010111000101");
/// # Ok::<(), dlc::DlcError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequencerProgram {
    instructions: Vec<Instruction>,
}

/// Expansion safety limit: programs longer than this many bits are
/// rejected at run time (a real sequencer streams forever; the simulator
/// must terminate).
pub const MAX_EXPANDED_BITS: usize = 1 << 24;

/// Loop nesting limit (matches small hardware loop stacks).
pub const MAX_LOOP_DEPTH: usize = 8;

impl SequencerProgram {
    /// Validates and assembles a program.
    ///
    /// # Errors
    ///
    /// [`DlcError::InvalidBitstream`] for structural errors: unbalanced
    /// loops, nesting beyond [`MAX_LOOP_DEPTH`], zero-iteration loops,
    /// a leading `Repeat`, empty vectors, or an empty program.
    pub fn assemble(instructions: Vec<Instruction>) -> Result<SequencerProgram> {
        if instructions.is_empty() {
            return Err(DlcError::InvalidBitstream { reason: "empty sequencer program" });
        }
        let mut depth = 0usize;
        let mut last_was_vector = false;
        for insn in &instructions {
            match insn {
                Instruction::Vector(bits) => {
                    if bits.is_empty() {
                        return Err(DlcError::InvalidBitstream { reason: "empty vector" });
                    }
                    last_was_vector = true;
                }
                Instruction::Repeat { count } => {
                    if !last_was_vector {
                        return Err(DlcError::InvalidBitstream {
                            reason: "REPEAT must follow a vector",
                        });
                    }
                    if *count == 0 {
                        return Err(DlcError::InvalidBitstream { reason: "REPEAT of zero" });
                    }
                }
                Instruction::LoopStart { count } => {
                    if *count == 0 {
                        return Err(DlcError::InvalidBitstream {
                            reason: "loop of zero iterations",
                        });
                    }
                    depth += 1;
                    if depth > MAX_LOOP_DEPTH {
                        return Err(DlcError::InvalidBitstream { reason: "loop nesting too deep" });
                    }
                    last_was_vector = false;
                }
                Instruction::LoopEnd => {
                    if depth == 0 {
                        return Err(DlcError::InvalidBitstream { reason: "ENDL without LOOP" });
                    }
                    depth -= 1;
                    // A vector emitted inside the loop is not visible to a
                    // REPEAT after it (block-scoped last-vector register).
                    last_was_vector = false;
                }
                Instruction::Halt => {
                    if depth != 0 {
                        return Err(DlcError::InvalidBitstream {
                            reason: "HALT inside a loop body",
                        });
                    }
                }
            }
        }
        if depth != 0 {
            return Err(DlcError::InvalidBitstream { reason: "unterminated loop" });
        }
        Ok(SequencerProgram { instructions })
    }

    /// The instruction list.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Executes the program, expanding it into a bit stream.
    ///
    /// # Errors
    ///
    /// [`DlcError::InvalidBitstream`] if expansion would exceed
    /// [`MAX_EXPANDED_BITS`].
    pub fn run(&self) -> Result<BitStream> {
        let mut out = BitStream::new();
        self.execute(0, &mut out)?;
        Ok(out)
    }

    /// Recursive block executor; returns the index just past the block.
    fn execute(&self, mut pc: usize, out: &mut BitStream) -> Result<usize> {
        let mut last_vector: Option<BitStream> = None;
        while pc < self.instructions.len() {
            match &self.instructions[pc] {
                Instruction::Vector(bits) => {
                    self.emit(out, bits)?;
                    last_vector = Some(bits.clone());
                    pc += 1;
                }
                Instruction::Repeat { count } => {
                    let bits = last_vector.as_ref().ok_or(DlcError::InvalidBitstream {
                        reason: "REPEAT must follow a vector",
                    })?;
                    for _ in 0..*count {
                        self.emit(out, bits)?;
                    }
                    pc += 1;
                }
                Instruction::LoopStart { count } => {
                    let body_start = pc + 1;
                    let mut end = body_start;
                    for i in 0..*count {
                        end = self.execute(body_start, out)?;
                        let _ = i;
                    }
                    pc = end + 1; // skip the LoopEnd
                }
                Instruction::LoopEnd => {
                    return Ok(pc);
                }
                Instruction::Halt => {
                    return Ok(self.instructions.len());
                }
            }
        }
        Ok(pc)
    }

    fn emit(&self, out: &mut BitStream, bits: &BitStream) -> Result<()> {
        if out.len() + bits.len() > MAX_EXPANDED_BITS {
            return Err(DlcError::InvalidBitstream { reason: "program expansion too large" });
        }
        out.append(bits);
        Ok(())
    }

    /// Converts the expanded program into a [`crate::PatternKind`] for a
    /// DLC channel.
    ///
    /// # Errors
    ///
    /// Propagates expansion errors.
    pub fn into_pattern(self) -> Result<crate::PatternKind> {
        Ok(crate::PatternKind::Explicit(self.run()?))
    }

    /// Total expanded length without materializing the bits.
    ///
    /// # Errors
    ///
    /// [`DlcError::InvalidBitstream`] if it exceeds [`MAX_EXPANDED_BITS`].
    pub fn expanded_len(&self) -> Result<usize> {
        fn block(
            insns: &[Instruction],
            mut pc: usize,
            last_vec_len: &mut Option<usize>,
        ) -> Result<(usize, usize)> {
            let mut total = 0usize;
            while pc < insns.len() {
                match &insns[pc] {
                    Instruction::Vector(bits) => {
                        total += bits.len();
                        *last_vec_len = Some(bits.len());
                        pc += 1;
                    }
                    Instruction::Repeat { count } => {
                        let len = last_vec_len.ok_or(DlcError::InvalidBitstream {
                            reason: "REPEAT must follow a vector",
                        })?;
                        total += len * *count as usize;
                        pc += 1;
                    }
                    Instruction::LoopStart { count } => {
                        let mut inner_last = *last_vec_len;
                        let (body, end) = block(insns, pc + 1, &mut inner_last)?;
                        total += body * *count as usize;
                        *last_vec_len = inner_last;
                        pc = end + 1;
                    }
                    Instruction::LoopEnd => return Ok((total, pc)),
                    Instruction::Halt => return Ok((total, insns.len())),
                }
                if total > MAX_EXPANDED_BITS {
                    return Err(DlcError::InvalidBitstream {
                        reason: "program expansion too large",
                    });
                }
            }
            Ok((total, pc))
        }
        let mut last = None;
        block(&self.instructions, 0, &mut last).map(|(t, _)| t)
    }
}

impl fmt::Display for SequencerProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, insn) in self.instructions.iter().enumerate() {
            writeln!(f, "{i:>4}: {insn}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(s: &str) -> Instruction {
        Instruction::Vector(BitStream::from_str_bits(s))
    }

    #[test]
    fn straight_line_program() {
        let p = SequencerProgram::assemble(vec![vec_of("11"), vec_of("00"), vec_of("10")]).unwrap();
        assert_eq!(p.run().unwrap().to_string(), "110010");
        assert_eq!(p.expanded_len().unwrap(), 6);
        assert_eq!(p.instructions().len(), 3);
    }

    #[test]
    fn repeat_expands() {
        let p = SequencerProgram::assemble(vec![vec_of("10"), Instruction::Repeat { count: 3 }])
            .unwrap();
        assert_eq!(p.run().unwrap().to_string(), "10101010");
        assert_eq!(p.expanded_len().unwrap(), 8);
    }

    #[test]
    fn loops_expand() {
        let p = SequencerProgram::assemble(vec![
            Instruction::LoopStart { count: 2 },
            vec_of("110"),
            Instruction::LoopEnd,
            vec_of("0"),
        ])
        .unwrap();
        assert_eq!(p.run().unwrap().to_string(), "1101100");
        assert_eq!(p.expanded_len().unwrap(), 7);
    }

    #[test]
    fn nested_loops() {
        let p = SequencerProgram::assemble(vec![
            Instruction::LoopStart { count: 2 },
            vec_of("1"),
            Instruction::LoopStart { count: 3 },
            vec_of("0"),
            Instruction::LoopEnd,
            Instruction::LoopEnd,
        ])
        .unwrap();
        assert_eq!(p.run().unwrap().to_string(), "10001000");
        assert_eq!(p.expanded_len().unwrap(), 8);
    }

    #[test]
    fn halt_stops_early() {
        let p = SequencerProgram::assemble(vec![vec_of("11"), Instruction::Halt, vec_of("00")])
            .unwrap();
        assert_eq!(p.run().unwrap().to_string(), "11");
        assert_eq!(p.expanded_len().unwrap(), 2);
    }

    #[test]
    fn repeat_inside_loop_uses_loop_local_vector() {
        let p = SequencerProgram::assemble(vec![
            Instruction::LoopStart { count: 2 },
            vec_of("01"),
            Instruction::Repeat { count: 1 },
            Instruction::LoopEnd,
        ])
        .unwrap();
        assert_eq!(p.run().unwrap().to_string(), "01010101");
    }

    #[test]
    fn structural_validation() {
        use Instruction::*;
        // Unbalanced loops.
        assert!(SequencerProgram::assemble(vec![LoopStart { count: 1 }, vec_of("1")]).is_err());
        assert!(SequencerProgram::assemble(vec![vec_of("1"), LoopEnd]).is_err());
        // Zero-iteration loop / zero repeat.
        assert!(
            SequencerProgram::assemble(vec![LoopStart { count: 0 }, vec_of("1"), LoopEnd]).is_err()
        );
        assert!(SequencerProgram::assemble(vec![vec_of("1"), Repeat { count: 0 }]).is_err());
        // Leading repeat.
        assert!(SequencerProgram::assemble(vec![Repeat { count: 1 }]).is_err());
        // Repeat right after LoopStart (no vector yet in scope).
        assert!(SequencerProgram::assemble(vec![
            LoopStart { count: 2 },
            Repeat { count: 1 },
            LoopEnd
        ])
        .is_err());
        // Empty vector / empty program.
        assert!(SequencerProgram::assemble(vec![Instruction::Vector(BitStream::new())]).is_err());
        assert!(SequencerProgram::assemble(vec![]).is_err());
        // Nesting depth.
        let mut deep = Vec::new();
        for _ in 0..(MAX_LOOP_DEPTH + 1) {
            deep.push(LoopStart { count: 1 });
        }
        deep.push(vec_of("1"));
        for _ in 0..(MAX_LOOP_DEPTH + 1) {
            deep.push(LoopEnd);
        }
        assert!(SequencerProgram::assemble(deep).is_err());
    }

    #[test]
    fn expansion_limit_enforced() {
        // 2^24 bits via nested loops: len check must fire without OOM.
        let p = SequencerProgram::assemble(vec![
            Instruction::LoopStart { count: 1 << 12 },
            Instruction::LoopStart { count: 1 << 12 },
            vec_of("1111_1111_1111_1111"),
            Instruction::LoopEnd,
            Instruction::LoopEnd,
        ])
        .unwrap();
        assert!(p.expanded_len().is_err());
        assert!(p.run().is_err());
    }

    #[test]
    fn display_listing() {
        let p = SequencerProgram::assemble(vec![
            Instruction::LoopStart { count: 2 },
            vec_of("10"),
            Instruction::Repeat { count: 1 },
            Instruction::LoopEnd,
            Instruction::Halt,
        ])
        .unwrap();
        let text = p.to_string();
        assert!(text.contains("LOOP 2"));
        assert!(text.contains("VEC 10"));
        assert!(text.contains("RPT 1"));
        assert!(text.contains("ENDL"));
        assert!(text.contains("HALT"));
    }

    #[test]
    fn expanded_len_matches_run_for_many_shapes() {
        let programs = [
            vec![vec_of("101"), Instruction::Repeat { count: 5 }],
            vec![
                Instruction::LoopStart { count: 3 },
                vec_of("1100"),
                Instruction::LoopStart { count: 2 },
                vec_of("01"),
                Instruction::Repeat { count: 2 },
                Instruction::LoopEnd,
                Instruction::LoopEnd,
            ],
            vec![vec_of("1"), Instruction::Halt],
        ];
        for insns in programs {
            let p = SequencerProgram::assemble(insns).unwrap();
            assert_eq!(p.expanded_len().unwrap(), p.run().unwrap().len());
        }
    }
}
