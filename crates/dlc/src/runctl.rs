//! Run control: the CONTROL/STATUS register semantics.
//!
//! The PC starts and stops tests by writing the DLC's CONTROL register over
//! USB and polls STATUS for completion — the only run-time handshake the
//! paper's Fig. 1 control path needs. This module gives those bits their
//! meaning against the FPGA model: bit 0 gates the pattern engines, bit 1
//! arms the capture engine, and STATUS mirrors the machine state.

use crate::capture::CaptureMode;
use crate::fpga::Fpga;
use crate::regs::{map, RegAddr};
use crate::Result;

/// CONTROL register bit 0: run the pattern engines.
pub const CTRL_RUN: u8 = 0;
/// CONTROL register bit 1: arm the capture engine (store mode).
pub const CTRL_CAPTURE: u8 = 1;

/// STATUS register bit 0: pattern engines running.
pub const STAT_RUNNING: u8 = 0;
/// STATUS register bit 1: a capture has completed since the last arm.
pub const STAT_CAPTURE_DONE: u8 = 1;

/// Applies one CONTROL-register transition to the FPGA: starts/stops the
/// engines and arms/stops the capture, updating STATUS to match. Call this
/// after every host write to CONTROL (the microcontroller firmware does
/// exactly that).
///
/// # Errors
///
/// Propagates register and capture errors.
pub fn apply_control(fpga: &mut Fpga) -> Result<()> {
    let control = fpga.regs().read(map::CONTROL)?;
    let run = control & (1 << CTRL_RUN) != 0;
    let capture = control & (1 << CTRL_CAPTURE) != 0;

    let was_running = fpga.regs().read_bit(map::STATUS, STAT_RUNNING)?;
    if run && !was_running {
        // Starting a run restarts every engine from its seed state.
        fpga.reset_engines();
        let status = status_with(fpga, STAT_RUNNING, true)?;
        fpga.regs_mut().hw_set(map::STATUS, status)?;
    } else if !run && was_running {
        let status = status_with(fpga, STAT_RUNNING, false)?;
        fpga.regs_mut().hw_set(map::STATUS, status)?;
    }

    let armed = fpga.capture().is_armed();
    if capture && !armed {
        fpga.capture_mut().arm(CaptureMode::Store)?;
        // Arming clears the done flag.
        let status = status_with(fpga, STAT_CAPTURE_DONE, false)?;
        fpga.regs_mut().hw_set(map::STATUS, status)?;
    } else if !capture && armed {
        fpga.capture_mut().stop();
        let status = status_with(fpga, STAT_CAPTURE_DONE, true)?;
        fpga.regs_mut().hw_set(map::STATUS, status)?;
    }
    Ok(())
}

fn status_with(fpga: &Fpga, bit: u8, value: bool) -> Result<u16> {
    let status = fpga.regs().read(map::STATUS)?;
    let mask = 1u16 << bit;
    Ok(if value { status | mask } else { status & !mask })
}

/// Host-side helper: writes CONTROL through the register file and applies
/// the transition (what the USB `WriteReg` handler does for this address).
///
/// # Errors
///
/// Propagates register and capture errors.
pub fn write_control(fpga: &mut Fpga, value: u16) -> Result<()> {
    fpga.regs_mut().write(map::CONTROL, value)?;
    apply_control(fpga)
}

/// Host-side helper: reads STATUS.
///
/// # Errors
///
/// Propagates register errors.
pub fn read_status(fpga: &Fpga) -> Result<u16> {
    fpga.regs().read(RegAddr(map::STATUS.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flash::Bitstream;
    use crate::pattern::PatternKind;
    use pstime::DataRate;
    use signal::BitStream;

    fn fpga() -> Fpga {
        let mut f = Fpga::new(16);
        f.configure(&Bitstream::example_design()).unwrap();
        f
    }

    #[test]
    fn run_bit_starts_and_stops() {
        let mut f = fpga();
        assert_eq!(read_status(&f).unwrap(), 0);
        write_control(&mut f, 1 << CTRL_RUN).unwrap();
        assert!(f.regs().read_bit(map::STATUS, STAT_RUNNING).unwrap());
        write_control(&mut f, 0).unwrap();
        assert!(!f.regs().read_bit(map::STATUS, STAT_RUNNING).unwrap());
    }

    #[test]
    fn starting_a_run_restarts_the_engines() {
        let mut f = fpga();
        f.configure_channel(0, PatternKind::Prbs15 { seed: 3 }, DataRate::from_mbps(300)).unwrap();
        let first = f.generate(0, 64).unwrap();
        let _ = f.generate(0, 64).unwrap();
        // Start bit resets engines to the seed state.
        write_control(&mut f, 1 << CTRL_RUN).unwrap();
        assert_eq!(f.generate(0, 64).unwrap(), first);
    }

    #[test]
    fn capture_bit_arms_and_completes() {
        let mut f = fpga();
        write_control(&mut f, 1 << CTRL_CAPTURE).unwrap();
        assert!(f.capture().is_armed());
        assert!(!f.regs().read_bit(map::STATUS, STAT_CAPTURE_DONE).unwrap());
        f.capture_mut().push_bits(&BitStream::from_str_bits("1011"));
        write_control(&mut f, 0).unwrap();
        assert!(!f.capture().is_armed());
        assert!(f.regs().read_bit(map::STATUS, STAT_CAPTURE_DONE).unwrap());
        assert_eq!(f.capture().ram().to_string(), "1011");
    }

    #[test]
    fn rearming_clears_done_flag() {
        let mut f = fpga();
        write_control(&mut f, 1 << CTRL_CAPTURE).unwrap();
        write_control(&mut f, 0).unwrap();
        assert!(f.regs().read_bit(map::STATUS, STAT_CAPTURE_DONE).unwrap());
        write_control(&mut f, 1 << CTRL_CAPTURE).unwrap();
        assert!(!f.regs().read_bit(map::STATUS, STAT_CAPTURE_DONE).unwrap());
    }

    #[test]
    fn run_and_capture_are_independent() {
        let mut f = fpga();
        write_control(&mut f, (1 << CTRL_RUN) | (1 << CTRL_CAPTURE)).unwrap();
        assert!(f.regs().read_bit(map::STATUS, STAT_RUNNING).unwrap());
        assert!(f.capture().is_armed());
        // Dropping only the run bit keeps the capture armed.
        write_control(&mut f, 1 << CTRL_CAPTURE).unwrap();
        assert!(!f.regs().read_bit(map::STATUS, STAT_RUNNING).unwrap());
        assert!(f.capture().is_armed());
    }

    #[test]
    fn idempotent_writes() {
        let mut f = fpga();
        write_control(&mut f, 1 << CTRL_RUN).unwrap();
        let status = read_status(&f).unwrap();
        // Writing the same value again changes nothing.
        write_control(&mut f, 1 << CTRL_RUN).unwrap();
        assert_eq!(read_status(&f).unwrap(), status);
    }
}
