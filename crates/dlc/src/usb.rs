//! USB control link between the PC and the DLC.
//!
//! §2: "a specialized microcontroller chip for interfacing to a Universal
//! Serial Bus … A personal computer communicates through a Universal Serial
//! Bus (USB) with the DLC, and provides high-level control of the tests."
//!
//! We model the link at the command-packet level: framed packets with a
//! checksum, a small command set (register read/write, SRAM upload, run
//! control), and the microcontroller-side dispatcher that applies them to
//! the FPGA's register file and SRAM. Electrical USB signaling is out of
//! scope — the paper uses the bus purely as a control pipe.

use crate::fpga::Fpga;
use crate::regs::RegAddr;
use crate::{DlcError, Result};

/// Command opcodes the DLC microcontroller understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Read one 16-bit register. Payload: addr. Response: value.
    ReadReg = 0x01,
    /// Write one 16-bit register. Payload: addr, value.
    WriteReg = 0x02,
    /// Write a block of SRAM words. Payload: addr, words…
    LoadSram = 0x03,
    /// Read back a block of SRAM words. Payload: addr, count.
    ReadSram = 0x04,
    /// Ping: respond with the protocol version.
    Ping = 0x7F,
}

impl Opcode {
    fn decode(v: u8) -> Option<Opcode> {
        match v {
            0x01 => Some(Opcode::ReadReg),
            0x02 => Some(Opcode::WriteReg),
            0x03 => Some(Opcode::LoadSram),
            0x04 => Some(Opcode::ReadSram),
            0x7F => Some(Opcode::Ping),
            _ => None,
        }
    }
}

/// Protocol version reported by [`Opcode::Ping`].
pub const PROTOCOL_VERSION: u16 = 0x0200; // "USB 2.0"

/// A framed command or response packet: `[opcode, len, payload…, checksum]`
/// where all payload items are 16-bit little-endian words and the checksum
/// is the wrapping byte sum of everything before it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    bytes: Vec<u8>,
}

impl Packet {
    /// Frames a command with 16-bit payload words.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds 127 words (the len field is 8 bits of
    /// words).
    pub fn command(op: Opcode, payload: &[u16]) -> Packet {
        assert!(payload.len() <= 127, "payload exceeds packet capacity");
        let mut bytes = Vec::with_capacity(payload.len() * 2 + 3);
        bytes.push(op as u8);
        bytes.push(payload.len() as u8);
        for w in payload {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        bytes.push(checksum(&bytes));
        Packet { bytes }
    }

    /// The raw wire bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Reassembles a packet from wire bytes, validating framing and
    /// checksum.
    ///
    /// # Errors
    ///
    /// [`DlcError::UsbProtocol`] on truncation, length mismatch, or
    /// checksum failure.
    pub fn parse(bytes: &[u8]) -> Result<Packet> {
        if bytes.len() < 3 {
            return Err(DlcError::UsbProtocol { reason: "short packet" });
        }
        let len_words = bytes[1] as usize;
        if bytes.len() != len_words * 2 + 3 {
            return Err(DlcError::UsbProtocol { reason: "length field mismatch" });
        }
        let (body, check) = bytes.split_at(bytes.len() - 1);
        if checksum(body) != check[0] {
            return Err(DlcError::UsbProtocol { reason: "checksum mismatch" });
        }
        Ok(Packet { bytes: bytes.to_vec() })
    }

    /// The packet's opcode.
    ///
    /// # Errors
    ///
    /// [`DlcError::UsbProtocol`] for an unknown opcode byte.
    pub fn opcode(&self) -> Result<Opcode> {
        Opcode::decode(self.bytes[0]).ok_or(DlcError::UsbProtocol { reason: "unknown opcode" })
    }

    /// The 16-bit payload words.
    pub fn payload(&self) -> Vec<u16> {
        let n = self.bytes[1] as usize;
        (0..n).map(|i| u16::from_le_bytes([self.bytes[2 + 2 * i], self.bytes[3 + 2 * i]])).collect()
    }
}

fn checksum(bytes: &[u8]) -> u8 {
    bytes.iter().fold(0u8, |a, b| a.wrapping_add(*b))
}

/// The microcontroller-side command dispatcher: applies host packets to the
/// FPGA and produces response packets.
///
/// # Examples
///
/// ```
/// use dlc::usb::{Opcode, Packet, UsbController};
/// use dlc::{Bitstream, Fpga};
///
/// let mut fpga = Fpga::new(16);
/// fpga.configure(&Bitstream::example_design())?;
/// let mut usb = UsbController::new();
///
/// // Host pings the device.
/// let resp = usb.handle(&Packet::command(Opcode::Ping, &[]), &mut fpga)?;
/// assert_eq!(resp.payload(), vec![dlc::usb::PROTOCOL_VERSION]);
/// # Ok::<(), dlc::DlcError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct UsbController {
    packets_handled: u64,
}

impl UsbController {
    /// Creates a controller.
    pub fn new() -> Self {
        UsbController::default()
    }

    /// Number of packets successfully dispatched.
    pub fn packets_handled(&self) -> u64 {
        self.packets_handled
    }

    /// Dispatches one host command against the FPGA, returning the
    /// response packet.
    ///
    /// # Errors
    ///
    /// Protocol errors for malformed packets; register/SRAM errors
    /// propagate from the FPGA.
    pub fn handle(&mut self, packet: &Packet, fpga: &mut Fpga) -> Result<Packet> {
        let op = packet.opcode()?;
        let payload = packet.payload();
        let response = match op {
            Opcode::Ping => Packet::command(Opcode::Ping, &[PROTOCOL_VERSION]),
            Opcode::ReadReg => {
                let [addr] = payload[..] else {
                    return Err(DlcError::UsbProtocol { reason: "ReadReg needs 1 word" });
                };
                let value = fpga.regs().read(RegAddr(addr))?;
                Packet::command(Opcode::ReadReg, &[value])
            }
            Opcode::WriteReg => {
                let [addr, value] = payload[..] else {
                    return Err(DlcError::UsbProtocol { reason: "WriteReg needs 2 words" });
                };
                fpga.regs_mut().write(RegAddr(addr), value)?;
                // A CONTROL write is a run-control event: the firmware
                // applies it to the engines immediately.
                if addr == crate::regs::map::CONTROL.0 {
                    crate::runctl::apply_control(fpga)?;
                }
                Packet::command(Opcode::WriteReg, &[])
            }
            Opcode::LoadSram => {
                let Some((addr, words)) = payload.split_first() else {
                    return Err(DlcError::UsbProtocol { reason: "LoadSram needs address" });
                };
                fpga.sram_mut().load(u32::from(*addr), words)?;
                Packet::command(Opcode::LoadSram, &[words.len() as u16])
            }
            Opcode::ReadSram => {
                let [addr, count] = payload[..] else {
                    return Err(DlcError::UsbProtocol { reason: "ReadSram needs 2 words" });
                };
                let mut words = Vec::with_capacity(count as usize);
                for i in 0..count {
                    words.push(fpga.sram().read(u32::from(addr) + u32::from(i))?);
                }
                Packet::command(Opcode::ReadSram, &words)
            }
        };
        self.packets_handled += 1;
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flash::Bitstream;
    use crate::regs::map;

    fn setup() -> (Fpga, UsbController) {
        let mut fpga = Fpga::new(16);
        fpga.configure(&Bitstream::example_design()).unwrap();
        (fpga, UsbController::new())
    }

    #[test]
    fn packet_round_trip() {
        let p = Packet::command(Opcode::WriteReg, &[0x0002, 0xABCD]);
        let parsed = Packet::parse(p.as_bytes()).unwrap();
        assert_eq!(parsed, p);
        assert_eq!(parsed.opcode().unwrap(), Opcode::WriteReg);
        assert_eq!(parsed.payload(), vec![0x0002, 0xABCD]);
    }

    #[test]
    fn corrupted_packets_rejected() {
        let p = Packet::command(Opcode::Ping, &[]);
        let mut bytes = p.as_bytes().to_vec();
        bytes[0] ^= 0x80;
        assert!(matches!(
            Packet::parse(&bytes),
            Err(DlcError::UsbProtocol { reason: "checksum mismatch" })
        ));
        assert!(matches!(
            Packet::parse(&bytes[..1]),
            Err(DlcError::UsbProtocol { reason: "short packet" })
        ));
        let p2 = Packet::command(Opcode::ReadReg, &[1, 2]);
        let mut bytes2 = p2.as_bytes().to_vec();
        bytes2[1] = 1; // lie about the length
        assert!(matches!(
            Packet::parse(&bytes2),
            Err(DlcError::UsbProtocol { reason: "length field mismatch" })
        ));
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut bytes = vec![0x55u8, 0x00];
        bytes.push(bytes.iter().fold(0u8, |a, b| a.wrapping_add(*b)));
        let p = Packet::parse(&bytes).unwrap();
        assert!(matches!(p.opcode(), Err(DlcError::UsbProtocol { reason: "unknown opcode" })));
    }

    #[test]
    fn ping_reports_version() {
        let (mut fpga, mut usb) = setup();
        let resp = usb.handle(&Packet::command(Opcode::Ping, &[]), &mut fpga).unwrap();
        assert_eq!(resp.payload(), vec![PROTOCOL_VERSION]);
        assert_eq!(usb.packets_handled(), 1);
    }

    #[test]
    fn register_access_over_usb() {
        let (mut fpga, mut usb) = setup();
        // Read the ID register.
        let resp = usb.handle(&Packet::command(Opcode::ReadReg, &[map::ID.0]), &mut fpga).unwrap();
        assert_eq!(resp.payload(), vec![map::ID_VALUE]);
        // Write then read CONTROL.
        usb.handle(&Packet::command(Opcode::WriteReg, &[map::CONTROL.0, 3]), &mut fpga).unwrap();
        let resp =
            usb.handle(&Packet::command(Opcode::ReadReg, &[map::CONTROL.0]), &mut fpga).unwrap();
        assert_eq!(resp.payload(), vec![3]);
    }

    #[test]
    fn register_errors_propagate() {
        let (mut fpga, mut usb) = setup();
        let err = usb.handle(&Packet::command(Opcode::ReadReg, &[0x7777]), &mut fpga).unwrap_err();
        assert!(matches!(err, DlcError::UnmappedRegister { addr: 0x7777 }));
    }

    #[test]
    fn malformed_payloads_rejected() {
        let (mut fpga, mut usb) = setup();
        for bad in [
            Packet::command(Opcode::ReadReg, &[]),
            Packet::command(Opcode::WriteReg, &[1]),
            Packet::command(Opcode::LoadSram, &[]),
            Packet::command(Opcode::ReadSram, &[1]),
        ] {
            assert!(matches!(usb.handle(&bad, &mut fpga), Err(DlcError::UsbProtocol { .. })));
        }
    }

    #[test]
    fn sram_upload_and_readback() {
        let (mut fpga, mut usb) = setup();
        let data = [0xAAAA, 0x5555, 0x0F0F];
        let mut payload = vec![0x0010u16];
        payload.extend_from_slice(&data);
        let resp = usb.handle(&Packet::command(Opcode::LoadSram, &payload), &mut fpga).unwrap();
        assert_eq!(resp.payload(), vec![3]);
        let resp = usb.handle(&Packet::command(Opcode::ReadSram, &[0x0010, 3]), &mut fpga).unwrap();
        assert_eq!(resp.payload(), data.to_vec());
    }

    #[test]
    #[should_panic(expected = "payload exceeds packet capacity")]
    fn oversized_payload_panics() {
        let _ = Packet::command(Opcode::LoadSram, &[0u16; 128]);
    }
}
