//! IEEE 1149.1 (JTAG / boundary-scan) test access port.
//!
//! The paper programs the DLC's FLASH "from a personal computer through an
//! IEEE 1149.1 (boundary scan) interface" via a MultiLink adaptor. This
//! module implements the full 16-state TAP controller, IDCODE readout, and
//! the flash-programming instruction sequence the host uses.

use core::fmt;

use crate::flash::{Bitstream, FlashMemory};
use crate::{DlcError, Result};

/// The sixteen states of the IEEE 1149.1 TAP controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum TapState {
    TestLogicReset,
    RunTestIdle,
    SelectDrScan,
    CaptureDr,
    ShiftDr,
    Exit1Dr,
    PauseDr,
    Exit2Dr,
    UpdateDr,
    SelectIrScan,
    CaptureIr,
    ShiftIr,
    Exit1Ir,
    PauseIr,
    Exit2Ir,
    UpdateIr,
}

impl TapState {
    /// The next state given TMS at a TCK rising edge (the 1149.1 state
    /// transition table, verbatim).
    pub fn next(self, tms: bool) -> TapState {
        use TapState::*;
        match (self, tms) {
            (TestLogicReset, false) => RunTestIdle,
            (TestLogicReset, true) => TestLogicReset,
            (RunTestIdle, false) => RunTestIdle,
            (RunTestIdle, true) => SelectDrScan,
            (SelectDrScan, false) => CaptureDr,
            (SelectDrScan, true) => SelectIrScan,
            (CaptureDr, false) => ShiftDr,
            (CaptureDr, true) => Exit1Dr,
            (ShiftDr, false) => ShiftDr,
            (ShiftDr, true) => Exit1Dr,
            (Exit1Dr, false) => PauseDr,
            (Exit1Dr, true) => UpdateDr,
            (PauseDr, false) => PauseDr,
            (PauseDr, true) => Exit2Dr,
            (Exit2Dr, false) => ShiftDr,
            (Exit2Dr, true) => UpdateDr,
            (UpdateDr, false) => RunTestIdle,
            (UpdateDr, true) => SelectDrScan,
            (SelectIrScan, false) => CaptureIr,
            (SelectIrScan, true) => TestLogicReset,
            (CaptureIr, false) => ShiftIr,
            (CaptureIr, true) => Exit1Ir,
            (ShiftIr, false) => ShiftIr,
            (ShiftIr, true) => Exit1Ir,
            (Exit1Ir, false) => PauseIr,
            (Exit1Ir, true) => UpdateIr,
            (PauseIr, false) => PauseIr,
            (PauseIr, true) => Exit2Ir,
            (Exit2Ir, false) => ShiftIr,
            (Exit2Ir, true) => UpdateIr,
            (UpdateIr, false) => RunTestIdle,
            (UpdateIr, true) => SelectDrScan,
        }
    }
}

impl fmt::Display for TapState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// JTAG instructions decoded by the DLC's TAP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instruction {
    /// Mandatory BYPASS (all-ones IR).
    Bypass,
    /// Read the 32-bit device identification register.
    Idcode,
    /// Erase the configuration FLASH.
    FlashErase,
    /// Shift one 32-bit word into the FLASH write buffer and commit it.
    FlashProgram,
    /// Read back a FLASH word (address auto-increments).
    FlashVerify,
    /// Any unrecognized IR value.
    Unknown(u8),
}

impl Instruction {
    /// 8-bit IR encodings.
    pub fn encode(self) -> u8 {
        match self {
            Instruction::Bypass => 0xFF,
            Instruction::Idcode => 0x09,
            Instruction::FlashErase => 0xE0,
            Instruction::FlashProgram => 0xE1,
            Instruction::FlashVerify => 0xE2,
            Instruction::Unknown(v) => v,
        }
    }

    fn decode(v: u8) -> Instruction {
        match v {
            0xFF => Instruction::Bypass,
            0x09 => Instruction::Idcode,
            0xE0 => Instruction::FlashErase,
            0xE1 => Instruction::FlashProgram,
            0xE2 => Instruction::FlashVerify,
            other => Instruction::Unknown(other),
        }
    }
}

/// The DLC's JTAG test access port, wired to its configuration FLASH.
///
/// Drive it at the pin level with [`clock`](JtagPort::clock) or use the
/// host-side convenience methods ([`read_idcode`](JtagPort::read_idcode),
/// [`program_flash`](JtagPort::program_flash)) that generate the pin
/// sequences for you — both paths go through the same TAP state machine.
///
/// # Examples
///
/// ```
/// use dlc::jtag::JtagPort;
///
/// let mut port = JtagPort::new(512);
/// assert_eq!(port.read_idcode(), dlc::flash::DEVICE_ID);
/// ```
#[derive(Debug, Clone)]
pub struct JtagPort {
    state: TapState,
    ir_shift: u64,
    ir_count: u32,
    instruction: Instruction,
    dr_shift: u64,
    dr_count: u32,
    idcode: u32,
    flash: FlashMemory,
    flash_addr: usize,
    tdo: bool,
}

impl JtagPort {
    /// Creates a TAP wired to a fresh (erased) FLASH of `flash_words`.
    pub fn new(flash_words: usize) -> Self {
        JtagPort {
            state: TapState::TestLogicReset,
            ir_shift: 0,
            ir_count: 0,
            instruction: Instruction::Idcode, // 1149.1: IDCODE after reset
            dr_shift: 0,
            dr_count: 0,
            idcode: crate::flash::DEVICE_ID,
            flash: FlashMemory::new(flash_words),
            flash_addr: 0,
            tdo: false,
        }
    }

    /// The current TAP state.
    pub fn state(&self) -> TapState {
        self.state
    }

    /// The currently latched instruction.
    pub fn instruction(&self) -> Instruction {
        self.instruction
    }

    /// Borrows the attached FLASH (e.g. to boot the FPGA from it).
    pub fn flash(&self) -> &FlashMemory {
        &self.flash
    }

    /// Mutable access to the attached FLASH (fault injection in tests).
    pub fn flash_mut(&mut self) -> &mut FlashMemory {
        &mut self.flash
    }

    /// One TCK rising edge with the given TMS/TDI pin values; returns TDO.
    pub fn clock(&mut self, tms: bool, tdi: bool) -> bool {
        use TapState::*;
        // TDO changes on the falling edge of TCK in real silicon; in this
        // cycle-level model we return the value shifted out by this edge.
        let next = self.state.next(tms);
        match self.state {
            CaptureIr => {
                // 1149.1 mandates capturing ...01 into the IR.
                self.ir_shift = 0b01;
                self.ir_count = 0;
            }
            ShiftIr => {
                self.tdo = self.ir_shift & 1 == 1;
                self.ir_shift = (self.ir_shift >> 1) | ((tdi as u64) << 7);
                self.ir_count += 1;
            }
            CaptureDr => {
                self.dr_shift = match self.instruction {
                    Instruction::Idcode => self.idcode as u64,
                    Instruction::FlashVerify => {
                        let w = self.flash.read_all().get(self.flash_addr).copied().unwrap_or(0);
                        w as u64
                    }
                    _ => 0,
                };
                self.dr_count = 0;
            }
            ShiftDr => {
                self.tdo = self.dr_shift & 1 == 1;
                let width = match self.instruction {
                    Instruction::Bypass => 1,
                    _ => 32,
                };
                self.dr_shift = (self.dr_shift >> 1) | ((tdi as u64) << (width - 1));
                self.dr_count += 1;
            }
            _ => {}
        }
        match next {
            UpdateIr => {
                self.instruction = Instruction::decode((self.ir_shift & 0xFF) as u8);
                if self.instruction == Instruction::FlashErase {
                    self.flash.erase_all();
                    self.flash_addr = 0;
                }
                if matches!(self.instruction, Instruction::FlashProgram | Instruction::FlashVerify)
                {
                    self.flash_addr = 0;
                }
            }
            UpdateDr => {
                if self.instruction == Instruction::FlashProgram {
                    let word = (self.dr_shift & 0xFFFF_FFFF) as u32;
                    // NOR-program the word at the auto-incrementing address.
                    let addr = self.flash_addr;
                    if addr < self.flash.capacity() {
                        let mut image = vec![0xFFFF_FFFFu32; addr + 1];
                        image[addr] = word;
                        // program() ANDs, so leading erased words are no-ops.
                        let _ = self.flash.program(&image);
                        self.flash_addr += 1;
                    }
                } else if self.instruction == Instruction::FlashVerify {
                    self.flash_addr += 1;
                }
            }
            TestLogicReset => {
                self.instruction = Instruction::Idcode;
            }
            _ => {}
        }
        self.state = next;
        self.tdo
    }

    /// Clocks five TMS=1 cycles: guaranteed Test-Logic-Reset from any state.
    pub fn reset(&mut self) {
        for _ in 0..5 {
            self.clock(true, false);
        }
    }

    /// Navigates from Run-Test/Idle (or reset) and latches `instruction`.
    pub fn load_instruction(&mut self, instruction: Instruction) {
        self.reset();
        self.clock(false, false); // -> RunTestIdle
        self.clock(true, false); // -> SelectDrScan
        self.clock(true, false); // -> SelectIrScan
        self.clock(false, false); // -> CaptureIr
        self.clock(false, false); // -> ShiftIr
        let code = instruction.encode();
        for i in 0..8 {
            let tdi = code & (1 << i) != 0;
            let tms = i == 7; // exit on last bit
            self.clock(tms, tdi);
        }
        self.clock(true, false); // Exit1Ir -> UpdateIr
        self.clock(false, false); // -> RunTestIdle
    }

    /// Shifts a `width`-bit data register value and returns what came out.
    ///
    /// Must be called from Run-Test/Idle (i.e. after
    /// [`load_instruction`](Self::load_instruction)).
    ///
    /// # Errors
    ///
    /// [`DlcError::JtagProtocol`] if not in Run-Test/Idle.
    pub fn shift_dr(&mut self, value: u64, width: u32) -> Result<u64> {
        if self.state != TapState::RunTestIdle {
            return Err(DlcError::JtagProtocol { reason: "shift_dr requires Run-Test/Idle" });
        }
        self.clock(true, false); // -> SelectDrScan
        self.clock(false, false); // -> CaptureDr
        self.clock(false, false); // -> ShiftDr
        let mut out = 0u64;
        for i in 0..width {
            let tdi = value & (1 << i) != 0;
            let tms = i == width - 1;
            let tdo = self.clock(tms, tdi);
            if tdo {
                out |= 1 << i;
            }
        }
        self.clock(true, false); // Exit1Dr -> UpdateDr
        self.clock(false, false); // -> RunTestIdle
        Ok(out)
    }

    /// Reads the 32-bit IDCODE the way a host tool does.
    pub fn read_idcode(&mut self) -> u32 {
        self.load_instruction(Instruction::Idcode);
        // xlint::allow(no-panic-in-lib, load_instruction always parks the TAP in Run-Test/Idle, the only state shift_dr rejects is absent here)
        self.shift_dr(0, 32).expect("TAP is in Run-Test/Idle after load_instruction") as u32
    }

    /// Erases the FLASH, programs `bitstream`, and verifies it word by
    /// word through the boundary-scan port — the paper's configuration
    /// flow.
    ///
    /// # Errors
    ///
    /// [`DlcError::InvalidBitstream`] if the readback does not match or the
    /// image does not fit.
    pub fn program_flash(&mut self, bitstream: &Bitstream) -> Result<()> {
        let words = bitstream.to_words();
        if words.len() > self.flash.capacity() {
            return Err(DlcError::InvalidBitstream { reason: "image exceeds flash capacity" });
        }
        self.load_instruction(Instruction::FlashErase);
        self.load_instruction(Instruction::FlashProgram);
        for w in &words {
            self.shift_dr(*w as u64, 32)?;
        }
        // Verify pass.
        self.load_instruction(Instruction::FlashVerify);
        for (i, w) in words.iter().enumerate() {
            let got = self.shift_dr(0, 32)? as u32;
            if got != *w {
                let _ = i;
                return Err(DlcError::InvalidBitstream { reason: "readback verify failed" });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_from_any_state() {
        let mut port = JtagPort::new(16);
        // Wander somewhere deep.
        for (tms, tdi) in [(false, false), (true, false), (false, true), (false, true)] {
            port.clock(tms, tdi);
        }
        port.reset();
        assert_eq!(port.state(), TapState::TestLogicReset);
        assert_eq!(port.instruction(), Instruction::Idcode);
    }

    #[test]
    fn state_table_spot_checks() {
        use TapState::*;
        assert_eq!(TestLogicReset.next(false), RunTestIdle);
        assert_eq!(RunTestIdle.next(true), SelectDrScan);
        assert_eq!(SelectDrScan.next(true), SelectIrScan);
        assert_eq!(SelectIrScan.next(true), TestLogicReset);
        assert_eq!(ShiftDr.next(false), ShiftDr);
        assert_eq!(Exit1Dr.next(true), UpdateDr);
        assert_eq!(PauseIr.next(true), Exit2Ir);
        assert_eq!(Exit2Ir.next(false), ShiftIr);
        assert_eq!(UpdateIr.next(false), RunTestIdle);
        assert_eq!(format!("{ShiftDr}"), "ShiftDr");
    }

    #[test]
    fn every_state_reaches_reset_in_five_tms_ones() {
        use TapState::*;
        for s in [
            TestLogicReset,
            RunTestIdle,
            SelectDrScan,
            CaptureDr,
            ShiftDr,
            Exit1Dr,
            PauseDr,
            Exit2Dr,
            UpdateDr,
            SelectIrScan,
            CaptureIr,
            ShiftIr,
            Exit1Ir,
            PauseIr,
            Exit2Ir,
            UpdateIr,
        ] {
            let mut state = s;
            for _ in 0..5 {
                state = state.next(true);
            }
            assert_eq!(state, TestLogicReset, "from {s:?}");
        }
    }

    #[test]
    fn idcode_reads_device_id() {
        let mut port = JtagPort::new(16);
        assert_eq!(port.read_idcode(), crate::flash::DEVICE_ID);
        // Repeatable.
        assert_eq!(port.read_idcode(), crate::flash::DEVICE_ID);
    }

    #[test]
    fn instruction_encoding_round_trip() {
        for insn in [
            Instruction::Bypass,
            Instruction::Idcode,
            Instruction::FlashErase,
            Instruction::FlashProgram,
            Instruction::FlashVerify,
        ] {
            assert_eq!(Instruction::decode(insn.encode()), insn);
        }
        assert_eq!(Instruction::decode(0x42), Instruction::Unknown(0x42));
    }

    #[test]
    fn shift_dr_requires_idle() {
        let mut port = JtagPort::new(16);
        port.reset();
        // In TestLogicReset, not RunTestIdle.
        assert!(matches!(port.shift_dr(0, 8), Err(DlcError::JtagProtocol { .. })));
    }

    #[test]
    fn bypass_is_single_bit_delay() {
        let mut port = JtagPort::new(16);
        port.load_instruction(Instruction::Bypass);
        // Shifting 8 bits through a 1-bit bypass returns the input delayed
        // by one bit.
        let out = port.shift_dr(0b1011_0101, 8).unwrap();
        assert_eq!(out & 0xFE, (0b1011_0101 << 1) & 0xFE);
    }

    #[test]
    fn full_flash_programming_flow() {
        let mut port = JtagPort::new(512);
        let bs = Bitstream::example_design();
        port.program_flash(&bs).unwrap();
        let loaded = port.flash().load_bitstream().unwrap();
        assert_eq!(loaded, bs);
    }

    #[test]
    fn reprogramming_replaces_the_design() {
        let mut port = JtagPort::new(512);
        port.program_flash(&Bitstream::example_design()).unwrap();
        let v2 = Bitstream::new(crate::flash::DEVICE_ID, (0..100).map(|i| i ^ 0xA5).collect());
        port.program_flash(&v2).unwrap();
        assert_eq!(port.flash().load_bitstream().unwrap(), v2);
    }

    #[test]
    fn oversized_image_rejected() {
        let mut port = JtagPort::new(8);
        let err = port.program_flash(&Bitstream::example_design()).unwrap_err();
        assert!(matches!(err, DlcError::InvalidBitstream { .. }));
    }

    #[test]
    fn verify_catches_flash_faults() {
        // Program normally, then corrupt and re-verify via FlashVerify DRs.
        let mut port = JtagPort::new(512);
        let bs = Bitstream::example_design();
        port.program_flash(&bs).unwrap();
        port.flash_mut().corrupt_bit(10, 3);
        port.load_instruction(Instruction::FlashVerify);
        let words = bs.to_words();
        let mut mismatch = false;
        for w in &words {
            let got = port.shift_dr(0, 32).unwrap() as u32;
            if got != *w {
                mismatch = true;
                break;
            }
        }
        assert!(mismatch, "corruption must be visible through verify");
    }
}
