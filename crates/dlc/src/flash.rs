//! FLASH configuration memory and FPGA bitstreams.
//!
//! §2 of the paper: "a FLASH memory \[stores\] the FPGA programming
//! information. The FLASH is programmed from a personal computer through an
//! IEEE 1149.1 (boundary scan) interface. Once programmed, it loads the
//! personalization data to the FPGA upon power-up. The program can be
//! changed by overwriting the FLASH."
//!
//! The [`Bitstream`] here is a simplified but structurally honest Virtex-II
//! style image: sync word, device ID, payload frames, and a CRC — enough to
//! exercise the real failure modes (blank flash, truncated image, bit rot
//! detected by CRC).

use core::fmt;

use crate::{DlcError, Result};

/// Sync word opening a valid bitstream (the Virtex-II value).
const SYNC_WORD: u32 = 0xAA99_5566;

/// Device ID the example DLC expects (stand-in for the XC2V1000 IDCODE).
pub const DEVICE_ID: u32 = 0x0102_8093;

/// An FPGA configuration image: sync word, target device, payload frames,
/// and a CRC-32 over the payload.
///
/// # Examples
///
/// ```
/// use dlc::Bitstream;
///
/// let bs = Bitstream::example_design();
/// assert!(bs.verify().is_ok());
/// assert_eq!(bs.device_id(), dlc::flash::DEVICE_ID);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitstream {
    device_id: u32,
    frames: Vec<u32>,
    crc: u32,
}

impl Bitstream {
    /// Assembles a bitstream for `device_id` from payload `frames`,
    /// computing the CRC.
    pub fn new(device_id: u32, frames: Vec<u32>) -> Self {
        let crc = crc32(&frames);
        Bitstream { device_id, frames, crc }
    }

    /// The configuration image of the example DLC design used throughout
    /// this reproduction (pattern engines + USB register bridge).
    pub fn example_design() -> Self {
        // A deterministic pseudo-payload standing in for the real frames.
        let frames: Vec<u32> =
            (0..256u32).map(|i| i.wrapping_mul(0x9E37_79B9) ^ 0x5A5A_5A5A).collect();
        Bitstream::new(DEVICE_ID, frames)
    }

    /// The target device ID.
    pub fn device_id(&self) -> u32 {
        self.device_id
    }

    /// Number of payload frames.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Checks internal consistency (CRC over the frames).
    ///
    /// # Errors
    ///
    /// [`DlcError::InvalidBitstream`] when the stored CRC does not match.
    pub fn verify(&self) -> Result<()> {
        if self.frames.is_empty() {
            return Err(DlcError::InvalidBitstream { reason: "no payload frames" });
        }
        if crc32(&self.frames) != self.crc {
            return Err(DlcError::InvalidBitstream { reason: "CRC mismatch" });
        }
        Ok(())
    }

    /// Serializes to the word format stored in FLASH:
    /// `[SYNC, device_id, len, frames…, crc]`.
    pub fn to_words(&self) -> Vec<u32> {
        let mut words = Vec::with_capacity(self.frames.len() + 4);
        words.push(SYNC_WORD);
        words.push(self.device_id);
        words.push(self.frames.len() as u32);
        words.extend_from_slice(&self.frames);
        words.push(self.crc);
        words
    }

    /// Parses a word image as read back from FLASH.
    ///
    /// # Errors
    ///
    /// [`DlcError::InvalidBitstream`] on a missing sync word, truncated
    /// image, or CRC failure.
    pub fn from_words(words: &[u32]) -> Result<Self> {
        if words.len() < 4 {
            return Err(DlcError::InvalidBitstream { reason: "image too short" });
        }
        if words[0] != SYNC_WORD {
            return Err(DlcError::InvalidBitstream { reason: "missing sync word" });
        }
        let device_id = words[1];
        let len = words[2] as usize;
        if words.len() != len + 4 {
            return Err(DlcError::InvalidBitstream { reason: "length field mismatch" });
        }
        let frames = words[3..3 + len].to_vec(); // xlint::allow(panic-reachable, the length-field guard above pins words.len() to exactly len + 4)
        let crc = words[3 + len];
        let bs = Bitstream { device_id, frames, crc };
        bs.verify()?;
        Ok(bs)
    }
}

impl fmt::Display for Bitstream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bitstream for device {:#010x}: {} frames, crc {:#010x}",
            self.device_id,
            self.frames.len(),
            self.crc
        )
    }
}

/// The DLC's configuration FLASH: sector-erased, word-programmed NOR flash.
///
/// Programming follows real NOR semantics: bits can only be cleared by
/// programming; returning them to 1 requires a sector erase. The JTAG layer
/// drives [`erase_all`](FlashMemory::erase_all) then
/// [`program`](FlashMemory::program).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlashMemory {
    words: Vec<u32>,
}

/// Erased-state word of NOR flash.
const ERASED: u32 = 0xFFFF_FFFF;

impl FlashMemory {
    /// Creates an erased FLASH with `capacity` 32-bit words.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flash capacity must be nonzero");
        FlashMemory { words: vec![ERASED; capacity] }
    }

    /// Device capacity in words.
    pub fn capacity(&self) -> usize {
        self.words.len()
    }

    /// Erases the whole device back to all-ones.
    pub fn erase_all(&mut self) {
        self.words.fill(ERASED);
    }

    /// Programs `data` starting at word 0 (NOR semantics: can only clear
    /// bits — call [`erase_all`](Self::erase_all) first for a clean image).
    ///
    /// # Errors
    ///
    /// [`DlcError::InvalidBitstream`] if the image does not fit.
    pub fn program(&mut self, data: &[u32]) -> Result<()> {
        if data.len() > self.words.len() {
            return Err(DlcError::InvalidBitstream { reason: "image exceeds flash capacity" });
        }
        for (w, d) in self.words.iter_mut().zip(data) {
            *w &= *d; // NOR programming clears bits only
        }
        Ok(())
    }

    /// Reads the stored words (the whole device).
    pub fn read_all(&self) -> &[u32] {
        &self.words
    }

    /// Attempts to parse a valid bitstream from the device contents.
    ///
    /// # Errors
    ///
    /// [`DlcError::InvalidBitstream`] if the flash is blank or corrupt.
    pub fn load_bitstream(&self) -> Result<Bitstream> {
        if self.words.first() == Some(&ERASED) {
            return Err(DlcError::InvalidBitstream { reason: "flash is blank" });
        }
        // The image length is discoverable from the header.
        if self.words.len() < 3 {
            return Err(DlcError::InvalidBitstream { reason: "image too short" });
        }
        let len = self.words[2] as usize;
        let total = len
            .checked_add(4)
            .ok_or(DlcError::InvalidBitstream { reason: "length field mismatch" })?;
        if total > self.words.len() {
            return Err(DlcError::InvalidBitstream { reason: "length field mismatch" });
        }
        Bitstream::from_words(&self.words[..total])
    }

    /// Flips one bit — a fault-injection hook for testing CRC detection.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range or `bit > 31`.
    pub fn corrupt_bit(&mut self, word: usize, bit: u8) {
        assert!(bit < 32, "bit index out of range");
        self.words[word] ^= 1 << bit;
    }
}

/// Plain CRC-32 (IEEE 802.3, bit-reflected) over a word slice.
fn crc32(words: &[u32]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for w in words {
        for byte in w.to_le_bytes() {
            crc ^= byte as u32;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_properties() {
        // Empty input yields the defined initial value.
        assert_eq!(crc32(&[]), 0);
        // Deterministic and sensitive to single-bit changes.
        assert_eq!(crc32(&[1, 2, 3]), crc32(&[1, 2, 3]));
        assert_ne!(crc32(&[1, 2, 3]), crc32(&[1, 2, 4]));
        assert_ne!(crc32(&[1]), crc32(&[1, 0]));
    }

    #[test]
    fn bitstream_round_trip() {
        let bs = Bitstream::example_design();
        let words = bs.to_words();
        let back = Bitstream::from_words(&words).unwrap();
        assert_eq!(back, bs);
        assert_eq!(back.num_frames(), 256);
        assert!(back.to_string().contains("256 frames"));
    }

    #[test]
    fn bitstream_rejects_corruption() {
        let bs = Bitstream::example_design();
        let mut words = bs.to_words();
        words[10] ^= 0x8000;
        let err = Bitstream::from_words(&words).unwrap_err();
        assert!(matches!(err, DlcError::InvalidBitstream { reason: "CRC mismatch" }));
    }

    #[test]
    fn bitstream_rejects_bad_framing() {
        assert!(matches!(
            Bitstream::from_words(&[1, 2, 3]),
            Err(DlcError::InvalidBitstream { reason: "image too short" })
        ));
        let mut words = Bitstream::example_design().to_words();
        words[0] = 0xDEAD_BEEF;
        assert!(matches!(
            Bitstream::from_words(&words),
            Err(DlcError::InvalidBitstream { reason: "missing sync word" })
        ));
        let mut words = Bitstream::example_design().to_words();
        words[2] += 1;
        assert!(matches!(
            Bitstream::from_words(&words),
            Err(DlcError::InvalidBitstream { reason: "length field mismatch" })
        ));
        let empty = Bitstream::new(DEVICE_ID, vec![]);
        assert!(empty.verify().is_err());
    }

    #[test]
    fn flash_program_and_boot() {
        let mut flash = FlashMemory::new(512);
        assert_eq!(flash.capacity(), 512);
        assert!(flash.load_bitstream().is_err(), "blank flash must not boot");
        let bs = Bitstream::example_design();
        flash.program(&bs.to_words()).unwrap();
        let loaded = flash.load_bitstream().unwrap();
        assert_eq!(loaded, bs);
    }

    #[test]
    fn flash_reprogram_requires_erase() {
        let mut flash = FlashMemory::new(512);
        let bs = Bitstream::example_design();
        flash.program(&bs.to_words()).unwrap();
        // Programming a different image over the old one without erasing
        // ANDs the bits together and breaks the CRC.
        let other = Bitstream::new(DEVICE_ID, (0..256).map(|i| i * 3 + 1).collect());
        flash.program(&other.to_words()).unwrap();
        assert!(flash.load_bitstream().is_err());
        // Erase-then-program recovers.
        flash.erase_all();
        flash.program(&other.to_words()).unwrap();
        assert_eq!(flash.load_bitstream().unwrap(), other);
    }

    #[test]
    fn flash_detects_bit_rot() {
        let mut flash = FlashMemory::new(512);
        flash.program(&Bitstream::example_design().to_words()).unwrap();
        flash.corrupt_bit(20, 7);
        let err = flash.load_bitstream().unwrap_err();
        assert!(matches!(err, DlcError::InvalidBitstream { reason: "CRC mismatch" }));
    }

    #[test]
    fn flash_capacity_guard() {
        let mut flash = FlashMemory::new(4);
        let bs = Bitstream::example_design();
        assert!(flash.program(&bs.to_words()).is_err());
        assert_eq!(flash.read_all().len(), 4);
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_panics() {
        let _ = FlashMemory::new(0);
    }
}
