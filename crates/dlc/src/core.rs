//! The assembled Digital Logic Core board.
//!
//! Wires together the subsystems of the paper's Fig. 2: the FPGA, the
//! JTAG-programmed configuration FLASH, the USB microcontroller, and the
//! 12 MHz crystal — one struct a test application can hold and drive the
//! way the PC in the paper drives the physical board.

use pstime::{DataRate, Frequency};
use signal::{BitStream, DigitalWaveform};

use crate::flash::Bitstream;
use crate::fpga::Fpga;
use crate::jtag::JtagPort;
use crate::pattern::PatternKind;
use crate::usb::{Packet, UsbController};
use crate::{DlcError, Result};

/// The 12 MHz USB-microcontroller crystal on the DLC board.
pub const CRYSTAL_12MHZ: u64 = 12_000_000;

/// A complete Digital Logic Core: FPGA + FLASH (via JTAG) + USB ÂµC.
///
/// Lifecycle mirrors the hardware:
///
/// 1. [`program_flash_via_jtag`](DigitalLogicCore::program_flash_via_jtag)
///    stores a design (can be repeated to change designs),
/// 2. [`power_up`](DigitalLogicCore::power_up) boots the FPGA from FLASH,
/// 3. channels are configured and patterns generated, either directly or
///    through USB packets ([`usb_transaction`](DigitalLogicCore::usb_transaction)).
///
/// # Examples
///
/// ```
/// use dlc::{Bitstream, DigitalLogicCore, PatternKind};
/// use pstime::DataRate;
///
/// let mut core = DigitalLogicCore::new();
/// core.program_flash_via_jtag(&Bitstream::example_design())?;
/// core.power_up()?;
/// core.configure_channel(0, PatternKind::Prbs7 { seed: 1 }, DataRate::from_mbps(400))?;
/// let w = core.render_channel(0, 256, 42)?;
/// assert!(w.num_edges() > 100);
/// # Ok::<(), dlc::DlcError>(())
/// ```
#[derive(Debug)]
pub struct DigitalLogicCore {
    fpga: Fpga,
    jtag: JtagPort,
    usb: UsbController,
    crystal: Frequency,
    powered: bool,
}

impl DigitalLogicCore {
    /// A DLC with the paper's resources: 200 I/O and a 4 Mb-equivalent
    /// configuration FLASH.
    pub fn new() -> Self {
        DigitalLogicCore {
            fpga: Fpga::new(200),
            jtag: JtagPort::new(131_072),
            usb: UsbController::new(),
            crystal: Frequency::from_hz(CRYSTAL_12MHZ),
            powered: false,
        }
    }

    /// The USB crystal frequency (12 MHz).
    pub fn crystal(&self) -> Frequency {
        self.crystal
    }

    /// Whether the FPGA booted successfully.
    pub fn is_powered_up(&self) -> bool {
        self.powered && self.fpga.is_configured()
    }

    /// The JTAG port (for host tools that want pin-level control).
    pub fn jtag_mut(&mut self) -> &mut JtagPort {
        &mut self.jtag
    }

    /// The FPGA fabric.
    pub fn fpga(&self) -> &Fpga {
        &self.fpga
    }

    /// Mutable FPGA access.
    pub fn fpga_mut(&mut self) -> &mut Fpga {
        &mut self.fpga
    }

    /// Programs (erase + program + verify) the configuration FLASH through
    /// the boundary-scan port — the paper's design-update flow.
    ///
    /// # Errors
    ///
    /// Propagates JTAG/bitstream errors. The FPGA keeps running its old
    /// design until the next [`power_up`](Self::power_up).
    pub fn program_flash_via_jtag(&mut self, bitstream: &Bitstream) -> Result<()> {
        self.jtag.program_flash(bitstream)
    }

    /// Power-cycles the board: the FPGA reloads its personalization from
    /// FLASH.
    ///
    /// # Errors
    ///
    /// [`DlcError::InvalidBitstream`] if the FLASH is blank or corrupt.
    pub fn power_up(&mut self) -> Result<()> {
        self.powered = false;
        self.fpga.unconfigure();
        let bitstream = self.jtag.flash().load_bitstream()?;
        self.fpga.configure(&bitstream)?;
        self.powered = true;
        Ok(())
    }

    /// Programs a channel pattern at a per-pin rate.
    ///
    /// # Errors
    ///
    /// [`DlcError::NotConfigured`] before [`power_up`](Self::power_up);
    /// otherwise as [`Fpga::configure_channel`].
    pub fn configure_channel(
        &mut self,
        channel: usize,
        pattern: PatternKind,
        rate: DataRate,
    ) -> Result<()> {
        self.ensure_powered()?;
        self.fpga.configure_channel(channel, pattern, rate)
    }

    /// Generates the next `n` bits of `channel`.
    ///
    /// # Errors
    ///
    /// As [`Fpga::generate`], plus power check.
    pub fn generate(&mut self, channel: usize, n: usize) -> Result<BitStream> {
        self.ensure_powered()?;
        self.fpga.generate(channel, n)
    }

    /// Renders `n` bits of `channel` as a timing-annotated waveform.
    ///
    /// # Errors
    ///
    /// As [`Fpga::render_channel`], plus power check.
    pub fn render_channel(
        &mut self,
        channel: usize,
        n: usize,
        seed: u64,
    ) -> Result<DigitalWaveform> {
        self.ensure_powered()?;
        self.fpga.render_channel(channel, n, seed)
    }

    /// Renders one waveform per channel in `channels`, all sharing the
    /// same burst timeline — the parallel word the PECL tree serializes.
    ///
    /// # Errors
    ///
    /// As [`render_channel`](Self::render_channel) for each channel.
    pub fn render_channels(
        &mut self,
        channels: &[usize],
        n: usize,
        seed: u64,
    ) -> Result<Vec<DigitalWaveform>> {
        channels.iter().map(|&ch| self.render_channel(ch, n, seed)).collect()
    }

    /// Performs one USB host transaction: parse request bytes, dispatch,
    /// return response bytes.
    ///
    /// # Errors
    ///
    /// Protocol or register errors from the dispatcher.
    pub fn usb_transaction(&mut self, request: &[u8]) -> Result<Vec<u8>> {
        let packet = Packet::parse(request)?;
        let response = self.usb.handle(&packet, &mut self.fpga)?;
        Ok(response.as_bytes().to_vec())
    }

    fn ensure_powered(&self) -> Result<()> {
        if !self.is_powered_up() {
            return Err(DlcError::NotConfigured);
        }
        Ok(())
    }
}

impl Default for DigitalLogicCore {
    fn default() -> Self {
        DigitalLogicCore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::usb::Opcode;

    fn booted() -> DigitalLogicCore {
        let mut core = DigitalLogicCore::new();
        core.program_flash_via_jtag(&Bitstream::example_design()).unwrap();
        core.power_up().unwrap();
        core
    }

    #[test]
    fn full_boot_sequence() {
        let mut core = DigitalLogicCore::new();
        assert!(!core.is_powered_up());
        // Booting a blank flash fails.
        assert!(core.power_up().is_err());
        core.program_flash_via_jtag(&Bitstream::example_design()).unwrap();
        core.power_up().unwrap();
        assert!(core.is_powered_up());
        assert_eq!(core.crystal(), Frequency::from_mhz(12));
    }

    #[test]
    fn operations_require_power() {
        let mut core = DigitalLogicCore::new();
        assert!(matches!(
            core.configure_channel(0, PatternKind::Clock, DataRate::from_mbps(100)),
            Err(DlcError::NotConfigured)
        ));
        assert!(core.generate(0, 8).is_err());
        assert!(core.render_channel(0, 8, 0).is_err());
    }

    #[test]
    fn design_update_flow() {
        let mut core = booted();
        core.configure_channel(0, PatternKind::Clock, DataRate::from_mbps(400)).unwrap();
        // Re-flash with a new design while running.
        let v2 = Bitstream::new(crate::flash::DEVICE_ID, (0..64).map(|i| i + 9).collect());
        core.program_flash_via_jtag(&v2).unwrap();
        // Old design still runs until power cycle.
        assert!(core.generate(0, 4).is_ok());
        core.power_up().unwrap();
        // Power cycle wiped channel configs (new personalization).
        assert!(matches!(core.generate(0, 4), Err(DlcError::ChannelNotConfigured { channel: 0 })));
    }

    #[test]
    fn corrupt_flash_fails_boot() {
        let mut core = DigitalLogicCore::new();
        core.program_flash_via_jtag(&Bitstream::example_design()).unwrap();
        core.jtag_mut().flash_mut().corrupt_bit(5, 0);
        assert!(core.power_up().is_err());
        assert!(!core.is_powered_up());
    }

    #[test]
    fn parallel_channel_rendering() {
        let mut core = booted();
        let rate = DataRate::from_mbps(312);
        for ch in 0..8 {
            core.configure_channel(ch, PatternKind::Prbs15 { seed: 10 + ch as u32 }, rate).unwrap();
        }
        let waves = core.render_channels(&[0, 1, 2, 3, 4, 5, 6, 7], 128, 99).unwrap();
        assert_eq!(waves.len(), 8);
        // Channels get decorrelated jitter but identical spans.
        assert!(waves.windows(2).all(|w| w[0].span() == w[1].span()));
        assert_ne!(waves[0], waves[1]);
    }

    #[test]
    fn usb_control_path_end_to_end() {
        let mut core = booted();
        let ping = Packet::command(Opcode::Ping, &[]);
        let resp = core.usb_transaction(ping.as_bytes()).unwrap();
        let resp = Packet::parse(&resp).unwrap();
        assert_eq!(resp.payload(), vec![crate::usb::PROTOCOL_VERSION]);
        // Garbage on the wire is rejected.
        assert!(core.usb_transaction(&[0xFF]).is_err());
    }

    #[test]
    fn fpga_accessors() {
        let mut core = booted();
        assert_eq!(core.fpga().num_channels(), 200);
        core.fpga_mut().reset_engines();
        assert_eq!(DigitalLogicCore::default().fpga().num_channels(), 200);
    }
}
