//! The DLC's memory-mapped control register file.
//!
//! The PC controls the running FPGA design through 16-bit registers reached
//! over USB. The map below mirrors the paper's described functionality:
//! global control/status, per-channel pattern configuration, and capture
//! readback.

use core::fmt;
use std::collections::BTreeMap;

use crate::{DlcError, Result};

/// A register address in the DLC's 16-bit control space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegAddr(pub u16);

impl fmt::Display for RegAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#06x}", self.0)
    }
}

/// Well-known register addresses of the example DLC design.
pub mod map {
    use super::RegAddr;

    /// Design identification (constant `0xD1C0`).
    pub const ID: RegAddr = RegAddr(0x0000);
    /// Design revision.
    pub const REVISION: RegAddr = RegAddr(0x0001);
    /// Global control: bit 0 = run, bit 1 = capture enable.
    pub const CONTROL: RegAddr = RegAddr(0x0002);
    /// Global status: bit 0 = running, bit 1 = capture done.
    pub const STATUS: RegAddr = RegAddr(0x0003);
    /// Base of the per-channel configuration block (8 registers each).
    pub const CHANNEL_BASE: RegAddr = RegAddr(0x0100);
    /// Stride between channel blocks.
    pub const CHANNEL_STRIDE: u16 = 8;
    /// Capture memory window base.
    pub const CAPTURE_BASE: RegAddr = RegAddr(0x4000);

    /// The constant the ID register must read back.
    pub const ID_VALUE: u16 = 0xD1C0;
}

/// A sparse 16-bit-addressed register file with read-only region support.
///
/// # Examples
///
/// ```
/// use dlc::{RegAddr, RegisterFile};
///
/// let mut regs = RegisterFile::new();
/// regs.define(RegAddr(0x10), 0);
/// regs.write(RegAddr(0x10), 42)?;
/// assert_eq!(regs.read(RegAddr(0x10))?, 42);
/// # Ok::<(), dlc::DlcError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegisterFile {
    regs: BTreeMap<u16, u16>,
    read_only: Vec<u16>,
}

impl RegisterFile {
    /// Creates an empty register file.
    pub fn new() -> Self {
        RegisterFile::default()
    }

    /// Creates the register file of the example DLC design: ID, revision,
    /// control/status, and 16 channel blocks, with ID and revision
    /// read-only.
    pub fn example_design() -> Self {
        let mut rf = RegisterFile::new();
        rf.define_read_only(map::ID, map::ID_VALUE);
        rf.define_read_only(map::REVISION, 0x0105);
        rf.define(map::CONTROL, 0);
        rf.define(map::STATUS, 0);
        for ch in 0..16u16 {
            let base = map::CHANNEL_BASE.0 + ch * map::CHANNEL_STRIDE;
            for off in 0..map::CHANNEL_STRIDE {
                rf.define(RegAddr(base + off), 0);
            }
        }
        rf
    }

    /// Declares a read/write register with a reset value.
    pub fn define(&mut self, addr: RegAddr, reset: u16) {
        self.regs.insert(addr.0, reset);
    }

    /// Declares a read-only register with a fixed value.
    pub fn define_read_only(&mut self, addr: RegAddr, value: u16) {
        self.regs.insert(addr.0, value);
        self.read_only.push(addr.0);
    }

    /// Reads a register.
    ///
    /// # Errors
    ///
    /// [`DlcError::UnmappedRegister`] if `addr` was never defined.
    pub fn read(&self, addr: RegAddr) -> Result<u16> {
        self.regs.get(&addr.0).copied().ok_or(DlcError::UnmappedRegister { addr: addr.0 })
    }

    /// Writes a register. Writes to read-only registers are silently
    /// discarded (the hardware convention for status registers).
    ///
    /// # Errors
    ///
    /// [`DlcError::UnmappedRegister`] if `addr` was never defined.
    pub fn write(&mut self, addr: RegAddr, value: u16) -> Result<()> {
        if !self.regs.contains_key(&addr.0) {
            return Err(DlcError::UnmappedRegister { addr: addr.0 });
        }
        if !self.read_only.contains(&addr.0) {
            self.regs.insert(addr.0, value);
        }
        Ok(())
    }

    /// Forcibly updates a register value, bypassing the read-only guard —
    /// this is the *hardware side* of a status register.
    ///
    /// # Errors
    ///
    /// [`DlcError::UnmappedRegister`] if `addr` was never defined.
    pub fn hw_set(&mut self, addr: RegAddr, value: u16) -> Result<()> {
        if !self.regs.contains_key(&addr.0) {
            return Err(DlcError::UnmappedRegister { addr: addr.0 });
        }
        self.regs.insert(addr.0, value);
        Ok(())
    }

    /// Sets or clears a single bit (read-modify-write).
    ///
    /// # Errors
    ///
    /// [`DlcError::UnmappedRegister`] if `addr` was never defined.
    pub fn write_bit(&mut self, addr: RegAddr, bit: u8, value: bool) -> Result<()> {
        let old = self.read(addr)?;
        let mask = 1u16 << bit;
        self.write(addr, if value { old | mask } else { old & !mask })
    }

    /// Reads a single bit.
    ///
    /// # Errors
    ///
    /// [`DlcError::UnmappedRegister`] if `addr` was never defined.
    pub fn read_bit(&self, addr: RegAddr, bit: u8) -> Result<bool> {
        Ok(self.read(addr)? & (1 << bit) != 0)
    }

    /// Number of defined registers.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Whether no registers are defined.
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Iterates `(address, value)` in address order.
    pub fn iter(&self) -> impl Iterator<Item = (RegAddr, u16)> + '_ {
        self.regs.iter().map(|(a, v)| (RegAddr(*a), *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_read_write() {
        let mut rf = RegisterFile::new();
        assert!(rf.is_empty());
        rf.define(RegAddr(0x10), 7);
        assert_eq!(rf.read(RegAddr(0x10)).unwrap(), 7);
        rf.write(RegAddr(0x10), 99).unwrap();
        assert_eq!(rf.read(RegAddr(0x10)).unwrap(), 99);
        assert_eq!(rf.len(), 1);
    }

    #[test]
    fn unmapped_access_errors() {
        let mut rf = RegisterFile::new();
        assert!(matches!(rf.read(RegAddr(0x55)), Err(DlcError::UnmappedRegister { addr: 0x55 })));
        assert!(rf.write(RegAddr(0x55), 1).is_err());
        assert!(rf.hw_set(RegAddr(0x55), 1).is_err());
    }

    #[test]
    fn read_only_semantics() {
        let mut rf = RegisterFile::new();
        rf.define_read_only(RegAddr(0), 0xD1C0);
        rf.write(RegAddr(0), 0xFFFF).unwrap(); // silently dropped
        assert_eq!(rf.read(RegAddr(0)).unwrap(), 0xD1C0);
        rf.hw_set(RegAddr(0), 0x1234).unwrap(); // hardware can update it
        assert_eq!(rf.read(RegAddr(0)).unwrap(), 0x1234);
    }

    #[test]
    fn bit_operations() {
        let mut rf = RegisterFile::new();
        rf.define(RegAddr(2), 0);
        rf.write_bit(RegAddr(2), 0, true).unwrap();
        rf.write_bit(RegAddr(2), 3, true).unwrap();
        assert_eq!(rf.read(RegAddr(2)).unwrap(), 0b1001);
        assert!(rf.read_bit(RegAddr(2), 3).unwrap());
        rf.write_bit(RegAddr(2), 3, false).unwrap();
        assert!(!rf.read_bit(RegAddr(2), 3).unwrap());
    }

    #[test]
    fn example_design_map() {
        let rf = RegisterFile::example_design();
        assert_eq!(rf.read(map::ID).unwrap(), map::ID_VALUE);
        assert_eq!(rf.read(map::REVISION).unwrap(), 0x0105);
        assert_eq!(rf.read(map::CONTROL).unwrap(), 0);
        // 16 channels x 8 regs + 4 globals.
        assert_eq!(rf.len(), 16 * 8 + 4);
        // Channel 3 block exists.
        let ch3 = RegAddr(map::CHANNEL_BASE.0 + 3 * map::CHANNEL_STRIDE);
        assert_eq!(rf.read(ch3).unwrap(), 0);
    }

    #[test]
    fn iteration_is_ordered() {
        let rf = RegisterFile::example_design();
        let addrs: Vec<u16> = rf.iter().map(|(a, _)| a.0).collect();
        let mut sorted = addrs.clone();
        sorted.sort_unstable();
        assert_eq!(addrs, sorted);
    }

    #[test]
    fn display_format() {
        assert_eq!(RegAddr(0x1a2).to_string(), "0x01a2");
    }
}
