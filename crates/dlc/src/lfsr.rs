//! Linear-feedback shift registers and PRBS generation.
//!
//! The paper's eye diagrams (Figs. 7–8) are driven by "a pseudo-random bit
//! pattern produced by an LFSR in the DLC". This module implements the
//! standard ITU-T PRBS polynomials as Fibonacci LFSRs, exactly as they fit
//! in FPGA fabric.

use signal::BitStream;

/// The standard PRBS polynomials (ITU-T O.150 family).
///
/// Each variant names the sequence length: PRBS-7 repeats every 2⁷−1 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrbsPolynomial {
    /// x⁷ + x⁶ + 1 (period 127).
    Prbs7,
    /// x⁹ + x⁵ + 1 (period 511).
    Prbs9,
    /// x¹¹ + x⁹ + 1 (period 2047).
    Prbs11,
    /// x¹⁵ + x¹⁴ + 1 (period 32767) — the workhorse for serial-link tests.
    Prbs15,
    /// x²³ + x¹⁸ + 1 (period 8388607).
    Prbs23,
    /// x³¹ + x²⁸ + 1 (period 2³¹−1).
    Prbs31,
}

impl PrbsPolynomial {
    /// Register length in bits.
    pub const fn order(self) -> u32 {
        match self {
            PrbsPolynomial::Prbs7 => 7,
            PrbsPolynomial::Prbs9 => 9,
            PrbsPolynomial::Prbs11 => 11,
            PrbsPolynomial::Prbs15 => 15,
            PrbsPolynomial::Prbs23 => 23,
            PrbsPolynomial::Prbs31 => 31,
        }
    }

    /// The two feedback tap positions `(a, b)` such that the next bit is
    /// `reg[a-1] ^ reg[b-1]` (1-indexed from the newest bit).
    pub const fn taps(self) -> (u32, u32) {
        match self {
            PrbsPolynomial::Prbs7 => (7, 6),
            PrbsPolynomial::Prbs9 => (9, 5),
            PrbsPolynomial::Prbs11 => (11, 9),
            PrbsPolynomial::Prbs15 => (15, 14),
            PrbsPolynomial::Prbs23 => (23, 18),
            PrbsPolynomial::Prbs31 => (31, 28),
        }
    }

    /// Sequence period, `2^order − 1`.
    pub const fn period(self) -> u64 {
        (1u64 << self.order()) - 1
    }
}

/// A Fibonacci LFSR over one of the standard PRBS polynomials.
///
/// # Examples
///
/// ```
/// use dlc::{Lfsr, PrbsPolynomial};
///
/// let mut lfsr = Lfsr::new(PrbsPolynomial::Prbs7, 0x7F);
/// let first: Vec<bool> = (0..7).map(|_| lfsr.next_bit()).collect();
/// // Runs for its full period before repeating.
/// assert_eq!(Lfsr::new(PrbsPolynomial::Prbs7, 1).cycle_length(), 127);
/// # let _ = first;
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Lfsr {
    poly: PrbsPolynomial,
    state: u32,
}

impl Lfsr {
    /// Creates an LFSR with the given polynomial and seed.
    ///
    /// A zero seed is the lock-up state of a Fibonacci LFSR, so it is
    /// silently mapped to the all-ones state (what real hardware does with
    /// a seed-protect gate).
    pub fn new(poly: PrbsPolynomial, seed: u32) -> Self {
        let mask = ((1u64 << poly.order()) - 1) as u32;
        let state = seed & mask;
        Lfsr { poly, state: if state == 0 { mask } else { state } }
    }

    /// The polynomial in use.
    pub fn polynomial(&self) -> PrbsPolynomial {
        self.poly
    }

    /// The current register contents.
    pub fn state(&self) -> u32 {
        self.state
    }

    /// Advances one cycle and returns the output bit (the bit shifted out).
    pub fn next_bit(&mut self) -> bool {
        let (a, b) = self.poly.taps();
        let n = self.poly.order();
        let out = self.state & 1 == 1;
        let fb = ((self.state >> (n - a)) ^ (self.state >> (n - b))) & 1;
        self.state = (self.state >> 1) | (fb << (n - 1));
        out
    }

    /// Generates the next `n` bits as a [`BitStream`].
    pub fn generate(&mut self, n: usize) -> BitStream {
        BitStream::from_fn(n, |_| self.next_bit())
    }

    /// Steps until the register returns to its start state and reports the
    /// cycle length. Intended for verification of short polynomials.
    ///
    /// # Panics
    ///
    /// Panics (after `2^(order+1)` steps) if the register never recurs,
    /// which would indicate a broken polynomial table.
    pub fn cycle_length(&self) -> u64 {
        let mut probe = self.clone();
        let start = probe.state;
        let limit = 2u64 << self.poly.order();
        for i in 1..=limit {
            probe.next_bit();
            if probe.state == start {
                return i;
            }
        }
        // xlint::allow(no-panic-in-lib, every PrbsPolynomial is primitive so the state must recur within 2^order steps; reaching here means the tap table itself is corrupt)
        panic!("LFSR did not recur within {limit} steps — broken taps");
    }
}

impl Iterator for Lfsr {
    type Item = bool;
    fn next(&mut self) -> Option<bool> {
        Some(self.next_bit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_polynomials_are_maximal_length() {
        // Maximal-length check is cheap for the short ones.
        for poly in [
            PrbsPolynomial::Prbs7,
            PrbsPolynomial::Prbs9,
            PrbsPolynomial::Prbs11,
            PrbsPolynomial::Prbs15,
        ] {
            let lfsr = Lfsr::new(poly, 1);
            assert_eq!(lfsr.cycle_length(), poly.period(), "{poly:?}");
        }
    }

    #[test]
    fn period_constants() {
        assert_eq!(PrbsPolynomial::Prbs7.period(), 127);
        assert_eq!(PrbsPolynomial::Prbs15.period(), 32767);
        assert_eq!(PrbsPolynomial::Prbs23.period(), 8_388_607);
        assert_eq!(PrbsPolynomial::Prbs31.period(), 2_147_483_647);
        assert_eq!(PrbsPolynomial::Prbs31.order(), 31);
        assert_eq!(PrbsPolynomial::Prbs23.taps(), (23, 18));
        assert_eq!(PrbsPolynomial::Prbs9.order(), 9);
        assert_eq!(PrbsPolynomial::Prbs11.taps(), (11, 9));
    }

    #[test]
    fn zero_seed_is_rescued() {
        let lfsr = Lfsr::new(PrbsPolynomial::Prbs7, 0);
        assert_ne!(lfsr.state(), 0);
        // And it still runs the full cycle.
        assert_eq!(lfsr.cycle_length(), 127);
    }

    #[test]
    fn balanced_ones_and_zeros() {
        // A maximal-length sequence has 2^(n-1) ones and 2^(n-1)-1 zeros.
        let mut lfsr = Lfsr::new(PrbsPolynomial::Prbs7, 0x55);
        let bits = lfsr.generate(127);
        assert_eq!(bits.count_ones(), 64);
    }

    #[test]
    fn max_run_length_matches_theory() {
        // PRBS-n contains a run of n ones and a run of n-1 zeros.
        let mut lfsr = Lfsr::new(PrbsPolynomial::Prbs7, 1);
        let bits = lfsr.generate(127 * 2);
        assert_eq!(bits.max_run_length(), 7);
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<bool> = Lfsr::new(PrbsPolynomial::Prbs15, 0xACE).take(64).collect();
        let b: Vec<bool> = Lfsr::new(PrbsPolynomial::Prbs15, 0xACE).take(64).collect();
        let c: Vec<bool> = Lfsr::new(PrbsPolynomial::Prbs15, 0xACD).take(64).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn seed_is_masked_to_order() {
        let lfsr = Lfsr::new(PrbsPolynomial::Prbs7, 0xFFFF_FFFF);
        assert_eq!(lfsr.state(), 0x7F);
    }

    #[test]
    fn generate_matches_iterator() {
        let mut gen = Lfsr::new(PrbsPolynomial::Prbs9, 3);
        let stream = gen.generate(32);
        let iter: Vec<bool> = Lfsr::new(PrbsPolynomial::Prbs9, 3).take(32).collect();
        assert_eq!(stream.as_slice(), &iter[..]);
        assert_eq!(gen.polynomial(), PrbsPolynomial::Prbs9);
    }

    #[test]
    fn spectral_flatness_rough_check() {
        // PRBS-15 should look "random": transition density ~0.5.
        let mut lfsr = Lfsr::new(PrbsPolynomial::Prbs15, 0x1234);
        let bits = lfsr.generate(32_767);
        let d = bits.transition_density();
        assert!((d - 0.5).abs() < 0.01, "transition density {d}");
    }
}
