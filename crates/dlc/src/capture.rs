//! Response capture: the receive half of the DLC fabric.
//!
//! The paper's register map (CONTROL/STATUS, capture window) implies what
//! every tester core has: a capture engine that either **stores** sampled
//! response bits to memory for later upload, or **compares on the fly**
//! against expected data and keeps an error count (the only thing a
//! go/no-go production test needs to read back). Both modes are
//! implemented here, wired to the same capture RAM the USB host reads.

use core::fmt;

use signal::BitStream;

use crate::{DlcError, Result};

/// Capture-engine operating mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaptureMode {
    /// Store every sampled bit to capture RAM.
    Store,
    /// Compare each sampled bit against this expected stream (looping) and
    /// count errors; only mismatch positions are stored.
    Compare(BitStream),
}

/// The capture engine: mode, RAM, counters.
///
/// # Examples
///
/// ```
/// use dlc::capture::{CaptureEngine, CaptureMode};
/// use signal::BitStream;
///
/// let mut engine = CaptureEngine::new(1_024);
/// engine.arm(CaptureMode::Store)?;
/// engine.push_bits(&BitStream::from_str_bits("10110"));
/// let captured = engine.stop();
/// assert_eq!(captured.bits_seen, 5);
/// assert_eq!(engine.ram(), &BitStream::from_str_bits("10110"));
/// # Ok::<(), dlc::DlcError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaptureEngine {
    capacity_bits: usize,
    mode: Option<CaptureMode>,
    ram: BitStream,
    mismatch_positions: Vec<u64>,
    bits_seen: u64,
    errors: u64,
    overflowed: bool,
}

/// Summary returned when a capture is stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaptureSummary {
    /// Bits processed while armed.
    pub bits_seen: u64,
    /// Mismatches counted (compare mode only).
    pub errors: u64,
    /// Whether the capture RAM filled before the capture stopped.
    pub overflowed: bool,
}

impl CaptureSummary {
    /// Error ratio over the capture.
    pub fn error_ratio(&self) -> f64 {
        if self.bits_seen == 0 {
            0.0
        } else {
            self.errors as f64 / self.bits_seen as f64
        }
    }
}

impl fmt::Display for CaptureSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} bits, {} errors ({:.2e}){}",
            self.bits_seen,
            self.errors,
            self.error_ratio(),
            if self.overflowed { ", RAM overflow" } else { "" }
        )
    }
}

impl CaptureEngine {
    /// Creates an engine with `capacity_bits` of capture RAM.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero.
    pub fn new(capacity_bits: usize) -> Self {
        assert!(capacity_bits > 0, "capture RAM must be nonzero");
        CaptureEngine {
            capacity_bits,
            mode: None,
            ram: BitStream::new(),
            mismatch_positions: Vec::new(),
            bits_seen: 0,
            errors: 0,
            overflowed: false,
        }
    }

    /// Capture RAM capacity in bits.
    pub fn capacity_bits(&self) -> usize {
        self.capacity_bits
    }

    /// Whether a capture is armed.
    pub fn is_armed(&self) -> bool {
        self.mode.is_some()
    }

    /// Arms a capture, clearing previous contents.
    ///
    /// # Errors
    ///
    /// [`DlcError::InvalidBitstream`] if a compare pattern is empty or an
    /// earlier capture is still armed.
    pub fn arm(&mut self, mode: CaptureMode) -> Result<()> {
        if self.is_armed() {
            return Err(DlcError::InvalidBitstream { reason: "capture already armed" });
        }
        if let CaptureMode::Compare(expected) = &mode {
            if expected.is_empty() {
                return Err(DlcError::InvalidBitstream { reason: "empty compare pattern" });
            }
        }
        self.ram = BitStream::new();
        self.mismatch_positions.clear();
        self.bits_seen = 0;
        self.errors = 0;
        self.overflowed = false;
        self.mode = Some(mode);
        Ok(())
    }

    /// Feeds one sampled bit into the armed engine. Bits pushed while
    /// unarmed are ignored (the hardware gate is closed).
    pub fn push_bit(&mut self, bit: bool) {
        let Some(mode) = &self.mode else { return };
        match mode {
            CaptureMode::Store => {
                if self.ram.len() < self.capacity_bits {
                    self.ram.push(bit);
                } else {
                    self.overflowed = true;
                }
            }
            CaptureMode::Compare(expected) => {
                let idx = (self.bits_seen % expected.len() as u64) as usize;
                if expected[idx] != bit {
                    self.errors += 1;
                    if self.mismatch_positions.len() * 64 < self.capacity_bits {
                        self.mismatch_positions.push(self.bits_seen);
                    } else {
                        self.overflowed = true;
                    }
                }
            }
        }
        self.bits_seen += 1;
    }

    /// Feeds a whole stream.
    pub fn push_bits(&mut self, bits: &BitStream) {
        for b in bits.iter() {
            self.push_bit(b);
        }
    }

    /// Stops the capture and returns the summary; contents remain
    /// readable until the next [`arm`](Self::arm).
    pub fn stop(&mut self) -> CaptureSummary {
        self.mode = None;
        CaptureSummary {
            bits_seen: self.bits_seen,
            errors: self.errors,
            overflowed: self.overflowed,
        }
    }

    /// The stored bits (store mode).
    pub fn ram(&self) -> &BitStream {
        &self.ram
    }

    /// The recorded mismatch positions (compare mode).
    pub fn mismatch_positions(&self) -> &[u64] {
        &self.mismatch_positions
    }

    /// Reads the capture RAM as 16-bit words for USB upload, LSB-first —
    /// the same packing the SRAM uses.
    pub fn read_words(&self) -> Vec<u16> {
        let n_words = self.ram.len().div_ceil(16);
        let mut words = vec![0u16; n_words];
        for (i, b) in self.ram.iter().enumerate() {
            if b {
                words[i / 16] |= 1 << (i % 16);
            }
        }
        words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_mode_records_bits() {
        let mut e = CaptureEngine::new(64);
        assert!(!e.is_armed());
        e.arm(CaptureMode::Store).unwrap();
        assert!(e.is_armed());
        e.push_bits(&BitStream::from_str_bits("1100101"));
        let summary = e.stop();
        assert_eq!(summary.bits_seen, 7);
        assert_eq!(summary.errors, 0);
        assert!(!summary.overflowed);
        assert_eq!(e.ram().to_string(), "1100101");
        assert!(!e.is_armed());
    }

    #[test]
    fn unarmed_pushes_are_ignored() {
        let mut e = CaptureEngine::new(64);
        e.push_bit(true);
        e.push_bits(&BitStream::ones(5));
        assert_eq!(e.ram().len(), 0);
        e.arm(CaptureMode::Store).unwrap();
        let s = e.stop();
        assert_eq!(s.bits_seen, 0);
        assert_eq!(s.error_ratio(), 0.0);
    }

    #[test]
    fn store_overflow_flagged() {
        let mut e = CaptureEngine::new(8);
        e.arm(CaptureMode::Store).unwrap();
        e.push_bits(&BitStream::alternating(12));
        let s = e.stop();
        assert!(s.overflowed);
        assert_eq!(e.ram().len(), 8);
        assert_eq!(s.bits_seen, 12);
    }

    #[test]
    fn compare_mode_counts_errors() {
        let expected = BitStream::from_str_bits("1010");
        let mut e = CaptureEngine::new(256);
        e.arm(CaptureMode::Compare(expected)).unwrap();
        // Two clean loops then two corrupted bits.
        e.push_bits(&BitStream::from_str_bits("1010_1010_1110"));
        let s = e.stop();
        assert_eq!(s.bits_seen, 12);
        assert_eq!(s.errors, 1); // position 9: expected 0, got 1
        assert_eq!(e.mismatch_positions(), &[9]);
        assert!(s.to_string().contains("1 errors"));
    }

    #[test]
    fn compare_pattern_loops() {
        let mut e = CaptureEngine::new(256);
        e.arm(CaptureMode::Compare(BitStream::from_str_bits("10"))).unwrap();
        e.push_bits(&BitStream::from_str_bits("10101010"));
        assert_eq!(e.stop().errors, 0);
    }

    #[test]
    fn rearm_clears_state() {
        let mut e = CaptureEngine::new(16);
        e.arm(CaptureMode::Store).unwrap();
        e.push_bits(&BitStream::ones(4));
        e.stop();
        e.arm(CaptureMode::Store).unwrap();
        e.push_bits(&BitStream::zeros(2));
        let s = e.stop();
        assert_eq!(s.bits_seen, 2);
        assert_eq!(e.ram().to_string(), "00");
    }

    #[test]
    fn double_arm_rejected() {
        let mut e = CaptureEngine::new(16);
        e.arm(CaptureMode::Store).unwrap();
        assert!(matches!(
            e.arm(CaptureMode::Store),
            Err(DlcError::InvalidBitstream { reason: "capture already armed" })
        ));
    }

    #[test]
    fn empty_compare_rejected() {
        let mut e = CaptureEngine::new(16);
        assert!(e.arm(CaptureMode::Compare(BitStream::new())).is_err());
    }

    #[test]
    fn word_packing_for_usb() {
        let mut e = CaptureEngine::new(64);
        e.arm(CaptureMode::Store).unwrap();
        e.push_bits(&BitStream::from_str_bits("1000_0000_0000_0000_1"));
        e.stop();
        let words = e.read_words();
        assert_eq!(words.len(), 2);
        assert_eq!(words[0], 0x0001);
        assert_eq!(words[1], 0x0001);
    }

    #[test]
    fn capacity_accessor() {
        assert_eq!(CaptureEngine::new(128).capacity_bits(), 128);
    }

    #[test]
    #[should_panic(expected = "capture RAM must be nonzero")]
    fn zero_capacity_panics() {
        let _ = CaptureEngine::new(0);
    }
}
