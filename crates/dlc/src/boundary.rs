//! IEEE 1149.1 boundary-scan register: SAMPLE/PRELOAD and EXTEST.
//!
//! The paper uses the 1149.1 port for FLASH programming, but the standard's
//! reason for existing is board-level structural test: a **boundary
//! register** cell on every pin lets the host sample the pins mid-operation
//! (SAMPLE), preload drive values (PRELOAD), and take control of the pins
//! entirely (EXTEST) to check continuity between devices. A DLC-based
//! tester board is itself testable this way, so the model supports it.

use core::fmt;

use crate::{DlcError, Result};

/// One boundary-register cell: a capture/update pair on a pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BoundaryCell {
    /// The value captured from the pin at the last Capture-DR.
    pub captured: bool,
    /// The value the update latch drives in EXTEST.
    pub update: bool,
}

/// Pin direction as seen by the boundary register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinState {
    /// The pin is driven by the core (functional mode).
    Functional(bool),
    /// The pin is driven by the boundary register (EXTEST).
    Extest(bool),
}

impl PinState {
    /// The level on the pin regardless of who drives it.
    pub fn level(self) -> bool {
        match self {
            PinState::Functional(v) | PinState::Extest(v) => v,
        }
    }
}

/// The boundary register of an `n`-pin device.
///
/// # Examples
///
/// ```
/// use dlc::boundary::BoundaryRegister;
///
/// let mut bsr = BoundaryRegister::new(8);
/// // Core drives pins functionally...
/// bsr.set_functional_levels(&[true, false, true, false, true, false, true, false]);
/// // ...SAMPLE captures them without disturbing anything.
/// let sampled = bsr.sample();
/// assert_eq!(sampled.count_ones(), 4);
/// # let _ = sampled;
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundaryRegister {
    cells: Vec<BoundaryCell>,
    functional: Vec<bool>,
    extest_active: bool,
}

impl BoundaryRegister {
    /// Creates a register for `pins` pins, all functionally low.
    ///
    /// # Panics
    ///
    /// Panics if `pins` is zero.
    pub fn new(pins: usize) -> Self {
        assert!(pins > 0, "boundary register needs at least one pin");
        BoundaryRegister {
            cells: vec![BoundaryCell::default(); pins],
            functional: vec![false; pins],
            extest_active: false,
        }
    }

    /// Number of pins / cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the register has no cells (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Whether EXTEST currently controls the pins.
    pub fn extest_active(&self) -> bool {
        self.extest_active
    }

    /// Sets the functional (core-driven) pin levels.
    ///
    /// # Panics
    ///
    /// Panics if the slice length differs from the pin count.
    pub fn set_functional_levels(&mut self, levels: &[bool]) {
        assert_eq!(levels.len(), self.cells.len(), "level count must match pins");
        self.functional.copy_from_slice(levels);
    }

    /// The externally visible state of pin `i`.
    ///
    /// # Errors
    ///
    /// [`DlcError::ChannelOutOfRange`] for a bad index.
    pub fn pin(&self, i: usize) -> Result<PinState> {
        let n = self.cells.len();
        if i >= n {
            return Err(DlcError::ChannelOutOfRange { channel: i, available: n });
        }
        Ok(if self.extest_active {
            PinState::Extest(self.cells[i].update)
        } else {
            PinState::Functional(self.functional[i])
        })
    }

    /// SAMPLE: captures every pin's current level into the capture stage
    /// without affecting the pins; returns the captured word (pin 0 =
    /// bit 0).
    pub fn sample(&mut self) -> u64 {
        let mut word = 0u64;
        for (i, cell) in self.cells.iter_mut().enumerate() {
            let level = if self.extest_active { cell.update } else { self.functional[i] };
            cell.captured = level;
            if level && i < 64 {
                word |= 1 << i;
            }
        }
        word
    }

    /// Shifts the register by one cell: `tdi` enters at the last cell, the
    /// first cell's captured bit exits as TDO. (1149.1 shifts capture
    /// stages, not update latches.)
    pub fn shift(&mut self, tdi: bool) -> bool {
        let out = self.cells[0].captured;
        for i in 0..self.cells.len() - 1 {
            self.cells[i].captured = self.cells[i + 1].captured;
        }
        let n = self.cells.len();
        self.cells[n - 1].captured = tdi;
        out
    }

    /// PRELOAD/UPDATE: copies every capture stage into its update latch.
    pub fn update(&mut self) {
        for cell in &mut self.cells {
            cell.update = cell.captured;
        }
    }

    /// Enters EXTEST: the update latches drive the pins.
    pub fn enter_extest(&mut self) {
        self.extest_active = true;
    }

    /// Leaves EXTEST: control returns to the core.
    pub fn exit_extest(&mut self) {
        self.extest_active = false;
    }

    /// Host-level helper: shifts a full `len()`-bit pattern in (LSB first,
    /// pin 0 first) and returns the bits shifted out.
    pub fn shift_pattern(&mut self, pattern: u64) -> u64 {
        let n = self.cells.len().min(64);
        let mut out = 0u64;
        for i in 0..self.cells.len() {
            let tdi = i < 64 && (pattern >> i.min(63)) & 1 == 1;
            let tdo = self.shift(tdi);
            if tdo && i < 64 {
                out |= 1 << i;
            }
        }
        let _ = n;
        out
    }
}

impl fmt::Display for BoundaryRegister {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "boundary register: {} cells, {}",
            self.cells.len(),
            if self.extest_active { "EXTEST" } else { "functional" }
        )
    }
}

/// A board-level interconnect check between two devices' boundary
/// registers: drive a walking-ones pattern from `driver`, observe on
/// `receiver` through the net mapping, and report broken/shorted nets.
///
/// `nets[i] = j` means driver pin `i` is wired to receiver pin `j`.
/// `open_faults` marks driver pins whose solder joint is broken.
///
/// Returns the list of driver pins whose net failed.
pub fn interconnect_test(
    driver: &mut BoundaryRegister,
    receiver: &mut BoundaryRegister,
    nets: &[usize],
    open_faults: &[bool],
) -> Vec<usize> {
    assert_eq!(nets.len(), driver.len(), "one net per driver pin");
    assert_eq!(open_faults.len(), driver.len(), "one fault flag per driver pin");
    driver.enter_extest();
    let mut failures = Vec::new();
    for pin in 0..driver.len() {
        // Walking one: preload the pattern and drive it.
        let pattern = 1u64 << pin;
        driver.shift_pattern(pattern);
        driver.update();
        // The receiver sees the driven levels through the nets (unless the
        // joint is open, in which case the net floats low).
        let mut seen = vec![false; receiver.len()];
        for (d, &r) in nets.iter().enumerate() {
            let level = driver.pin(d).is_ok_and(PinState::level) && !open_faults[d]; // xlint::allow(panic-reachable, the assert_eq guards above pin open_faults.len() to driver.len() and d enumerates nets of that same length)
            seen[r] = level;
        }
        receiver.set_functional_levels(&seen);
        let observed = receiver.sample();
        // The tester expects the design intent; a broken joint shows up as
        // a mismatch (the net floats low instead of following the drive).
        let expected = 1u64 << nets[pin]; // xlint::allow(panic-reachable, pin ranges over 0..driver.len() and the assert_eq guard pins nets.len() to driver.len())
        if observed != expected {
            failures.push(pin);
        }
    }
    driver.exit_extest();
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_captures_functional_levels() {
        let mut bsr = BoundaryRegister::new(8);
        assert_eq!(bsr.len(), 8);
        assert!(!bsr.is_empty());
        bsr.set_functional_levels(&[true, true, false, false, true, false, false, true]);
        let word = bsr.sample();
        assert_eq!(word, 0b1001_0011);
        assert!(!bsr.extest_active());
        assert!(matches!(bsr.pin(0).unwrap(), PinState::Functional(true)));
        assert!(bsr.pin(9).is_err());
    }

    #[test]
    fn shift_moves_capture_stages() {
        let mut bsr = BoundaryRegister::new(4);
        bsr.set_functional_levels(&[true, false, true, false]);
        bsr.sample();
        // Shift out all four captured bits, shifting zeros in.
        let out: Vec<bool> = (0..4).map(|_| bsr.shift(false)).collect();
        assert_eq!(out, vec![true, false, true, false]);
    }

    #[test]
    fn preload_and_extest_take_the_pins() {
        let mut bsr = BoundaryRegister::new(4);
        bsr.set_functional_levels(&[false; 4]);
        // Preload 0b0110 and enter EXTEST.
        bsr.shift_pattern(0b0110);
        bsr.update();
        bsr.enter_extest();
        assert!(bsr.extest_active());
        assert!(matches!(bsr.pin(1).unwrap(), PinState::Extest(true)));
        assert!(matches!(bsr.pin(0).unwrap(), PinState::Extest(false)));
        assert!(bsr.pin(1).unwrap().level());
        // Functional levels are ignored in EXTEST.
        bsr.set_functional_levels(&[true; 4]);
        assert!(!bsr.pin(0).unwrap().level());
        bsr.exit_extest();
        assert!(bsr.pin(0).unwrap().level());
        assert!(bsr.to_string().contains("functional"));
    }

    #[test]
    fn shift_pattern_round_trips() {
        let mut bsr = BoundaryRegister::new(16);
        bsr.set_functional_levels(&[false; 16]);
        bsr.sample();
        bsr.shift_pattern(0xA5A5);
        // Shifting another pattern pushes the first one out.
        let out = bsr.shift_pattern(0x0000);
        assert_eq!(out, 0xA5A5);
    }

    #[test]
    fn interconnect_test_passes_a_good_board() {
        let mut driver = BoundaryRegister::new(8);
        let mut receiver = BoundaryRegister::new(8);
        // Straight-through wiring.
        let nets: Vec<usize> = (0..8).collect();
        let faults = vec![false; 8];
        let failures = interconnect_test(&mut driver, &mut receiver, &nets, &faults);
        assert!(failures.is_empty(), "good board failed: {failures:?}");
    }

    #[test]
    fn interconnect_test_finds_open_joints() {
        let mut driver = BoundaryRegister::new(8);
        let mut receiver = BoundaryRegister::new(8);
        // Crossed wiring with two open joints.
        let nets: Vec<usize> = (0..8).map(|i| 7 - i).collect();
        let mut faults = vec![false; 8];
        faults[2] = true;
        faults[5] = true;
        let failures = interconnect_test(&mut driver, &mut receiver, &nets, &faults);
        assert_eq!(failures, vec![2, 5]);
    }

    #[test]
    #[should_panic(expected = "at least one pin")]
    fn zero_pins_panics() {
        let _ = BoundaryRegister::new(0);
    }

    #[test]
    #[should_panic(expected = "level count must match")]
    fn wrong_level_count_panics() {
        BoundaryRegister::new(4).set_functional_levels(&[true; 3]);
    }
}
