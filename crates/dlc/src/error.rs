//! Error type for Digital Logic Core operations.

use core::fmt;

/// Errors raised by the DLC model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DlcError {
    /// The FPGA has not been configured (no valid bitstream loaded).
    NotConfigured,
    /// The FLASH holds no (or a corrupt) bitstream.
    InvalidBitstream {
        /// Why the bitstream was rejected.
        reason: &'static str,
    },
    /// A channel index beyond the FPGA's I/O count.
    ChannelOutOfRange {
        /// The requested channel.
        channel: usize,
        /// Number of channels available.
        available: usize,
    },
    /// The requested I/O rate exceeds what the pin can sustain.
    RateTooHigh {
        /// Requested rate in Mbps.
        requested_mbps: u64,
        /// The pin's limit in Mbps.
        limit_mbps: u64,
    },
    /// The channel has no pattern engine configured.
    ChannelNotConfigured {
        /// The channel in question.
        channel: usize,
    },
    /// A register access hit an unmapped address.
    UnmappedRegister {
        /// The offending address.
        addr: u16,
    },
    /// A JTAG operation was attempted in the wrong TAP state.
    JtagProtocol {
        /// What went wrong.
        reason: &'static str,
    },
    /// A USB transaction failed (bad CRC, unknown command, short packet).
    UsbProtocol {
        /// What went wrong.
        reason: &'static str,
    },
    /// An SRAM access outside the device.
    SramOutOfRange {
        /// Requested address.
        addr: u32,
        /// Device capacity in words.
        capacity: u32,
    },
}

impl fmt::Display for DlcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DlcError::NotConfigured => write!(f, "FPGA is not configured"),
            DlcError::InvalidBitstream { reason } => {
                write!(f, "invalid bitstream: {reason}")
            }
            DlcError::ChannelOutOfRange { channel, available } => {
                write!(f, "channel {channel} out of range (0..{available})")
            }
            DlcError::RateTooHigh { requested_mbps, limit_mbps } => {
                write!(f, "requested {requested_mbps} Mbps exceeds pin limit {limit_mbps} Mbps")
            }
            DlcError::ChannelNotConfigured { channel } => {
                write!(f, "channel {channel} has no pattern configured")
            }
            DlcError::UnmappedRegister { addr } => {
                write!(f, "unmapped register address {addr:#06x}")
            }
            DlcError::JtagProtocol { reason } => write!(f, "JTAG protocol error: {reason}"),
            DlcError::UsbProtocol { reason } => write!(f, "USB protocol error: {reason}"),
            DlcError::SramOutOfRange { addr, capacity } => {
                write!(f, "SRAM address {addr:#010x} out of range (capacity {capacity} words)")
            }
        }
    }
}

impl std::error::Error for DlcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert_eq!(DlcError::NotConfigured.to_string(), "FPGA is not configured");
        assert!(DlcError::InvalidBitstream { reason: "bad checksum" }
            .to_string()
            .contains("bad checksum"));
        assert!(DlcError::ChannelOutOfRange { channel: 250, available: 200 }
            .to_string()
            .contains("250"));
        assert!(DlcError::RateTooHigh { requested_mbps: 900, limit_mbps: 800 }
            .to_string()
            .contains("900"));
        assert!(DlcError::UnmappedRegister { addr: 0xBEEF }.to_string().contains("0xbeef"));
        assert!(DlcError::SramOutOfRange { addr: 7, capacity: 4 }.to_string().contains("4 words"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<DlcError>();
    }
}
