//! The FPGA fabric model: configuration, I/O blocks, and channels.
//!
//! Models the XC2V1000-class device of the paper at the level its test
//! applications care about: it must be **configured** before it does
//! anything, it exposes ~200 general-purpose I/O each with a hard rate
//! ceiling (800 Mbps) and a derated practical limit (the paper runs 300–400
//! Mbps "to maintain sufficient design margin"), and each I/O can be driven
//! by a pattern engine.

use core::fmt;

use pstime::DataRate;
use signal::jitter::JitterBudget;
use signal::{BitStream, DigitalWaveform};

use crate::capture::CaptureEngine;
use crate::flash::Bitstream;
use crate::pattern::{PatternEngine, PatternKind};
use crate::regs::RegisterFile;
use crate::sram::Sram;
use crate::{DlcError, Result};

/// The I/O standard a pin is configured for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IoStandard {
    /// Single-ended 1.8 V CMOS (the DLC's general-purpose default).
    #[default]
    Lvcmos18,
    /// Differential LVPECL-compatible output (feeding the PECL tree).
    Lvpecl,
    /// LVDS differential.
    Lvds,
}

impl fmt::Display for IoStandard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IoStandard::Lvcmos18 => "LVCMOS18",
            IoStandard::Lvpecl => "LVPECL",
            IoStandard::Lvds => "LVDS",
        })
    }
}

/// One general-purpose I/O block: standard, rate limit, and configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoBlock {
    standard: IoStandard,
    hard_limit_mbps: u64,
    derated_limit_mbps: u64,
}

impl IoBlock {
    /// The paper's I/O block: 800 Mbps capable, derated to 400 Mbps.
    pub fn new() -> Self {
        IoBlock { standard: IoStandard::default(), hard_limit_mbps: 800, derated_limit_mbps: 400 }
    }

    /// The configured I/O standard.
    pub fn standard(&self) -> IoStandard {
        self.standard
    }

    /// Sets the I/O standard.
    pub fn set_standard(&mut self, standard: IoStandard) {
        self.standard = standard;
    }

    /// The silicon rate ceiling (Mbps).
    pub fn hard_limit_mbps(&self) -> u64 {
        self.hard_limit_mbps
    }

    /// The design-margin derated limit (Mbps).
    pub fn derated_limit_mbps(&self) -> u64 {
        self.derated_limit_mbps
    }

    /// Checks a requested rate against the derated limit.
    ///
    /// # Errors
    ///
    /// [`DlcError::RateTooHigh`] above the derated limit.
    pub fn check_rate(&self, rate: DataRate) -> Result<()> {
        let mbps = rate.as_bps() / 1_000_000;
        if mbps > self.derated_limit_mbps {
            return Err(DlcError::RateTooHigh {
                requested_mbps: mbps,
                limit_mbps: self.derated_limit_mbps,
            });
        }
        Ok(())
    }

    /// Raises the derated limit toward the hard ceiling (for designs that
    /// accept less margin). Clamped to the hard limit.
    pub fn set_derated_limit_mbps(&mut self, mbps: u64) {
        self.derated_limit_mbps = mbps.min(self.hard_limit_mbps);
    }
}

impl Default for IoBlock {
    fn default() -> Self {
        IoBlock::new()
    }
}

/// Per-channel runtime configuration.
#[derive(Debug)]
struct Channel {
    engine: Option<PatternEngine>,
    rate: Option<DataRate>,
    io: IoBlock,
}

/// The configured-or-not FPGA with its I/O channels and register file.
///
/// # Examples
///
/// ```
/// use dlc::{Bitstream, Fpga, PatternKind};
/// use pstime::DataRate;
///
/// let mut fpga = Fpga::new(200);
/// assert!(!fpga.is_configured());
/// fpga.configure(&Bitstream::example_design())?;
/// fpga.configure_channel(3, PatternKind::Clock, DataRate::from_mbps(400))?;
/// let bits = fpga.generate(3, 8)?;
/// assert_eq!(bits.to_string(), "10101010");
/// # Ok::<(), dlc::DlcError>(())
/// ```
#[derive(Debug)]
pub struct Fpga {
    configured: Option<Bitstream>,
    channels: Vec<Channel>,
    regs: RegisterFile,
    sram: Sram,
    capture: CaptureEngine,
    io_jitter: JitterBudget,
}

/// Default CMOS I/O timing jitter: a CMOS FPGA output has far more jitter
/// than the PECL path that retimes it — the whole point of the paper's
/// architecture is that this jitter is absorbed by PECL retiming.
fn default_io_jitter() -> JitterBudget {
    JitterBudget::new().with_rj_rms_ps(15.0).with_dcd_ps(40.0)
}

impl Fpga {
    /// Creates an unconfigured FPGA with `n_io` I/O channels and a default
    /// 64 K-word pattern SRAM attached.
    pub fn new(n_io: usize) -> Self {
        Fpga {
            configured: None,
            channels: (0..n_io)
                .map(|_| Channel { engine: None, rate: None, io: IoBlock::new() })
                .collect(),
            regs: RegisterFile::example_design(),
            sram: Sram::new(65_536),
            capture: CaptureEngine::new(1 << 20),
            io_jitter: default_io_jitter(),
        }
    }

    /// Whether a valid bitstream has been loaded.
    pub fn is_configured(&self) -> bool {
        self.configured.is_some()
    }

    /// Loads a configuration bitstream (the power-up load from FLASH).
    ///
    /// # Errors
    ///
    /// [`DlcError::InvalidBitstream`] if the image fails verification or
    /// targets a different device.
    pub fn configure(&mut self, bitstream: &Bitstream) -> Result<()> {
        bitstream.verify()?;
        if bitstream.device_id() != crate::flash::DEVICE_ID {
            return Err(DlcError::InvalidBitstream { reason: "wrong target device" });
        }
        self.configured = Some(bitstream.clone());
        Ok(())
    }

    /// Clears the configuration (PROG_B pulse).
    pub fn unconfigure(&mut self) {
        self.configured = None;
        for ch in &mut self.channels {
            ch.engine = None;
            ch.rate = None;
        }
    }

    /// Number of I/O channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// The register file (USB-visible control plane).
    pub fn regs(&self) -> &RegisterFile {
        &self.regs
    }

    /// Mutable register file access.
    pub fn regs_mut(&mut self) -> &mut RegisterFile {
        &mut self.regs
    }

    /// The attached pattern SRAM.
    pub fn sram(&self) -> &Sram {
        &self.sram
    }

    /// Mutable SRAM access (host pattern upload).
    pub fn sram_mut(&mut self) -> &mut Sram {
        &mut self.sram
    }

    /// The response-capture engine.
    pub fn capture(&self) -> &CaptureEngine {
        &self.capture
    }

    /// Mutable capture-engine access (arm/stop/read-back).
    pub fn capture_mut(&mut self) -> &mut CaptureEngine {
        &mut self.capture
    }

    /// The I/O block of `channel`.
    ///
    /// # Errors
    ///
    /// [`DlcError::ChannelOutOfRange`] for a bad index.
    pub fn io_block(&self, channel: usize) -> Result<&IoBlock> {
        self.channels
            .get(channel)
            .map(|c| &c.io)
            .ok_or(DlcError::ChannelOutOfRange { channel, available: self.channels.len() })
    }

    /// Mutable I/O block access.
    ///
    /// # Errors
    ///
    /// [`DlcError::ChannelOutOfRange`] for a bad index.
    pub fn io_block_mut(&mut self, channel: usize) -> Result<&mut IoBlock> {
        let available = self.channels.len();
        self.channels
            .get_mut(channel)
            .map(|c| &mut c.io)
            .ok_or(DlcError::ChannelOutOfRange { channel, available })
    }

    fn channel_mut(&mut self, channel: usize) -> Result<&mut Channel> {
        let available = self.channels.len();
        self.channels.get_mut(channel).ok_or(DlcError::ChannelOutOfRange { channel, available })
    }

    /// Programs `channel` with a pattern at a per-pin rate.
    ///
    /// # Errors
    ///
    /// Fails if the FPGA is unconfigured, the channel is out of range, the
    /// rate exceeds the pin's derated limit, or the pattern is invalid.
    pub fn configure_channel(
        &mut self,
        channel: usize,
        pattern: PatternKind,
        rate: DataRate,
    ) -> Result<()> {
        if !self.is_configured() {
            return Err(DlcError::NotConfigured);
        }
        let engine = match pattern {
            PatternKind::SramPlayback { addr, n_bits } => {
                PatternEngine::new_with_sram(addr, n_bits, &self.sram)?
            }
            other => PatternEngine::new(other)?,
        };
        let ch = self.channel_mut(channel)?;
        ch.io.check_rate(rate)?;
        ch.engine = Some(engine);
        ch.rate = Some(rate);
        Ok(())
    }

    /// Generates the next `n` bits from `channel`'s engine.
    ///
    /// # Errors
    ///
    /// Fails if unconfigured, out of range, or the channel has no pattern.
    pub fn generate(&mut self, channel: usize, n: usize) -> Result<BitStream> {
        if !self.is_configured() {
            return Err(DlcError::NotConfigured);
        }
        let ch = self.channel_mut(channel)?;
        match &mut ch.engine {
            Some(engine) => Ok(engine.generate(n)),
            None => Err(DlcError::ChannelNotConfigured { channel }),
        }
    }

    /// Renders the next `n` bits of `channel` as a timing-annotated
    /// [`DigitalWaveform`] at the channel's configured rate, with the CMOS
    /// I/O jitter budget applied.
    ///
    /// # Errors
    ///
    /// Same conditions as [`generate`](Self::generate).
    pub fn render_channel(
        &mut self,
        channel: usize,
        n: usize,
        seed: u64,
    ) -> Result<DigitalWaveform> {
        if !self.is_configured() {
            return Err(DlcError::NotConfigured);
        }
        let available = self.channels.len();
        let ch = self
            .channels
            .get_mut(channel)
            .ok_or(DlcError::ChannelOutOfRange { channel, available })?;
        let rate = ch.rate.ok_or(DlcError::ChannelNotConfigured { channel })?;
        let bits = match &mut ch.engine {
            Some(engine) => engine.generate(n),
            None => return Err(DlcError::ChannelNotConfigured { channel }),
        };
        Ok(DigitalWaveform::from_bits(
            &bits,
            rate,
            &self.io_jitter,
            rng::SeedTree::new(seed).stream("dlc.fpga.io").channel(channel as u64).seed(),
        ))
    }

    /// Replaces the CMOS I/O jitter model (for what-if studies).
    pub fn set_io_jitter(&mut self, budget: JitterBudget) {
        self.io_jitter = budget;
    }

    /// Resets every channel's pattern engine to its seed state.
    pub fn reset_engines(&mut self) {
        for ch in &mut self.channels {
            if let Some(engine) = &mut ch.engine {
                engine.reset();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn configured() -> Fpga {
        let mut f = Fpga::new(200);
        f.configure(&Bitstream::example_design()).unwrap();
        f
    }

    #[test]
    fn requires_configuration() {
        let mut f = Fpga::new(4);
        assert!(!f.is_configured());
        assert!(matches!(
            f.configure_channel(0, PatternKind::Clock, DataRate::from_mbps(100)),
            Err(DlcError::NotConfigured)
        ));
        assert!(matches!(f.generate(0, 8), Err(DlcError::NotConfigured)));
        assert!(matches!(f.render_channel(0, 8, 0), Err(DlcError::NotConfigured)));
    }

    #[test]
    fn configure_rejects_wrong_device() {
        let mut f = Fpga::new(4);
        let wrong = Bitstream::new(0xDEAD_BEEF, vec![1, 2, 3]);
        assert!(matches!(
            f.configure(&wrong),
            Err(DlcError::InvalidBitstream { reason: "wrong target device" })
        ));
    }

    #[test]
    fn channel_lifecycle() {
        let mut f = configured();
        assert_eq!(f.num_channels(), 200);
        f.configure_channel(7, PatternKind::Clock, DataRate::from_mbps(400)).unwrap();
        assert_eq!(f.generate(7, 4).unwrap().to_string(), "1010");
        // Unconfigured channel errors.
        assert!(matches!(f.generate(8, 4), Err(DlcError::ChannelNotConfigured { channel: 8 })));
        // Out-of-range channel errors.
        assert!(matches!(
            f.generate(200, 4),
            Err(DlcError::ChannelOutOfRange { channel: 200, available: 200 })
        ));
        // PROG_B wipes everything.
        f.unconfigure();
        assert!(f.generate(7, 4).is_err());
    }

    #[test]
    fn io_rate_derating_enforced() {
        let mut f = configured();
        // 500 Mbps exceeds the 400 Mbps derated default.
        let err = f.configure_channel(0, PatternKind::Clock, DataRate::from_mbps(500)).unwrap_err();
        assert!(matches!(err, DlcError::RateTooHigh { requested_mbps: 500, limit_mbps: 400 }));
        // Raising the derating (paper: pins are 800-capable) admits it.
        f.io_block_mut(0).unwrap().set_derated_limit_mbps(800);
        f.configure_channel(0, PatternKind::Clock, DataRate::from_mbps(500)).unwrap();
        // But the hard ceiling holds.
        f.io_block_mut(0).unwrap().set_derated_limit_mbps(2_000);
        assert_eq!(f.io_block(0).unwrap().derated_limit_mbps(), 800);
        assert!(f.configure_channel(0, PatternKind::Clock, DataRate::from_mbps(900)).is_err());
    }

    #[test]
    fn io_block_accessors() {
        let mut f = configured();
        assert_eq!(f.io_block(0).unwrap().standard(), IoStandard::Lvcmos18);
        f.io_block_mut(0).unwrap().set_standard(IoStandard::Lvpecl);
        assert_eq!(f.io_block(0).unwrap().standard(), IoStandard::Lvpecl);
        assert_eq!(f.io_block(0).unwrap().hard_limit_mbps(), 800);
        assert!(f.io_block(999).is_err());
        assert_eq!(IoStandard::Lvds.to_string(), "LVDS");
        assert_eq!(IoStandard::Lvpecl.to_string(), "LVPECL");
    }

    #[test]
    fn render_channel_produces_waveform() {
        let mut f = configured();
        let rate = DataRate::from_mbps(400);
        f.configure_channel(0, PatternKind::Clock, rate).unwrap();
        let w = f.render_channel(0, 64, 7).unwrap();
        assert_eq!(w.num_edges(), 63);
        assert_eq!(w.span(), rate.unit_interval() * 64);
        // Jitter applied: edges not exactly on the grid.
        let on_grid =
            w.edges().iter().filter(|e| e.at.as_fs() % rate.unit_interval().as_fs() == 0).count();
        assert!(on_grid < 8, "expected jittered edges, {on_grid} on grid");
    }

    #[test]
    fn render_is_seed_deterministic() {
        let run = |seed| {
            let mut f = configured();
            f.configure_channel(1, PatternKind::Prbs7 { seed: 5 }, DataRate::from_mbps(400))
                .unwrap();
            f.render_channel(1, 64, seed).unwrap()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn sram_playback_channel() {
        let mut f = configured();
        f.sram_mut().load_bits(0, &BitStream::from_str_bits("110010")).unwrap();
        f.configure_channel(
            2,
            PatternKind::SramPlayback { addr: 0, n_bits: 6 },
            DataRate::from_mbps(300),
        )
        .unwrap();
        assert_eq!(f.generate(2, 12).unwrap().to_string(), "110010110010");
    }

    #[test]
    fn reset_engines_restarts_patterns() {
        let mut f = configured();
        f.configure_channel(0, PatternKind::Prbs15 { seed: 77 }, DataRate::from_mbps(312)).unwrap();
        let first = f.generate(0, 64).unwrap();
        let _ = f.generate(0, 64).unwrap();
        f.reset_engines();
        assert_eq!(f.generate(0, 64).unwrap(), first);
    }

    #[test]
    fn regs_and_sram_are_reachable() {
        let mut f = configured();
        assert_eq!(f.regs().read(crate::regs::map::ID).unwrap(), crate::regs::map::ID_VALUE);
        f.regs_mut().write(crate::regs::map::CONTROL, 1).unwrap();
        assert_eq!(f.regs().read(crate::regs::map::CONTROL).unwrap(), 1);
        assert_eq!(f.sram().capacity(), 65_536);
    }
}
