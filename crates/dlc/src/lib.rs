//! # gigatest-dlc — the FPGA-based Digital Logic Core
//!
//! A behavioral model of the paper's Digital Logic Core (§2): a Xilinx
//! XC2V1000-class CMOS FPGA with ~200 general-purpose I/O (800 Mbps capable,
//! derated to 300–400 Mbps in practice), surrounded by the support devices
//! the paper describes:
//!
//! * a **FLASH** configuration memory ([`flash`]) programmed through an
//!   **IEEE 1149.1 boundary-scan** port ([`jtag`]) from the PC,
//! * a **USB microcontroller** ([`usb`]) giving the controlling PC
//!   register-level access at run time,
//! * optional **SRAM** pattern storage ([`sram`]) for non-algorithmic
//!   patterns,
//! * and the FPGA fabric itself ([`fpga`]): a register file, per-pin I/O
//!   blocks with rate limits, and programmable **pattern engines**
//!   ([`pattern`]) — algorithmic generators, memory playback, and
//!   **LFSR/PRBS** sources ([`lfsr`]).
//!
//! The model is bit- and cycle-accurate at the pattern level and
//! timing-annotated at the I/O level: each enabled channel renders its
//! pattern into a [`signal::DigitalWaveform`] at the configured per-pin
//! rate, ready for the PECL serializer tree in the `pecl` crate.
//!
//! ## Example: boot a DLC and generate PRBS on two channels
//!
//! ```
//! use dlc::{Bitstream, DigitalLogicCore, PatternKind};
//! use pstime::DataRate;
//!
//! // Program the FLASH over JTAG, then boot the FPGA from it.
//! let mut core = DigitalLogicCore::new();
//! core.program_flash_via_jtag(&Bitstream::example_design())?;
//! core.power_up()?;
//!
//! // Configure channel 0 as a PRBS-15 source at 312.5 Mbps.
//! let rate = DataRate::from_mbps(312);
//! core.configure_channel(0, PatternKind::Prbs15 { seed: 0x1234 }, rate)?;
//! let bits = core.generate(0, 1024)?;
//! assert_eq!(bits.len(), 1024);
//! # Ok::<(), dlc::DlcError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boundary;
pub mod capture;
pub mod clocking;
mod core;
mod error;
pub mod flash;
pub mod fpga;
pub mod jtag;
pub mod lfsr;
pub mod pattern;
pub mod regs;
pub mod runctl;
pub mod sequencer;
pub mod sram;
pub mod usb;

pub use crate::core::DigitalLogicCore;
pub use capture::{CaptureEngine, CaptureMode, CaptureSummary};
pub use error::DlcError;
pub use flash::{Bitstream, FlashMemory};
pub use fpga::{Fpga, IoBlock, IoStandard};
pub use lfsr::{Lfsr, PrbsPolynomial};
pub use pattern::{PatternEngine, PatternKind};
pub use regs::{RegAddr, RegisterFile};

/// Convenient result alias for DLC operations.
pub type Result<T> = std::result::Result<T, DlcError>;
