//! The pool-parameterized workload trait: one scheduling surface per
//! sweep.
//!
//! Every exec-powered sweep in the workspace — shmoo grids, wafer runs,
//! eye scans, bathtub sweeps — used to expose a `run`/`run_with_pool`
//! pair whose relationship was convention, not contract. [`PoolJob`]
//! makes the pool-parameterized form the single canonical entry point:
//! a workload is a value describing *what* to compute, and `run_on`
//! computes it on an explicit [`crate::ExecPool`]. The old names remain
//! as thin wrappers; schedulers (benchmarks, the `atd` service layer)
//! drive every workload through this one trait.

use crate::error::ExecError;
use crate::pool::ExecPool;

/// A sweep workload that runs on an explicit worker pool.
///
/// Implementors must uphold the exec determinism contract: the output is
/// a pure function of the job value (and its borrowed inputs), so
/// `run_on` is bit-identical for every pool width.
pub trait PoolJob {
    /// What the workload produces.
    type Output;
    /// The workload's error type; it must absorb pool failures.
    type Error: From<ExecError>;

    /// Runs the workload on `pool`.
    ///
    /// # Errors
    ///
    /// Propagates the workload's own validation/compute errors and any
    /// [`ExecError`] from the pool.
    fn run_on(&self, pool: &ExecPool) -> Result<Self::Output, Self::Error>;
}
