//! Error type for the parallel execution engine.

use core::fmt;

/// Errors raised while executing a job set on an [`crate::ExecPool`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecError {
    /// A job panicked on its worker thread. The pool catches the unwind,
    /// records the first failing index, and stops claiming new work instead
    /// of aborting the process.
    JobPanicked {
        /// Index of the job that panicked.
        index: usize,
        /// The panic payload, when it was a string (the common case).
        message: String,
    },
    /// The operating system refused to spawn a worker thread.
    SpawnFailed {
        /// Worker slot that failed to start.
        worker: usize,
        /// The OS error text.
        message: String,
    },
    /// Internal consistency failure: a result slot was never filled even
    /// though no job panicked. This indicates a bug in the pool itself and
    /// is surfaced as an error rather than a panic.
    MissingResult {
        /// The unfilled slot.
        index: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::JobPanicked { index, message } => {
                write!(f, "job {index} panicked on its worker: {message}")
            }
            ExecError::SpawnFailed { worker, message } => {
                write!(f, "failed to spawn worker {worker}: {message}")
            }
            ExecError::MissingResult { index } => {
                write!(f, "result slot {index} was never filled (pool bug)")
            }
        }
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ExecError::JobPanicked { index: 7, message: "boom".to_string() };
        assert!(e.to_string().contains("job 7"));
        assert!(e.to_string().contains("boom"));
        let e = ExecError::SpawnFailed { worker: 2, message: "EAGAIN".to_string() };
        assert!(e.to_string().contains("worker 2"));
        let e = ExecError::MissingResult { index: 0 };
        assert!(e.to_string().contains("slot 0"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<ExecError>();
    }
}
