//! # gigatest-exec — deterministic parallel execution for sweep workloads
//!
//! Every hot loop in this repository is an *indexed sweep*: a shmoo grid is
//! `rows × cols` independent capture points, a wafer run is one job per die,
//! an equivalent-time eye scan is one job per strobe phase, a bathtub sweep
//! is one job per sampling phase. The paper's mini-tester is explicitly
//! meant to be "replicated as an array for parallel probing", and the
//! seed-tree refactor (see `rng::SeedTree`) already gives every work item an
//! order-independent substream — so these sweeps can fan out across worker
//! threads without changing a single output bit.
//!
//! This crate is the engine that does the fanning out:
//!
//! * [`ExecPool`] — a scoped worker pool over `std::thread` (zero
//!   dependencies, no unsafe). [`ExecPool::new`] pins the width explicitly;
//!   [`ExecPool::from_env`] honors the `EXEC_THREADS` environment variable
//!   and falls back to the machine's available parallelism.
//! * [`ExecPool::run`] / [`ExecPool::par_map`] /
//!   [`ExecPool::par_map_reduce`] — execute `n` indexed jobs with chunked
//!   work-stealing and write every result into its **index-addressed slot**,
//!   so the assembled output is bit-identical regardless of worker count or
//!   steal schedule. Reductions fold the slots in index order on the calling
//!   thread, which keeps even float accumulation deterministic.
//! * Panic capture — a panicking job is caught on its worker, converted
//!   into [`ExecError::JobPanicked`], and the rest of the pool drains
//!   instead of aborting the process.
//! * [`ExecStats`] — per-run observability: job count, workers, steal
//!   count, and per-worker item counts.
//!
//! ## Determinism contract
//!
//! A job must be a pure function of its index (plus shared read-only
//! state). Under that contract the pool guarantees: `run(n, f)` with any
//! thread count produces the same `Vec` as `(0..n).map(f).collect()`.
//! Scheduling only decides *who* computes a slot, never *what* lands in it.
//!
//! ## Example
//!
//! ```
//! use exec::ExecPool;
//!
//! let wide = ExecPool::new(8);
//! let narrow = ExecPool::new(1);
//! let square = |i: usize, x: &u64| x * x + i as u64;
//! let items: Vec<u64> = (0..100).collect();
//! assert_eq!(wide.par_map(&items, square).unwrap(), narrow.par_map(&items, square).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod env;
mod error;
mod job;
mod pool;
mod stats;

pub use error::ExecError;
pub use job::PoolJob;
pub use pool::{ExecOutcome, ExecPool, EXEC_THREADS_ENV};
pub use stats::ExecStats;
