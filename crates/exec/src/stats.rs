//! Per-run execution statistics.

use core::fmt;

/// Observability record for one pool run: how much work there was and how
/// it was distributed. Stats describe *scheduling*, which may vary from run
/// to run — results never do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecStats {
    /// Total jobs in the set.
    pub jobs: usize,
    /// Workers actually used (never more than the job count).
    pub workers: usize,
    /// Number of times an idle worker stole a chunk from a busy one.
    pub steals: usize,
    /// Jobs completed by each worker, indexed by worker id.
    pub per_worker: Vec<usize>,
}

impl ExecStats {
    /// Stats for an empty job set handled by a pool of nominal width
    /// `workers`.
    pub fn empty(workers: usize) -> Self {
        ExecStats { jobs: 0, workers, steals: 0, per_worker: Vec::new() }
    }

    /// The busiest worker's share of the jobs, in `[0, 1]` — a quick
    /// load-balance indicator (1/workers is perfect, 1.0 is fully serial).
    pub fn max_share(&self) -> f64 {
        let max = self.per_worker.iter().copied().max().unwrap_or(0);
        if self.jobs == 0 {
            0.0
        } else {
            // Job counts are small enough to convert exactly.
            max as f64 / self.jobs as f64 // xlint::allow(no-lossy-cast, job counts stay far below 2^53 so the f64 conversion is exact)
        }
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} jobs / {} workers, {} steals, per-worker {:?}",
            self.jobs, self.workers, self.steals, self.per_worker
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = ExecStats::empty(4);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.workers, 4);
        assert_eq!(s.max_share(), 0.0);
        assert!(s.to_string().contains("0 jobs"));
    }

    #[test]
    fn max_share_reflects_imbalance() {
        let s = ExecStats { jobs: 10, workers: 2, steals: 1, per_worker: vec![9, 1] };
        assert!((s.max_share() - 0.9).abs() < 1e-12);
    }
}
