//! Lenient environment-variable configuration parsing.
//!
//! Several knobs across the workspace are tuning parameters that must
//! never change *results* — worker counts (`EXEC_THREADS`), the service
//! layer's cache and queue limits (`ATD_CACHE_ENTRIES`,
//! `ATD_QUEUE_DEPTH`). For those, a malformed value should fall back to
//! the built-in default rather than abort a run, and every consumer
//! should fall back the same way. This module is that one shared idiom:
//! trim, parse, reject zero, fall back.

/// Parses a positive integer from an optional raw string; `None` for
/// absent, unparsable, or zero values. The pure core of the idiom, kept
/// separate from the environment read so it is trivially testable.
pub fn parse_positive_usize(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|s| s.trim().parse::<usize>().ok()).filter(|n| *n > 0)
}

/// Reads `name` from the environment and leniently parses it as a
/// positive integer, falling back to `default` when the variable is
/// absent, unparsable, or zero.
pub fn positive_usize_or(name: &str, default: usize) -> usize {
    parse_positive_usize(std::env::var(name).ok().as_deref()).unwrap_or(default)
}

/// Parses a nonnegative integer from an optional raw string; `None` for
/// absent or unparsable values. Unlike [`parse_positive_usize`], zero is
/// a legal configuration here — knobs like retry budgets ("retry this
/// many times", where 0 means fail fast) are counts, not capacities.
pub fn parse_nonnegative_u32(raw: Option<&str>) -> Option<u32> {
    raw.and_then(|s| s.trim().parse::<u32>().ok())
}

/// Reads `name` from the environment and leniently parses it as a
/// nonnegative integer, falling back to `default` when the variable is
/// absent or unparsable.
pub fn nonnegative_u32_or(name: &str, default: u32) -> u32 {
    parse_nonnegative_u32(std::env::var(name).ok().as_deref()).unwrap_or(default)
}

/// Parses a positive `u64` from an optional raw string; `None` for
/// absent, unparsable, or zero values. Same idiom as
/// [`parse_positive_usize`], for byte-sized knobs that must not be
/// clipped to the platform word (`ATD_STORE_SEGMENT_BYTES`,
/// `ATD_STORE_MAX_BYTES`).
pub fn parse_positive_u64(raw: Option<&str>) -> Option<u64> {
    raw.and_then(|s| s.trim().parse::<u64>().ok()).filter(|n| *n > 0)
}

/// Reads `name` from the environment and leniently parses it as a
/// positive `u64`, falling back to `default` when the variable is
/// absent, unparsable, or zero.
pub fn positive_u64_or(name: &str, default: u64) -> u64 {
    parse_positive_u64(std::env::var(name).ok().as_deref()).unwrap_or(default)
}

/// Reads `name` from the environment and returns it trimmed; `None`
/// when the variable is absent or blank. Path-valued knobs
/// (`ATD_STORE_DIR`) use this: an empty string means "off", the same as
/// unset, so a scripted `ATD_STORE_DIR=""` disables cleanly.
pub fn non_empty(name: &str) -> Option<String> {
    std::env::var(name).ok().map(|s| s.trim().to_string()).filter(|s| !s.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenient_parse_accepts_positive_integers_only() {
        assert_eq!(parse_positive_usize(Some("4")), Some(4));
        assert_eq!(parse_positive_usize(Some(" 12 ")), Some(12));
        assert_eq!(parse_positive_usize(Some("0")), None);
        assert_eq!(parse_positive_usize(Some("-3")), None);
        assert_eq!(parse_positive_usize(Some("abc")), None);
        assert_eq!(parse_positive_usize(Some("")), None);
        assert_eq!(parse_positive_usize(None), None);
    }

    #[test]
    fn env_read_falls_back_when_unset() {
        // An env var no test sets: the default must come back verbatim.
        assert_eq!(positive_usize_or("EXEC_ENV_TEST_UNSET_4711", 37), 37);
    }

    #[test]
    fn nonnegative_parse_admits_zero() {
        assert_eq!(parse_nonnegative_u32(Some("0")), Some(0));
        assert_eq!(parse_nonnegative_u32(Some(" 3 ")), Some(3));
        assert_eq!(parse_nonnegative_u32(Some("-1")), None);
        assert_eq!(parse_nonnegative_u32(Some("abc")), None);
        assert_eq!(parse_nonnegative_u32(None), None);
        assert_eq!(nonnegative_u32_or("EXEC_ENV_TEST_UNSET_4712", 2), 2);
    }

    #[test]
    fn u64_parse_accepts_positive_integers_only() {
        assert_eq!(parse_positive_u64(Some("1048576")), Some(1 << 20));
        assert_eq!(parse_positive_u64(Some(" 8 ")), Some(8));
        assert_eq!(parse_positive_u64(Some("18446744073709551615")), Some(u64::MAX));
        assert_eq!(parse_positive_u64(Some("0")), None);
        assert_eq!(parse_positive_u64(Some("-3")), None);
        assert_eq!(parse_positive_u64(Some("abc")), None);
        assert_eq!(parse_positive_u64(None), None);
        assert_eq!(positive_u64_or("EXEC_ENV_TEST_UNSET_4713", 64), 64);
    }

    #[test]
    fn non_empty_treats_blank_as_unset() {
        assert_eq!(non_empty("EXEC_ENV_TEST_UNSET_4714"), None);
        std::env::set_var("EXEC_ENV_TEST_SET_4715", "  /tmp/store  ");
        assert_eq!(non_empty("EXEC_ENV_TEST_SET_4715"), Some("/tmp/store".to_string()));
        std::env::set_var("EXEC_ENV_TEST_SET_4716", "   ");
        assert_eq!(non_empty("EXEC_ENV_TEST_SET_4716"), None);
    }
}
