//! The scoped worker pool and its chunked work-stealing scheduler.
//!
//! ## How work moves
//!
//! The job set `0..n` is split into one contiguous interval per worker.
//! Each worker claims chunks off the *front* of its own interval; when its
//! interval is empty it scans the other workers round-robin and steals the
//! *back half* of the first non-empty interval it finds. Intervals only
//! ever shrink, so once every interval is empty the pool is drained — there
//! is no idle spinning and no livelock.
//!
//! ## Why the output cannot depend on scheduling
//!
//! A worker never writes into shared result storage; it accumulates
//! `(index, value)` pairs locally and the calling thread places each pair
//! into slot `index` of the output vector after joining. Every index is
//! claimed by exactly one worker (intervals are disjoint and only split at
//! their boundaries), so each slot is written exactly once and the
//! assembled vector equals the serial `(0..n).map(f)` — whatever the
//! thread count, chunk size, or steal order was.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::error::ExecError;
use crate::stats::ExecStats;

/// Environment variable overriding the default worker count of
/// [`ExecPool::from_env`]. Thread count affects wall time only, never
/// results, so this is a safe knob for CI and benchmarking.
pub const EXEC_THREADS_ENV: &str = "EXEC_THREADS";

/// Chunks a worker claims off its own queue front are sized so each worker
/// makes roughly this many trips to its mutex in the uncontended case.
const CHUNKS_PER_WORKER: usize = 8;

/// A fixed-width pool of scoped worker threads.
///
/// The pool is a value, not a resource: threads are spawned per run inside
/// a [`std::thread::scope`] and joined before the call returns, so jobs may
/// borrow from the caller's stack freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPool {
    threads: usize,
}

/// The results of one pool run plus its scheduling statistics.
#[derive(Debug, Clone)]
pub struct ExecOutcome<R> {
    /// One result per job, in job-index order.
    pub results: Vec<R>,
    /// How the run was scheduled.
    pub stats: ExecStats,
}

impl ExecPool {
    /// A pool of exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        ExecPool { threads: threads.max(1) }
    }

    /// A single-worker pool: jobs run inline on the calling thread, in
    /// index order, with the same panic-capture semantics as a wide pool.
    pub fn serial() -> Self {
        ExecPool::new(1)
    }

    /// The default pool: `EXEC_THREADS` when set to a positive integer,
    /// otherwise the machine's available parallelism.
    pub fn from_env() -> Self {
        let fallback = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        ExecPool::new(crate::env::positive_usize_or(EXEC_THREADS_ENV, fallback))
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `jobs` indexed jobs and returns their results in index order,
    /// with scheduling stats.
    ///
    /// `job` must be a pure function of its index (plus shared read-only
    /// state): under that contract the result vector is bit-identical for
    /// every thread count.
    ///
    /// # Errors
    ///
    /// [`ExecError::JobPanicked`] if any job panics (first panicking index
    /// wins; remaining work is abandoned), [`ExecError::SpawnFailed`] if a
    /// worker thread cannot be started.
    pub fn run<R, F>(&self, jobs: usize, job: F) -> Result<ExecOutcome<R>, ExecError>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if jobs == 0 {
            return Ok(ExecOutcome { results: Vec::new(), stats: ExecStats::empty(self.threads) });
        }
        let workers = self.threads.min(jobs);
        if workers == 1 {
            return run_serial(jobs, &job);
        }
        run_stealing(jobs, workers, &job)
    }

    /// Maps `f` over `items` in parallel, preserving order: equivalent to
    /// `items.iter().enumerate().map(|(i, x)| f(i, x)).collect()` for every
    /// thread count.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecPool::run`] errors.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>, ExecError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        Ok(self.run(items.len(), |i| f(i, &items[i]))?.results) // xlint::allow(panic-reachable, run only hands the job indices 0..items.len())
    }

    /// Maps in parallel, then folds the mapped values **in index order on
    /// the calling thread** — so even order-sensitive accumulators (float
    /// sums, running statistics) reduce deterministically.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecPool::run`] errors.
    pub fn par_map_reduce<T, R, A, F, G>(
        &self,
        items: &[T],
        map: F,
        init: A,
        fold: G,
    ) -> Result<A, ExecError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
        G: FnMut(A, R) -> A,
    {
        let mapped = self.run(items.len(), |i| map(i, &items[i]))?; // xlint::allow(panic-reachable, run only hands the job indices 0..items.len())
        Ok(mapped.results.into_iter().fold(init, fold))
    }
}

impl Default for ExecPool {
    /// Same as [`ExecPool::from_env`].
    fn default() -> Self {
        ExecPool::from_env()
    }
}

/// The inline path: index order on the calling thread, panics still
/// captured so serial and parallel runs fail identically.
fn run_serial<R, F>(jobs: usize, job: &F) -> Result<ExecOutcome<R>, ExecError>
where
    F: Fn(usize) -> R + Sync,
{
    let mut results = Vec::with_capacity(jobs);
    for i in 0..jobs {
        match catch_unwind(AssertUnwindSafe(|| job(i))) {
            Ok(r) => results.push(r),
            Err(payload) => {
                return Err(ExecError::JobPanicked {
                    index: i,
                    message: panic_message(payload.as_ref()),
                })
            }
        }
    }
    let stats = ExecStats { jobs, workers: 1, steals: 0, per_worker: vec![jobs] };
    Ok(ExecOutcome { results, stats })
}

/// One worker's view of the shared scheduler state.
struct Scheduler {
    /// Disjoint `[start, end)` intervals of unclaimed indices, one per
    /// worker. Claiming locks exactly one interval at a time.
    intervals: Vec<Mutex<(usize, usize)>>,
    /// Chunk size for claims off a worker's own interval front.
    chunk: usize,
    /// Total successful steals.
    steals: AtomicUsize,
    /// Raised on the first panic so other workers stop claiming.
    abort: AtomicBool,
    /// First failure recorded wins.
    failure: Mutex<Option<ExecError>>,
}

impl Scheduler {
    fn new(jobs: usize, workers: usize) -> Self {
        let base = jobs / workers;
        let extra = jobs % workers;
        let mut intervals = Vec::with_capacity(workers);
        let mut cursor = 0usize;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            intervals.push(Mutex::new((cursor, cursor + len)));
            cursor += len;
        }
        Scheduler {
            intervals,
            chunk: (jobs / (workers * CHUNKS_PER_WORKER)).max(1),
            steals: AtomicUsize::new(0),
            abort: AtomicBool::new(false),
            failure: Mutex::new(None),
        }
    }

    /// Claims the next chunk for worker `w`: own interval front first, then
    /// the back half of the first non-empty victim. `None` means the job
    /// set is fully claimed and this worker can retire.
    fn claim(&self, w: usize) -> Option<(usize, usize)> {
        {
            let mut own = lock_interval(&self.intervals[w]);
            if own.0 < own.1 {
                let take = self.chunk.min(own.1 - own.0);
                let start = own.0;
                own.0 += take;
                return Some((start, start + take));
            }
        }
        let workers = self.intervals.len();
        for offset in 1..workers {
            let victim = (w + offset) % workers;
            let mut interval = lock_interval(&self.intervals[victim]);
            let remaining = interval.1 - interval.0;
            if remaining > 0 {
                let take = remaining.div_ceil(2);
                let start = interval.1 - take;
                interval.1 = start;
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some((start, start + take));
            }
        }
        None
    }

    fn record_failure(&self, err: ExecError) {
        let mut slot = self.failure.lock().unwrap_or_else(|poison| poison.into_inner());
        if slot.is_none() {
            *slot = Some(err);
        }
        self.abort.store(true, Ordering::Relaxed);
    }
}

fn lock_interval(m: &Mutex<(usize, usize)>) -> std::sync::MutexGuard<'_, (usize, usize)> {
    // An interval guard is only held for pointer-sized arithmetic; a
    // poisoned lock can only mean a panic elsewhere, and the pair is still
    // a consistent claim state.
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// The work-stealing path for `workers >= 2`.
fn run_stealing<R, F>(jobs: usize, workers: usize, job: &F) -> Result<ExecOutcome<R>, ExecError>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let sched = Scheduler::new(jobs, workers);
    let mut locals: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let sched = &sched;
            let spawned = std::thread::Builder::new()
                .name(format!("exec-{w}"))
                .spawn_scoped(scope, move || worker_loop(w, sched, job));
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    sched.record_failure(ExecError::SpawnFailed {
                        worker: w,
                        message: e.to_string(),
                    });
                    break;
                }
            }
        }
        for handle in handles {
            match handle.join() {
                Ok(local) => locals.push(local),
                // Unreachable in practice: the worker catches job panics
                // itself. Guard anyway so a pool bug cannot abort the
                // caller.
                Err(payload) => sched.record_failure(ExecError::JobPanicked {
                    index: jobs,
                    message: panic_message(payload.as_ref()),
                }),
            }
        }
    });

    let steals = sched.steals.load(Ordering::Relaxed);
    if let Some(err) = sched.failure.into_inner().unwrap_or_else(|poison| poison.into_inner()) {
        return Err(err);
    }

    let mut per_worker = vec![0usize; workers];
    let mut slots: Vec<Option<R>> = Vec::with_capacity(jobs);
    slots.resize_with(jobs, || None);
    for (w, local) in locals.into_iter().enumerate() {
        per_worker[w] = local.len();
        for (index, value) in local {
            slots[index] = Some(value);
        }
    }
    let mut results = Vec::with_capacity(jobs);
    for (index, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(value) => results.push(value),
            None => return Err(ExecError::MissingResult { index }),
        }
    }
    Ok(ExecOutcome { results, stats: ExecStats { jobs, workers, steals, per_worker } })
}

/// One worker: claim chunks until the set is drained or a panic aborts the
/// run, accumulating `(index, result)` pairs locally.
fn worker_loop<R, F>(w: usize, sched: &Scheduler, job: &F) -> Vec<(usize, R)>
where
    F: Fn(usize) -> R + Sync,
{
    let mut local = Vec::new();
    'claims: while !sched.abort.load(Ordering::Relaxed) {
        let Some((start, end)) = sched.claim(w) else { break };
        for i in start..end {
            if sched.abort.load(Ordering::Relaxed) {
                break 'claims;
            }
            match catch_unwind(AssertUnwindSafe(|| job(i))) {
                Ok(value) => local.push((i, value)),
                Err(payload) => {
                    sched.record_failure(ExecError::JobPanicked {
                        index: i,
                        message: panic_message(payload.as_ref()),
                    });
                    break 'claims;
                }
            }
        }
    }
    local
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_job_set_yields_empty_results() {
        let pool = ExecPool::new(4);
        let out = pool.run(0, |i| i).unwrap();
        assert!(out.results.is_empty());
        assert_eq!(out.stats.jobs, 0);
        assert_eq!(out.stats.steals, 0);
        assert!(out.stats.per_worker.is_empty());
        assert_eq!(pool.par_map(&[] as &[u8], |_, b| *b).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn results_are_index_ordered_and_thread_count_invariant() {
        let items: Vec<u64> = (0..1_000).collect();
        let f = |i: usize, x: &u64| x.wrapping_mul(0x9E37_79B9).rotate_left(7) ^ (i as u64);
        let serial = ExecPool::serial().par_map(&items, f).unwrap();
        for threads in [2, 3, 4, 8, 17] {
            let parallel = ExecPool::new(threads).par_map(&items, f).unwrap();
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn jobs_fewer_than_workers() {
        // 3 jobs on a 16-wide pool: worker count clamps to the job count
        // and every slot still fills.
        let out = ExecPool::new(16).run(3, |i| i * 10).unwrap();
        assert_eq!(out.results, vec![0, 10, 20]);
        assert_eq!(out.stats.workers, 3);
        assert_eq!(out.stats.per_worker.iter().sum::<usize>(), 3);
    }

    #[test]
    fn single_job_runs_inline() {
        let out = ExecPool::new(8).run(1, |i| i + 41).unwrap();
        assert_eq!(out.results, vec![41]);
        assert_eq!(out.stats.workers, 1);
    }

    #[test]
    fn panicking_job_surfaces_as_exec_error() {
        // Silence the default panic hook's stderr spew for this test; the
        // hook is process-global, so restore it after.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for threads in [1, 4] {
            let err = ExecPool::new(threads)
                .run(64, |i| {
                    assert!(i != 13, "unlucky index");
                    i
                })
                .unwrap_err();
            match err {
                ExecError::JobPanicked { index, message } => {
                    assert_eq!(index, 13, "threads={threads}");
                    assert!(message.contains("unlucky"), "message: {message}");
                }
                other => panic!("expected JobPanicked, got {other:?}"),
            }
        }
        std::panic::set_hook(prev);
    }

    #[test]
    fn per_worker_counts_add_up_and_stealing_happens_on_skew() {
        // A wildly skewed workload: the first interval's jobs are slow, so
        // other workers must finish early and come stealing. We can't
        // assert steals > 0 deterministically on every machine, but the
        // bookkeeping must always balance.
        let out = ExecPool::new(4)
            .run(200, |i| {
                if i < 50 {
                    // Busy-work; deterministic result, variable duration.
                    (0..2_000u64).fold(i as u64, |a, b| a.wrapping_add(b.wrapping_mul(a | 1)))
                } else {
                    i as u64
                }
            })
            .unwrap();
        assert_eq!(out.stats.jobs, 200);
        assert_eq!(out.stats.per_worker.len(), out.stats.workers);
        assert_eq!(out.stats.per_worker.iter().sum::<usize>(), 200);
        assert_eq!(out.results.len(), 200);
        assert_eq!(out.results[60], 60);
    }

    #[test]
    fn par_map_reduce_matches_serial_fold() {
        let items: Vec<f64> = (0..500).map(|i| f64::from(i) * 0.001 + 1.0).collect();
        let serial: f64 = items.iter().map(|x| x.ln()).fold(0.0, |a, b| a + b);
        for threads in [1, 2, 8] {
            let parallel = ExecPool::new(threads)
                .par_map_reduce(&items, |_, x| x.ln(), 0.0f64, |a, b| a + b)
                .unwrap();
            // Bit-identical, not merely close: the fold runs in index order
            // on the calling thread.
            assert_eq!(parallel.to_bits(), serial.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn env_parsing() {
        // The lenient idiom itself is covered in `crate::env`; here we pin
        // that `from_env` goes through it and always yields a usable pool.
        assert!(ExecPool::from_env().threads() >= 1);
    }

    #[test]
    fn pool_width_clamps_to_one() {
        assert_eq!(ExecPool::new(0).threads(), 1);
        assert_eq!(ExecPool::serial().threads(), 1);
        assert!(ExecPool::default().threads() >= 1);
    }

    #[test]
    fn jobs_can_borrow_caller_state() {
        let data: Vec<String> = (0..32).map(|i| format!("item-{i}")).collect();
        let lens = ExecPool::new(4).par_map(&data, |_, s| s.len()).unwrap();
        assert_eq!(lens.len(), 32);
        assert_eq!(lens[0], 6);
        assert_eq!(lens[10], 7);
    }
}
