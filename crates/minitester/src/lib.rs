//! # gigatest-minitester — the miniature wafer-probe tester
//!
//! The paper's second system (§4): a self-contained tester small enough to
//! sit on top of a probe card, connected only to DC power, a USB link, and
//! one low-jitter RF clock. It pushes up to **5 Gbps** through the
//! compliant leads of wafer-level-packaged (WLP) dies and samples the
//! response with **10 ps** strobe resolution.
//!
//! * [`datapath`] — the stimulus path: 16 CMOS lanes at ~312 Mbps through
//!   two 8:1 PECL mux groups and a final 2:1 to reach 5 Gbps (Fig. 15).
//! * [`channel`] — the interposer/compliant-lead channel model:
//!   attenuation, bandwidth-limited ISI, and propagation delay.
//! * [`dut`] — a WLP die model with BIST: loopback and internal PRBS
//!   checking, plus injectable defects so the tester has something to
//!   catch.
//! * [`capture`] — the equivalent-time receive path: a strobed sampler
//!   stepped by a 10 ps delay vernier reconstructs eyes without a bench
//!   scope.
//! * [`shmoo`] — strobe-delay × threshold shmoo plots, the classic
//!   pass/fail map of ATE practice.
//! * [`mod@array`] — multi-site parallel probing (Fig. 13) and its throughput
//!   arithmetic ("increasing production throughput by an order of
//!   magnitude").
//!
//! ## Example
//!
//! ```
//! use minitester::{MiniTester, TestPlan};
//! use pstime::DataRate;
//!
//! let mut tester = MiniTester::new()?;
//! let outcome = tester.run(&TestPlan::prbs_loopback(DataRate::from_gbps(2.5), 2_048), 7)?;
//! assert!(outcome.passed());
//! # Ok::<(), minitester::MiniTesterError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod capture;
pub mod channel;
pub mod datapath;
pub mod dut;
mod error;
pub mod multisite;
pub mod shmoo;
mod tester;

pub use array::{ProbeArray, SiteResult};
pub use capture::{EtCapture, EyeScan, EyeScanJob};
pub use channel::WlpChannel;
pub use datapath::MiniTesterDatapath;
pub use dut::{BistMode, Defect, WlpDut};
pub use error::MiniTesterError;
pub use multisite::{run_wafer, Bin, DieRecord, WaferReport, WaferRunConfig};
pub use shmoo::{ShmooConfig, ShmooJob, ShmooPlot};
pub use tester::{MiniTester, TestOutcome, TestPlan};

/// Convenient result alias for mini-tester operations.
pub type Result<T> = std::result::Result<T, MiniTesterError>;
