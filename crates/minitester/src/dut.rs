//! The wafer-level-packaged device under test.
//!
//! §4: the probing strategy "minimize\[s\] the complexity of the PCB … by
//! using only a small number of signals for each mini-tester, taking
//! advantage of BIST features of the DUT." The model supports the two BIST
//! modes that strategy needs — loopback (the tester checks the returned
//! signal) and an on-die PRBS checker (the DUT checks itself and reports a
//! pass/fail count) — plus injectable defects so tests can verify that the
//! tester actually catches bad parts.

use pstime::{DataRate, Duration, Millivolts};
use rng::{SeedTree, StreamId};
use signal::{AnalogWaveform, BitStream};

use crate::channel::WlpChannel;

/// Substream identity for the die input stage (aperture + slicer noise).
pub const DUT_SLICER_STREAM: StreamId = StreamId::named("minitester.dut.slicer");

/// Substream identity for the die's loopback retransmit jitter.
pub const DUT_LOOPBACK_STREAM: StreamId = StreamId::named("minitester.dut.loopback");

/// BIST mode selected through the DUT's test port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BistMode {
    /// The DUT retransmits the received stream through its own output
    /// driver (the tester's sampler judges it).
    Loopback,
    /// The DUT's internal checker compares the received stream against its
    /// own PRBS-15 generator and reports the error count.
    PrbsChecker,
}

/// An injectable die/assembly defect.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Defect {
    /// An input stuck at a fixed logic level (cracked lead, open joint).
    StuckInput {
        /// The stuck level.
        level: bool,
    },
    /// Excess lead resistance: extra attenuation on the received signal.
    LossyLead {
        /// Additional attenuation factor (0..1).
        extra_attenuation: f64,
    },
    /// A slow input stage: degraded input sensitivity (offset threshold).
    ShiftedThreshold {
        /// Offset from nominal mid level.
        offset: Millivolts,
    },
}

/// A WLP die with BIST, reached through a [`WlpChannel`].
///
/// # Examples
///
/// ```
/// use minitester::{BistMode, WlpChannel, WlpDut};
///
/// let dut = WlpDut::good(WlpChannel::interposer());
/// assert_eq!(dut.defects().len(), 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WlpDut {
    channel: WlpChannel,
    defects: Vec<Defect>,
    input_threshold: Millivolts,
}

impl WlpDut {
    /// A defect-free die behind `channel`.
    pub fn good(channel: WlpChannel) -> Self {
        WlpDut { channel, defects: Vec::new(), input_threshold: Millivolts::new(-1300) }
    }

    /// Adds a defect (builder style).
    #[must_use]
    pub fn with_defect(mut self, defect: Defect) -> Self {
        self.defects.push(defect);
        self
    }

    /// The injected defects.
    pub fn defects(&self) -> &[Defect] {
        &self.defects
    }

    /// The channel to the die.
    pub fn channel(&self) -> &WlpChannel {
        &self.channel
    }

    /// What the die's input comparator sees: the stimulus propagated
    /// through the channel and any lead defects.
    pub fn received_waveform(&self, stimulus: &AnalogWaveform, rate: DataRate) -> AnalogWaveform {
        let mut wave = self.channel.propagate(stimulus, rate);
        for defect in &self.defects {
            if let Defect::LossyLead { extra_attenuation } = defect {
                wave = wave.with_levels(wave.levels().attenuated(*extra_attenuation));
            }
        }
        wave
    }

    /// The bit stream the die's input stage slices from the stimulus,
    /// sampling mid-bit at `rate` (`n` bits from the waveform start).
    pub fn sliced_bits(
        &self,
        stimulus: &AnalogWaveform,
        rate: DataRate,
        n: usize,
        seed: u64,
    ) -> BitStream {
        let wave = self.received_waveform(stimulus, rate);
        for defect in &self.defects {
            if let Defect::StuckInput { level } = defect {
                return if *level { BitStream::ones(n) } else { BitStream::zeros(n) };
            }
        }
        let mut threshold = self.input_threshold;
        for defect in &self.defects {
            if let Defect::ShiftedThreshold { offset } = defect {
                threshold += *offset;
            }
        }
        let mut rng = SeedTree::new(seed).derive(DUT_SLICER_STREAM).rng();
        let ui = rate.unit_interval();
        let start = wave.digital().start();
        // The die's input stage: ~2 ps aperture jitter and ~8 mV rms
        // input-referred comparator noise. The noise is what lets the
        // tester catch resistive defects — a signal crushed by lead loss
        // stops slicing reliably.
        const APERTURE_RJ_PS: f64 = 2.0;
        const COMPARATOR_NOISE_RMS_MV: f64 = 8.0;
        BitStream::from_fn(n, |i| {
            let aperture = Duration::from_ps_f64(rng.gaussian() * APERTURE_RJ_PS);
            let t = start + ui * i as i64 + ui / 2 + aperture;
            let v = wave.value_at(t) + rng.gaussian() * COMPARATOR_NOISE_RMS_MV;
            v >= threshold.as_f64()
        })
    }

    /// Runs the on-die PRBS checker: slices `n` bits and compares against
    /// `expected`, returning the error count after best alignment (the
    /// checker self-synchronizes).
    pub fn bist_check(
        &self,
        stimulus: &AnalogWaveform,
        rate: DataRate,
        expected: &BitStream,
        seed: u64,
    ) -> usize {
        let n = expected.len();
        let got = self.sliced_bits(stimulus, rate, n, seed);
        let (_, errors) = expected.best_alignment(&got, 4);
        errors
    }

    /// Loopback mode: the die retransmits its sliced bits through its own
    /// 120 ps output buffer and back through the channel toward the tester.
    pub fn loopback(
        &self,
        stimulus: &AnalogWaveform,
        rate: DataRate,
        n: usize,
        seed: u64,
    ) -> AnalogWaveform {
        use signal::jitter::JitterBudget;
        use signal::{DigitalWaveform, EdgeShape, LevelSet};
        let bits = self.sliced_bits(stimulus, rate, n, seed);
        // Die output driver: 120 ps CMOS-class buffer, a little RJ.
        let budget = JitterBudget::new().with_rj_rms_ps(2.0);
        let retx = DigitalWaveform::from_bits(
            &bits,
            rate,
            &budget,
            SeedTree::new(seed).derive(DUT_LOOPBACK_STREAM).seed(),
        );
        let wave = AnalogWaveform::new(retx, LevelSet::pecl(), EdgeShape::from_rise_2080_ps(120.0));
        // Return trip through the same leads.
        self.channel.propagate(&wave, rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal::jitter::NoJitter;
    use signal::{DigitalWaveform, EdgeShape, LevelSet};

    fn stimulus(bits: &BitStream, gbps: f64) -> (AnalogWaveform, DataRate) {
        let rate = DataRate::from_gbps(gbps);
        let d = DigitalWaveform::from_bits(bits, rate, &NoJitter, 0);
        (AnalogWaveform::new(d, LevelSet::pecl(), EdgeShape::from_rise_2080_ps(120.0)), rate)
    }

    #[test]
    fn good_dut_slices_cleanly() {
        let bits = BitStream::from_str_bits("1011001110001011").repeat(8);
        let (w, rate) = stimulus(&bits, 2.5);
        let dut = WlpDut::good(WlpChannel::interposer());
        let got = dut.sliced_bits(&w, rate, bits.len(), 1);
        let (errors, _) = bits.hamming_distance(&got);
        assert_eq!(errors, 0);
    }

    #[test]
    fn bist_checker_passes_good_die() {
        let bits = BitStream::from_str_bits("110010100011010111001010").repeat(8);
        let (w, rate) = stimulus(&bits, 2.5);
        let dut = WlpDut::good(WlpChannel::interposer());
        assert_eq!(dut.bist_check(&w, rate, &bits, 3), 0);
    }

    #[test]
    fn stuck_input_fails_bist() {
        let bits = BitStream::alternating(128);
        let (w, rate) = stimulus(&bits, 2.5);
        let dut =
            WlpDut::good(WlpChannel::interposer()).with_defect(Defect::StuckInput { level: true });
        let errors = dut.bist_check(&w, rate, &bits, 3);
        // Half the alternating bits disagree with all-ones.
        assert!(errors > 40, "errors {errors}");
        assert_eq!(dut.defects().len(), 1);
    }

    #[test]
    fn lossy_lead_reduces_received_swing() {
        let bits = BitStream::alternating(32);
        let (w, rate) = stimulus(&bits, 2.5);
        let good = WlpDut::good(WlpChannel::interposer());
        let bad = WlpDut::good(WlpChannel::interposer())
            .with_defect(Defect::LossyLead { extra_attenuation: 0.4 });
        let swing_good = good.received_waveform(&w, rate).levels().swing();
        let swing_bad = bad.received_waveform(&w, rate).levels().swing();
        assert!(swing_bad < swing_good);
        assert_eq!(swing_bad.as_mv(), (swing_good.as_mv() as f64 * 0.4).round() as i32);
    }

    #[test]
    fn shifted_threshold_biases_decisions() {
        // A threshold pushed above VOH reads everything low.
        let bits = BitStream::ones(64);
        let (w, rate) = stimulus(&bits, 1.0);
        let dut = WlpDut::good(WlpChannel::ideal())
            .with_defect(Defect::ShiftedThreshold { offset: Millivolts::new(600) });
        let got = dut.sliced_bits(&w, rate, 64, 5);
        assert_eq!(got.count_ones(), 0);
    }

    #[test]
    fn loopback_echoes_through_both_channel_passes() {
        let bits = BitStream::from_str_bits("1100101000110101").repeat(8);
        let (w, rate) = stimulus(&bits, 2.5);
        let dut = WlpDut::good(WlpChannel::interposer());
        let returned = dut.loopback(&w, rate, bits.len(), 7);
        // The die re-drives at full swing; only the return pass attenuates.
        let expected_swing = (800.0 * 0.92f64).round() as i32;
        assert!((returned.levels().swing().as_mv() - expected_swing).abs() <= 1);
        // And still carries the data.
        let recovered = returned.digital().to_bits(rate, pstime::Duration::from_ps(200));
        let (shift, errors) = bits.best_alignment(&recovered, 4);
        assert_eq!(errors, 0, "loopback data intact (shift {shift})");
    }

    #[test]
    fn channel_accessor() {
        let dut = WlpDut::good(WlpChannel::degraded());
        assert_eq!(dut.channel(), &WlpChannel::degraded());
    }
}
