//! The mini-tester stimulus datapath.
//!
//! "Since the CMOS I/O in the DLC is limited to about 300–400 Mbps per
//! signal, two groups of eight such signals are multiplexed to form two
//! independent data sources at higher speeds (up to 2.5 Gbps). These are
//! then combined in a second-stage multiplexer to obtain double the final
//! signal (up to 5.0 Gbps)" (§4).

use dlc::{Bitstream, DigitalLogicCore, PatternKind};
use pecl::SignalChain;
use pstime::DataRate;
use signal::{AnalogWaveform, BitStream, LevelSet};

use crate::Result;

/// Number of CMOS lanes feeding the serializer (two groups of eight).
pub const LANES: usize = 16;

/// The stimulus datapath: a booted DLC feeding the calibrated mini-tester
/// PECL chain through the two-stage mux.
///
/// # Examples
///
/// ```
/// use minitester::MiniTesterDatapath;
/// use pstime::DataRate;
///
/// let mut path = MiniTesterDatapath::new()?;
/// let wave = path.prbs_stimulus(DataRate::from_gbps(5.0), 1_024, 3)?;
/// assert_eq!(wave.digital().span(), DataRate::from_gbps(5.0).unit_interval() * 1_024);
/// # Ok::<(), minitester::MiniTesterError>(())
/// ```
#[derive(Debug)]
pub struct MiniTesterDatapath {
    core: DigitalLogicCore,
    chain: SignalChain,
}

impl MiniTesterDatapath {
    /// Boots the embedded DLC and attaches the calibrated datapath chain.
    ///
    /// # Errors
    ///
    /// Propagates DLC boot failures.
    pub fn new() -> Result<Self> {
        let mut core = DigitalLogicCore::new();
        core.program_flash_via_jtag(&Bitstream::example_design())?;
        core.power_up()?;
        Ok(MiniTesterDatapath { core, chain: SignalChain::minitester_datapath() })
    }

    /// The PECL chain (for level programming and budget queries).
    pub fn chain(&self) -> &SignalChain {
        &self.chain
    }

    /// Mutable chain access.
    pub fn chain_mut(&mut self) -> &mut SignalChain {
        &mut self.chain
    }

    /// Reprograms output levels.
    pub fn set_levels(&mut self, levels: LevelSet) {
        self.chain.set_levels(levels);
    }

    /// The per-lane CMOS rate needed for a serial output rate
    /// (`rate / 16`): 312.5 Mbps at the 5 Gbps target — inside the
    /// 300–400 Mbps comfort band the paper quotes.
    pub fn lane_rate(rate: DataRate) -> DataRate {
        rate.demux(LANES as u64)
    }

    /// The serial bit order of the two-stage mux: the final 2:1 alternates
    /// between group A (lanes 0–7) and group B (lanes 8–15), so serial
    /// position `i` carries physical lane `i/2` (even `i`) or `8 + i/2`
    /// (odd `i`).
    fn serial_lane_for_position(i: usize) -> usize {
        if i.is_multiple_of(2) {
            i / 2
        } else {
            8 + i / 2
        }
    }

    /// Interleaves 16 physical lanes in the two-stage mux's serial order.
    fn two_stage_interleave(lanes: &[BitStream]) -> BitStream {
        let reordered: Vec<BitStream> =
            (0..LANES).map(|i| lanes[Self::serial_lane_for_position(i)].clone()).collect(); // xlint::allow(panic-reachable, callers pass exactly LANES lanes and serial_lane_for_position maps 0..LANES into 0..LANES)
        BitStream::interleave(&reordered)
    }

    /// Generates a PRBS stimulus at `rate` by running 16 decorrelated
    /// PRBS-15 lanes through the 8:1 + 8:1 + 2:1 mux structure.
    ///
    /// # Errors
    ///
    /// Propagates DLC channel configuration and PECL rate errors.
    pub fn prbs_stimulus(
        &mut self,
        rate: DataRate,
        n_bits: usize,
        seed: u64,
    ) -> Result<AnalogWaveform> {
        let lanes = self.prbs_lanes(rate, n_bits)?;
        Ok(self.chain.serialize_16(&lanes, rate, seed)?)
    }

    /// Hashed per-lane LFSR seed: the first ~15 output bits of a Fibonacci
    /// LFSR are the seed's low bits, so structured (e.g. arithmetic) seeds
    /// would correlate the early columns of the mux output.
    fn lane_seed(lane: usize) -> u32 {
        let h = (lane as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 29) as u32) | 1
    }

    /// Configures and runs the 16 PRBS lanes, discarding one LFSR length of
    /// warm-up bits per lane.
    fn prbs_lanes(&mut self, rate: DataRate, n_bits: usize) -> Result<Vec<BitStream>> {
        let lane_rate = Self::lane_rate(rate);
        for lane in 0..LANES {
            self.core.configure_channel(
                lane,
                PatternKind::Prbs15 { seed: Self::lane_seed(lane) },
                lane_rate,
            )?;
        }
        let lane_bits = n_bits / LANES;
        (0..LANES)
            .map(|lane| {
                let _warmup = self.core.generate(lane, 16)?;
                Ok(self.core.generate(lane, lane_bits)?)
            })
            .collect()
    }

    /// Renders an explicit serial pattern at `rate` by splitting it across
    /// the 16 lanes (what the real tester's pattern compiler does).
    ///
    /// # Errors
    ///
    /// Propagates DLC and PECL errors.
    pub fn pattern_stimulus(
        &mut self,
        pattern: &BitStream,
        rate: DataRate,
        seed: u64,
    ) -> Result<AnalogWaveform> {
        let lane_rate = Self::lane_rate(rate);
        // Split the serial pattern so that the two-stage mux reassembles it
        // in order: serial position i lands on physical lane i/2 (group A)
        // or 8 + i/2 (group B).
        let round_robin = pattern.deinterleave(LANES);
        let mut lanes = vec![BitStream::new(); LANES];
        for (i, stream) in round_robin.into_iter().enumerate() {
            lanes[Self::serial_lane_for_position(i)] = stream;
        }
        // Load each lane into the DLC as an explicit pattern to keep the
        // control flow identical to hardware operation.
        for (i, lane) in lanes.iter().enumerate() {
            self.core.configure_channel(i, PatternKind::Explicit(lane.clone()), lane_rate)?;
        }
        let regenerated: Vec<BitStream> = (0..LANES)
            .map(|i| self.core.generate(i, lanes[i].len()))
            .collect::<dlc::Result<_>>()?;
        Ok(self.chain.serialize_16(&regenerated, rate, seed)?)
    }

    /// The serial bit sequence that [`prbs_stimulus`](Self::prbs_stimulus)
    /// will produce for comparison at the receive side (regenerates the
    /// same lanes and muxing without rendering).
    ///
    /// # Errors
    ///
    /// Propagates DLC errors.
    pub fn expected_prbs(&mut self, rate: DataRate, n_bits: usize) -> Result<BitStream> {
        let lanes = self.prbs_lanes(rate, n_bits)?;
        Ok(Self::two_stage_interleave(&lanes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstime::Duration;
    use signal::EyeDiagram;

    #[test]
    fn lane_rate_is_exact() {
        let lane = MiniTesterDatapath::lane_rate(DataRate::from_gbps(5.0));
        assert_eq!(lane.as_bps(), 312_500_000);
        let lane1g = MiniTesterDatapath::lane_rate(DataRate::from_gbps(1.0));
        assert_eq!(lane1g.as_bps(), 62_500_000);
    }

    #[test]
    fn prbs_stimulus_renders_full_span() {
        let mut path = MiniTesterDatapath::new().unwrap();
        let rate = DataRate::from_gbps(2.5);
        let wave = path.prbs_stimulus(rate, 512, 1).unwrap();
        assert_eq!(wave.digital().span(), rate.unit_interval() * 512);
        // PRBS: roughly half the bits toggle.
        let edges = wave.digital().num_edges();
        assert!(edges > 150 && edges < 350, "edges {edges}");
    }

    #[test]
    fn eye_openings_follow_the_paper_progression() {
        // Figs. 16, 17, 19: 0.95 / 0.87 / 0.75 UI at 1 / 2.5 / 5 Gbps.
        let mut path = MiniTesterDatapath::new().unwrap();
        for (gbps, want, tol) in [(1.0, 0.95, 0.03), (2.5, 0.87, 0.035), (5.0, 0.75, 0.05)] {
            let rate = DataRate::from_gbps(gbps);
            let wave = path.prbs_stimulus(rate, 4_096, 5).unwrap();
            let eye = EyeDiagram::analyze(&wave, rate).unwrap();
            let got = eye.opening_ui().value();
            assert!((got - want).abs() < tol, "at {gbps} Gbps measured {got}, paper ~{want} UI");
        }
    }

    #[test]
    fn five_gbps_jitter_is_about_50ps() {
        let mut path = MiniTesterDatapath::new().unwrap();
        let rate = DataRate::from_gbps(5.0);
        let wave = path.prbs_stimulus(rate, 4_096, 9).unwrap();
        let eye = EyeDiagram::analyze(&wave, rate).unwrap();
        let jitter = eye.jitter_pp().as_ps_f64();
        assert!((43.0..57.0).contains(&jitter), "jitter {jitter} ps, expected ~50");
    }

    #[test]
    fn pattern_stimulus_round_trips_the_bits() {
        let mut path = MiniTesterDatapath::new().unwrap();
        let rate = DataRate::from_gbps(1.0);
        let pattern = BitStream::from_str_bits("1011001110001011").repeat(16);
        let wave = path.pattern_stimulus(&pattern, rate, 2).unwrap();
        let recovered = wave.digital().to_bits(rate, Duration::from_ps(500));
        let (errors, compared) = recovered.hamming_distance(&pattern);
        assert_eq!(compared, 256);
        assert_eq!(errors, 0, "clean mid-bit sampling must recover the pattern");
    }

    #[test]
    fn expected_prbs_matches_stimulus_digital_bits() {
        let mut path = MiniTesterDatapath::new().unwrap();
        let rate = DataRate::from_gbps(2.5);
        let expected = path.expected_prbs(rate, 512).unwrap();
        let mut path2 = MiniTesterDatapath::new().unwrap();
        let wave = path2.prbs_stimulus(rate, 512, 3).unwrap();
        let recovered = wave.digital().to_bits(rate, Duration::from_ps(200));
        let (errors, _) = recovered.hamming_distance(&expected);
        assert_eq!(errors, 0);
    }

    #[test]
    fn level_programming() {
        let mut path = MiniTesterDatapath::new().unwrap();
        let reduced = LevelSet::pecl().with_swing(pstime::Millivolts::new(400));
        path.set_levels(reduced);
        assert_eq!(path.chain().levels().swing(), pstime::Millivolts::new(400));
        let _ = path.chain_mut();
    }
}
