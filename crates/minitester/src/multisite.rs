//! Multi-site wafer runs: real testers over a simulated wafer map.
//!
//! [`crate::array`] models the *throughput arithmetic* of Fig. 13; this
//! module runs the actual test content: a wafer of dies with a seeded
//! defect distribution, probed touchdown by touchdown by an array of
//! [`MiniTester`]s, producing a wafer map and binning summary — what the
//! production floor actually sees.

use core::fmt;

use pstime::DataRate;
use rng::{SeedTree, StreamId};

use crate::array::ProbeArray;
use crate::channel::WlpChannel;
use crate::dut::{Defect, WlpDut};
use crate::tester::{MiniTester, TestPlan};
use crate::Result;

/// Substream identity for defect-injection rolls across the wafer.
pub const WAFER_DEFECT_STREAM: StreamId = StreamId::named("minitester.multisite.defects");

/// Substream identity for per-die test-content seeds.
pub const WAFER_DIE_STREAM: StreamId = StreamId::named("minitester.multisite.die");

/// Hard bin assigned to a die.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bin {
    /// Passed every test.
    Good,
    /// Failed the BIST error-count limit.
    FailBist,
    /// Failed the at-speed eye-margin limit.
    FailMargin,
}

impl Bin {
    fn glyph(self) -> char {
        match self {
            Bin::Good => '.',
            Bin::FailBist => 'X',
            Bin::FailMargin => 'm',
        }
    }
}

/// Configuration of a wafer run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaferRunConfig {
    /// Dies per wafer-map row (the map is square-ish).
    pub columns: usize,
    /// Total dies.
    pub dies: usize,
    /// Parallel tester sites.
    pub sites: usize,
    /// Fraction of dies with a hard defect (stuck input).
    pub hard_defect_rate: f64,
    /// Fraction of dies with a marginal channel (speed-dependent).
    pub marginal_rate: f64,
    /// Test rate.
    pub rate: DataRate,
    /// PRBS bits per test (keep modest: each die runs a real tester).
    pub test_bits: usize,
    /// Run seed.
    pub seed: u64,
}

impl Default for WaferRunConfig {
    /// A small demonstration wafer: 8 × 8 dies, 16 sites, realistic yield.
    fn default() -> Self {
        WaferRunConfig {
            columns: 8,
            dies: 64,
            sites: 16,
            hard_defect_rate: 0.06,
            marginal_rate: 0.08,
            rate: DataRate::from_gbps(2.5),
            test_bits: 512,
            seed: 1,
        }
    }
}

/// Per-die measurement record from a wafer run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DieRecord {
    /// Die index on the wafer map.
    pub die: usize,
    /// Assigned bin.
    pub bin: Bin,
    /// BIST error count.
    pub bist_errors: usize,
    /// Loopback eye opening (UI), when the margin test ran.
    pub eye_ui: Option<f64>,
}

/// The outcome of a wafer run.
#[derive(Debug, Clone, PartialEq)]
pub struct WaferReport {
    bins: Vec<Bin>,
    records: Vec<DieRecord>,
    columns: usize,
    touchdowns: usize,
    injected_hard: usize,
    injected_marginal: usize,
}

impl WaferReport {
    /// Reassembles a report from per-die records plus the run-level
    /// figures — the inverse of the accessors, used by coordinators (the
    /// `atd-farm` merge layer) that concatenate die ranges produced by
    /// [`WaferRunConfig::run_dies_on`] back into one report. Bins are
    /// derived from the records; `columns` and `touchdowns` are the full
    /// wafer's geometry, and the injected counts must already be summed
    /// over the merged ranges.
    pub fn from_parts(
        records: Vec<DieRecord>,
        columns: usize,
        touchdowns: usize,
        injected_hard: usize,
        injected_marginal: usize,
    ) -> WaferReport {
        let bins = records.iter().map(|r| r.bin).collect();
        WaferReport {
            bins,
            records,
            columns: columns.max(1),
            touchdowns,
            injected_hard,
            injected_marginal,
        }
    }

    /// Per-die bins in die order.
    pub fn bins(&self) -> &[Bin] {
        &self.bins
    }

    /// Per-die measurement records in die order.
    pub fn records(&self) -> &[DieRecord] {
        &self.records
    }

    /// Touchdowns the array needed.
    pub fn touchdowns(&self) -> usize {
        self.touchdowns
    }

    /// Wafer yield (fraction binned [`Bin::Good`]).
    pub fn yield_ratio(&self) -> f64 {
        if self.bins.is_empty() {
            return 0.0;
        }
        self.bins.iter().filter(|b| **b == Bin::Good).count() as f64 / self.bins.len() as f64
    }

    /// Number of dies in a bin.
    pub fn count(&self, bin: Bin) -> usize {
        self.bins.iter().filter(|b| **b == bin).count()
    }

    /// Defects injected by the simulation (ground truth for escape
    /// analysis).
    pub fn injected_defects(&self) -> (usize, usize) {
        (self.injected_hard, self.injected_marginal)
    }

    /// Test escapes: defective dies binned good.
    pub fn escapes(&self) -> usize {
        let caught = self.count(Bin::FailBist) + self.count(Bin::FailMargin);
        (self.injected_hard + self.injected_marginal).saturating_sub(caught)
    }
}

impl fmt::Display for WaferReport {
    /// The wafer map: `.` good, `X` hard fail, `m` margin fail.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in self.bins.chunks(self.columns) {
            for bin in row {
                write!(f, "{} ", bin.glyph())?;
            }
            writeln!(f)?;
        }
        write!(
            f,
            "yield {:.1}% ({} good / {} dies, {} hard, {} margin, {} touchdowns)",
            100.0 * self.yield_ratio(),
            self.count(Bin::Good),
            self.bins.len(),
            self.count(Bin::FailBist),
            self.count(Bin::FailMargin),
            self.touchdowns
        )
    }
}

/// Everything one die job produces; aggregated in die order afterwards.
struct DieOutcome {
    record: DieRecord,
    injected_hard: bool,
    injected_marginal: bool,
}

/// Runs a full wafer through an array of real mini-testers.
///
/// Each die gets a BIST pass/fail and, if it passes, an at-speed loopback
/// margin test. Defects are injected per the configured rates (seeded,
/// reproducible). Dies are fanned out over the default [`exec::ExecPool`];
/// every die derives both its defect roll and its test-content seeds from
/// die-indexed substreams, so the report is bit-identical for every thread
/// count.
///
/// # Errors
///
/// Propagates tester construction/run and execution errors.
pub fn run_wafer(config: &WaferRunConfig) -> Result<WaferReport> {
    run_wafer_with_pool(config, &exec::ExecPool::from_env())
}

/// [`run_wafer`] with an explicit worker pool — the hook used by
/// benchmarks and thread-count-invariance tests.
///
/// # Errors
///
/// Propagates tester construction/run and execution errors.
pub fn run_wafer_with_pool(config: &WaferRunConfig, pool: &exec::ExecPool) -> Result<WaferReport> {
    use exec::PoolJob;
    config.run_on(pool)
}

impl exec::PoolJob for WaferRunConfig {
    type Output = WaferReport;
    type Error = crate::MiniTesterError;

    /// The canonical pool-parameterized wafer run ([`run_wafer`] and
    /// [`run_wafer_with_pool`] are thin wrappers): one job per die, each
    /// deriving defect and test-content seeds from die-indexed substreams.
    fn run_on(&self, pool: &exec::ExecPool) -> Result<WaferReport> {
        run_wafer_inner(self, pool, 0, self.dies)
    }
}

impl WaferRunConfig {
    /// Probes only the dies `[die_start, die_start + die_count)` of the
    /// configured wafer.
    ///
    /// Defect rolls and test-content seeds are keyed on the *global* die
    /// index, so a range reproduces exactly the dies a full run would
    /// have produced; contiguous ranges concatenate (via
    /// [`WaferReport::from_parts`]) into a report byte-identical to one
    /// full run. The returned report's touchdown count is the full
    /// wafer's figure (it is geometry, not content), while the injected
    /// counts cover only the probed range. This is the shard entry point
    /// used by the `atd-farm` coordinator.
    ///
    /// # Errors
    ///
    /// [`crate::MiniTesterError::BadTestPlan`] if the range is empty or
    /// overruns the wafer; otherwise as [`exec::PoolJob::run_on`].
    pub fn run_dies_on(
        &self,
        pool: &exec::ExecPool,
        die_start: usize,
        die_count: usize,
    ) -> Result<WaferReport> {
        if die_count == 0 || die_start.checked_add(die_count).is_none_or(|end| end > self.dies) {
            return Err(crate::MiniTesterError::BadTestPlan {
                reason: "wafer die range empty or past the wafer",
            });
        }
        run_wafer_inner(self, pool, die_start, die_count)
    }
}

fn run_wafer_inner(
    config: &WaferRunConfig,
    pool: &exec::ExecPool,
    die_start: usize,
    die_count: usize,
) -> Result<WaferReport> {
    let tree = SeedTree::new(config.seed);
    let defect_tree = tree.derive(WAFER_DEFECT_STREAM);
    let die_tree = tree.derive(WAFER_DIE_STREAM);
    let array = ProbeArray::new(config.sites);

    let bist_plan = TestPlan::prbs_bist(config.rate, config.test_bits);
    let mut margin_plan = TestPlan::prbs_loopback(config.rate, config.test_bits);
    margin_plan.min_eye_ui = 0.8;

    let outcome = pool.run(die_count, |job| -> Result<DieOutcome> {
        // Substreams key on the global die index, so a die range
        // reproduces the full run's dies bit-for-bit.
        let die = die_start + job;
        let die_id = die as u64; // xlint::allow(no-lossy-cast, die index widens losslessly to u64)
                                 // Build this die. Defect rolls come from a die-indexed substream
                                 // (not one sequential stream) so injection is order-free.
        let mut rng = defect_tree.channel(die_id).rng();
        let roll: f64 = rng.f64();
        let mut injected_hard = false;
        let mut injected_marginal = false;
        let dut = if roll < config.hard_defect_rate {
            injected_hard = true;
            WlpDut::good(WlpChannel::interposer())
                .with_defect(Defect::StuckInput { level: rng.bool() })
        } else if roll < config.hard_defect_rate + config.marginal_rate {
            injected_marginal = true;
            WlpDut::good(WlpChannel::degraded())
        } else {
            WlpDut::good(WlpChannel::interposer())
        };

        // Each die job boots its own tester: the datapath reconfigures all
        // lanes on every run, so a fresh tester reproduces a reused site
        // exactly — and jobs never contend on shared hardware state.
        let mut tester = MiniTester::new()?;
        tester.insert_dut(dut);
        let per_die = die_tree.channel(die_id);

        let bist = tester.run(&bist_plan, per_die.stream("bist").seed())?;
        let (bin, eye_ui) = if !bist.passed() {
            (Bin::FailBist, None)
        } else {
            let margin = tester.run(&margin_plan, per_die.stream("margin").seed())?;
            let eye = margin.eye_ui.map(|u| u.value());
            if margin.passed() {
                (Bin::Good, eye)
            } else {
                (Bin::FailMargin, eye)
            }
        };
        Ok(DieOutcome {
            record: DieRecord { die, bin, bist_errors: bist.errors, eye_ui },
            injected_hard,
            injected_marginal,
        })
    })?;

    let mut bins = Vec::with_capacity(die_count);
    let mut records = Vec::with_capacity(die_count);
    let mut injected_hard = 0usize;
    let mut injected_marginal = 0usize;
    for die in outcome.results {
        let die = die?;
        injected_hard += usize::from(die.injected_hard);
        injected_marginal += usize::from(die.injected_marginal);
        bins.push(die.record.bin);
        records.push(die.record);
    }

    Ok(WaferReport {
        bins,
        records,
        columns: config.columns.max(1),
        touchdowns: array.touchdowns(config.dies),
        injected_hard,
        injected_marginal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_wafer_yields_everything() {
        let config = WaferRunConfig {
            dies: 8,
            columns: 4,
            sites: 4,
            hard_defect_rate: 0.0,
            marginal_rate: 0.0,
            test_bits: 256,
            ..WaferRunConfig::default()
        };
        let report = run_wafer(&config).unwrap();
        assert_eq!(report.bins().len(), 8);
        assert_eq!(report.yield_ratio(), 1.0);
        assert_eq!(report.escapes(), 0);
        assert_eq!(report.touchdowns(), 2);
        assert_eq!(report.injected_defects(), (0, 0));
    }

    #[test]
    fn defective_dies_are_binned_out() {
        let config = WaferRunConfig {
            dies: 12,
            columns: 4,
            sites: 4,
            hard_defect_rate: 0.5,
            marginal_rate: 0.0,
            test_bits: 256,
            seed: 5,
            ..WaferRunConfig::default()
        };
        let report = run_wafer(&config).unwrap();
        let (hard, _) = report.injected_defects();
        assert!(hard > 0, "the seed should inject some defects");
        assert_eq!(report.count(Bin::FailBist), hard, "every stuck die caught");
        assert_eq!(report.escapes(), 0);
        assert!(report.yield_ratio() < 1.0);
    }

    #[test]
    fn marginal_dies_fail_the_margin_test_at_speed() {
        let config = WaferRunConfig {
            dies: 8,
            columns: 4,
            sites: 2,
            hard_defect_rate: 0.0,
            marginal_rate: 1.0, // every die marginal
            rate: DataRate::from_gbps(5.0),
            test_bits: 512,
            seed: 7,
        };
        let report = run_wafer(&config).unwrap();
        assert_eq!(report.count(Bin::Good), 0, "{report}");
        assert!(report.count(Bin::FailMargin) + report.count(Bin::FailBist) == 8);
    }

    #[test]
    fn wafer_map_renders() {
        let config = WaferRunConfig {
            dies: 16,
            columns: 4,
            sites: 8,
            hard_defect_rate: 0.3,
            test_bits: 256,
            seed: 11,
            ..WaferRunConfig::default()
        };
        let report = run_wafer(&config).unwrap();
        let map = report.to_string();
        assert!(map.contains("yield"));
        assert_eq!(map.lines().count(), 5); // 4 rows + summary
        assert!(map.contains('.') || map.contains('X'));
    }

    #[test]
    fn die_ranges_concatenate_to_the_full_wafer() {
        let config = WaferRunConfig {
            dies: 12,
            columns: 4,
            sites: 4,
            hard_defect_rate: 0.3,
            marginal_rate: 0.2,
            test_bits: 256,
            seed: 21,
            ..WaferRunConfig::default()
        };
        let pool = exec::ExecPool::new(2);
        let full = run_wafer_with_pool(&config, &pool).unwrap();
        for split in [1, 5, 11] {
            let lo = config.run_dies_on(&pool, 0, split).unwrap();
            let hi = config.run_dies_on(&pool, split, config.dies - split).unwrap();
            assert_eq!(lo.touchdowns(), full.touchdowns(), "geometry, not content");
            let mut records = lo.records().to_vec();
            records.extend_from_slice(hi.records());
            let (lo_hard, lo_marg) = lo.injected_defects();
            let (hi_hard, hi_marg) = hi.injected_defects();
            let merged = WaferReport::from_parts(
                records,
                config.columns,
                lo.touchdowns(),
                lo_hard + hi_hard,
                lo_marg + hi_marg,
            );
            assert_eq!(merged, full, "split at {split}");
            assert_eq!(merged.to_string(), full.to_string());
        }
    }

    #[test]
    fn out_of_range_die_ranges_rejected() {
        let config =
            WaferRunConfig { dies: 8, sites: 4, test_bits: 256, ..WaferRunConfig::default() };
        let pool = exec::ExecPool::new(1);
        assert!(config.run_dies_on(&pool, 0, 0).is_err());
        assert!(config.run_dies_on(&pool, 8, 1).is_err());
        assert!(config.run_dies_on(&pool, usize::MAX, 2).is_err());
    }

    #[test]
    fn reproducible_given_seed() {
        let config =
            WaferRunConfig { dies: 8, sites: 4, test_bits: 256, ..WaferRunConfig::default() };
        let a = run_wafer(&config).unwrap();
        let b = run_wafer(&config).unwrap();
        assert_eq!(a, b);
    }
}
