//! The WLP interposer / compliant-lead channel model.
//!
//! The mini-tester's whole purpose is to "demonstrate high-speed (~5 Gbps)
//! signal propagation through the compliant lead structures" (§4), reached
//! through "an interposer … to redistribute the high density WLP signals to
//! a macroscopic scale" (Fig. 12). The channel model carries the three
//! impairments that close a 5 Gbps eye: insertion loss, a bandwidth limit
//! (slower transitions + data-dependent edge shifts), and propagation
//! delay.

use pstime::{DataRate, Duration};
use signal::{AnalogWaveform, DigitalWaveform, Edge};

/// A lossy, band-limited channel between the tester and the DUT pad.
///
/// # Examples
///
/// ```
/// use minitester::WlpChannel;
/// use pstime::Duration;
///
/// let ch = WlpChannel::interposer();
/// assert!(ch.attenuation() > 0.8);
/// assert_eq!(ch.delay(), Duration::from_ps(35));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WlpChannel {
    attenuation: f64,
    extra_rise_ps: f64,
    isi_max: Duration,
    isi_tau_bits: f64,
    delay: Duration,
}

impl WlpChannel {
    /// Creates a channel.
    ///
    /// # Panics
    ///
    /// Panics if `attenuation` is outside `(0, 1]`, `extra_rise_ps` is
    /// negative, or `isi_tau_bits` is not positive.
    pub fn new(
        attenuation: f64,
        extra_rise_ps: f64,
        isi_max: Duration,
        isi_tau_bits: f64,
        delay: Duration,
    ) -> Self {
        assert!(attenuation > 0.0 && attenuation <= 1.0, "attenuation must be in (0, 1]");
        assert!(extra_rise_ps >= 0.0, "extra rise time must be nonnegative");
        assert!(isi_tau_bits > 0.0, "ISI settling constant must be positive");
        assert!(!isi_max.is_negative(), "ISI max must be nonnegative");
        WlpChannel { attenuation, extra_rise_ps, isi_max, isi_tau_bits, delay }
    }

    /// A healthy interposer + compliant-lead path: 8 % loss, 25 ps of
    /// additional transition time, 6 ps of channel ISI, 35 ps flight time.
    pub fn interposer() -> Self {
        WlpChannel::new(0.92, 25.0, Duration::from_ps(6), 1.2, Duration::from_ps(35))
    }

    /// A marginal path (worn probe / degraded lead): heavier loss and
    /// bandwidth limitation — the kind of defect the mini-tester exists to
    /// catch.
    pub fn degraded() -> Self {
        WlpChannel::new(0.65, 90.0, Duration::from_ps(25), 1.8, Duration::from_ps(45))
    }

    /// An ideal connection (for A/B comparisons).
    pub fn ideal() -> Self {
        WlpChannel::new(1.0, 0.0, Duration::ZERO, 1.0, Duration::ZERO)
    }

    /// Linear amplitude attenuation factor.
    pub fn attenuation(&self) -> f64 {
        self.attenuation
    }

    /// Extra 20–80 % transition time contributed by the channel (ps).
    pub fn extra_rise_ps(&self) -> f64 {
        self.extra_rise_ps
    }

    /// Propagation delay.
    pub fn delay(&self) -> Duration {
        self.delay
    }

    /// Maximum data-dependent edge displacement.
    pub fn isi_max(&self) -> Duration {
        self.isi_max
    }

    /// Propagates a waveform through the channel at `rate`:
    ///
    /// 1. every edge is delayed by the flight time,
    /// 2. edges following long runs are displaced late (bandwidth ISI),
    /// 3. the transition shape slows by the channel's rise-time
    ///    contribution (root-sum-square cascade),
    /// 4. the swing is attenuated about the midpoint.
    pub fn propagate(&self, wave: &AnalogWaveform, rate: DataRate) -> AnalogWaveform {
        let ui = rate.unit_interval();
        let digital = wave.digital();
        let isi_fs = self.isi_max.as_fs() as f64;

        // Rebuild the edge list with flight delay + data-dependent shift.
        let mut prev_at = digital.start() - ui;
        let mut edges: Vec<Edge> = Vec::with_capacity(digital.num_edges());
        let mut last_placed = digital.start() + self.delay - ui;
        for e in digital.edges() {
            let gap_bits = ((e.at - prev_at).as_fs() as f64 / ui.as_fs() as f64).max(1.0);
            let shift = isi_fs * (1.0 - (-(gap_bits - 1.0) / self.isi_tau_bits).exp());
            let mut at = e.at + self.delay + Duration::from_fs(shift.round() as i64);
            if at <= last_placed {
                at = last_placed + Duration::from_fs(1);
            }
            edges.push(Edge::new(at, e.polarity));
            last_placed = at;
            prev_at = e.at;
        }
        let new_digital = DigitalWaveform::from_edges(
            digital.initial_level(),
            edges,
            digital.start() + self.delay,
            digital.end() + self.delay + self.isi_max,
        );
        let new_shape = wave.shape().cascaded_with_2080_ps(self.extra_rise_ps);
        let new_levels = wave.levels().attenuated(self.attenuation);
        AnalogWaveform::new(new_digital, new_levels, new_shape)
    }
}

impl Default for WlpChannel {
    fn default() -> Self {
        WlpChannel::interposer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstime::Millivolts;
    use signal::jitter::NoJitter;
    use signal::{BitStream, EdgeShape, EyeDiagram, LevelSet};

    fn wave(bits: &str, gbps: f64) -> (AnalogWaveform, DataRate) {
        let rate = DataRate::from_gbps(gbps);
        let d = DigitalWaveform::from_bits(&BitStream::from_str_bits(bits), rate, &NoJitter, 0);
        (AnalogWaveform::new(d, LevelSet::pecl(), EdgeShape::from_rise_2080_ps(120.0)), rate)
    }

    #[test]
    fn ideal_channel_only_relabels() {
        let (w, rate) = wave("1010", 2.5);
        let out = WlpChannel::ideal().propagate(&w, rate);
        assert_eq!(out.digital().num_edges(), 3);
        assert_eq!(out.digital().edges()[0].at, w.digital().edges()[0].at);
        assert_eq!(out.levels().swing(), w.levels().swing());
    }

    #[test]
    fn flight_delay_applied() {
        let (w, rate) = wave("10", 2.5);
        let ch = WlpChannel::interposer();
        let out = ch.propagate(&w, rate);
        let shift = out.digital().edges()[0].at - w.digital().edges()[0].at;
        // Delay plus (zero for a first edge after a single run) ISI.
        assert!(shift >= Duration::from_ps(35), "shift {shift}");
        assert!(shift <= Duration::from_ps(45));
    }

    #[test]
    fn isi_shifts_edges_after_runs() {
        // Edge after a long run arrives later than edge after a short run.
        let (w, rate) = wave("1111111101", 2.5);
        let ch = WlpChannel::interposer();
        let out = ch.propagate(&w, rate);
        let orig = w.digital().edges();
        let moved = out.digital().edges();
        // First edge: after a 8-run -> near-max ISI. Second: after 1-run.
        let shift0 = (moved[0].at - orig[0].at) - ch.delay();
        let shift1 = (moved[1].at - orig[1].at) - ch.delay();
        assert!(shift0 > shift1, "run-length ISI ordering: {shift0} vs {shift1}");
        assert!(shift0 <= ch.isi_max());
    }

    #[test]
    fn attenuation_shrinks_swing_about_mid() {
        let (w, rate) = wave("1100", 2.5);
        let out = WlpChannel::degraded().propagate(&w, rate);
        let swing = out.levels().swing().as_mv();
        assert_eq!(swing, 520); // 800 * 0.65
        assert_eq!(out.levels().mid(), Millivolts::new(-1300));
    }

    #[test]
    fn bandwidth_slows_transitions() {
        let (w, rate) = wave("0011", 2.5);
        let out = WlpChannel::degraded().propagate(&w, rate);
        // 120 ps RSS 90 ps = 150 ps.
        assert_eq!(out.shape().rise_2080(), Duration::from_ps(150));
        let _ = rate;
    }

    #[test]
    fn degraded_channel_closes_the_eye() {
        let rate = DataRate::from_gbps(5.0);
        let bits = BitStream::from_str_bits("11001010001101011100101000110101").repeat(32);
        let d = DigitalWaveform::from_bits(&bits, rate, &NoJitter, 0);
        let w = AnalogWaveform::new(d, LevelSet::pecl(), EdgeShape::from_rise_2080_ps(120.0));
        let good = WlpChannel::interposer().propagate(&w, rate);
        let bad = WlpChannel::degraded().propagate(&w, rate);
        let eye_good = EyeDiagram::analyze(&good, rate).unwrap();
        let eye_bad = EyeDiagram::analyze(&bad, rate).unwrap();
        assert!(
            eye_bad.opening_ui().value() < eye_good.opening_ui().value(),
            "degraded {} !< good {}",
            eye_bad.opening_ui(),
            eye_good.opening_ui()
        );
        assert!(eye_bad.eye_height_mv() < eye_good.eye_height_mv());
    }

    #[test]
    fn edges_stay_ordered_under_heavy_isi() {
        let rate = DataRate::from_gbps(5.0);
        let bits = BitStream::alternating(256);
        let d = DigitalWaveform::from_bits(&bits, rate, &NoJitter, 0);
        let w = AnalogWaveform::new(d, LevelSet::pecl(), EdgeShape::from_rise_2080_ps(120.0));
        // from_edges would panic if ordering broke.
        let out = WlpChannel::degraded().propagate(&w, rate);
        assert_eq!(out.digital().num_edges(), 255);
    }

    #[test]
    fn default_is_interposer() {
        assert_eq!(WlpChannel::default(), WlpChannel::interposer());
    }

    #[test]
    #[should_panic(expected = "attenuation must be in (0, 1]")]
    fn bad_attenuation_panics() {
        let _ = WlpChannel::new(0.0, 0.0, Duration::ZERO, 1.0, Duration::ZERO);
    }
}
