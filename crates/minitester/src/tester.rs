//! The assembled mini-tester: datapath + DUT + capture, driven by a test
//! plan.
//!
//! This is the façade a production flow uses: describe a test (pattern,
//! rate, BIST mode, limits) and run it against a device; get back a
//! pass/fail with margins.

use core::fmt;

use pstime::{DataRate, UnitInterval};

use crate::capture::EtCapture;
use crate::channel::WlpChannel;
use crate::datapath::MiniTesterDatapath;
use crate::dut::{BistMode, WlpDut};
use crate::{MiniTesterError, Result};

/// A declarative test plan.
#[derive(Debug, Clone, PartialEq)]
pub struct TestPlan {
    /// Stimulus rate.
    pub rate: DataRate,
    /// Pattern length in bits.
    pub n_bits: usize,
    /// BIST mode to exercise.
    pub mode: BistMode,
    /// Maximum acceptable bit errors.
    pub max_errors: usize,
    /// Minimum acceptable eye opening (only checked in loopback mode).
    pub min_eye_ui: f64,
}

impl TestPlan {
    /// A PRBS loopback plan at `rate`: zero errors allowed, eye ≥ 0.4 UI.
    pub fn prbs_loopback(rate: DataRate, n_bits: usize) -> Self {
        TestPlan { rate, n_bits, mode: BistMode::Loopback, max_errors: 0, min_eye_ui: 0.4 }
    }

    /// A PRBS on-die-checker plan at `rate`: zero errors allowed.
    pub fn prbs_bist(rate: DataRate, n_bits: usize) -> Self {
        TestPlan { rate, n_bits, mode: BistMode::PrbsChecker, max_errors: 0, min_eye_ui: 0.0 }
    }

    fn validate(&self) -> Result<()> {
        if self.n_bits < 64 {
            return Err(MiniTesterError::BadTestPlan { reason: "need at least 64 bits" });
        }
        if !self.n_bits.is_multiple_of(crate::datapath::LANES) {
            return Err(MiniTesterError::BadTestPlan {
                reason: "bit count must be a multiple of the 16 lanes",
            });
        }
        if !(0.0..=1.0).contains(&self.min_eye_ui) {
            return Err(MiniTesterError::BadTestPlan { reason: "eye limit must be in [0, 1] UI" });
        }
        Ok(())
    }
}

/// The verdict and measurements of one plan execution.
#[derive(Debug, Clone, PartialEq)]
pub struct TestOutcome {
    /// Bit errors observed.
    pub errors: usize,
    /// Bits compared.
    pub compared: usize,
    /// Measured eye opening (loopback mode only).
    pub eye_ui: Option<UnitInterval>,
    /// The plan's error limit.
    pub max_errors: usize,
    /// The plan's eye limit.
    pub min_eye_ui: f64,
}

impl TestOutcome {
    /// Whether the device met every limit.
    pub fn passed(&self) -> bool {
        if self.errors > self.max_errors {
            return false;
        }
        match self.eye_ui {
            Some(eye) => eye.value() >= self.min_eye_ui,
            None => true,
        }
    }
}

impl fmt::Display for TestOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} errors / {} bits",
            if self.passed() { "PASS" } else { "FAIL" },
            self.errors,
            self.compared
        )?;
        if let Some(eye) = self.eye_ui {
            write!(f, ", eye {eye}")?;
        }
        Ok(())
    }
}

/// A complete mini-tester with a device in its probe socket.
///
/// # Examples
///
/// ```
/// use minitester::{Defect, MiniTester, TestPlan, WlpChannel, WlpDut};
/// use pstime::DataRate;
///
/// let mut tester = MiniTester::new()?;
/// tester.insert_dut(WlpDut::good(WlpChannel::interposer())
///     .with_defect(Defect::StuckInput { level: false }));
/// let outcome = tester.run(&TestPlan::prbs_bist(DataRate::from_gbps(2.5), 1_024), 5)?;
/// assert!(!outcome.passed()); // the defect is caught
/// # Ok::<(), minitester::MiniTesterError>(())
/// ```
#[derive(Debug)]
pub struct MiniTester {
    datapath: MiniTesterDatapath,
    capture: EtCapture,
    dut: WlpDut,
}

impl MiniTester {
    /// Boots a mini-tester with a good die behind a healthy interposer in
    /// the socket.
    ///
    /// # Errors
    ///
    /// Propagates DLC boot failures.
    pub fn new() -> Result<Self> {
        Ok(MiniTester {
            datapath: MiniTesterDatapath::new()?,
            capture: EtCapture::new(),
            dut: WlpDut::good(WlpChannel::interposer()),
        })
    }

    /// Replaces the device in the socket.
    pub fn insert_dut(&mut self, dut: WlpDut) {
        self.dut = dut;
    }

    /// The current DUT.
    pub fn dut(&self) -> &WlpDut {
        &self.dut
    }

    /// The stimulus datapath.
    pub fn datapath_mut(&mut self) -> &mut MiniTesterDatapath {
        &mut self.datapath
    }

    /// Runs one plan against the socketed device.
    ///
    /// # Errors
    ///
    /// Propagates plan validation, datapath, and capture errors.
    pub fn run(&mut self, plan: &TestPlan, seed: u64) -> Result<TestOutcome> {
        plan.validate()?;
        let expected = self.datapath.expected_prbs(plan.rate, plan.n_bits)?;
        let stimulus = self.datapath.prbs_stimulus(plan.rate, plan.n_bits, seed)?;

        match plan.mode {
            BistMode::PrbsChecker => {
                let errors = self.dut.bist_check(&stimulus, plan.rate, &expected, seed);
                Ok(TestOutcome {
                    errors,
                    compared: expected.len(),
                    eye_ui: None,
                    max_errors: plan.max_errors,
                    min_eye_ui: plan.min_eye_ui,
                })
            }
            BistMode::Loopback => {
                let returned = self.dut.loopback(&stimulus, plan.rate, plan.n_bits, seed);
                let scan = self.capture.eye_scan(&returned, plan.rate, &expected, seed)?;
                let eye = scan.opening_ui().ok();
                let errors = match scan.best_phase() {
                    Ok(phase) => {
                        let best =
                            rng::SeedTree::new(seed).stream("minitester.tester.best-phase").seed();
                        self.capture
                            .capture_at(&returned, plan.rate, &expected, phase, best)?
                            .errors
                    }
                    Err(_) => expected.len(),
                };
                Ok(TestOutcome {
                    errors,
                    compared: expected.len(),
                    eye_ui: Some(eye.unwrap_or(UnitInterval::ZERO)),
                    max_errors: plan.max_errors,
                    min_eye_ui: plan.min_eye_ui,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dut::Defect;

    #[test]
    fn good_die_passes_loopback() {
        let mut tester = MiniTester::new().unwrap();
        let outcome =
            tester.run(&TestPlan::prbs_loopback(DataRate::from_gbps(2.5), 2_048), 1).unwrap();
        assert!(outcome.passed(), "{outcome}");
        assert_eq!(outcome.errors, 0);
        assert!(outcome.eye_ui.unwrap().value() > 0.4);
        assert!(outcome.to_string().starts_with("PASS"));
    }

    #[test]
    fn good_die_passes_bist_at_5gbps() {
        let mut tester = MiniTester::new().unwrap();
        let outcome = tester.run(&TestPlan::prbs_bist(DataRate::from_gbps(5.0), 2_048), 2).unwrap();
        assert!(outcome.passed(), "{outcome}");
        assert!(outcome.eye_ui.is_none());
    }

    #[test]
    fn stuck_input_is_caught() {
        let mut tester = MiniTester::new().unwrap();
        tester.insert_dut(
            WlpDut::good(WlpChannel::interposer()).with_defect(Defect::StuckInput { level: true }),
        );
        let outcome = tester.run(&TestPlan::prbs_bist(DataRate::from_gbps(2.5), 1_024), 3).unwrap();
        assert!(!outcome.passed());
        assert!(outcome.errors > 100);
        assert!(outcome.to_string().starts_with("FAIL"));
    }

    #[test]
    fn degraded_channel_fails_loopback_at_speed() {
        let mut tester = MiniTester::new().unwrap();
        tester.insert_dut(WlpDut::good(WlpChannel::degraded()));
        // At-speed margin test: require a 0.8 UI eye at 5 Gbps (the healthy
        // path delivers ~0.9 UI through loopback).
        let mut plan = TestPlan::prbs_loopback(DataRate::from_gbps(5.0), 2_048);
        plan.min_eye_ui = 0.8;
        let at_speed = tester.run(&plan, 4).unwrap();
        // The degraded path (double pass) either errors or closes the eye
        // below the 0.4 UI limit.
        assert!(!at_speed.passed(), "degraded channel passed?! {at_speed}");
        // At a gentle rate the same die passes: the defect is speed-related.
        let slow =
            tester.run(&TestPlan::prbs_loopback(DataRate::from_gbps(1.0), 2_048), 4).unwrap();
        assert!(slow.passed(), "slow retest failed: {slow}");
        assert_eq!(tester.dut().channel(), &WlpChannel::degraded());
    }

    #[test]
    fn plans_are_validated() {
        let mut tester = MiniTester::new().unwrap();
        let too_short =
            TestPlan { n_bits: 32, ..TestPlan::prbs_bist(DataRate::from_gbps(1.0), 32) };
        assert!(tester.run(&too_short, 0).is_err());
        let unaligned =
            TestPlan { n_bits: 100, ..TestPlan::prbs_bist(DataRate::from_gbps(1.0), 100) };
        assert!(tester.run(&unaligned, 0).is_err());
        let bad_eye = TestPlan {
            min_eye_ui: 2.0,
            ..TestPlan::prbs_loopback(DataRate::from_gbps(1.0), 1_024)
        };
        assert!(tester.run(&bad_eye, 0).is_err());
    }

    #[test]
    fn datapath_access_for_level_experiments() {
        let mut tester = MiniTester::new().unwrap();
        tester
            .datapath_mut()
            .set_levels(signal::LevelSet::pecl().with_swing(pstime::Millivolts::new(600)));
        let outcome =
            tester.run(&TestPlan::prbs_loopback(DataRate::from_gbps(2.5), 1_024), 6).unwrap();
        // Reduced swing still passes through a healthy channel.
        assert!(outcome.passed(), "{outcome}");
    }
}
