//! Error type for mini-tester operations.

use core::fmt;

/// Errors raised by the mini-tester layers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MiniTesterError {
    /// A test plan with inconsistent parameters.
    BadTestPlan {
        /// What is wrong with it.
        reason: &'static str,
    },
    /// The capture scan found no passing strobe position at all.
    EyeClosed,
    /// Error from the DLC layer.
    Dlc(dlc::DlcError),
    /// Error from the PECL layer.
    Pecl(pecl::PeclError),
    /// Error from signal analysis.
    Signal(signal::SignalError),
    /// Error from the parallel execution engine.
    Exec(exec::ExecError),
}

impl fmt::Display for MiniTesterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MiniTesterError::BadTestPlan { reason } => write!(f, "bad test plan: {reason}"),
            MiniTesterError::EyeClosed => write!(f, "eye completely closed: no passing strobe"),
            MiniTesterError::Dlc(e) => write!(f, "DLC error: {e}"),
            MiniTesterError::Pecl(e) => write!(f, "PECL error: {e}"),
            MiniTesterError::Signal(e) => write!(f, "signal error: {e}"),
            MiniTesterError::Exec(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for MiniTesterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MiniTesterError::Dlc(e) => Some(e),
            MiniTesterError::Pecl(e) => Some(e),
            MiniTesterError::Signal(e) => Some(e),
            MiniTesterError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dlc::DlcError> for MiniTesterError {
    fn from(e: dlc::DlcError) -> Self {
        MiniTesterError::Dlc(e)
    }
}

impl From<pecl::PeclError> for MiniTesterError {
    fn from(e: pecl::PeclError) -> Self {
        MiniTesterError::Pecl(e)
    }
}

impl From<signal::SignalError> for MiniTesterError {
    fn from(e: signal::SignalError) -> Self {
        MiniTesterError::Signal(e)
    }
}

impl From<exec::ExecError> for MiniTesterError {
    fn from(e: exec::ExecError) -> Self {
        MiniTesterError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_sources() {
        assert!(MiniTesterError::BadTestPlan { reason: "zero bits" }
            .to_string()
            .contains("zero bits"));
        assert!(MiniTesterError::EyeClosed.to_string().contains("closed"));
        assert!(MiniTesterError::EyeClosed.source().is_none());
        let e = MiniTesterError::from(dlc::DlcError::NotConfigured);
        assert!(e.source().is_some());
        let e = MiniTesterError::from(pecl::PeclError::DacCodeOutOfRange { code: 1, codes: 1 });
        assert!(e.to_string().contains("PECL"));
        let e = MiniTesterError::from(signal::SignalError::EmptyWaveform { context: "t" });
        assert!(e.to_string().contains("signal"));
        let e = MiniTesterError::from(exec::ExecError::MissingResult { index: 3 });
        assert!(e.to_string().contains("execution"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<MiniTesterError>();
    }
}
