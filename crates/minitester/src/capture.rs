//! Equivalent-time capture: the mini-tester's software oscilloscope.
//!
//! The receive path is a strobed comparator whose strobe is placed by a
//! **10 ps** delay vernier (§1: "a high-speed PECL sampling circuit is
//! designed to capture the returned signal, also with 10 ps resolution").
//! Sweeping the strobe across the unit interval while the pattern repeats
//! reconstructs the eye in equivalent time — no bench instrument needed on
//! the probe card.

use core::fmt;

use pecl::{ProgrammableDelayLine, StrobedSampler};
use pstime::{DataRate, Duration, UnitInterval};
use signal::{AnalogWaveform, BitStream};

use crate::{MiniTesterError, Result};

/// One strobe-phase point of an eye scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanPoint {
    /// Strobe offset into the bit period (quantized to the vernier step).
    pub phase: Duration,
    /// Bits compared at this phase.
    pub compared: usize,
    /// Bit errors at this phase.
    pub errors: usize,
}

impl ScanPoint {
    /// Error ratio at this phase.
    pub fn error_ratio(&self) -> f64 {
        if self.compared == 0 {
            0.0
        } else {
            self.errors as f64 / self.compared as f64
        }
    }
}

/// The result of a full equivalent-time eye scan.
#[derive(Debug, Clone, PartialEq)]
pub struct EyeScan {
    points: Vec<ScanPoint>,
    rate: DataRate,
    step: Duration,
}

impl EyeScan {
    /// Reassembles a scan from its raw points — the inverse of the
    /// accessors, used by coordinators (the `atd-farm` merge layer) that
    /// concatenate strobe ranges produced by [`EyeScanJob::run_range_on`]
    /// back into one scan. `rate` and `step` must be the original scan's
    /// figures; the points must already be in strobe order.
    pub fn from_parts(points: Vec<ScanPoint>, rate: DataRate, step: Duration) -> EyeScan {
        EyeScan { points, rate, step }
    }

    /// The per-phase results.
    pub fn points(&self) -> &[ScanPoint] {
        &self.points
    }

    /// The strobe step used (10 ps for the paper's vernier).
    pub fn step(&self) -> Duration {
        self.step
    }

    /// The widest contiguous run of error-free phases, as an eye opening in
    /// UI. The scan wraps around the bit period (the eye may straddle the
    /// fold boundary).
    ///
    /// # Errors
    ///
    /// [`MiniTesterError::EyeClosed`] when no phase is error-free.
    pub fn opening_ui(&self) -> Result<UnitInterval> {
        let n = self.points.len();
        let pass: Vec<bool> = self.points.iter().map(|p| p.errors == 0).collect();
        if !pass.iter().any(|p| *p) {
            return Err(MiniTesterError::EyeClosed);
        }
        if pass.iter().all(|p| *p) {
            return Ok(UnitInterval::ONE);
        }
        // Longest circular run of passes.
        let mut best = 0usize;
        let mut run = 0usize;
        for i in 0..2 * n {
            if pass[i % n] {
                run += 1;
                best = best.max(run.min(n));
            } else {
                run = 0;
            }
        }
        let opening = self.step * best as i64;
        Ok(UnitInterval::from_duration(opening, self.rate).clamp_unit())
    }

    /// The error-ratio bathtub: `(phase as a UI fraction, error ratio)`
    /// per scan point — the curve whose walls define the usable eye, as in
    /// [`signal::BathtubCurve`] but *measured* rather than modeled.
    pub fn bathtub(&self) -> Vec<(f64, f64)> {
        let ui = self.rate.unit_interval();
        self.points.iter().map(|p| (p.phase.ratio(ui), p.error_ratio())).collect()
    }

    /// The best strobe phase: the centre of the widest passing run.
    ///
    /// # Errors
    ///
    /// [`MiniTesterError::EyeClosed`] when no phase passes.
    pub fn best_phase(&self) -> Result<Duration> {
        let n = self.points.len();
        let pass: Vec<bool> = self.points.iter().map(|p| p.errors == 0).collect();
        if !pass.iter().any(|p| *p) {
            return Err(MiniTesterError::EyeClosed);
        }
        let mut best = (0usize, 0usize); // (length, start)
        let mut run = 0usize;
        for i in 0..2 * n {
            if pass[i % n] {
                run += 1;
                if run > best.0 {
                    best = (run.min(n), i + 1 - run);
                }
            } else {
                run = 0;
            }
        }
        let centre = (best.1 + best.0 / 2) % n;
        Ok(self.points[centre].phase)
    }
}

impl fmt::Display for EyeScan {
    /// Renders a one-line tub: `.` for clean phases, `#` for errored ones.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for p in &self.points {
            f.write_str(if p.errors == 0 { "." } else { "#" })?;
        }
        write!(f, "] step {}", self.step)
    }
}

/// The equivalent-time capture engine: sampler + strobe vernier.
///
/// # Examples
///
/// ```
/// use minitester::{EtCapture, MiniTesterDatapath};
/// use pstime::DataRate;
///
/// let mut path = MiniTesterDatapath::new()?;
/// let rate = DataRate::from_gbps(2.5);
/// let expected = path.expected_prbs(rate, 512)?;
/// let wave = path.prbs_stimulus(rate, 512, 3)?;
/// let capture = EtCapture::new();
/// let scan = capture.eye_scan(&wave, rate, &expected, 11)?;
/// assert!(scan.opening_ui()?.value() > 0.7);
/// # Ok::<(), minitester::MiniTesterError>(())
/// ```
#[derive(Debug, Clone)]
pub struct EtCapture {
    sampler: StrobedSampler,
    vernier: ProgrammableDelayLine,
}

impl EtCapture {
    /// The paper's capture path: mid-PECL threshold sampler with 2 ps
    /// aperture jitter, 10 ps / 1024-code strobe vernier.
    pub fn new() -> Self {
        EtCapture {
            sampler: StrobedSampler::minitester(),
            vernier: ProgrammableDelayLine::standard(),
        }
    }

    /// The sampler (threshold programming for shmoo sweeps).
    pub fn sampler_mut(&mut self) -> &mut StrobedSampler {
        &mut self.sampler
    }

    /// Borrow of the sampler.
    pub fn sampler(&self) -> &StrobedSampler {
        &self.sampler
    }

    /// The strobe vernier.
    pub fn vernier(&self) -> &ProgrammableDelayLine {
        &self.vernier
    }

    /// Captures `expected.len()` bits at one strobe phase (quantized to the
    /// vernier's 10 ps grid) and counts errors.
    ///
    /// # Errors
    ///
    /// Propagates vernier range errors.
    pub fn capture_at(
        &self,
        wave: &AnalogWaveform,
        rate: DataRate,
        expected: &BitStream,
        phase: Duration,
        seed: u64,
    ) -> Result<ScanPoint> {
        let mut vernier = self.vernier.clone();
        vernier.set_delay(phase)?;
        let actual_phase = vernier.actual_delay();
        let got = self.sampler.capture(wave, rate, actual_phase, expected.len(), seed);
        let (errors, compared) = got.hamming_distance(expected);
        Ok(ScanPoint { phase: vernier.nominal_delay(), compared, errors })
    }

    /// Sweeps the strobe across one unit interval in vernier steps,
    /// reconstructing the horizontal eye.
    ///
    /// Runs serially: eye scans typically execute *inside* a die- or
    /// cell-level job that is already fanned out (wafer sweeps, shmoo
    /// grids), so nesting another pool here would oversubscribe. Direct
    /// callers with an otherwise idle machine can use
    /// [`EtCapture::eye_scan_with_pool`].
    ///
    /// # Errors
    ///
    /// Propagates vernier errors.
    pub fn eye_scan(
        &self,
        wave: &AnalogWaveform,
        rate: DataRate,
        expected: &BitStream,
        seed: u64,
    ) -> Result<EyeScan> {
        self.eye_scan_with_pool(wave, rate, expected, seed, &exec::ExecPool::serial())
    }

    /// [`EtCapture::eye_scan`] with an explicit worker pool: one job per
    /// strobe phase, each drawing from its own `tree.index(k)` substream,
    /// so the scan is bit-identical for every thread count.
    ///
    /// # Errors
    ///
    /// Propagates vernier and execution errors.
    pub fn eye_scan_with_pool(
        &self,
        wave: &AnalogWaveform,
        rate: DataRate,
        expected: &BitStream,
        seed: u64,
        pool: &exec::ExecPool,
    ) -> Result<EyeScan> {
        use exec::PoolJob;
        EyeScanJob { capture: self, wave, rate, expected, seed }.run_on(pool)
    }
}

/// An equivalent-time eye scan described as a value: the canonical
/// pool-parameterized entry point ([`exec::PoolJob`]) behind
/// [`EtCapture::eye_scan`] / [`EtCapture::eye_scan_with_pool`], and the
/// scheduling surface the `atd` service layer drives.
#[derive(Debug, Clone, Copy)]
pub struct EyeScanJob<'a> {
    /// The capture head (sampler threshold + strobe vernier).
    pub capture: &'a EtCapture,
    /// The waveform under test.
    pub wave: &'a AnalogWaveform,
    /// The data rate under test.
    pub rate: DataRate,
    /// The expected pattern at each strobe phase.
    pub expected: &'a BitStream,
    /// Master seed for the per-phase capture substreams.
    pub seed: u64,
}

impl exec::PoolJob for EyeScanJob<'_> {
    type Output = EyeScan;
    type Error = crate::MiniTesterError;

    fn run_on(&self, pool: &exec::ExecPool) -> Result<EyeScan> {
        self.run_band(pool, 0, None)
    }
}

impl EyeScanJob<'_> {
    /// Captures only the strobe steps `[phase_start, phase_start +
    /// phase_count)` of the full scan.
    ///
    /// Every point seeds from its *global* step substream, so a range
    /// reproduces exactly the points a full scan would have produced;
    /// contiguous ranges concatenate (via [`EyeScan::from_parts`]) into a
    /// scan byte-identical to one full run. This is the shard entry point
    /// used by the `atd-farm` coordinator.
    ///
    /// # Errors
    ///
    /// [`crate::MiniTesterError::BadTestPlan`] if the range is empty or
    /// overruns the unit interval; otherwise as
    /// [`exec::PoolJob::run_on`].
    pub fn run_range_on(
        &self,
        pool: &exec::ExecPool,
        phase_start: usize,
        phase_count: usize,
    ) -> Result<EyeScan> {
        self.run_band(pool, phase_start, Some(phase_count))
    }

    /// Shared body of the full scan and the banded scan: `phase_count` of
    /// `None` means "every strobe step in one unit interval".
    fn run_band(
        &self,
        pool: &exec::ExecPool,
        phase_start: usize,
        phase_count: Option<usize>,
    ) -> Result<EyeScan> {
        let ui = self.rate.unit_interval();
        let step = self.capture.vernier.step();
        let steps = ((ui.as_fs() + step.as_fs() - 1) / step.as_fs()).max(1);
        let tree = rng::SeedTree::new(self.seed).stream("minitester.capture.eye-scan");
        let steps_usize = usize::try_from(steps).unwrap_or(0);
        let count = phase_count.unwrap_or(steps_usize);
        if count == 0 || phase_start.checked_add(count).is_none_or(|end| end > steps_usize) {
            return Err(crate::MiniTesterError::BadTestPlan {
                reason: "eye-scan strobe range empty or past the unit interval",
            });
        }
        let outcome = pool.run(count, |job| {
            // Substreams key on the global step index, so a strobe range
            // reproduces the full scan's points bit-for-bit.
            let k = (phase_start + job) as i64; // xlint::allow(no-lossy-cast, k < steps which fits i64 by construction)
            let cell = tree.index(k as u64);
            self.capture.capture_at(self.wave, self.rate, self.expected, step * k, cell.seed())
        })?;
        let points = outcome.results.into_iter().collect::<Result<Vec<_>>>()?;
        Ok(EyeScan { points, rate: self.rate, step })
    }
}

impl Default for EtCapture {
    fn default() -> Self {
        EtCapture::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapath::MiniTesterDatapath;

    fn prbs_setup(gbps: f64, bits: usize) -> (AnalogWaveform, DataRate, BitStream) {
        let mut path = MiniTesterDatapath::new().unwrap();
        let rate = DataRate::from_gbps(gbps);
        let expected = path.expected_prbs(rate, bits).unwrap();
        let mut path2 = MiniTesterDatapath::new().unwrap();
        let wave = path2.prbs_stimulus(rate, bits, 21).unwrap();
        (wave, rate, expected)
    }

    #[test]
    fn scan_reconstructs_the_paper_eye_at_2g5() {
        let (wave, rate, expected) = prbs_setup(2.5, 1024);
        let scan = EtCapture::new().eye_scan(&wave, rate, &expected, 5).unwrap();
        // 400 ps UI / 10 ps steps = 40 points.
        assert_eq!(scan.points().len(), 40);
        assert_eq!(scan.step(), Duration::from_ps(10));
        let opening = scan.opening_ui().unwrap().value();
        // The 10 ps quantized scan under-resolves slightly vs the analytic
        // eye (0.87): accept the coarse band.
        assert!((0.75..=0.95).contains(&opening), "opening {opening}");
        let tub = scan.to_string();
        assert!(tub.contains('#') && tub.contains('.'));
    }

    #[test]
    fn five_gbps_eye_is_narrower() {
        let (w2, r2, e2) = prbs_setup(2.5, 1024);
        let (w5, r5, e5) = prbs_setup(5.0, 1024);
        let cap = EtCapture::new();
        let s2 = cap.eye_scan(&w2, r2, &e2, 1).unwrap().opening_ui().unwrap();
        let s5 = cap.eye_scan(&w5, r5, &e5, 1).unwrap().opening_ui().unwrap();
        assert!(s5.value() < s2.value(), "5G {} !< 2.5G {}", s5, s2);
        assert!(s5.value() > 0.5);
    }

    #[test]
    fn best_phase_is_mid_eye() {
        let (wave, rate, expected) = prbs_setup(2.5, 512);
        let scan = EtCapture::new().eye_scan(&wave, rate, &expected, 2).unwrap();
        let best = scan.best_phase().unwrap();
        // Somewhere near the middle of the 400 ps UI, away from edges.
        let ps = best.as_ps_f64();
        assert!((100.0..=300.0).contains(&ps), "best phase {ps} ps");
    }

    #[test]
    fn closed_eye_reports_error() {
        // Expected bits uncorrelated with the waveform: every phase errors.
        let (wave, rate, _) = prbs_setup(2.5, 512);
        let garbage = BitStream::alternating(512);
        let scan = EtCapture::new().eye_scan(&wave, rate, &garbage, 3).unwrap();
        assert!(matches!(scan.opening_ui(), Err(MiniTesterError::EyeClosed)));
        assert!(matches!(scan.best_phase(), Err(MiniTesterError::EyeClosed)));
    }

    #[test]
    fn strobe_ranges_concatenate_to_the_full_scan() {
        use exec::PoolJob;
        let (wave, rate, expected) = prbs_setup(2.5, 512);
        let capture = EtCapture::new();
        let job = EyeScanJob { capture: &capture, wave: &wave, rate, expected: &expected, seed: 5 };
        let pool = exec::ExecPool::new(2);
        let full = job.run_on(&pool).unwrap();
        let steps = full.points().len();
        for split in [1, steps / 2, steps - 1] {
            let lo = job.run_range_on(&pool, 0, split).unwrap();
            let hi = job.run_range_on(&pool, split, steps - split).unwrap();
            let mut points = lo.points().to_vec();
            points.extend_from_slice(hi.points());
            let merged = EyeScan::from_parts(points, rate, full.step());
            assert_eq!(merged, full, "split at {split}");
            assert_eq!(merged.to_string(), full.to_string());
        }
    }

    #[test]
    fn out_of_range_strobe_ranges_rejected() {
        use exec::PoolJob;
        let (wave, rate, expected) = prbs_setup(2.5, 512);
        let capture = EtCapture::new();
        let job = EyeScanJob { capture: &capture, wave: &wave, rate, expected: &expected, seed: 5 };
        let pool = exec::ExecPool::new(1);
        let steps = job.run_on(&pool).unwrap().points().len();
        assert!(job.run_range_on(&pool, 0, 0).is_err());
        assert!(job.run_range_on(&pool, steps, 1).is_err());
        assert!(job.run_range_on(&pool, usize::MAX, 2).is_err());
    }

    #[test]
    fn capture_at_specific_phase() {
        let (wave, rate, expected) = prbs_setup(1.0, 512);
        let cap = EtCapture::new();
        // Mid-bit: clean.
        let mid = cap.capture_at(&wave, rate, &expected, Duration::from_ps(500), 4).unwrap();
        assert_eq!(mid.errors, 0);
        assert_eq!(mid.compared, 512);
        assert_eq!(mid.error_ratio(), 0.0);
        // On the transition: errors.
        let edge = cap.capture_at(&wave, rate, &expected, Duration::ZERO, 4).unwrap();
        assert!(edge.errors > 0);
        assert!(edge.error_ratio() > 0.0);
    }

    #[test]
    fn accessors() {
        let mut cap = EtCapture::default();
        assert_eq!(cap.vernier().step(), Duration::from_ps(10));
        assert_eq!(cap.sampler().aperture_rj(), Duration::from_ps(2));
        cap.sampler_mut().set_threshold(pstime::Millivolts::new(-1200));
        assert_eq!(cap.sampler().threshold(), pstime::Millivolts::new(-1200));
    }
}

#[cfg(test)]
mod bathtub_tests {
    use super::*;
    use crate::datapath::MiniTesterDatapath;
    use pstime::DataRate;

    #[test]
    fn measured_bathtub_has_walls_and_a_floor() {
        let mut path = MiniTesterDatapath::new().unwrap();
        let rate = DataRate::from_gbps(2.5);
        let expected = path.expected_prbs(rate, 1_024).unwrap();
        let mut path2 = MiniTesterDatapath::new().unwrap();
        let wave = path2.prbs_stimulus(rate, 1_024, 31).unwrap();
        let scan = EtCapture::new().eye_scan(&wave, rate, &expected, 7).unwrap();
        let tub = scan.bathtub();
        assert_eq!(tub.len(), 40);
        // Phases span one UI.
        assert!(tub.first().unwrap().0 < 0.05);
        assert!(tub.last().unwrap().0 > 0.9);
        // Walls: errors near the crossover; floor: clean mid-eye.
        let wall: f64 = tub.iter().filter(|(p, _)| *p < 0.1 || *p > 0.9).map(|(_, e)| e).sum();
        let floor: f64 = tub.iter().filter(|(p, _)| (0.4..0.6).contains(p)).map(|(_, e)| e).sum();
        assert!(wall > 0.0, "bathtub needs walls");
        assert_eq!(floor, 0.0, "bathtub floor must be clean");
        // The measured bathtub matches the modeled one qualitatively: the
        // dual-Dirac model with the chain budget predicts a clean centre.
        let chain = pecl::SignalChain::minitester_datapath();
        let model = signal::BathtubCurve::new(chain.rj_rms(), chain.dj_pp(), rate, 0.5);
        assert!(model.ber_at_ui(0.5) < 1e-12);
        assert!(model.ber_at_ui(0.02) > 1e-3);
    }
}

/// An equivalent-time reconstructed trace: the probability of sampling
/// "high" at each 10 ps strobe offset across a repeating pattern — what the
/// mini-tester shows instead of a bench scope photo (the paper's Fig. 18
/// bit-pattern display).
#[derive(Debug, Clone, PartialEq)]
pub struct EtTrace {
    offsets: Vec<Duration>,
    p_high: Vec<f64>,
}

impl EtTrace {
    /// Strobe offsets from the waveform start.
    pub fn offsets(&self) -> &[Duration] {
        &self.offsets
    }

    /// Probability of reading high at each offset (0.0 settled low,
    /// 1.0 settled high, in between on transitions/noise).
    pub fn p_high(&self) -> &[f64] {
        &self.p_high
    }

    /// Renders the trace as an ASCII strip: `_` low, `▔`-substitute `~`
    /// high, `/` indeterminate (transition region).
    pub fn render(&self) -> String {
        self.p_high
            .iter()
            .map(|p| {
                if *p >= 0.9 {
                    '~'
                } else if *p <= 0.1 {
                    '_'
                } else {
                    '/'
                }
            })
            .collect()
    }
}

impl EtCapture {
    /// Reconstructs `n_ui` unit intervals of the waveform in equivalent
    /// time: every 10 ps strobe offset is sampled `acquisitions` times
    /// (aperture jitter makes transition regions probabilistic) and
    /// averaged.
    pub fn reconstruct_trace(
        &self,
        wave: &AnalogWaveform,
        rate: DataRate,
        n_ui: usize,
        acquisitions: usize,
        seed: u64,
    ) -> EtTrace {
        let step = self.vernier.step();
        let span = rate.unit_interval() * n_ui as i64;
        let n_points = (span.as_fs() / step.as_fs()).max(1) as usize;
        let start = wave.digital().start();
        let mut offsets = Vec::with_capacity(n_points);
        let mut p_high = Vec::with_capacity(n_points);
        let mut rng = rng::SeedTree::new(seed).stream("minitester.capture.et").rng();
        for k in 0..n_points {
            let offset = step * k as i64;
            let highs = (0..acquisitions.max(1))
                .filter(|_| self.sampler.sample_at(wave, start + offset, &mut rng))
                .count();
            offsets.push(offset);
            p_high.push(highs as f64 / acquisitions.max(1) as f64);
        }
        EtTrace { offsets, p_high }
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use pstime::DataRate;
    use signal::jitter::NoJitter;
    use signal::{AnalogWaveform, BitStream, DigitalWaveform, EdgeShape, LevelSet};

    #[test]
    fn reconstruction_recovers_the_pattern() {
        let rate = DataRate::from_gbps(1.0);
        let bits = BitStream::from_str_bits("11001010");
        let wave = AnalogWaveform::new(
            DigitalWaveform::from_bits(&bits, rate, &NoJitter, 0),
            LevelSet::pecl(),
            EdgeShape::from_rise_2080_ps(120.0),
        );
        let trace = EtCapture::new().reconstruct_trace(&wave, rate, 8, 16, 3);
        // 8 UI x 1000 ps / 10 ps = 800 points.
        assert_eq!(trace.offsets().len(), 800);
        assert_eq!(trace.p_high().len(), 800);
        // Sample the middle of each bit from the trace: it matches.
        for (i, bit) in bits.iter().enumerate() {
            let mid_idx = i * 100 + 50;
            let p = trace.p_high()[mid_idx];
            if bit {
                assert!(p > 0.9, "bit {i} p_high {p}");
            } else {
                assert!(p < 0.1, "bit {i} p_high {p}");
            }
        }
        // The render shows both rails and the transitions.
        let strip = trace.render();
        assert!(strip.contains('~'));
        assert!(strip.contains('_'));
        assert!(strip.contains('/'));
    }

    #[test]
    fn transition_regions_are_probabilistic_with_jitter() {
        use signal::jitter::JitterBudget;
        let rate = DataRate::from_gbps(2.5);
        let bits = BitStream::alternating(64);
        let wave = AnalogWaveform::new(
            DigitalWaveform::from_bits(&bits, rate, &JitterBudget::new().with_rj_rms_ps(5.0), 7),
            LevelSet::pecl(),
            EdgeShape::default(),
        );
        let trace = EtCapture::new().reconstruct_trace(&wave, rate, 16, 32, 9);
        // Some points sit genuinely between the rails.
        let fuzzy = trace.p_high().iter().filter(|p| (0.2..0.8).contains(*p)).count();
        assert!(fuzzy > 4, "expected probabilistic transition points, got {fuzzy}");
    }
}
