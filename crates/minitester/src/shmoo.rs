//! Shmoo plots: the classic ATE pass/fail map over timing × voltage.
//!
//! The mini-tester's 10 ps strobe vernier and programmable comparator
//! threshold make the standard two-dimensional margin plot possible
//! entirely on the probe card: sweep strobe phase on one axis and decision
//! threshold on the other, run the pattern at each point, and mark
//! pass/fail.

use core::fmt;

use pstime::{DataRate, Duration, Millivolts};
use signal::{AnalogWaveform, BitStream};

use crate::capture::EtCapture;
use crate::Result;

/// Configuration of a shmoo sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShmooConfig {
    /// Strobe-phase step (defaults to the 10 ps vernier step).
    pub phase_step: Duration,
    /// Threshold sweep start.
    pub v_start: Millivolts,
    /// Threshold sweep end (inclusive).
    pub v_end: Millivolts,
    /// Threshold step.
    pub v_step: Millivolts,
}

impl ShmooConfig {
    /// The standard PECL shmoo: thresholds from −1650 to −950 mV in 50 mV
    /// steps, strobe in 10 ps steps.
    pub fn pecl() -> Self {
        ShmooConfig {
            phase_step: Duration::from_ps(10),
            v_start: Millivolts::new(-1650),
            v_end: Millivolts::new(-950),
            v_step: Millivolts::new(50),
        }
    }

    fn validate(&self) -> Result<()> {
        if self.phase_step <= Duration::ZERO {
            return Err(crate::MiniTesterError::BadTestPlan {
                reason: "phase step must be positive",
            });
        }
        if self.v_step <= Millivolts::ZERO || self.v_end < self.v_start {
            return Err(crate::MiniTesterError::BadTestPlan {
                reason: "voltage sweep must be ascending with positive step",
            });
        }
        Ok(())
    }

    fn voltage_points(&self) -> Vec<Millivolts> {
        let mut v = self.v_start;
        let mut points = Vec::new();
        while v <= self.v_end {
            points.push(v);
            // A sweep ending near i32::MAX would overflow `v + v_step`
            // (panic under overflow-checks, an endless wrap-around loop in
            // release); past the representable range the sweep is over.
            match v.as_mv().checked_add(self.v_step.as_mv()) {
                Some(next) => v = Millivolts::new(next),
                None => break,
            }
        }
        points
    }
}

/// A shmoo sweep described as a value: the canonical pool-parameterized
/// entry point ([`exec::PoolJob`]) shared by in-process callers and the
/// `atd` service layer. [`ShmooPlot::run`] and
/// [`ShmooPlot::run_with_pool`] are thin wrappers over this.
#[derive(Debug, Clone, Copy)]
pub struct ShmooJob<'a> {
    /// The stimulus waveform presented to the sampler.
    pub wave: &'a AnalogWaveform,
    /// The data rate under test.
    pub rate: DataRate,
    /// The expected pattern at each capture point.
    pub expected: &'a BitStream,
    /// Sweep configuration (axes and steps).
    pub config: ShmooConfig,
    /// Master seed for the sweep's capture substreams.
    pub seed: u64,
}

impl exec::PoolJob for ShmooJob<'_> {
    type Output = ShmooPlot;
    type Error = crate::MiniTesterError;

    fn run_on(&self, pool: &exec::ExecPool) -> Result<ShmooPlot> {
        self.run_band(pool, 0, None)
    }
}

impl ShmooJob<'_> {
    /// Runs only the threshold rows `[row_start, row_start + row_count)`
    /// of the full sweep.
    ///
    /// The phase columns and the complete threshold axis are still derived
    /// from the whole [`ShmooConfig`], and every cell seeds from its
    /// *global* `(row, col)` substream — so the band reproduces exactly
    /// the rows a full sweep would have produced, and contiguous bands
    /// concatenate (via [`ShmooPlot::from_parts`]) into a plot
    /// byte-identical to one full run. This is the shard entry point used
    /// by the `atd-farm` coordinator.
    ///
    /// # Errors
    ///
    /// [`crate::MiniTesterError::BadTestPlan`] if the band is empty or
    /// overruns the threshold axis; otherwise as
    /// [`exec::PoolJob::run_on`].
    pub fn run_rows_on(
        &self,
        pool: &exec::ExecPool,
        row_start: usize,
        row_count: usize,
    ) -> Result<ShmooPlot> {
        self.run_band(pool, row_start, Some(row_count))
    }

    /// Shared body of the full sweep and the banded sweep: `row_count` of
    /// `None` means "every row".
    fn run_band(
        &self,
        pool: &exec::ExecPool,
        row_start: usize,
        row_count: Option<usize>,
    ) -> Result<ShmooPlot> {
        self.config.validate()?;
        let ui = self.rate.unit_interval();
        let step_fs = self.config.phase_step.as_fs();
        // Ceiling division without the `ui + step - 1` intermediate, which
        // overflows i64 for a step near i64::MAX.
        let n_phases =
            (ui.as_fs() / step_fs + i64::from(ui.as_fs() % step_fs != 0)).max(1) as usize;
        let phases: Vec<Duration> =
            (0..n_phases).map(|k| self.config.phase_step * k as i64).collect();
        let all_thresholds = self.config.voltage_points();
        let rows = row_count.unwrap_or(all_thresholds.len());
        if rows == 0 || row_start.checked_add(rows).is_none_or(|end| end > all_thresholds.len()) {
            return Err(crate::MiniTesterError::BadTestPlan {
                reason: "shmoo row band empty or past the threshold axis",
            });
        }
        let thresholds: Vec<Millivolts> =
            all_thresholds.iter().skip(row_start).take(rows).copied().collect();

        let tree = rng::SeedTree::new(self.seed).stream("minitester.shmoo");
        let cols = phases.len();
        let cells = thresholds.len() * cols;
        // One job per grid cell. Each job builds its own capture head (the
        // equivalent-time sampler is stateless between captures, so a fresh
        // head at the cell's threshold reproduces the serial sweep exactly)
        // and seeds from the cell's *global* (row, col) substream —
        // `row_start` offsets the seed row so a band reproduces the full
        // sweep's cells bit-for-bit.
        let outcome = pool.run(cells, |cell| {
            let ti = row_start + cell / cols;
            let pi = cell % cols;
            let mut capture = EtCapture::new();
            capture.sampler_mut().set_threshold(thresholds[ti - row_start]);
            capture
                .capture_at(
                    self.wave,
                    self.rate,
                    self.expected,
                    phases[pi],
                    tree.index(ti as u64).index(pi as u64).seed(),
                )
                .map(|point| point.errors == 0)
        })?;
        let mut pass = Vec::with_capacity(cells);
        for cell in outcome.results {
            pass.push(cell?);
        }
        Ok(ShmooPlot { thresholds, phases, pass })
    }
}

/// A completed shmoo: pass/fail over (threshold row, strobe-phase column).
#[derive(Debug, Clone, PartialEq)]
pub struct ShmooPlot {
    thresholds: Vec<Millivolts>,
    phases: Vec<Duration>,
    pass: Vec<bool>, // row-major
}

impl ShmooPlot {
    /// Reassembles a plot from its raw axes and row-major pass map — the
    /// inverse of the accessors, used by coordinators (the `atd-farm`
    /// merge layer) that concatenate row bands produced by
    /// [`ShmooJob::run_rows_on`] back into one plot.
    ///
    /// # Errors
    ///
    /// [`crate::MiniTesterError::BadTestPlan`] if the pass map's length is
    /// not `thresholds.len() * phases.len()`.
    pub fn from_parts(
        thresholds: Vec<Millivolts>,
        phases: Vec<Duration>,
        pass: Vec<bool>,
    ) -> Result<ShmooPlot> {
        if pass.len() != thresholds.len() * phases.len() {
            return Err(crate::MiniTesterError::BadTestPlan {
                reason: "shmoo pass map does not cover the grid",
            });
        }
        Ok(ShmooPlot { thresholds, phases, pass })
    }

    /// Runs the shmoo: for each (threshold, phase) point, capture the
    /// pattern and mark pass (zero errors) or fail.
    ///
    /// Grid cells are fanned out over the default [`exec::ExecPool`]
    /// (`EXEC_THREADS` / available parallelism); every cell draws its
    /// randomness from its own `tree.index(row).index(col)` substream, so
    /// the plot is bit-identical for every thread count.
    ///
    /// # Errors
    ///
    /// Propagates configuration, capture, and execution errors.
    pub fn run(
        wave: &AnalogWaveform,
        rate: DataRate,
        expected: &BitStream,
        config: &ShmooConfig,
        seed: u64,
    ) -> Result<ShmooPlot> {
        ShmooPlot::run_with_pool(wave, rate, expected, config, seed, &exec::ExecPool::from_env())
    }

    /// [`ShmooPlot::run`] with an explicit worker pool — the hook used by
    /// benchmarks and thread-count-invariance tests.
    ///
    /// # Errors
    ///
    /// Propagates configuration, capture, and execution errors.
    pub fn run_with_pool(
        wave: &AnalogWaveform,
        rate: DataRate,
        expected: &BitStream,
        config: &ShmooConfig,
        seed: u64,
        pool: &exec::ExecPool,
    ) -> Result<ShmooPlot> {
        use exec::PoolJob;
        ShmooJob { wave, rate, expected, config: *config, seed }.run_on(pool)
    }

    /// Threshold rows (ascending).
    pub fn thresholds(&self) -> &[Millivolts] {
        &self.thresholds
    }

    /// Strobe-phase columns.
    pub fn phases(&self) -> &[Duration] {
        &self.phases
    }

    /// Pass/fail at (threshold row, phase column).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn passed(&self, row: usize, col: usize) -> bool {
        assert!(row < self.thresholds.len() && col < self.phases.len());
        self.pass[row * self.phases.len() + col]
    }

    /// Fraction of points passing.
    pub fn pass_ratio(&self) -> f64 {
        if self.pass.is_empty() {
            return 0.0;
        }
        self.pass.iter().filter(|p| **p).count() as f64 / self.pass.len() as f64
    }

    /// The widest contiguous passing phase run at any threshold, with the
    /// threshold where it occurs: the operating point a production test
    /// would pick.
    pub fn best_operating_point(&self) -> Option<(Millivolts, Duration)> {
        let cols = self.phases.len();
        let mut best: Option<(usize, usize, usize)> = None; // (len, row, start)
        for row in 0..self.thresholds.len() {
            let mut run = 0usize;
            for i in 0..2 * cols {
                if self.pass[row * cols + i % cols] {
                    run += 1;
                    let capped = run.min(cols);
                    if best.is_none_or(|(l, _, _)| capped > l) {
                        best = Some((capped, row, i + 1 - run));
                    }
                } else {
                    run = 0;
                }
            }
        }
        best.filter(|(len, _, _)| *len > 0).map(|(len, row, start)| {
            let centre = (start + len / 2) % cols;
            (self.thresholds[row], self.phases[centre])
        })
    }
}

impl fmt::Display for ShmooPlot {
    /// Classic shmoo rendering: one row per threshold (highest first),
    /// `*` = pass, `.` = fail.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (row, v) in self.thresholds.iter().enumerate().rev() {
            write!(f, "{:>8} |", v.to_string())?;
            for col in 0..self.phases.len() {
                f.write_str(if self.passed(row, col) { "*" } else { "." })?;
            }
            writeln!(f)?;
        }
        writeln!(f, "{:>8} +{}", "", "-".repeat(self.phases.len()))?;
        write!(
            f,
            "{:>8}  phase 0..{}",
            "",
            self.phases.last().map(|p| p.to_string()).unwrap_or_default()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapath::MiniTesterDatapath;

    fn prbs_setup(gbps: f64) -> (AnalogWaveform, DataRate, BitStream) {
        let mut path = MiniTesterDatapath::new().unwrap();
        let rate = DataRate::from_gbps(gbps);
        let expected = path.expected_prbs(rate, 512).unwrap();
        let mut path2 = MiniTesterDatapath::new().unwrap();
        let wave = path2.prbs_stimulus(rate, 512, 17).unwrap();
        (wave, rate, expected)
    }

    #[test]
    fn shmoo_shows_an_open_region() {
        let (wave, rate, expected) = prbs_setup(2.5);
        let plot = ShmooPlot::run(&wave, rate, &expected, &ShmooConfig::pecl(), 1).unwrap();
        assert_eq!(plot.thresholds().len(), 15);
        assert_eq!(plot.phases().len(), 40);
        let ratio = plot.pass_ratio();
        assert!(ratio > 0.2 && ratio < 0.95, "pass ratio {ratio}");
        // The mid-threshold row must have a healthy pass band.
        let mid_row = plot.thresholds().iter().position(|v| *v == Millivolts::new(-1300));
        let mid_row = mid_row.expect("mid threshold present");
        let passes: usize = (0..40).filter(|c| plot.passed(mid_row, *c)).count();
        assert!(passes >= 25, "mid-row passes {passes}");
    }

    #[test]
    fn best_operating_point_is_sane() {
        let (wave, rate, expected) = prbs_setup(2.5);
        let plot = ShmooPlot::run(&wave, rate, &expected, &ShmooConfig::pecl(), 2).unwrap();
        let (v, phase) = plot.best_operating_point().expect("open region exists");
        // Threshold near mid-PECL, phase mid-UI.
        assert!((-1500..=-1100).contains(&v.as_mv()), "threshold {v}");
        let ps = phase.as_ps_f64();
        assert!((80.0..=320.0).contains(&ps), "phase {ps} ps");
    }

    #[test]
    fn rendering_looks_like_a_shmoo() {
        let (wave, rate, expected) = prbs_setup(2.5);
        let plot = ShmooPlot::run(&wave, rate, &expected, &ShmooConfig::pecl(), 3).unwrap();
        let text = plot.to_string();
        assert!(text.contains('*'));
        assert!(text.contains('.'));
        assert!(text.contains("-1300 mV"));
        assert!(text.lines().count() >= 16);
    }

    #[test]
    fn extreme_thresholds_fail_everywhere() {
        let (wave, rate, expected) = prbs_setup(2.5);
        let config = ShmooConfig {
            v_start: Millivolts::new(-500),
            v_end: Millivolts::new(-400),
            ..ShmooConfig::pecl()
        };
        let plot = ShmooPlot::run(&wave, rate, &expected, &config, 4).unwrap();
        assert_eq!(plot.pass_ratio(), 0.0);
        assert!(plot.best_operating_point().is_none());
    }

    #[test]
    fn voltage_sweep_near_i32_max_terminates() {
        // Overflow in the `v += v_step` walk used to panic (debug) or loop
        // forever (release); the sweep now ends at the representable edge.
        let config = ShmooConfig {
            v_start: Millivolts::new(i32::MAX - 10),
            v_end: Millivolts::new(i32::MAX),
            v_step: Millivolts::new(3),
            ..ShmooConfig::pecl()
        };
        let points = config.voltage_points();
        assert_eq!(points.len(), 4);
        assert_eq!(points.first().map(|v| v.as_mv()), Some(i32::MAX - 10));
        assert_eq!(points.last().map(|v| v.as_mv()), Some(i32::MAX - 1));
    }

    #[test]
    fn huge_phase_step_collapses_to_one_column() {
        // A step near i64::MAX used to overflow the ceiling division's
        // `ui + step - 1` intermediate; it must mean "one strobe column".
        let (wave, rate, expected) = prbs_setup(2.5);
        let config = ShmooConfig { phase_step: Duration::from_fs(i64::MAX), ..ShmooConfig::pecl() };
        let plot = ShmooPlot::run(&wave, rate, &expected, &config, 1).unwrap();
        assert_eq!(plot.phases().len(), 1);
    }

    #[test]
    fn row_bands_concatenate_to_the_full_sweep() {
        use exec::PoolJob;
        let (wave, rate, expected) = prbs_setup(2.5);
        let job = ShmooJob {
            wave: &wave,
            rate,
            expected: &expected,
            config: ShmooConfig::pecl(),
            seed: 9,
        };
        let pool = exec::ExecPool::new(2);
        let full = job.run_on(&pool).unwrap();
        let rows = full.thresholds().len();
        for split in [1, rows / 2, rows - 1] {
            let lo = job.run_rows_on(&pool, 0, split).unwrap();
            let hi = job.run_rows_on(&pool, split, rows - split).unwrap();
            let mut thresholds = lo.thresholds().to_vec();
            thresholds.extend_from_slice(hi.thresholds());
            let mut pass = lo.pass.clone();
            pass.extend_from_slice(&hi.pass);
            let merged = ShmooPlot::from_parts(thresholds, lo.phases().to_vec(), pass).unwrap();
            assert_eq!(merged, full, "split at {split}");
            assert_eq!(merged.to_string(), full.to_string());
        }
    }

    #[test]
    fn out_of_range_row_bands_rejected() {
        use exec::PoolJob;
        let (wave, rate, expected) = prbs_setup(2.5);
        let job = ShmooJob {
            wave: &wave,
            rate,
            expected: &expected,
            config: ShmooConfig::pecl(),
            seed: 9,
        };
        let pool = exec::ExecPool::new(1);
        let rows = job.run_on(&pool).unwrap().thresholds().len();
        assert!(job.run_rows_on(&pool, 0, 0).is_err());
        assert!(job.run_rows_on(&pool, rows, 1).is_err());
        assert!(job.run_rows_on(&pool, usize::MAX, 2).is_err());
    }

    #[test]
    fn from_parts_checks_grid_coverage() {
        let plot = ShmooPlot::from_parts(
            vec![Millivolts::new(-1300)],
            vec![Duration::from_ps(0), Duration::from_ps(10)],
            vec![true, false],
        )
        .unwrap();
        assert_eq!(plot.pass_ratio(), 0.5);
        assert!(ShmooPlot::from_parts(
            vec![Millivolts::new(-1300)],
            vec![Duration::from_ps(0)],
            vec![true, false],
        )
        .is_err());
    }

    #[test]
    fn bad_configs_rejected() {
        let (wave, rate, expected) = prbs_setup(2.5);
        let bad_phase = ShmooConfig { phase_step: Duration::ZERO, ..ShmooConfig::pecl() };
        assert!(ShmooPlot::run(&wave, rate, &expected, &bad_phase, 0).is_err());
        let bad_v = ShmooConfig {
            v_start: Millivolts::new(-900),
            v_end: Millivolts::new(-1700),
            ..ShmooConfig::pecl()
        };
        assert!(ShmooPlot::run(&wave, rate, &expected, &bad_v, 0).is_err());
    }
}
