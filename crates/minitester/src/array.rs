//! Parallel multi-site wafer probing (the paper's Fig. 13).
//!
//! "When WLP compliant leads are available on all die sites, the miniature
//! tester may be replicated in array form … Functional testing can then be
//! done in parallel, increasing production throughput by an order of
//! magnitude" (§4). This module provides the throughput arithmetic and a
//! site-level scheduler that runs an array of mini-testers over a wafer
//! map.

use core::fmt;

use pstime::Duration;

/// The outcome of testing one die site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteResult {
    /// Wafer-map die index.
    pub die: usize,
    /// Tester in the array that probed it.
    pub tester: usize,
    /// Whether the die passed.
    pub passed: bool,
    /// Touchdown (probe step) during which it was tested.
    pub touchdown: usize,
}

/// Timing model of one test insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeTiming {
    /// Mechanical step + settle time per touchdown.
    pub step_time: Duration,
    /// Electrical test time per die.
    pub test_time: Duration,
}

impl ProbeTiming {
    /// A representative production insertion: 200 ms step, 150 ms of
    /// at-speed BIST per die.
    pub fn production() -> Self {
        ProbeTiming { step_time: Duration::from_ms(200), test_time: Duration::from_ms(150) }
    }

    /// Time for one touchdown testing `sites` dies in parallel: the step
    /// plus one (shared) test time.
    pub fn touchdown_time(&self) -> Duration {
        self.step_time + self.test_time
    }
}

/// An array of replicated mini-testers probing a wafer.
///
/// # Examples
///
/// ```
/// use minitester::ProbeArray;
///
/// let serial = ProbeArray::new(1);
/// let parallel = ProbeArray::new(16);
/// let speedup = parallel.throughput_speedup(&serial, 256);
/// assert!(speedup > 10.0); // the paper's "order of magnitude"
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeArray {
    sites: usize,
    timing: ProbeTiming,
}

impl ProbeArray {
    /// Creates an array of `sites` mini-testers with production timing.
    ///
    /// # Panics
    ///
    /// Panics if `sites` is zero.
    pub fn new(sites: usize) -> Self {
        assert!(sites > 0, "array needs at least one site");
        ProbeArray { sites, timing: ProbeTiming::production() }
    }

    /// Creates an array with custom timing.
    ///
    /// # Panics
    ///
    /// Panics if `sites` is zero.
    pub fn with_timing(sites: usize, timing: ProbeTiming) -> Self {
        assert!(sites > 0, "array needs at least one site");
        ProbeArray { sites, timing }
    }

    /// Number of parallel sites.
    pub fn sites(&self) -> usize {
        self.sites
    }

    /// Touchdowns needed for a wafer of `dies` dies.
    pub fn touchdowns(&self, dies: usize) -> usize {
        dies.div_ceil(self.sites)
    }

    /// Total probing time for a wafer of `dies` dies.
    pub fn wafer_time(&self, dies: usize) -> Duration {
        self.timing.touchdown_time() * self.touchdowns(dies) as i64
    }

    /// Dies per hour at steady state.
    pub fn throughput_per_hour(&self, dies: usize) -> f64 {
        let t = self.wafer_time(dies).as_secs_f64();
        if t == 0.0 {
            return 0.0;
        }
        dies as f64 * 3600.0 / t
    }

    /// Throughput ratio of this array versus `other` on the same wafer.
    pub fn throughput_speedup(&self, other: &ProbeArray, dies: usize) -> f64 {
        other.wafer_time(dies).as_secs_f64() / self.wafer_time(dies).as_secs_f64()
    }

    /// Schedules a wafer of per-die pass/fail outcomes across the array:
    /// dies are assigned to sites in touchdown order. Returns per-die
    /// results with tester and touchdown assignments.
    pub fn schedule(&self, outcomes: &[bool]) -> Vec<SiteResult> {
        outcomes
            .iter()
            .enumerate()
            .map(|(die, passed)| SiteResult {
                die,
                tester: die % self.sites,
                passed: *passed,
                touchdown: die / self.sites,
            })
            .collect()
    }

    /// Wafer yield from scheduled results.
    pub fn yield_ratio(results: &[SiteResult]) -> f64 {
        if results.is_empty() {
            return 0.0;
        }
        results.iter().filter(|r| r.passed).count() as f64 / results.len() as f64
    }
}

impl fmt::Display for ProbeArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-site probe array ({} per touchdown)",
            self.sites,
            self.timing.touchdown_time()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touchdown_arithmetic() {
        let array = ProbeArray::new(16);
        assert_eq!(array.sites(), 16);
        assert_eq!(array.touchdowns(256), 16);
        assert_eq!(array.touchdowns(257), 17);
        assert_eq!(array.touchdowns(1), 1);
        let serial = ProbeArray::new(1);
        assert_eq!(serial.touchdowns(256), 256);
    }

    #[test]
    fn order_of_magnitude_speedup() {
        // The paper's Fig. 13 claim: array probing gains ~an order of
        // magnitude on a full wafer.
        let serial = ProbeArray::new(1);
        let array16 = ProbeArray::new(16);
        let speedup = array16.throughput_speedup(&serial, 256);
        assert!((speedup - 16.0).abs() < 1e-9, "speedup {speedup}");
        assert!(speedup >= 10.0);
        // Throughput numbers are consistent.
        let t_serial = serial.throughput_per_hour(256);
        let t_array = array16.throughput_per_hour(256);
        assert!((t_array / t_serial - 16.0).abs() < 1e-9);
    }

    #[test]
    fn wafer_time_scales_with_touchdowns() {
        let timing =
            ProbeTiming { step_time: Duration::from_ms(100), test_time: Duration::from_ms(100) };
        let array = ProbeArray::with_timing(4, timing);
        // 8 dies / 4 sites = 2 touchdowns x 200 ms.
        assert_eq!(array.wafer_time(8), Duration::from_ms(400));
        assert_eq!(timing.touchdown_time(), Duration::from_ms(200));
    }

    #[test]
    fn scheduling_assigns_sites_round_robin() {
        let array = ProbeArray::new(4);
        let outcomes = vec![true, true, false, true, true, false];
        let results = array.schedule(&outcomes);
        assert_eq!(results.len(), 6);
        assert_eq!(results[0].tester, 0);
        assert_eq!(results[3].tester, 3);
        assert_eq!(results[4].tester, 0);
        assert_eq!(results[4].touchdown, 1);
        assert!(!results[2].passed);
        let y = ProbeArray::yield_ratio(&results);
        assert!((y - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(ProbeArray::yield_ratio(&[]), 0.0);
    }

    #[test]
    fn display() {
        let array = ProbeArray::new(8);
        assert!(array.to_string().contains("8-site"));
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn zero_sites_panics() {
        let _ = ProbeArray::new(0);
    }
}
