//! Build identity for the fact cache: FNV-1a 64 over every `src/*.rs`
//! byte (path-sorted), exported as `XLINT_BUILD_ID` and folded into the
//! cache fingerprint. Per-file facts are a pure function of (file bytes,
//! analyzer code) — so a binary built from different analyzer sources
//! must never serve facts cached by another build, even when the rule
//! list and `CACHE_VERSION` happen to match.

use std::fs;
use std::path::PathBuf;

fn main() {
    println!("cargo:rerun-if-changed=src");
    let mut files: Vec<PathBuf> = fs::read_dir("src")
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "rs"))
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for f in files {
        for b in fs::read(&f).unwrap_or_default() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    println!("cargo:rustc-env=XLINT_BUILD_ID={hash:016x}");
}
