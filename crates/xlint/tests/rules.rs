//! One integration test per rule R1–R8 and the semantic passes against
//! the seeded fixture workspace in `tests/xlint_fixtures/`, plus binary
//! exit-code, SARIF-shape, and cache cold/warm byte-identity checks.

use std::path::{Path, PathBuf};
use std::process::Command;

use xlint::{analyze_root, Analysis, Finding, Severity};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/xlint_fixtures").join(name)
}

fn violations() -> Analysis {
    analyze_root(&fixture("violations")).expect("fixture analyzes")
}

fn with_rule<'a>(analysis: &'a Analysis, rule: &str) -> Vec<&'a Finding> {
    analysis.findings.iter().filter(|f| f.rule_id == rule).collect()
}

#[test]
fn r1_adhoc_seed_arithmetic_detected() {
    let a = violations();
    let hits = with_rule(&a, "no-adhoc-rng");
    assert!(
        hits.iter().any(|f| f.rel_path.ends_with("core/src/lib.rs")),
        "expected seed-xor hit in core/src/lib.rs, got {hits:?}"
    );
    assert!(hits.iter().all(|f| f.severity == Severity::Deny));
}

#[test]
fn r2_duplicate_stream_label_detected() {
    let a = violations();
    let hits = with_rule(&a, "stream-id-unique");
    assert!(!hits.is_empty(), "duplicate label fixture.duplicate must fire");
    assert!(hits.iter().all(|f| f.severity == Severity::Deny));
    assert!(hits.iter().any(|f| f.message.contains("fixture.duplicate")), "{hits:?}");
}

#[test]
fn r3_raw_ps_arithmetic_detected() {
    let a = violations();
    let hits = with_rule(&a, "no-raw-time-volt");
    assert!(
        hits.iter().any(|f| f.message.contains("edge_ps")),
        "raw f64 math on edge_ps must fire, got {hits:?}"
    );
}

#[test]
fn r4_library_panic_detected() {
    let a = violations();
    let hits = with_rule(&a, "no-panic-in-lib");
    assert!(
        hits.iter()
            .any(|f| f.rel_path.ends_with("core/src/lib.rs") && f.severity == Severity::Deny),
        "unwrap in library code must fire, got {hits:?}"
    );
}

#[test]
fn r5_lossy_cast_tiering() {
    let a = violations();
    let hits = with_rule(&a, "no-lossy-cast");
    let warn = hits.iter().find(|f| f.rel_path.ends_with("core/src/lib.rs"));
    let deny = hits.iter().find(|f| f.rel_path.ends_with("pstime/src/duration.rs"));
    assert_eq!(warn.expect("cast outside timing paths fires").severity, Severity::Warn);
    assert_eq!(deny.expect("cast in a timing path fires").severity, Severity::Deny);
}

#[test]
fn r6_hash_iteration_detected() {
    let a = violations();
    let hits = with_rule(&a, "no-wall-clock");
    assert!(
        hits.iter().any(|f| f.message.contains("HashMap")),
        "HashMap in library code must fire, got {hits:?}"
    );
}

/// A seeded exec-style worker-pool crate — ad-hoc per-worker seed
/// arithmetic plus wall-clock-driven chunk sizing — trips both the
/// determinism rules that matter most for a parallel engine.
#[test]
fn exec_style_pool_crate_trips_adhoc_rng_and_wall_clock() {
    let a = violations();
    let rng_hits = with_rule(&a, "no-adhoc-rng");
    assert!(
        rng_hits.iter().any(|f| f.rel_path.ends_with("parpool/src/lib.rs")),
        "worker-seed xor arithmetic must fire, got {rng_hits:?}"
    );
    let clock_hits = with_rule(&a, "no-wall-clock");
    assert!(
        clock_hits
            .iter()
            .any(|f| f.rel_path.ends_with("parpool/src/lib.rs") && f.severity == Severity::Deny),
        "std::time in pool scheduling must fire as deny, got {clock_hits:?}"
    );
}

#[test]
fn r7_missing_forbid_unsafe_detected() {
    let a = violations();
    let hits = with_rule(&a, "forbid-unsafe-everywhere");
    assert!(
        hits.iter().any(|f| f.rel_path.ends_with("core/src/lib.rs")),
        "crate root without forbid(unsafe_code) must fire, got {hits:?}"
    );
    // Conforming roots stay silent.
    assert!(!hits.iter().any(|f| f.rel_path.ends_with("other/src/lib.rs")), "{hits:?}");
}

#[test]
fn reasoned_allow_suppresses_and_reasonless_allow_is_deny() {
    let a = violations();
    assert!(a.suppressed >= 1, "the reasoned allow must suppress its finding");
    let panics = with_rule(&a, "no-panic-in-lib");
    assert!(
        !panics.iter().any(|f| f.rel_path.ends_with("core/src/allowed.rs")),
        "both allowed.rs unwraps are covered by directives, got {panics:?}"
    );
    let bad = with_rule(&a, "bad-allow");
    assert!(
        bad.iter().any(|f| f.rel_path.ends_with("core/src/allowed.rs")),
        "a reasonless allow must surface as bad-allow, got {bad:?}"
    );
    assert!(bad.iter().all(|f| f.severity == Severity::Deny));
}

#[test]
fn r8_racy_pool_job_detected_and_reasoned_allow_suppresses() {
    let a = violations();
    let hits = with_rule(&a, "exec-job-racy");
    let racy: Vec<_> = hits.iter().filter(|f| f.rel_path.ends_with("racy/src/lib.rs")).collect();
    assert!(
        racy.iter().any(|f| f.severity == Severity::Deny && f.message.contains("lock")),
        "the Mutex-mutating job must fire as deny, got {hits:?}"
    );
    // The reasoned-allow counter job stays silent: exactly the one finding.
    assert_eq!(racy.len(), 1, "counted_copy's allow must suppress its finding: {racy:?}");
}

/// A seeded atd-style scheduler crate: a drain job mutating a shared
/// cache and a frame decoder indexing raw wire bytes trip exactly the two
/// rules that guard the service layer, while its wholesale error wrap
/// keeps the bridge rule silent.
#[test]
fn atd_style_scheduler_crate_trips_racy_job_and_reachable_panic() {
    let a = violations();
    let racy = with_rule(&a, "exec-job-racy");
    assert!(
        racy.iter()
            .any(|f| f.rel_path.ends_with("atdsched/src/lib.rs") && f.severity == Severity::Deny),
        "the cache-mutating drain job must fire, got {racy:?}"
    );
    let reachable = with_rule(&a, "panic-reachable");
    let entry = reachable
        .iter()
        .find(|f| f.rel_path.ends_with("atdsched/src/lib.rs") && f.message.contains("frame_type"))
        .expect("the unchecked header read must be flagged at its pub entry point");
    assert_eq!(entry.severity, Severity::Deny);
    assert!(
        entry.message.contains("header_byte"),
        "the diagnostic must show the indexing root: {}",
        entry.message
    );
    let bridge = with_rule(&a, "error-bridge-exhaustive");
    assert!(
        !bridge.iter().any(|f| f.rel_path.ends_with("atdsched/src/lib.rs")),
        "the wholesale wrap is a complete bridge, got {bridge:?}"
    );
}

#[test]
fn panic_reachable_deep_chain_flagged_at_entry_with_chain() {
    let a = violations();
    let hits = with_rule(&a, "panic-reachable");
    let entry = hits
        .iter()
        .find(|f| f.rel_path.ends_with("deep/src/lib.rs") && f.message.contains("header_word"))
        .expect("the cross-file chain must be flagged at its pub entry point");
    assert_eq!(entry.severity, Severity::Deny);
    assert!(
        entry.message.contains("nth_word") && entry.message.contains("sink.rs"),
        "the diagnostic must show the offending call chain and root: {}",
        entry.message
    );
    assert!(
        !hits.iter().any(|f| f.message.contains("checked_word")),
        "a reasoned allow at the root site must clear the whole chain, got {hits:?}"
    );
}

#[test]
fn error_bridge_incomplete_match_flagged_and_wholesale_or_allowed_pass() {
    let a = violations();
    let hits = with_rule(&a, "error-bridge-exhaustive");
    let b = hits
        .iter()
        .find(|f| f.rel_path.ends_with("bridge/src/lib.rs"))
        .expect("the one-variant match bridge must be flagged");
    assert_eq!(b.severity, Severity::Deny);
    assert!(
        b.message.contains("WorkerPanicked") && b.message.contains("MissingResult"),
        "the diagnostic must name the missing variants: {}",
        b.message
    );
    assert!(
        !hits.iter().any(|f| f.rel_path.ends_with("racy/src/lib.rs")),
        "a wholesale wrap is a complete bridge, got {hits:?}"
    );
    assert!(
        !hits.iter().any(|f| f.rel_path.ends_with("relay/src/lib.rs")),
        "the reasoned allow at the invoke site must suppress, got {hits:?}"
    );
}

#[test]
fn r11_wire_taint_fires_and_sanitized_or_allowed_paths_stay_silent() {
    let a = violations();
    let hits = with_rule(&a, "wire-taint");
    let frameio: Vec<_> =
        hits.iter().filter(|f| f.rel_path.ends_with("frameio/src/lib.rs")).collect();
    assert!(
        frameio.iter().any(|f| f.severity == Severity::Deny && f.message.contains("with_capacity")),
        "the unchecked decoded length must fire, got {hits:?}"
    );
    assert_eq!(
        frameio.len(),
        1,
        "the limits-checked and reasoned-allow flows must stay silent: {frameio:?}"
    );
}

/// v4 interprocedural taint: the decoded count crosses two private call
/// hops, the diagnostic lands at the call site in the pub entry with the
/// whole chain, and the bounding/clamping callees clean their callers.
#[test]
fn wire_taint_crosses_function_boundaries_and_callee_bounds_clean() {
    let a = violations();
    let hits: Vec<_> = with_rule(&a, "wire-taint")
        .into_iter()
        .filter(|f| f.rel_path.ends_with("xprochain/src/lib.rs"))
        .collect();
    assert_eq!(hits.len(), 1, "only the unbounded chain may fire: {hits:?}");
    let hit = hits[0];
    assert_eq!(hit.severity, Severity::Deny);
    assert!(
        hit.message.contains("build_table")
            && hit.message.contains("reserve_slots")
            && hit.message.contains("with_capacity"),
        "the diagnostic must spell out the two-hop chain to the sink: {}",
        hit.message
    );
    assert_eq!(hit.related.len(), 3, "two fn hops plus the sink: {:?}", hit.related);
    assert!(
        !hit.message.contains("ingest_bounded") && !hit.message.contains("ingest_clamped"),
        "callee-side bounds must clean their callers: {}",
        hit.message
    );
}

/// R15 `stale-allow` and the unknown-rule arm of R8 `bad-allow`: a
/// reasoned directive that suppresses nothing is deny-tier, a typo'd
/// rule id is deny-tier, and a same-line reasoned stale-allow pin keeps
/// a stale directive alive.
#[test]
fn stale_allow_flags_dead_directives_and_pin_keeps_one_alive() {
    let a = violations();
    let stale: Vec<_> = with_rule(&a, "stale-allow")
        .into_iter()
        .filter(|f| f.rel_path.ends_with("staleallow/src/lib.rs"))
        .collect();
    assert_eq!(stale.len(), 1, "only STALE_DEAD may fire: {stale:?}");
    assert_eq!(stale[0].severity, Severity::Deny);
    assert!(
        stale[0].message.contains("no-wall-clock") && stale[0].message.contains("delete"),
        "the diagnostic names the dead rule and the fix: {}",
        stale[0].message
    );
    let bad: Vec<_> = with_rule(&a, "bad-allow")
        .into_iter()
        .filter(|f| f.rel_path.ends_with("staleallow/src/lib.rs"))
        .collect();
    assert_eq!(bad.len(), 1, "only the typo'd id may fire: {bad:?}");
    assert!(
        bad[0].message.contains("no-lossy-caste") && bad[0].message.contains("unknown rule id"),
        "{}",
        bad[0].message
    );
    // The used directive and the pinned-stale pair surface as neither
    // stale-allow nor a resurfaced base finding.
    assert!(
        !with_rule(&a, "no-lossy-cast")
            .iter()
            .any(|f| f.rel_path.ends_with("staleallow/src/lib.rs")),
        "the used allow must keep suppressing its cast"
    );
}

#[test]
fn r12_event_loop_blocking_fires_with_chain_and_allow_suppresses() {
    let a = violations();
    let hits = with_rule(&a, "event-loop-blocking");
    let join = hits
        .iter()
        .find(|f| f.rel_path.ends_with("evloop/src/lib.rs"))
        .expect("the blocking join must fire");
    assert_eq!(join.severity, Severity::Deny);
    assert!(
        join.message.contains("`.join()`") && join.message.contains("poll_once → drain_backlog"),
        "the diagnostic must show the loop-to-site chain: {}",
        join.message
    );
    assert!(
        !hits.iter().any(|f| f.message.contains("write_all")),
        "the reasoned allow must suppress the teardown flush, got {hits:?}"
    );
}

#[test]
fn r13_codec_symmetry_flags_the_orphan_and_allow_suppresses() {
    let a = violations();
    let hits = with_rule(&a, "codec-symmetry");
    let orphan =
        hits.iter().find(|f| f.message.contains("ORPHAN")).expect("the decode-only code must fire");
    assert_eq!(orphan.severity, Severity::Deny);
    assert!(
        orphan.message.contains("an encode path") && orphan.message.contains("golden-vector"),
        "the diagnostic must name what is missing: {}",
        orphan.message
    );
    assert!(
        !hits.iter().any(|f| f.message.contains("TRACE")),
        "the reasoned allow must suppress the one-way code, got {hits:?}"
    );
    assert!(
        !hits.iter().any(|f| f.message.contains("PING")),
        "the fully symmetric code must stay silent, got {hits:?}"
    );
}

#[test]
fn build_scripts_are_bound_by_hermeticity_rules() {
    let a = violations();
    let hits = with_rule(&a, "no-wall-clock");
    assert!(
        hits.iter().any(|f| f.rel_path == "build.rs"),
        "the SystemTime read in build.rs must fire, got {hits:?}"
    );
}

/// Acceptance check: a tree seeded with an ad-hoc seed, a duplicate
/// StreamId, raw `_ps` f64 arithmetic, and the semantic-rule crates
/// yields the corresponding rule-id diagnostics, and the binary exits
/// non-zero on it.
#[test]
fn seeded_violations_fail_the_binary_with_distinct_rules() {
    let out = Command::new(env!("CARGO_BIN_EXE_xlint"))
        .args(["--root", fixture("violations").to_str().expect("utf8 path"), "--no-cache"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "seeded violations must exit 1");
    let stdout = String::from_utf8(out.stdout).expect("utf8 output");
    for rule in [
        "no-adhoc-rng",
        "stream-id-unique",
        "no-raw-time-volt",
        "exec-job-racy",
        "panic-reachable",
        "error-bridge-exhaustive",
    ] {
        assert!(stdout.contains(rule), "diagnostics must mention {rule}:\n{stdout}");
    }
}

#[test]
fn clean_tree_passes_the_binary() {
    let out = Command::new(env!("CARGO_BIN_EXE_xlint"))
        .args(["--root", fixture("clean").to_str().expect("utf8 path"), "--no-cache"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "clean fixture must exit 0: {out:?}");
}

#[test]
fn sarif_output_is_schema_shaped_and_byte_stable() {
    let run = || {
        Command::new(env!("CARGO_BIN_EXE_xlint"))
            .args([
                "--root",
                fixture("violations").to_str().expect("utf8 path"),
                "--no-cache",
                "--format",
                "sarif",
            ])
            .output()
            .expect("binary runs")
    };
    let (first, second) = (run(), run());
    assert_eq!(first.stdout, second.stdout, "SARIF output must be byte-stable");
    let doc = xlint::json::parse(&String::from_utf8(first.stdout).expect("utf8"))
        .expect("SARIF parses as JSON");
    assert_eq!(doc.get("version").and_then(|v| v.as_str()), Some("2.1.0"));
    let run0 = doc.get("runs").and_then(|r| r.as_arr()).and_then(<[_]>::first).expect("one run");
    let driver = run0.get("tool").and_then(|t| t.get("driver")).expect("driver");
    assert_eq!(driver.get("name").and_then(|n| n.as_str()), Some("gigatest-xlint"));
    let results = run0.get("results").and_then(|r| r.as_arr()).expect("results");
    assert!(!results.is_empty(), "the violations tree must produce results");
    for rule in ["exec-job-racy", "panic-reachable", "error-bridge-exhaustive"] {
        assert!(
            results.iter().any(|r| r.get("ruleId").and_then(|v| v.as_str()) == Some(rule)),
            "SARIF results must include {rule}"
        );
    }
}

/// Cold run populates the cache; the warm run reuses it — and the findings
/// documents must be byte-identical.
#[test]
fn warm_cache_run_is_byte_identical_to_cold() {
    let cache = std::env::temp_dir().join(format!("xlint-warm-cache-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&cache);
    let run = || {
        Command::new(env!("CARGO_BIN_EXE_xlint"))
            .args([
                "--root",
                fixture("violations").to_str().expect("utf8 path"),
                "--cache",
                cache.to_str().expect("utf8 path"),
                "--format",
                "json",
            ])
            .output()
            .expect("binary runs")
    };
    let cold = run();
    let warm = run();
    let _ = std::fs::remove_file(&cache);
    assert_eq!(cold.status.code(), Some(1));
    assert_eq!(warm.status.code(), Some(1));
    assert_eq!(cold.stdout, warm.stdout, "warm-cache findings must be byte-identical");
    let cold_summary = String::from_utf8(cold.stderr).expect("utf8");
    let warm_summary = String::from_utf8(warm.stderr).expect("utf8");
    assert!(cold_summary.contains("(0 from cache)"), "cold run starts empty: {cold_summary}");
    assert!(
        !warm_summary.contains("(0 from cache)"),
        "warm run must reuse cached facts: {warm_summary}"
    );
}

/// The persistent store's record grammar is wire-grade hostile input:
/// `decode_header` is a taint source, so a disk-decoded length sizing a
/// buffer unvalidated fires, while the `limits::`-checked and
/// reasoned-allow flows stay silent.
#[test]
fn store_reader_fixture_pins_wire_taint_firing_and_suppressed() {
    let a = violations();
    let storeio: Vec<_> = with_rule(&a, "wire-taint")
        .into_iter()
        .filter(|f| f.rel_path.ends_with("storeio/src/lib.rs"))
        .collect();
    assert!(
        storeio.iter().any(|f| f.severity == Severity::Deny && f.message.contains("with_capacity")),
        "the unchecked disk-decoded length must fire, got {storeio:?}"
    );
    assert_eq!(
        storeio.len(),
        1,
        "the limits-checked and reasoned-allow readers must stay silent: {storeio:?}"
    );
}

#[test]
fn farm_router_fixture_pins_wire_taint_and_panic_reachable() {
    let a = violations();
    let taint: Vec<_> = with_rule(&a, "wire-taint")
        .into_iter()
        .filter(|f| f.rel_path.ends_with("farmring/src/lib.rs"))
        .collect();
    assert!(
        taint.iter().any(|f| f.severity == Severity::Deny && f.message.contains("with_capacity")),
        "the unchecked decoded head count must fire, got {taint:?}"
    );
    assert_eq!(
        taint.len(),
        1,
        "the limits-checked and reasoned-allow rings must stay silent: {taint:?}"
    );
    let reachable = with_rule(&a, "panic-reachable");
    let entry = reachable
        .iter()
        .find(|f| f.rel_path.ends_with("farmring/src/lib.rs") && f.message.contains("point_at"))
        .expect("the unchecked ring lookup must be flagged at its pub entry point");
    assert_eq!(entry.severity, Severity::Deny);
    assert!(
        entry.message.contains("route"),
        "the diagnostic must name the pub routing entry: {}",
        entry.message
    );
    assert!(
        !reachable
            .iter()
            .any(|f| f.rel_path.ends_with("farmring/src/lib.rs")
                && f.message.contains("point_guarded")),
        "the reasoned allow at the root must clear the guarded chain, got {reachable:?}"
    );
}
