//! One integration test per rule R1–R7 against the seeded fixture
//! workspace in `tests/xlint_fixtures/`, plus binary exit-code checks.

use std::path::{Path, PathBuf};
use std::process::Command;

use xlint::{analyze_root, Analysis, Finding, Severity};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/xlint_fixtures").join(name)
}

fn violations() -> Analysis {
    analyze_root(&fixture("violations")).expect("fixture analyzes")
}

fn with_rule<'a>(analysis: &'a Analysis, rule: &str) -> Vec<&'a Finding> {
    analysis.findings.iter().filter(|f| f.rule_id == rule).collect()
}

#[test]
fn r1_adhoc_seed_arithmetic_detected() {
    let a = violations();
    let hits = with_rule(&a, "no-adhoc-rng");
    assert!(
        hits.iter().any(|f| f.rel_path.ends_with("core/src/lib.rs")),
        "expected seed-xor hit in core/src/lib.rs, got {hits:?}"
    );
    assert!(hits.iter().all(|f| f.severity == Severity::Deny));
}

#[test]
fn r2_duplicate_stream_label_detected() {
    let a = violations();
    let hits = with_rule(&a, "stream-id-unique");
    assert!(!hits.is_empty(), "duplicate label fixture.duplicate must fire");
    assert!(hits.iter().all(|f| f.severity == Severity::Deny));
    assert!(hits.iter().any(|f| f.message.contains("fixture.duplicate")), "{hits:?}");
}

#[test]
fn r3_raw_ps_arithmetic_detected() {
    let a = violations();
    let hits = with_rule(&a, "no-raw-time-volt");
    assert!(
        hits.iter().any(|f| f.message.contains("edge_ps")),
        "raw f64 math on edge_ps must fire, got {hits:?}"
    );
}

#[test]
fn r4_library_panic_detected() {
    let a = violations();
    let hits = with_rule(&a, "no-panic-in-lib");
    assert!(
        hits.iter()
            .any(|f| f.rel_path.ends_with("core/src/lib.rs") && f.severity == Severity::Deny),
        "unwrap in library code must fire, got {hits:?}"
    );
}

#[test]
fn r5_lossy_cast_tiering() {
    let a = violations();
    let hits = with_rule(&a, "no-lossy-cast");
    let warn = hits.iter().find(|f| f.rel_path.ends_with("core/src/lib.rs"));
    let deny = hits.iter().find(|f| f.rel_path.ends_with("pstime/src/duration.rs"));
    assert_eq!(warn.expect("cast outside timing paths fires").severity, Severity::Warn);
    assert_eq!(deny.expect("cast in a timing path fires").severity, Severity::Deny);
}

#[test]
fn r6_hash_iteration_detected() {
    let a = violations();
    let hits = with_rule(&a, "no-wall-clock");
    assert!(
        hits.iter().any(|f| f.message.contains("HashMap")),
        "HashMap in library code must fire, got {hits:?}"
    );
}

/// A seeded exec-style worker-pool crate — ad-hoc per-worker seed
/// arithmetic plus wall-clock-driven chunk sizing — trips both the
/// determinism rules that matter most for a parallel engine.
#[test]
fn exec_style_pool_crate_trips_adhoc_rng_and_wall_clock() {
    let a = violations();
    let rng_hits = with_rule(&a, "no-adhoc-rng");
    assert!(
        rng_hits.iter().any(|f| f.rel_path.ends_with("parpool/src/lib.rs")),
        "worker-seed xor arithmetic must fire, got {rng_hits:?}"
    );
    let clock_hits = with_rule(&a, "no-wall-clock");
    assert!(
        clock_hits
            .iter()
            .any(|f| f.rel_path.ends_with("parpool/src/lib.rs") && f.severity == Severity::Deny),
        "std::time in pool scheduling must fire as deny, got {clock_hits:?}"
    );
}

#[test]
fn r7_missing_forbid_unsafe_detected() {
    let a = violations();
    let hits = with_rule(&a, "forbid-unsafe-everywhere");
    assert!(
        hits.iter().any(|f| f.rel_path.ends_with("core/src/lib.rs")),
        "crate root without forbid(unsafe_code) must fire, got {hits:?}"
    );
    // Conforming roots stay silent.
    assert!(!hits.iter().any(|f| f.rel_path.ends_with("other/src/lib.rs")), "{hits:?}");
}

#[test]
fn reasoned_allow_suppresses_and_reasonless_allow_is_deny() {
    let a = violations();
    assert!(a.suppressed >= 1, "the reasoned allow must suppress its finding");
    let panics = with_rule(&a, "no-panic-in-lib");
    assert!(
        !panics.iter().any(|f| f.rel_path.ends_with("core/src/allowed.rs")),
        "both allowed.rs unwraps are covered by directives, got {panics:?}"
    );
    let bad = with_rule(&a, "bad-allow");
    assert!(
        bad.iter().any(|f| f.rel_path.ends_with("core/src/allowed.rs")),
        "a reasonless allow must surface as bad-allow, got {bad:?}"
    );
    assert!(bad.iter().all(|f| f.severity == Severity::Deny));
}

/// Acceptance check: a tree seeded with an ad-hoc seed, a duplicate
/// StreamId, and raw `_ps` f64 arithmetic yields three distinct rule-id
/// diagnostics, and the binary exits non-zero on it.
#[test]
fn seeded_violations_fail_the_binary_with_three_distinct_rules() {
    let out = Command::new(env!("CARGO_BIN_EXE_xlint"))
        .args(["--root", fixture("violations").to_str().expect("utf8 path")])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "seeded violations must exit 1");
    let stdout = String::from_utf8(out.stdout).expect("utf8 output");
    for rule in ["no-adhoc-rng", "stream-id-unique", "no-raw-time-volt"] {
        assert!(stdout.contains(rule), "diagnostics must mention {rule}:\n{stdout}");
    }
}

#[test]
fn clean_tree_passes_the_binary() {
    let out = Command::new(env!("CARGO_BIN_EXE_xlint"))
        .args(["--root", fixture("clean").to_str().expect("utf8 path")])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "clean fixture must exit 0: {out:?}");
}
