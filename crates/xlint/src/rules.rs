//! The rule set: seven contracts the workspace already relies on,
//! enforced mechanically.
//!
//! | id | tier | contract |
//! |----|------|----------|
//! | `no-adhoc-rng` (R1) | deny | all randomness flows through `rng::SeedTree`/`StreamId`; no raw generator construction or seed arithmetic outside `crates/rng` |
//! | `stream-id-unique` (R2) | deny | a `SeedTree` stream label names exactly one component — the same label in two files silently correlates their noise |
//! | `no-raw-time-volt` (R3) | warn | picosecond/millivolt quantities use the `pstime` newtypes; bare `f64` arithmetic on `*_ps`/`*_mv` identifiers is tracked and ratcheted down |
//! | `no-panic-in-lib` (R4) | deny | library code returns the crate's error type; `unwrap`/`expect`/`panic!`/`unreachable!` are for tests |
//! | `no-lossy-cast` (R5) | deny in timing paths, warn elsewhere | `as` casts silently truncate; timing-critical femtosecond arithmetic uses `From`/`try_from` or justifies the cast |
//! | `no-wall-clock` (R6) | deny | no `std::time`, and no `HashMap`/`HashSet` in result-producing code — both break run-to-run determinism |
//! | `forbid-unsafe-everywhere` (R7) | deny | every crate root carries `#![forbid(unsafe_code)]` |
//! | `exec-job-racy` (R8) | deny | job closures handed to `ExecPool` must be pure: no shared-mutation primitives (`Mutex`, `RefCell`, `Atomic*`, channels, `static mut`) inside the argument span — they would break the bit-identical-at-any-thread-count contract |
//!
//! The hermeticity rules (R1, R6) also bind in build scripts
//! ([`FileClass::BuildScript`]): a wall-clock read or ad-hoc seed there
//! makes the *artifact* nondeterministic. The semantic rules
//! (`panic-reachable`, `error-bridge-exhaustive`) live in
//! [`crate::graph`]; this module hosts the per-file token rules.
//!
//! Rules see only *significant* tokens (comments and doc examples are
//! stripped by the lexer) and skip `#[cfg(test)]` items where panicking
//! and stream replay are legitimate.

use std::collections::BTreeMap;

use crate::classify::{FileClass, SourceFile};
use crate::facts::StreamFact;
use crate::lexer::{LexOutput, Token, TokenKind};

/// Severity tier of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Tracked in the warn-tier baseline; new instances fail CI, existing
    /// ones burn down.
    Warn,
    /// Fails CI immediately unless suppressed with a reasoned
    /// `xlint::allow`.
    Deny,
}

impl Severity {
    /// Lowercase label used in diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// One auxiliary source position attached to a finding: a hop of an
/// interprocedural chain (wire-taint, panic-reachable, event-loop-
/// blocking), rendered as a SARIF `relatedLocation`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Related {
    /// Root-relative path of the related site.
    pub rel_path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What this site contributes to the finding (e.g. the fn a tainted
    /// value flows through, or the panic site a chain ends at).
    pub note: String,
}

/// One rule violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier, e.g. `no-panic-in-lib`.
    pub rule_id: &'static str,
    /// Tier.
    pub severity: Severity,
    /// Root-relative path.
    pub rel_path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
    /// Chain hops for interprocedural findings; empty for local rules.
    pub related: Vec<Related>,
}

/// Timing-path files where a lossy `as` cast is deny-tier: exact integer
/// femtosecond arithmetic (`pstime`), the programmable-delay and vernier
/// timing model (`pecl`), and edge placement / jitter sampling (`signal`).
pub const TIMING_PATHS: &[&str] = &[
    "crates/pstime/src/duration.rs",
    "crates/pstime/src/instant.rs",
    "crates/pecl/src/delay.rs",
    "crates/pecl/src/timing.rs",
    "crates/signal/src/digital.rs",
    "crates/signal/src/jitter.rs",
];

/// Numeric primitive type names that make an `as` cast potentially lossy.
const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// A lexed file with its test-region mask, ready for rule matching.
pub struct FileTokens<'a> {
    /// The file being linted.
    pub file: &'a SourceFile,
    /// Significant tokens in source order.
    pub tokens: &'a [Token],
    /// `mask[i]` is true when `tokens[i]` is inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
}

impl<'a> FileTokens<'a> {
    /// Build the test-region mask for a lexed file.
    pub fn new(file: &'a SourceFile, lexed: &'a LexOutput) -> Self {
        let in_test = cfg_test_mask(&lexed.tokens);
        FileTokens { file, tokens: &lexed.tokens, in_test }
    }

    fn tok(&self, i: usize) -> Option<&Token> {
        self.tokens.get(i)
    }

    pub(crate) fn is_punct(&self, i: usize, s: &str) -> bool {
        self.tok(i).is_some_and(|t| t.kind == TokenKind::Punct && t.text == s)
    }

    pub(crate) fn is_ident(&self, i: usize, s: &str) -> bool {
        self.tok(i).is_some_and(|t| t.kind == TokenKind::Ident && t.text == s)
    }

    fn finding(&self, rule_id: &'static str, severity: Severity, i: usize, msg: String) -> Finding {
        let (line, col) = self.tok(i).map_or((1, 1), |t| (t.line, t.col));
        Finding {
            rule_id,
            severity,
            rel_path: self.file.rel_path.clone(),
            line,
            col,
            message: msg,
            related: Vec::new(),
        }
    }
}

/// Mark every token that sits inside a `#[cfg(test)]`-gated item (module,
/// fn, impl, use, …). `#[cfg(not(test))]` and `#[cfg(all(test, …))]` are
/// distinguished by the presence of a `not` identifier inside the
/// predicate.
pub(crate) fn cfg_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !(punct_at(tokens, i, "#") && punct_at(tokens, i + 1, "[")) {
            i += 1;
            continue;
        }
        // Find the matching `]` of this attribute.
        let Some(attr_end) = matching_close(tokens, i + 1, "[", "]") else {
            i += 1;
            continue;
        };
        let predicate = tokens.get(i + 2..attr_end).unwrap_or(&[]);
        let is_cfg_test = ident_at(tokens, i + 2, "cfg")
            && predicate.iter().any(|t| t.kind == TokenKind::Ident && t.text == "test")
            && !predicate.iter().any(|t| t.kind == TokenKind::Ident && t.text == "not");
        if !is_cfg_test {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes between the cfg and the item.
        let mut j = attr_end + 1;
        while punct_at(tokens, j, "#") && punct_at(tokens, j + 1, "[") {
            match matching_close(tokens, j + 1, "[", "]") {
                Some(end) => j = end + 1,
                None => break,
            }
        }
        // The item ends at `;` at bracket depth zero, or at the `}`
        // matching the first `{` at depth zero.
        let mut depth_paren = 0i32;
        let mut depth_brack = 0i32;
        let mut end = tokens.len().saturating_sub(1);
        let mut k = j;
        while k < tokens.len() {
            let Some(t) = tokens.get(k) else { break };
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" => depth_paren += 1,
                    ")" => depth_paren -= 1,
                    "[" => depth_brack += 1,
                    "]" => depth_brack -= 1,
                    ";" if depth_paren == 0 && depth_brack == 0 => {
                        end = k;
                        break;
                    }
                    "{" if depth_paren == 0 && depth_brack == 0 => {
                        end = matching_close(tokens, k, "{", "}").unwrap_or(end);
                        break;
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        for m in mask.iter_mut().take(end + 1).skip(i) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

fn punct_at(tokens: &[Token], i: usize, s: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.kind == TokenKind::Punct && t.text == s)
}

fn ident_at(tokens: &[Token], i: usize, s: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.kind == TokenKind::Ident && t.text == s)
}

/// Index of the token closing the delimiter opened at `open_idx`.
fn matching_close(tokens: &[Token], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.kind == TokenKind::Punct {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
    }
    None
}

/// A `StreamId` domain-string use site, collected for the cross-file R2
/// uniqueness check.
#[derive(Debug, Clone)]
pub struct StreamUse {
    /// Root-relative path of the use.
    pub rel_path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Identifiers that mean a job closure mutates shared state: handing one
/// of these to an `ExecPool` job breaks the thread-count-invariance
/// contract (results must be bit-identical at every `EXEC_THREADS`).
const RACY_TYPES: &[&str] =
    &["Mutex", "RwLock", "RefCell", "Cell", "UnsafeCell", "OnceCell", "OnceLock", "mpsc"];

/// Method names that mutate shared state through a shared reference.
const RACY_METHODS: &[&str] = &["lock", "try_lock", "borrow_mut", "try_borrow_mut"];

/// Run every per-file rule, appending findings and recording stream-label
/// uses into `streams` for the later cross-file pass.
pub fn check_file_local(
    ft: &FileTokens<'_>,
    findings: &mut Vec<Finding>,
    streams: &mut Vec<StreamFact>,
) {
    let class = &ft.file.class;
    let src_crate = match class {
        FileClass::Src { crate_name } => Some(crate_name.as_str()),
        _ => None,
    };
    let build_script = matches!(class, FileClass::BuildScript);

    // R7 applies to crate roots only and needs no token scan position.
    if let Some(krate) = src_crate {
        let is_root = ft.file.rel_path == format!("crates/{krate}/src/lib.rs")
            || ft.file.rel_path == format!("crates/{krate}/src/main.rs");
        if is_root && !has_forbid_unsafe(ft.tokens) {
            findings.push(Finding {
                rule_id: "forbid-unsafe-everywhere",
                severity: Severity::Deny,
                rel_path: ft.file.rel_path.clone(),
                line: 1,
                col: 1,
                message: format!("crate root of `{krate}` is missing `#![forbid(unsafe_code)]`"),
                related: Vec::new(),
            });
        }
    }

    for i in 0..ft.tokens.len() {
        let Some(tok) = ft.tok(i) else { break };
        let in_test = ft.in_test.get(i).copied().unwrap_or(false);

        // R2 collection: `.stream("…")` and `StreamId::named("…")` in
        // non-test library code.
        if src_crate.is_some() && !in_test {
            let lit =
                if ft.is_punct(i, ".") && ft.is_ident(i + 1, "stream") && ft.is_punct(i + 2, "(") {
                    ft.tok(i + 3)
                } else if ft.is_ident(i, "StreamId")
                    && ft.is_punct(i + 1, ":")
                    && ft.is_punct(i + 2, ":")
                    && ft.is_ident(i + 3, "named")
                    && ft.is_punct(i + 4, "(")
                {
                    ft.tok(i + 5)
                } else {
                    None
                };
            if let Some(lit) = lit {
                if lit.kind == TokenKind::StrLit {
                    streams.push(StreamFact {
                        label: lit.text.clone(),
                        line: lit.line,
                        col: lit.col,
                    });
                }
            }
        }

        // R8: shared-mutation primitives inside an ExecPool job closure.
        // The argument span of `.par_map(` / `.par_map_reduce(` (the method
        // names are distinctive) and of `pool.run(` / `*_pool.run(` (the
        // receiver disambiguates the common name `run`) must stay pure.
        let r8_scope = !in_test
            && match class {
                FileClass::Src { crate_name } => crate_name != "exec",
                _ => false,
            };
        if r8_scope && ft.is_punct(i + 1, "(") && i > 0 && ft.is_punct(i - 1, ".") {
            let ident_is = |t: Option<&Token>, pred: &dyn Fn(&str) -> bool| {
                t.is_some_and(|t| t.kind == TokenKind::Ident && pred(&t.text))
            };
            let name = ft.tok(i).map(|t| t.text.as_str()).unwrap_or("");
            let is_pool_call = matches!(name, "par_map" | "par_map_reduce")
                || (name == "run"
                    && ident_is(ft.tok(i.wrapping_sub(2)), &|r| {
                        r == "pool" || r.ends_with("_pool")
                    }));
            if is_pool_call {
                if let Some(close) = matching_close(ft.tokens, i + 1, "(", ")") {
                    check_job_purity(ft, name, i + 2, close, findings);
                }
            }
        }

        if tok.kind != TokenKind::Ident {
            continue;
        }
        let ident = tok.text.as_str();

        // R1: ad-hoc RNG construction / seed arithmetic outside crates/rng.
        let r1_scope = !in_test
            && match class {
                FileClass::Src { crate_name } => crate_name != "rng",
                FileClass::Example | FileClass::BuildScript => true,
                FileClass::Test => false,
            };
        if r1_scope {
            if ident.starts_with("Xoshiro")
                || ident == "SplitMix64"
                || ident == "GOLDEN_GAMMA"
                || ident == "seed_from_u64"
            {
                findings.push(ft.finding(
                    "no-adhoc-rng",
                    Severity::Deny,
                    i,
                    format!(
                        "`{ident}` outside crates/rng — derive generators via \
                         rng::SeedTree::stream(..).rng()"
                    ),
                ));
            }
            if ident == "seed" || ident.ends_with("_seed") {
                let xor_next = ft.is_punct(i + 1, "^");
                let xor_prev = i > 0 && ft.is_punct(i - 1, "^");
                let wraps = ft.is_punct(i + 1, ".")
                    && ft.tok(i + 2).is_some_and(|t| {
                        t.kind == TokenKind::Ident
                            && matches!(
                                t.text.as_str(),
                                "wrapping_add"
                                    | "wrapping_mul"
                                    | "wrapping_sub"
                                    | "rotate_left"
                                    | "rotate_right"
                            )
                    });
                if xor_next || xor_prev || wraps {
                    findings.push(
                        ft.finding(
                            "no-adhoc-rng",
                            Severity::Deny,
                            i,
                            "ad-hoc seed arithmetic — derive substreams with \
                         SeedTree::stream/channel/index, never xor or offset raw seeds"
                                .to_string(),
                        ),
                    );
                }
            }
        }

        // R3: bare f64 arithmetic on *_ps / *_mv identifiers outside pstime.
        let r3_scope = !in_test
            && match class {
                FileClass::Src { crate_name } => crate_name != "pstime",
                FileClass::Example => true,
                FileClass::Test | FileClass::BuildScript => false,
            };
        if r3_scope && (ident.ends_with("_ps") || ident.ends_with("_mv")) && ident.len() > 3 {
            let ops = ["+", "-", "*", "/", "%"];
            let next_is_op = ops.iter().any(|op| ft.is_punct(i + 1, op))
                && !(ft.is_punct(i + 1, "-") && ft.is_punct(i + 2, ">"));
            let prev_is_binary_op = i >= 2
                && ops.iter().any(|op| ft.is_punct(i - 1, op))
                && ft.tok(i - 2).is_some_and(|t| {
                    matches!(t.kind, TokenKind::Ident | TokenKind::NumLit)
                        || (t.kind == TokenKind::Punct && (t.text == ")" || t.text == "]"))
                });
            if next_is_op || prev_is_binary_op {
                findings.push(ft.finding(
                    "no-raw-time-volt",
                    Severity::Warn,
                    i,
                    format!(
                        "raw arithmetic on `{ident}` — picosecond/millivolt math belongs in \
                         pstime::Duration / Millivolts newtypes"
                    ),
                ));
            }
        }

        // R4: panics in library code.
        if src_crate.is_some() && !in_test {
            if (ident == "unwrap" || ident == "expect")
                && i > 0
                && ft.is_punct(i - 1, ".")
                && ft.is_punct(i + 1, "(")
            {
                findings.push(ft.finding(
                    "no-panic-in-lib",
                    Severity::Deny,
                    i,
                    format!(
                        "`.{ident}()` in library code — route through the crate's error type \
                         (see its error.rs)"
                    ),
                ));
            }
            if matches!(ident, "panic" | "unreachable" | "todo" | "unimplemented")
                && ft.is_punct(i + 1, "!")
            {
                findings.push(ft.finding(
                    "no-panic-in-lib",
                    Severity::Deny,
                    i,
                    format!("`{ident}!` in library code — return an error instead of aborting"),
                ));
            }
        }

        // R5: `as` numeric casts.
        if src_crate.is_some() && !in_test && ident == "as" {
            if let Some(target) = ft.tok(i + 1) {
                if target.kind == TokenKind::Ident && NUMERIC_TYPES.contains(&target.text.as_str())
                {
                    let severity = if TIMING_PATHS.contains(&ft.file.rel_path.as_str()) {
                        Severity::Deny
                    } else {
                        Severity::Warn
                    };
                    findings.push(ft.finding(
                        "no-lossy-cast",
                        severity,
                        i,
                        format!(
                            "`as {}` cast — prefer `From`/`try_from`, or justify with an \
                             xlint::allow reason",
                            target.text
                        ),
                    ));
                }
            }
        }

        // R6: wall-clock time and hash-order iteration hazards. Binds in
        // build scripts too: a timestamp baked into generated code makes
        // every build produce different artifacts.
        if (src_crate.is_some() || build_script) && !in_test {
            if ident == "std"
                && ft.is_punct(i + 1, ":")
                && ft.is_punct(i + 2, ":")
                && ft.is_ident(i + 3, "time")
            {
                findings.push(
                    ft.finding(
                        "no-wall-clock",
                        Severity::Deny,
                        i,
                        "`std::time` in result-producing code — simulated time lives in \
                     pstime::Instant; wall-clock reads break determinism"
                            .to_string(),
                    ),
                );
            }
            if matches!(ident, "SystemTime" | "UNIX_EPOCH") {
                findings.push(ft.finding(
                    "no-wall-clock",
                    Severity::Deny,
                    i,
                    format!("`{ident}` is a wall-clock read — results must not depend on it"),
                ));
            }
            if matches!(ident, "HashMap" | "HashSet") {
                findings.push(ft.finding(
                    "no-wall-clock",
                    Severity::Deny,
                    i,
                    format!(
                        "`{ident}` iteration order is nondeterministic — use \
                         BTreeMap/BTreeSet in result-producing code"
                    ),
                ));
            }
        }
    }
}

/// Scan the argument span `[start, end)` of an `ExecPool` job call for
/// shared-mutation primitives and report each one.
fn check_job_purity(
    ft: &FileTokens<'_>,
    call: &str,
    start: usize,
    end: usize,
    findings: &mut Vec<Finding>,
) {
    let mut k = start;
    while k < end {
        let Some(t) = ft.tok(k) else { break };
        if t.kind == TokenKind::Ident {
            let name = t.text.as_str();
            if RACY_TYPES.contains(&name) || name.starts_with("Atomic") {
                findings.push(ft.finding(
                    "exec-job-racy",
                    Severity::Deny,
                    k,
                    format!(
                        "`{name}` inside a `{call}` job — pool jobs must be pure functions of \
                         their index; shared-mutation primitives make results depend on thread \
                         interleaving"
                    ),
                ));
            } else if name == "static" && ft.is_ident(k + 1, "mut") {
                findings.push(ft.finding(
                    "exec-job-racy",
                    Severity::Deny,
                    k,
                    format!(
                        "`static mut` inside a `{call}` job — pool jobs must not touch global \
                         mutable state"
                    ),
                ));
            } else if k > start
                && ft.is_punct(k - 1, ".")
                && ft.is_punct(k + 1, "(")
                && (RACY_METHODS.contains(&name)
                    || name.starts_with("fetch_")
                    || name.starts_with("compare_exchange"))
            {
                findings.push(ft.finding(
                    "exec-job-racy",
                    Severity::Deny,
                    k,
                    format!(
                        "`.{name}()` inside a `{call}` job — mutating shared state from a pool \
                         job breaks bit-identical-at-any-thread-count results"
                    ),
                ));
            }
        }
        k += 1;
    }
}

/// Cross-file pass for R2: the same stream label in two different files
/// means two components share one noise stream.
pub fn check_stream_uniqueness(
    streams: &BTreeMap<String, Vec<StreamUse>>,
    findings: &mut Vec<Finding>,
) {
    for (label, uses) in streams {
        let mut files: Vec<&str> = uses.iter().map(|u| u.rel_path.as_str()).collect();
        files.sort_unstable();
        files.dedup();
        if files.len() < 2 {
            continue;
        }
        let first = &uses[0];
        for dup in &uses[1..] {
            if dup.rel_path == first.rel_path {
                continue;
            }
            findings.push(Finding {
                rule_id: "stream-id-unique",
                severity: Severity::Deny,
                rel_path: dup.rel_path.clone(),
                line: dup.line,
                col: dup.col,
                message: format!(
                    "duplicate StreamId domain \"{label}\" — first used at {}:{}:{}; two \
                     components sharing a label draw correlated noise",
                    first.rel_path, first.line, first.col
                ),
                related: Vec::new(),
            });
        }
    }
}

fn has_forbid_unsafe(tokens: &[Token]) -> bool {
    for i in 0..tokens.len() {
        if punct_at(tokens, i, "#")
            && punct_at(tokens, i + 1, "!")
            && punct_at(tokens, i + 2, "[")
            && ident_at(tokens, i + 3, "forbid")
            && punct_at(tokens, i + 4, "(")
            && tokens
                .get(i + 4..)
                .unwrap_or(&[])
                .iter()
                .take_while(|t| !(t.kind == TokenKind::Punct && t.text == "]"))
                .any(|t| t.kind == TokenKind::Ident && t.text == "unsafe_code")
        {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::lexer::lex;
    use std::path::PathBuf;

    fn run_on(rel_path: &str, src: &str) -> Vec<Finding> {
        let class = classify(rel_path).expect("classifiable");
        let file =
            SourceFile { rel_path: rel_path.to_string(), abs_path: PathBuf::from(rel_path), class };
        let lexed = lex(rel_path, src).expect("lex");
        let ft = FileTokens::new(&file, &lexed);
        let mut findings = Vec::new();
        let mut streams = Vec::new();
        check_file_local(&ft, &mut findings, &mut streams);
        findings
    }

    #[test]
    fn cfg_test_items_are_exempt() {
        let src = "pub fn f(v: Option<u8>) -> u8 { v.unwrap_or(0) }\n\
                   #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        let findings = run_on("crates/signal/src/x.rs", src);
        assert!(findings.iter().all(|f| f.rule_id != "no-panic-in-lib"), "{findings:?}");
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\npub fn f(v: Option<u8>) -> u8 { v.unwrap() }\n";
        let findings = run_on("crates/signal/src/x.rs", src);
        assert!(findings.iter().any(|f| f.rule_id == "no-panic-in-lib"));
    }

    #[test]
    fn unwrap_or_variants_do_not_trip_r4() {
        let src = "pub fn f(v: Option<u8>) -> u8 { v.unwrap_or(0).max(v.unwrap_or_default()) }\n";
        assert!(run_on("crates/signal/src/x.rs", src).is_empty());
    }

    #[test]
    fn racy_job_closures_are_flagged() {
        let src = "pub fn f(pool: &ExecPool, hits: &std::sync::Mutex<Vec<u64>>) -> Vec<u64> {\n\
                       pool.run(8, |k| { hits.lock().ok(); k as u64 })\n\
                   }\n";
        let findings = run_on("crates/signal/src/x.rs", src);
        let racy: Vec<_> = findings.iter().filter(|f| f.rule_id == "exec-job-racy").collect();
        assert_eq!(racy.len(), 1, "{findings:?}");
        assert!(racy[0].message.contains("lock"));
    }

    #[test]
    fn par_map_with_atomics_is_flagged_regardless_of_receiver() {
        let src = "pub fn f(p: &ExecPool, n: &AtomicU64) -> Vec<u64> {\n\
                       p.par_map(4, |k| n.fetch_add(k, Ordering::Relaxed))\n\
                   }\n";
        let findings = run_on("crates/signal/src/x.rs", src);
        assert_eq!(findings.iter().filter(|f| f.rule_id == "exec-job-racy").count(), 1);
    }

    #[test]
    fn pure_jobs_and_non_pool_run_calls_are_clean() {
        let src = "pub fn f(pool: &ExecPool, xs: &[u64]) -> Vec<u64> {\n\
                       pool.run(xs.len(), |k| xs.get(k).copied().unwrap_or(0) * 2)\n\
                   }\n\
                   pub fn g(sim: &Simulator) { sim.run(7); }\n";
        let findings = run_on("crates/signal/src/x.rs", src);
        assert!(findings.iter().all(|f| f.rule_id != "exec-job-racy"), "{findings:?}");
    }

    #[test]
    fn build_scripts_get_hermeticity_rules_only() {
        let src = "fn main() {\n\
                       let t = std::time::SystemTime::now();\n\
                       let delay_ps = 10.0; let x = delay_ps * 2.0;\n\
                       let n = 3usize; let m = n as u64;\n\
                   }\n";
        let findings = run_on("crates/pecl/build.rs", src);
        assert!(findings.iter().any(|f| f.rule_id == "no-wall-clock"));
        assert!(findings.iter().all(|f| f.rule_id != "no-raw-time-volt"), "{findings:?}");
        assert!(findings.iter().all(|f| f.rule_id != "no-lossy-cast"), "{findings:?}");
    }
}
