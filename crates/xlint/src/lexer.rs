//! A hand-rolled Rust lexer — just enough fidelity for contract linting.
//!
//! The rules in [`crate::rules`] match on *token* patterns, so the lexer's
//! one job is to never confuse code with non-code: raw strings (`r#"…"#`
//! with any number of hashes), nested block comments (`/* /* */ */`),
//! lifetimes (`'a`) versus char literals (`'a'`), byte and raw-byte
//! strings, and numeric literals with suffixes all have to tokenize the
//! way rustc would, or a rule either misses a violation hidden in code or
//! fires on one quoted inside a string.
//!
//! Comments are not tokens, but they are not discarded either: any comment
//! containing an `xlint::allow(rule-id, reason)` directive is parsed into
//! an [`AllowDirective`] so the engine can suppress findings with an
//! audit trail.

use crate::error::XlintError;

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`seed`, `as`, `fn`, `r#type`, …).
    Ident,
    /// Lifetime such as `'a` or `'_` (without a closing quote).
    Lifetime,
    /// Character literal `'x'`, including escapes, and byte chars `b'x'`.
    CharLit,
    /// String literal of any flavor: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    StrLit,
    /// Numeric literal (integer or float, any base, with optional suffix).
    NumLit,
    /// A single punctuation character (`^`, `.`, `(`, …). Multi-character
    /// operators appear as consecutive single-char tokens.
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind of lexeme.
    pub kind: TokenKind,
    /// The token text. For string literals this is the *cooked* content
    /// (delimiters and raw-string hashes stripped, escapes left as-is) so
    /// rules like stream-id-unique compare payloads, not spellings.
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column (in characters) of the first character.
    pub col: u32,
}

/// A parsed `xlint::allow(rule-id, reason)` suppression directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// The rule id being suppressed, e.g. `no-panic-in-lib`.
    pub rule_id: String,
    /// The justification string. Empty when the author omitted it — the
    /// engine turns that into a deny-tier `bad-allow` finding.
    pub reason: String,
    /// 1-based line the directive's comment starts on.
    pub line: u32,
}

/// Output of [`lex`]: the token stream plus every allow directive found
/// in comments.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Suppression directives in source order.
    pub allows: Vec<AllowDirective>,
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn new(src: &str) -> Self {
        Cursor { chars: src.chars().collect(), pos: 0, line: 1, col: 1 }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` (the contents of `path`, used only for error messages) into
/// tokens and allow directives.
pub fn lex(path: &str, src: &str) -> Result<LexOutput, XlintError> {
    let mut cur = Cursor::new(src);
    let mut out = LexOutput::default();

    while !cur.at_end() {
        let line = cur.line;
        let col = cur.col;
        let c = match cur.peek(0) {
            Some(c) => c,
            None => break,
        };

        // Whitespace.
        if c.is_whitespace() {
            cur.bump();
            continue;
        }

        // Comments: line, and block with nesting. Scan their text for
        // xlint::allow directives, then drop them.
        if c == '/' && cur.peek(1) == Some('/') {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            scan_allow(&text, line, &mut out.allows);
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1u32;
            let mut text = String::new();
            loop {
                if cur.at_end() {
                    return Err(XlintError::Lex {
                        path: path.to_string(),
                        line,
                        col,
                        msg: "unterminated block comment".to_string(),
                    });
                }
                if cur.peek(0) == Some('/') && cur.peek(1) == Some('*') {
                    depth += 1;
                    cur.bump();
                    cur.bump();
                    continue;
                }
                if cur.peek(0) == Some('*') && cur.peek(1) == Some('/') {
                    depth -= 1;
                    cur.bump();
                    cur.bump();
                    if depth == 0 {
                        break;
                    }
                    continue;
                }
                if let Some(ch) = cur.bump() {
                    text.push(ch);
                }
            }
            scan_allow(&text, line, &mut out.allows);
            continue;
        }

        // Lifetimes vs char literals. `'a'` / `'\n'` / `b'x'` (handled via
        // the ident path for the `b` prefix) are char literals; `'a` and
        // `'_` without a closing quote are lifetimes.
        if c == '\'' {
            if cur.peek(1) == Some('\\') {
                out.tokens.push(lex_char_like(path, &mut cur, line, col)?);
                continue;
            }
            let second = cur.peek(1);
            let third = cur.peek(2);
            let is_lifetime = match (second, third) {
                (Some(s), Some('\'')) if is_ident_continue(s) => false,
                (Some(s), _) if is_ident_start(s) => true,
                _ => false,
            };
            if is_lifetime {
                cur.bump(); // the quote
                let mut text = String::from("'");
                while let Some(ch) = cur.peek(0) {
                    if !is_ident_continue(ch) {
                        break;
                    }
                    text.push(ch);
                    cur.bump();
                }
                out.tokens.push(Token { kind: TokenKind::Lifetime, text, line, col });
            } else {
                out.tokens.push(lex_char_like(path, &mut cur, line, col)?);
            }
            continue;
        }

        // Strings (plain), possibly reached directly.
        if c == '"' {
            out.tokens.push(lex_plain_string(path, &mut cur, line, col)?);
            continue;
        }

        // Identifiers — including the r"…" / r#"…"# / b"…" / br#"…"# /
        // b'x' prefixes, which look like an ident until the next char.
        if is_ident_start(c) {
            let mut text = String::new();
            text.push(c);
            cur.bump();
            // Raw/byte string or byte char prefixes.
            let prefix_done = loop {
                let is_prefix = matches!(text.as_str(), "r" | "b" | "br" | "rb");
                if is_prefix {
                    match cur.peek(0) {
                        Some('"') => {
                            if text.starts_with('r') || text.ends_with('r') {
                                // raw (possibly byte) string with zero hashes
                                if text.contains('r') && text != "b" {
                                    out.tokens.push(lex_raw_string(path, &mut cur, line, col, 0)?);
                                } else {
                                    out.tokens.push(lex_plain_string(path, &mut cur, line, col)?);
                                }
                            } else {
                                // b"…" byte string: cooked like a plain string
                                out.tokens.push(lex_plain_string(path, &mut cur, line, col)?);
                            }
                            break true;
                        }
                        Some('#') if text.contains('r') => {
                            let mut hashes = 0usize;
                            while cur.peek(hashes) == Some('#') {
                                hashes += 1;
                            }
                            if cur.peek(hashes) == Some('"') {
                                for _ in 0..hashes {
                                    cur.bump();
                                }
                                out.tokens.push(lex_raw_string(path, &mut cur, line, col, hashes)?);
                                break true;
                            }
                            // `r#ident` raw identifier: fall through to ident.
                        }
                        Some('\'') if text == "b" => {
                            out.tokens.push(lex_char_like(path, &mut cur, line, col)?);
                            break true;
                        }
                        _ => {}
                    }
                }
                match cur.peek(0) {
                    Some(ch) if is_ident_continue(ch) => {
                        text.push(ch);
                        cur.bump();
                    }
                    Some('#') if text == "r" && cur.peek(1).is_some_and(is_ident_start) => {
                        // raw identifier r#type
                        cur.bump();
                        text.clear();
                    }
                    _ => break false,
                }
            };
            if !prefix_done {
                out.tokens.push(Token { kind: TokenKind::Ident, text, line, col });
            }
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let mut text = String::new();
            text.push(c);
            cur.bump();
            if c == '0' && matches!(cur.peek(0), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B')) {
                if let Some(radix) = cur.bump() {
                    text.push(radix);
                }
                while let Some(ch) = cur.peek(0) {
                    if ch.is_ascii_alphanumeric() || ch == '_' {
                        text.push(ch);
                        cur.bump();
                    } else {
                        break;
                    }
                }
            } else {
                consume_decimal(&mut cur, &mut text);
                // Fractional part — but not a `..` range and not a method
                // call on a literal like `1.max(2)`.
                if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                    text.push('.');
                    cur.bump();
                    consume_decimal(&mut cur, &mut text);
                }
                // Exponent.
                if matches!(cur.peek(0), Some('e' | 'E'))
                    && (cur.peek(1).is_some_and(|d| d.is_ascii_digit())
                        || (matches!(cur.peek(1), Some('+' | '-'))
                            && cur.peek(2).is_some_and(|d| d.is_ascii_digit())))
                {
                    if let Some(e) = cur.bump() {
                        text.push(e);
                    }
                    if matches!(cur.peek(0), Some('+' | '-')) {
                        if let Some(s) = cur.bump() {
                            text.push(s);
                        }
                    }
                    consume_decimal(&mut cur, &mut text);
                }
                // Suffix (u64, f64, usize, …).
                while let Some(ch) = cur.peek(0) {
                    if is_ident_continue(ch) {
                        text.push(ch);
                        cur.bump();
                    } else {
                        break;
                    }
                }
            }
            out.tokens.push(Token { kind: TokenKind::NumLit, text, line, col });
            continue;
        }

        // Everything else: single punctuation character.
        cur.bump();
        out.tokens.push(Token { kind: TokenKind::Punct, text: c.to_string(), line, col });
    }

    Ok(out)
}

fn consume_decimal(cur: &mut Cursor, text: &mut String) {
    while let Some(ch) = cur.peek(0) {
        if ch.is_ascii_digit() || ch == '_' {
            text.push(ch);
            cur.bump();
        } else {
            break;
        }
    }
}

/// Lex a char literal (or byte char) starting at the opening `'`.
fn lex_char_like(path: &str, cur: &mut Cursor, line: u32, col: u32) -> Result<Token, XlintError> {
    cur.bump(); // opening quote
    let mut text = String::new();
    loop {
        match cur.bump() {
            None | Some('\n') => {
                return Err(XlintError::Lex {
                    path: path.to_string(),
                    line,
                    col,
                    msg: "unterminated character literal".to_string(),
                })
            }
            Some('\\') => {
                text.push('\\');
                if let Some(esc) = cur.bump() {
                    text.push(esc);
                }
            }
            Some('\'') => break,
            Some(ch) => text.push(ch),
        }
    }
    Ok(Token { kind: TokenKind::CharLit, text, line, col })
}

/// Lex a plain (or byte) string literal starting at the opening `"`.
fn lex_plain_string(
    path: &str,
    cur: &mut Cursor,
    line: u32,
    col: u32,
) -> Result<Token, XlintError> {
    cur.bump(); // opening quote
    let mut text = String::new();
    loop {
        match cur.bump() {
            None => {
                return Err(XlintError::Lex {
                    path: path.to_string(),
                    line,
                    col,
                    msg: "unterminated string literal".to_string(),
                })
            }
            Some('\\') => {
                text.push('\\');
                if let Some(esc) = cur.bump() {
                    text.push(esc);
                }
            }
            Some('"') => break,
            Some(ch) => text.push(ch),
        }
    }
    Ok(Token { kind: TokenKind::StrLit, text, line, col })
}

/// Lex a raw string starting at the opening `"`, with `hashes` trailing
/// `#` characters required to close it.
fn lex_raw_string(
    path: &str,
    cur: &mut Cursor,
    line: u32,
    col: u32,
    hashes: usize,
) -> Result<Token, XlintError> {
    cur.bump(); // opening quote
    let mut text = String::new();
    loop {
        match cur.bump() {
            None => {
                return Err(XlintError::Lex {
                    path: path.to_string(),
                    line,
                    col,
                    msg: "unterminated raw string literal".to_string(),
                })
            }
            Some('"') => {
                let mut matched = 0usize;
                while matched < hashes && cur.peek(matched) == Some('#') {
                    matched += 1;
                }
                if matched == hashes {
                    for _ in 0..hashes {
                        cur.bump();
                    }
                    break;
                }
                text.push('"');
            }
            Some(ch) => text.push(ch),
        }
    }
    Ok(Token { kind: TokenKind::StrLit, text, line, col })
}

/// Scan comment text for `xlint::allow(rule-id, reason)` directives.
/// Doc comments are prose — they routinely *describe* the directive
/// syntax (this very file does) — so they never carry directives: line
/// docs arrive as `///…`/`//!…`, block docs with a `*`/`!` interior
/// head (the `/*` opener is stripped before the scan).
fn scan_allow(comment: &str, line: u32, allows: &mut Vec<AllowDirective>) {
    if comment.starts_with("///")
        || comment.starts_with("//!")
        || comment.starts_with('*')
        || comment.starts_with('!')
    {
        return;
    }
    let mut rest = comment;
    while let Some(at) = rest.find("xlint::allow(") {
        let after = &rest[at + "xlint::allow(".len()..];
        let Some(close) = after.find(')') else { break };
        let inside = &after[..close];
        let (rule_id, reason) = match inside.split_once(',') {
            Some((id, why)) => (id.trim().to_string(), why.trim().trim_matches('"').to_string()),
            None => (inside.trim().to_string(), String::new()),
        };
        allows.push(AllowDirective { rule_id, reason, line });
        rest = &after[close..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        let out = lex("test.rs", src).expect("lex");
        out.tokens.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn raw_strings_with_hashes_hide_their_contents() {
        // The `seed ^` inside the raw string must not surface as tokens.
        let toks = kinds(r###"let s = r#"seed ^ 0xf1 "quoted" ok"#;"###);
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "let".to_string()),
                (TokenKind::Ident, "s".to_string()),
                (TokenKind::Punct, "=".to_string()),
                (TokenKind::StrLit, "seed ^ 0xf1 \"quoted\" ok".to_string()),
                (TokenKind::Punct, ";".to_string()),
            ]
        );
    }

    #[test]
    fn raw_string_with_two_hashes_and_embedded_terminator() {
        let toks = kinds(r####"r##"inner "# still inside"##"####);
        assert_eq!(toks, vec![(TokenKind::StrLit, "inner \"# still inside".to_string())]);
    }

    #[test]
    fn nested_block_comments_are_skipped_entirely() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(
            toks,
            vec![(TokenKind::Ident, "a".to_string()), (TokenKind::Ident, "b".to_string())]
        );
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; let u = '_'; }");
        let lifetimes: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).cloned().collect();
        let chars: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::CharLit).cloned().collect();
        assert_eq!(
            lifetimes,
            vec![(TokenKind::Lifetime, "'a".to_string()), (TokenKind::Lifetime, "'a".to_string())]
        );
        assert_eq!(
            chars,
            vec![
                (TokenKind::CharLit, "a".to_string()),
                (TokenKind::CharLit, "\\n".to_string()),
                (TokenKind::CharLit, "_".to_string()),
            ]
        );
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r##"let a = b"bytes"; let b = b'x'; let c = br#"raw bytes"#;"##);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::StrLit).cloned().collect();
        let chars: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::CharLit).cloned().collect();
        assert_eq!(
            strs,
            vec![
                (TokenKind::StrLit, "bytes".to_string()),
                (TokenKind::StrLit, "raw bytes".to_string())
            ]
        );
        assert_eq!(chars, vec![(TokenKind::CharLit, "x".to_string())]);
    }

    #[test]
    fn raw_identifier_is_an_ident_not_a_string() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.contains(&(TokenKind::Ident, "type".to_string())));
    }

    #[test]
    fn numeric_literals_with_suffixes_ranges_and_exponents() {
        let toks = kinds("0xff_u8 1_000 2.5e-3 1.0f64 0..10");
        assert_eq!(toks[0], (TokenKind::NumLit, "0xff_u8".to_string()));
        assert_eq!(toks[1], (TokenKind::NumLit, "1_000".to_string()));
        assert_eq!(toks[2], (TokenKind::NumLit, "2.5e-3".to_string()));
        assert_eq!(toks[3], (TokenKind::NumLit, "1.0f64".to_string()));
        // `0..10` must lex as number, dot, dot, number — not a float.
        assert_eq!(
            &toks[4..],
            &[
                (TokenKind::NumLit, "0".to_string()),
                (TokenKind::Punct, ".".to_string()),
                (TokenKind::Punct, ".".to_string()),
                (TokenKind::NumLit, "10".to_string()),
            ]
        );
    }

    #[test]
    fn string_in_comment_and_comment_in_string() {
        let toks = kinds("let s = \"/* not a comment */\"; // \"not a string\" unwrap()");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "let".to_string()),
                (TokenKind::Ident, "s".to_string()),
                (TokenKind::Punct, "=".to_string()),
                (TokenKind::StrLit, "/* not a comment */".to_string()),
                (TokenKind::Punct, ";".to_string()),
            ]
        );
    }

    #[test]
    fn allow_directives_are_parsed_with_reason() {
        let out = lex(
            "t.rs",
            "let x = v.unwrap(); // xlint::allow(no-panic-in-lib, \"checked nonempty above\")\n\
             // xlint::allow(no-lossy-cast)\n",
        )
        .expect("lex");
        assert_eq!(out.allows.len(), 2);
        assert_eq!(out.allows[0].rule_id, "no-panic-in-lib");
        assert_eq!(out.allows[0].reason, "checked nonempty above");
        assert_eq!(out.allows[0].line, 1);
        assert_eq!(out.allows[1].rule_id, "no-lossy-cast");
        assert_eq!(out.allows[1].reason, "");
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let out = lex("t.rs", "ab\n  cd").expect("lex");
        assert_eq!((out.tokens[0].line, out.tokens[0].col), (1, 1));
        assert_eq!((out.tokens[1].line, out.tokens[1].col), (2, 3));
    }

    #[test]
    fn unterminated_block_comment_is_an_error() {
        assert!(lex("t.rs", "/* /* */").is_err());
        assert!(lex("t.rs", "\"open").is_err());
    }
}
