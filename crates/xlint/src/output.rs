//! Machine-readable renderings of an [`Analysis`]: plain findings JSON
//! (what CI diffs for cold/warm byte-identity) and SARIF 2.1.0 (what CI
//! uploads for code-scanning annotations).
//!
//! Both renderings go through [`crate::json::Json`], whose objects keep
//! insertion order — the same analysis always serializes to the same bytes.

use crate::engine::Analysis;
use crate::json::Json;
use crate::rules::{Finding, Severity};

/// One-line description per rule id, embedded in the SARIF rule table.
pub const RULE_DESCRIPTIONS: &[(&str, &str)] = &[
    ("no-adhoc-rng", "All randomness flows through rng::SeedTree named streams"),
    ("stream-id-unique", "A SeedTree stream label names exactly one component"),
    ("no-raw-time-volt", "Picosecond/millivolt math uses the pstime newtypes"),
    ("no-panic-in-lib", "Library code returns the crate error type instead of panicking"),
    ("no-lossy-cast", "No silently-truncating `as` casts; use From/try_from or justify"),
    ("no-wall-clock", "No wall-clock reads or hash-order iteration in result-producing code"),
    ("forbid-unsafe-everywhere", "Every crate root carries #![forbid(unsafe_code)]"),
    ("bad-allow", "Every xlint::allow carries a written reason"),
    ("exec-job-racy", "ExecPool job closures stay pure: no shared-mutation primitives"),
    ("panic-reachable", "No pub fn transitively reaches a panic through workspace calls"),
    (
        "error-bridge-exhaustive",
        "Crates invoking exec bridge ExecError completely into their error type",
    ),
    ("wire-taint", "Wire-decoded values pass validate/limits before sizing or exec sinks"),
    ("event-loop-blocking", "Nothing reachable from the server event loop calls a blocking API"),
    ("codec-symmetry", "Every wire message type encodes, decodes, and has a golden vector"),
    ("stale-allow", "Every reasoned xlint::allow still suppresses at least one finding"),
];

fn finding_json(f: &Finding) -> Json {
    let mut pairs = vec![
        ("rule", Json::str(f.rule_id)),
        ("severity", Json::str(f.severity.label())),
        ("path", Json::str(&f.rel_path)),
        ("line", Json::Int(i64::from(f.line))),
        ("col", Json::Int(i64::from(f.col))),
        ("message", Json::str(&f.message)),
    ];
    if !f.related.is_empty() {
        pairs.push((
            "related",
            Json::Arr(
                f.related
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("path", Json::str(&r.rel_path)),
                            ("line", Json::Int(i64::from(r.line))),
                            ("col", Json::Int(i64::from(r.col))),
                            ("note", Json::str(&r.note)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    Json::obj(pairs)
}

/// The `--format json` document.
pub fn findings_json(analysis: &Analysis) -> Json {
    Json::obj(vec![
        ("tool", Json::str("gigatest-xlint")),
        ("files", Json::Int(i64::try_from(analysis.files).unwrap_or(i64::MAX))),
        ("suppressed", Json::Int(i64::try_from(analysis.suppressed).unwrap_or(i64::MAX))),
        ("findings", Json::Arr(analysis.findings.iter().map(finding_json).collect())),
    ])
}

/// The `--format sarif` document (SARIF 2.1.0, one run, one driver).
pub fn sarif(analysis: &Analysis) -> Json {
    let rules = RULE_DESCRIPTIONS
        .iter()
        .map(|(id, desc)| {
            Json::obj(vec![
                ("id", Json::str(id)),
                ("shortDescription", Json::obj(vec![("text", Json::str(desc))])),
            ])
        })
        .collect();
    let results = analysis
        .findings
        .iter()
        .map(|f| {
            let level = match f.severity {
                Severity::Deny => "error",
                Severity::Warn => "warning",
            };
            let mut pairs = vec![
                ("ruleId", Json::str(f.rule_id)),
                ("level", Json::str(level)),
                ("message", Json::obj(vec![("text", Json::str(&f.message))])),
                (
                    "locations",
                    Json::Arr(vec![Json::obj(vec![(
                        "physicalLocation",
                        Json::obj(vec![
                            ("artifactLocation", Json::obj(vec![("uri", Json::str(&f.rel_path))])),
                            (
                                "region",
                                Json::obj(vec![
                                    ("startLine", Json::Int(i64::from(f.line))),
                                    ("startColumn", Json::Int(i64::from(f.col))),
                                ]),
                            ),
                        ]),
                    )])]),
                ),
            ];
            if !f.related.is_empty() {
                pairs.push((
                    "relatedLocations",
                    Json::Arr(
                        f.related
                            .iter()
                            .map(|r| {
                                Json::obj(vec![
                                    (
                                        "physicalLocation",
                                        Json::obj(vec![
                                            (
                                                "artifactLocation",
                                                Json::obj(vec![("uri", Json::str(&r.rel_path))]),
                                            ),
                                            (
                                                "region",
                                                Json::obj(vec![
                                                    ("startLine", Json::Int(i64::from(r.line))),
                                                    ("startColumn", Json::Int(i64::from(r.col))),
                                                ]),
                                            ),
                                        ]),
                                    ),
                                    ("message", Json::obj(vec![("text", Json::str(&r.note))])),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            Json::obj(pairs)
        })
        .collect();
    Json::obj(vec![
        ("$schema", Json::str("https://json.schemastore.org/sarif-2.1.0.json")),
        ("version", Json::str("2.1.0")),
        (
            "runs",
            Json::Arr(vec![Json::obj(vec![
                (
                    "tool",
                    Json::obj(vec![(
                        "driver",
                        Json::obj(vec![
                            ("name", Json::str("gigatest-xlint")),
                            ("rules", Json::Arr(rules)),
                        ]),
                    )]),
                ),
                ("results", Json::Arr(results)),
            ])]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::RULE_IDS;

    fn sample() -> Analysis {
        Analysis {
            findings: vec![Finding {
                rule_id: "panic-reachable",
                severity: Severity::Deny,
                rel_path: "crates/alpha/src/lib.rs".to_string(),
                line: 3,
                col: 1,
                message: "pub fn `f` can reach a panic".to_string(),
                related: vec![crate::rules::Related {
                    rel_path: "crates/alpha/src/sink.rs".to_string(),
                    line: 9,
                    col: 5,
                    note: "the root panic site (indexing)".to_string(),
                }],
            }],
            suppressed: 2,
            files: 5,
            cache_hits: 0,
        }
    }

    #[test]
    fn every_rule_id_has_a_sarif_description() {
        for id in RULE_IDS {
            assert!(
                RULE_DESCRIPTIONS.iter().any(|(r, _)| r == id),
                "missing SARIF description for {id}"
            );
        }
        assert_eq!(RULE_DESCRIPTIONS.len(), RULE_IDS.len());
    }

    #[test]
    fn sarif_is_schema_shaped_and_stable() {
        let doc = sarif(&sample());
        assert_eq!(doc.get("version").and_then(Json::as_str), Some("2.1.0"));
        let runs = doc.get("runs").and_then(Json::as_arr).expect("runs");
        let run = runs.first().expect("one run");
        let driver = run.get("tool").and_then(|t| t.get("driver")).expect("driver");
        assert_eq!(driver.get("name").and_then(Json::as_str), Some("gigatest-xlint"));
        let results = run.get("results").and_then(Json::as_arr).expect("results");
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(r.get("ruleId").and_then(Json::as_str), Some("panic-reachable"));
        assert_eq!(r.get("level").and_then(Json::as_str), Some("error"));
        let rel = r.get("relatedLocations").and_then(Json::as_arr).expect("relatedLocations");
        assert_eq!(rel.len(), 1);
        let note = rel[0].get("message").and_then(|m| m.get("text")).and_then(Json::as_str);
        assert_eq!(note, Some("the root panic site (indexing)"));
        // Byte stability: rendering twice is identical.
        assert_eq!(doc.render(), sarif(&sample()).render());
    }

    #[test]
    fn findings_json_carries_counts_and_positions() {
        let doc = findings_json(&sample());
        assert_eq!(doc.get("files").and_then(Json::as_int), Some(5));
        assert_eq!(doc.get("suppressed").and_then(Json::as_int), Some(2));
        let fs = doc.get("findings").and_then(Json::as_arr).expect("findings");
        assert_eq!(fs[0].get("line").and_then(Json::as_int), Some(3));
    }
}
