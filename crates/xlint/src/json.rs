//! A minimal first-party JSON layer — emitter plus parser.
//!
//! The linter needs JSON twice: machine-readable findings (`--format
//! json|sarif`) and the incremental cache (`target/xlint-cache.json`).
//! Both must be *byte-stable*: the same analysis always serializes to the
//! same bytes, so CI can diff cold-cache vs warm-cache runs. Objects
//! therefore preserve insertion order (a `Vec` of pairs, not a map), and
//! the emitter has exactly one formatting mode.
//!
//! The parser is only as general as the cache format requires: strings,
//! integers, booleans, null, arrays, objects. Floats are out of scope —
//! nothing in the cache is a float, and keeping them out avoids the usual
//! round-trip hazards. Parsing never panics; malformed input yields `None`.

/// A JSON value. Object keys keep insertion order for byte-stable output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer. The cache stores counts, lines, and hashes-as-hex, so
    /// `i64` covers every numeric field without float round-trip risk.
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for a string value.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an integer, when it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool, when it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, when it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items.as_slice()),
            _ => None,
        }
    }

    /// Serialize to a compact, byte-stable string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                out.push_str("\\u");
                let code = u32::from(c);
                for shift in [12u32, 8, 4, 0] {
                    let digit = (code >> shift) & 0xf;
                    out.push(char::from_digit(digit, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Returns `None` on any malformed input — a stale
/// or corrupt cache is simply treated as absent.
pub fn parse(src: &str) -> Option<Json> {
    let chars: Vec<char> = src.chars().collect();
    let mut pos = 0usize;
    let value = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos == chars.len() {
        Some(value)
    } else {
        None
    }
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while chars.get(*pos).is_some_and(|c| c.is_whitespace()) {
        *pos += 1;
    }
}

fn eat(chars: &[char], pos: &mut usize, expected: char) -> Option<()> {
    if chars.get(*pos) == Some(&expected) {
        *pos += 1;
        Some(())
    } else {
        None
    }
}

fn parse_value(chars: &[char], pos: &mut usize) -> Option<Json> {
    skip_ws(chars, pos);
    match chars.get(*pos)? {
        '{' => parse_obj(chars, pos),
        '[' => parse_arr(chars, pos),
        '"' => parse_str(chars, pos).map(Json::Str),
        't' => parse_keyword(chars, pos, "true", Json::Bool(true)),
        'f' => parse_keyword(chars, pos, "false", Json::Bool(false)),
        'n' => parse_keyword(chars, pos, "null", Json::Null),
        c if *c == '-' || c.is_ascii_digit() => parse_int(chars, pos),
        _ => None,
    }
}

fn parse_keyword(chars: &[char], pos: &mut usize, word: &str, value: Json) -> Option<Json> {
    for expected in word.chars() {
        eat(chars, pos, expected)?;
    }
    Some(value)
}

fn parse_int(chars: &[char], pos: &mut usize) -> Option<Json> {
    let mut text = String::new();
    if chars.get(*pos) == Some(&'-') {
        text.push('-');
        *pos += 1;
    }
    while chars.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
        if let Some(c) = chars.get(*pos) {
            text.push(*c);
        }
        *pos += 1;
    }
    text.parse::<i64>().ok().map(Json::Int)
}

fn parse_str(chars: &[char], pos: &mut usize) -> Option<String> {
    eat(chars, pos, '"')?;
    let mut out = String::new();
    loop {
        let c = *chars.get(*pos)?;
        *pos += 1;
        match c {
            '"' => return Some(out),
            '\\' => {
                let esc = *chars.get(*pos)?;
                *pos += 1;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let digit = chars.get(*pos)?.to_digit(16)?;
                            code = code * 16 + digit;
                            *pos += 1;
                        }
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                }
            }
            c => out.push(c),
        }
    }
}

fn parse_arr(chars: &[char], pos: &mut usize) -> Option<Json> {
    eat(chars, pos, '[')?;
    let mut items = Vec::new();
    skip_ws(chars, pos);
    if chars.get(*pos) == Some(&']') {
        *pos += 1;
        return Some(Json::Arr(items));
    }
    loop {
        items.push(parse_value(chars, pos)?);
        skip_ws(chars, pos);
        match chars.get(*pos)? {
            ',' => *pos += 1,
            ']' => {
                *pos += 1;
                return Some(Json::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_obj(chars: &[char], pos: &mut usize) -> Option<Json> {
    eat(chars, pos, '{')?;
    let mut pairs = Vec::new();
    skip_ws(chars, pos);
    if chars.get(*pos) == Some(&'}') {
        *pos += 1;
        return Some(Json::Obj(pairs));
    }
    loop {
        skip_ws(chars, pos);
        let key = parse_str(chars, pos)?;
        skip_ws(chars, pos);
        eat(chars, pos, ':')?;
        let value = parse_value(chars, pos)?;
        pairs.push((key, value));
        skip_ws(chars, pos);
        match chars.get(*pos)? {
            ',' => *pos += 1,
            '}' => {
                *pos += 1;
                return Some(Json::Obj(pairs));
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_cache_shapes() {
        let doc = Json::obj(vec![
            ("version", Json::Int(3)),
            ("hash", Json::str("00ff_aa")),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::Int(-7), Json::str("a \"quoted\"\nline"), Json::Arr(vec![])]),
            ),
        ]);
        let text = doc.render();
        let back = parse(&text).expect("parses");
        assert_eq!(back, doc);
        // Byte stability: render → parse → render is the identity.
        assert_eq!(back.render(), text);
    }

    #[test]
    fn escapes_control_characters() {
        let doc = Json::str("bell\u{7}tab\tend");
        let text = doc.render();
        assert_eq!(text, "\"bell\\u0007tab\\tend\"");
        assert_eq!(parse(&text).expect("parses"), doc);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"open", "truex", "{\"k\" 1}", "1 2", "1.5", "{]"] {
            assert!(parse(bad).is_none(), "{bad} must not parse");
        }
    }

    #[test]
    fn accessors() {
        let doc = parse("{\"a\": [1, true, \"s\"], \"b\": null}").expect("parses");
        assert_eq!(doc.get("a").and_then(|v| v.as_arr()).map(<[Json]>::len), Some(3));
        let arr = doc.get("a").and_then(|v| v.as_arr()).unwrap_or(&[]);
        assert_eq!(arr.first().and_then(Json::as_int), Some(1));
        assert_eq!(arr.get(1).and_then(Json::as_bool), Some(true));
        assert_eq!(arr.get(2).and_then(Json::as_str), Some("s"));
        assert_eq!(doc.get("b"), Some(&Json::Null));
        assert_eq!(doc.get("missing"), None);
    }
}
