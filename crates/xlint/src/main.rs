//! CLI for the workspace contract linter.
//!
//! ```text
//! cargo run -p gigatest-xlint --release --offline                 # lint the tree
//! cargo run -p gigatest-xlint --release --offline -- --fix-allowlist   # re-capture baseline
//! cargo run -p gigatest-xlint --release --offline -- --format sarif > xlint.sarif
//! ```
//!
//! Flags: `--root DIR`, `--baseline FILE`, `--fix-allowlist`,
//! `--format text|json|sarif`, `--cache FILE`, `--no-cache`. The cache
//! defaults to `<root>/target/xlint-cache.json`; warm runs reuse per-file
//! facts for unchanged files and always produce findings byte-identical
//! to a cold run. In the machine formats the document goes to stdout and
//! the human summary to stderr.
//!
//! Exit status: 0 when there are no deny-tier findings and no warn-tier
//! findings beyond the committed baseline; 1 otherwise; 2 on internal
//! errors (unreadable tree, unlexable file, malformed baseline).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use xlint::output::{findings_json, sarif};
use xlint::{analyze_root_cached, Baseline, Severity, XlintError};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Options {
    root: PathBuf,
    baseline: PathBuf,
    fix_allowlist: bool,
    format: Format,
    cache: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut root = PathBuf::from(".");
    let mut baseline = None;
    let mut fix_allowlist = false;
    let mut format = Format::Text;
    let mut cache = None;
    let mut no_cache = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(args.next().ok_or("--root requires a path")?);
            }
            "--baseline" => {
                baseline = Some(PathBuf::from(args.next().ok_or("--baseline requires a path")?));
            }
            "--fix-allowlist" => fix_allowlist = true,
            "--format" => {
                format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    _ => return Err("--format requires one of: text, json, sarif".to_string()),
                };
            }
            "--cache" => {
                cache = Some(PathBuf::from(args.next().ok_or("--cache requires a path")?));
            }
            "--no-cache" => no_cache = true,
            "--help" | "-h" => {
                return Err("usage: xlint [--root DIR] [--baseline FILE] [--fix-allowlist] \
                            [--format text|json|sarif] [--cache FILE] [--no-cache]"
                    .to_string())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    let baseline = baseline.unwrap_or_else(|| root.join("xlint.baseline"));
    let cache = if no_cache {
        None
    } else {
        Some(cache.unwrap_or_else(|| root.join("target").join("xlint-cache.json")))
    };
    Ok(Options { root, baseline, fix_allowlist, format, cache })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xlint: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(opts: &Options) -> Result<bool, XlintError> {
    let analysis = analyze_root_cached(&opts.root, opts.cache.as_deref())?;

    if opts.fix_allowlist {
        let captured = Baseline::capture(&analysis.findings);
        let rendered = captured.render();
        std::fs::write(&opts.baseline, &rendered).map_err(|e| XlintError::Io {
            path: opts.baseline.display().to_string(),
            msg: e.to_string(),
        })?;
        let entries = rendered.lines().filter(|l| !l.starts_with('#') && !l.is_empty()).count();
        println!(
            "xlint: wrote {} with {entries} warn-tier entries ({} files scanned)",
            opts.baseline.display(),
            analysis.files
        );
        return Ok(true);
    }

    let baseline = Baseline::load(&opts.baseline)?;
    let warn_findings: Vec<_> =
        analysis.findings.iter().filter(|f| f.severity == Severity::Warn).cloned().collect();
    let (regressions, improved) = baseline.compare(&warn_findings);

    // Machine formats: the document on stdout, the summary on stderr.
    // Pass/fail semantics are identical to text mode.
    match opts.format {
        Format::Json => println!("{}", findings_json(&analysis).render()),
        Format::Sarif => println!("{}", sarif(&analysis).render()),
        Format::Text => {}
    }

    let mut failed = false;
    let report = |line: String| match opts.format {
        Format::Text => println!("{line}"),
        _ => eprintln!("{line}"),
    };
    for f in analysis.findings.iter().filter(|f| f.severity == Severity::Deny) {
        report(format!("{}:{}:{}: [{}] deny: {}", f.rel_path, f.line, f.col, f.rule_id, f.message));
        failed = true;
    }
    for reg in &regressions {
        report(format!(
            "{}: [{}] warn count {} exceeds baseline {} — new findings:",
            reg.rel_path, reg.rule_id, reg.current, reg.allowed
        ));
        for f in
            warn_findings.iter().filter(|f| f.rel_path == reg.rel_path && f.rule_id == reg.rule_id)
        {
            report(format!(
                "  {}:{}:{}: [{}] warn: {}",
                f.rel_path, f.line, f.col, f.rule_id, f.message
            ));
        }
        failed = true;
    }

    let denies = analysis.findings.iter().filter(|f| f.severity == Severity::Deny).count();
    report(format!(
        "xlint: {} files ({} from cache), {} deny, {} warn ({} suppressed with reasons, \
         {} groups under baseline)",
        analysis.files,
        analysis.cache_hits,
        denies,
        warn_findings.len(),
        analysis.suppressed,
        improved
    ));
    if improved > 0 && !failed {
        report(
            "xlint: warn-tier debt shrank — run `cargo run -p gigatest-xlint --release --offline \
             -- --fix-allowlist` to tighten the ratchet"
                .to_string(),
        );
    }
    Ok(!failed)
}
