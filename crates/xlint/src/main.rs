//! CLI for the workspace contract linter.
//!
//! ```text
//! cargo run -p gigatest-xlint --release --offline                 # lint the tree
//! cargo run -p gigatest-xlint --release --offline -- --fix-allowlist   # re-capture baseline
//! ```
//!
//! Exit status: 0 when there are no deny-tier findings and no warn-tier
//! findings beyond the committed baseline; 1 otherwise; 2 on internal
//! errors (unreadable tree, unlexable file, malformed baseline).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use xlint::{analyze_root, Baseline, Severity, XlintError};

struct Options {
    root: PathBuf,
    baseline: PathBuf,
    fix_allowlist: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut root = PathBuf::from(".");
    let mut baseline = None;
    let mut fix_allowlist = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(args.next().ok_or("--root requires a path")?);
            }
            "--baseline" => {
                baseline = Some(PathBuf::from(args.next().ok_or("--baseline requires a path")?));
            }
            "--fix-allowlist" => fix_allowlist = true,
            "--help" | "-h" => {
                return Err(
                    "usage: xlint [--root DIR] [--baseline FILE] [--fix-allowlist]".to_string()
                )
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    let baseline = baseline.unwrap_or_else(|| root.join("xlint.baseline"));
    Ok(Options { root, baseline, fix_allowlist })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xlint: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(opts: &Options) -> Result<bool, XlintError> {
    let analysis = analyze_root(&opts.root)?;

    if opts.fix_allowlist {
        let captured = Baseline::capture(&analysis.findings);
        let rendered = captured.render();
        std::fs::write(&opts.baseline, &rendered).map_err(|e| XlintError::Io {
            path: opts.baseline.display().to_string(),
            msg: e.to_string(),
        })?;
        let entries = rendered.lines().filter(|l| !l.starts_with('#') && !l.is_empty()).count();
        println!(
            "xlint: wrote {} with {entries} warn-tier entries ({} files scanned)",
            opts.baseline.display(),
            analysis.files
        );
        return Ok(true);
    }

    let baseline = Baseline::load(&opts.baseline)?;
    let warn_findings: Vec<_> =
        analysis.findings.iter().filter(|f| f.severity == Severity::Warn).cloned().collect();
    let (regressions, improved) = baseline.compare(&warn_findings);

    let mut failed = false;
    for f in analysis.findings.iter().filter(|f| f.severity == Severity::Deny) {
        println!("{}:{}:{}: [{}] deny: {}", f.rel_path, f.line, f.col, f.rule_id, f.message);
        failed = true;
    }
    for reg in &regressions {
        println!(
            "{}: [{}] warn count {} exceeds baseline {} — new findings:",
            reg.rel_path, reg.rule_id, reg.current, reg.allowed
        );
        for f in
            warn_findings.iter().filter(|f| f.rel_path == reg.rel_path && f.rule_id == reg.rule_id)
        {
            println!("  {}:{}:{}: [{}] warn: {}", f.rel_path, f.line, f.col, f.rule_id, f.message);
        }
        failed = true;
    }

    let denies = analysis.findings.iter().filter(|f| f.severity == Severity::Deny).count();
    println!(
        "xlint: {} files, {} deny, {} warn ({} suppressed with reasons, {} groups under baseline)",
        analysis.files,
        denies,
        warn_findings.len(),
        analysis.suppressed,
        improved
    );
    if improved > 0 && !failed {
        println!(
            "xlint: warn-tier debt shrank — run `cargo run -p gigatest-xlint --release --offline -- \
             --fix-allowlist` to tighten the ratchet"
        );
    }
    Ok(!failed)
}
