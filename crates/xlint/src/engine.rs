//! Orchestration: walk, build (or reuse cached) per-file facts, run the
//! cross-file passes, apply suppressions.
//!
//! Analysis is two-phase. The per-file phase (lex → parse → local rules)
//! is a pure function of each file's bytes and is what the incremental
//! cache skips for unchanged files. The cross-file phase (stream-label
//! uniqueness, call-graph panic reachability, error-bridge completeness)
//! always runs over the complete fact set, so a warm run produces
//! byte-identical findings to a cold one.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::cache;
use crate::classify::{collect_sources, SourceFile};
use crate::dataflow::check_codec_symmetry;
use crate::error::XlintError;
use crate::facts::{build_facts, intern_rule, FileFacts};
use crate::graph::{check_error_bridges, check_event_loop_blocking, check_panic_reachable};
use crate::lexer::AllowDirective;
use crate::rules::{check_stream_uniqueness, Finding, Severity, StreamUse};

/// The post-suppression result of linting a tree.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Findings that survived suppression, deny first, then by path/line.
    pub findings: Vec<Finding>,
    /// Number of findings silenced by a reasoned `xlint::allow`.
    pub suppressed: usize,
    /// Number of files linted.
    pub files: usize,
    /// Number of files whose facts came from the cache unchanged.
    pub cache_hits: usize,
}

/// Lint every in-scope file under `root`, without a cache.
pub fn analyze_root(root: &Path) -> Result<Analysis, XlintError> {
    analyze_root_cached(root, None)
}

/// Lint every in-scope file under `root`. With `Some(cache_path)`, facts
/// for unchanged files are reused from the cache, and the refreshed cache
/// is written back (best-effort).
pub fn analyze_root_cached(root: &Path, cache_path: Option<&Path>) -> Result<Analysis, XlintError> {
    let sources = collect_sources(root)?;
    let cached = cache_path.map(cache::load).unwrap_or_default();

    let mut facts: Vec<FileFacts> = Vec::with_capacity(sources.len());
    let mut cache_hits = 0usize;
    for file in &sources {
        let src = read_source(file)?;
        let hash = crate::facts::fnv1a(src.as_bytes());
        match cached.get(&file.rel_path) {
            Some(hit) if hit.hash == hash && hit.class == file.class => {
                cache_hits += 1;
                facts.push(hit.clone());
            }
            _ => facts.push(build_facts(file, &src)?),
        }
    }
    if let Some(path) = cache_path {
        cache::save(path, &facts);
    }
    let mut analysis = analyze_facts(facts);
    analysis.cache_hits = cache_hits;
    Ok(analysis)
}

/// Lint an explicit file set (used by the fixture tests, which point it
/// at a fake workspace). Never cached.
pub fn analyze_files(sources: &[SourceFile]) -> Result<Analysis, XlintError> {
    let mut facts = Vec::with_capacity(sources.len());
    for file in sources {
        let src = read_source(file)?;
        facts.push(build_facts(file, &src)?);
    }
    Ok(analyze_facts(facts))
}

fn read_source(file: &SourceFile) -> Result<String, XlintError> {
    std::fs::read_to_string(&file.abs_path).map_err(|e| XlintError::Io {
        path: file.abs_path.display().to_string(),
        msg: e.to_string(),
    })
}

/// The cross-file phase: merge local findings, run the workspace-wide
/// rules, apply suppressions, sort deterministically.
fn analyze_facts(facts: Vec<FileFacts>) -> Analysis {
    let mut findings: Vec<Finding> = Vec::new();
    for fact in &facts {
        findings.extend(fact.local_findings.iter().cloned());
    }

    // R2: stream-label uniqueness across files.
    let mut streams: BTreeMap<String, Vec<StreamUse>> = BTreeMap::new();
    for fact in &facts {
        for s in &fact.streams {
            streams.entry(s.label.clone()).or_default().push(StreamUse {
                rel_path: fact.rel_path.clone(),
                line: s.line,
                col: s.col,
            });
        }
    }
    check_stream_uniqueness(&streams, &mut findings);

    // Semantic passes over the call graph and the exec bridges.
    check_panic_reachable(&facts, &mut findings);
    check_error_bridges(&facts, &mut findings);
    check_event_loop_blocking(&facts, &mut findings);
    check_codec_symmetry(&facts, &mut findings);
    crate::summary::check_wire_taint(&facts, &mut findings);

    // R8 `bad-allow`, unknown-rule arm: a directive naming a rule id the
    // linter does not define suppresses nothing, forever — a typo'd rule
    // is a silent hole in the ratchet. Pushed pre-suppression so a
    // reasoned same-line bad-allow directive can still justify it.
    for fact in &facts {
        for d in &fact.allows {
            if intern_rule(&d.rule_id).is_none() {
                findings.push(Finding {
                    rule_id: "bad-allow",
                    severity: Severity::Deny,
                    rel_path: fact.rel_path.clone(),
                    line: d.line,
                    col: 1,
                    message: format!(
                        "xlint::allow({}) names an unknown rule id — it suppresses nothing; \
                         fix the id (see the README rule table) or delete the directive",
                        d.rule_id
                    ),
                    related: Vec::new(),
                });
            }
        }
    }

    let mut analysis = Analysis { files: facts.len(), ..Analysis::default() };
    // Directives that suppressed at least one finding, keyed by
    // (file, rule, directive line). Seeded with the directives consumed
    // at fact-build time (panic/blocking sites dropped at the source),
    // which this pass otherwise could not observe.
    let mut used: BTreeSet<(String, String, u32)> = BTreeSet::new();
    for fact in &facts {
        for (rule, line) in &fact.used_allows {
            used.insert((fact.rel_path.clone(), rule.clone(), *line));
        }
    }
    for finding in findings {
        let covering = facts
            .iter()
            .find(|f| f.rel_path == finding.rel_path)
            .and_then(|f| covering_allow(&f.allows, &f.token_lines, &finding));
        match covering {
            Some(directive) if directive.reason.is_empty() => {
                // An allow with no reason is itself a contract violation:
                // the audit trail is the point.
                analysis.findings.push(Finding {
                    rule_id: "bad-allow",
                    severity: Severity::Deny,
                    rel_path: finding.rel_path.clone(),
                    line: directive.line,
                    col: 1,
                    message: format!(
                        "xlint::allow({}) has no reason — write \
                         xlint::allow({}, \"why this is sound\")",
                        finding.rule_id, finding.rule_id
                    ),
                    related: Vec::new(),
                });
            }
            Some(directive) => {
                used.insert((finding.rel_path.clone(), directive.rule_id.clone(), directive.line));
                analysis.suppressed += 1;
            }
            None => analysis.findings.push(finding),
        }
    }

    // R15 `stale-allow`: a reasoned directive that suppressed nothing is
    // the ratchet's garbage — under v4's stronger analysis the justified
    // finding may simply no longer exist. Deletion is the fix; a reasoned
    // same-line stale-allow directive keeps one alive (e.g. for in-flight
    // work), and is itself exempt, as are unknown rule ids (bad-allow
    // already owns those) and reasonless directives.
    for fact in &facts {
        for d in &fact.allows {
            if d.reason.is_empty()
                || d.rule_id == "stale-allow"
                || intern_rule(&d.rule_id).is_none()
                || used.contains(&(fact.rel_path.clone(), d.rule_id.clone(), d.line))
            {
                continue;
            }
            let kept = fact
                .allows
                .iter()
                .any(|a| a.rule_id == "stale-allow" && !a.reason.is_empty() && a.line == d.line);
            if kept {
                analysis.suppressed += 1;
                continue;
            }
            analysis.findings.push(Finding {
                rule_id: "stale-allow",
                severity: Severity::Deny,
                rel_path: fact.rel_path.clone(),
                line: d.line,
                col: 1,
                message: format!(
                    "xlint::allow({}, ..) suppresses zero findings — the justified violation \
                     no longer exists; delete the stale directive (or pin it with a same-line \
                     xlint::allow(stale-allow, reason) while a fix is in flight)",
                    d.rule_id
                ),
                related: Vec::new(),
            });
        }
    }
    analysis.findings.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.rel_path.cmp(&b.rel_path))
            .then_with(|| (a.line, a.col).cmp(&(b.line, b.col)))
            .then_with(|| a.rule_id.cmp(b.rule_id))
    });
    analysis.findings.dedup();
    analysis
}

/// Does some directive cover `finding`? A directive on line L covers
/// findings on L and on the next token-bearing line after L (the
/// "comment above the offending line" idiom).
fn covering_allow<'a>(
    allows: &'a [AllowDirective],
    token_lines: &[u32],
    finding: &Finding,
) -> Option<&'a AllowDirective> {
    allows.iter().find(|d| {
        d.rule_id == finding.rule_id
            && (d.line == finding.line
                || token_lines
                    .iter()
                    .find(|t| **t > d.line)
                    .is_some_and(|next| *next == finding.line))
    })
}
