//! Orchestration: walk, lex, run rules, apply suppressions.

use std::collections::{BTreeMap, BTreeSet};

use crate::classify::{collect_sources, SourceFile};
use crate::error::XlintError;
use crate::lexer::{lex, AllowDirective};
use crate::rules::{check_file, check_stream_uniqueness, FileTokens, Finding, Severity};

/// Suppression bookkeeping for one file: its directives and the set of
/// lines that carry at least one token (so a directive on a comment-only
/// line can cover the next line of code).
struct FileSuppressions {
    allows: Vec<AllowDirective>,
    token_lines: BTreeSet<u32>,
}

impl FileSuppressions {
    /// Does some directive in this file cover `finding`? A directive on
    /// line L covers findings on L and on the next token-bearing line
    /// after L (the "comment above the offending line" idiom).
    fn covering(&self, finding: &Finding) -> Option<&AllowDirective> {
        self.allows.iter().find(|d| {
            d.rule_id == finding.rule_id
                && (d.line == finding.line
                    || self
                        .token_lines
                        .range(d.line + 1..)
                        .next()
                        .is_some_and(|next| *next == finding.line))
        })
    }
}

/// The post-suppression result of linting a tree.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Findings that survived suppression, deny first, then by path/line.
    pub findings: Vec<Finding>,
    /// Number of findings silenced by a reasoned `xlint::allow`.
    pub suppressed: usize,
    /// Number of files linted.
    pub files: usize,
}

/// Lint every in-scope file under `root`.
pub fn analyze_root(root: &std::path::Path) -> Result<Analysis, XlintError> {
    let sources = collect_sources(root)?;
    analyze_files(&sources)
}

/// Lint an explicit file set (used by `analyze_root` and the fixture
/// tests, which point it at a fake workspace).
pub fn analyze_files(sources: &[SourceFile]) -> Result<Analysis, XlintError> {
    let mut findings = Vec::new();
    let mut streams = BTreeMap::new();
    let mut suppressions: BTreeMap<String, FileSuppressions> = BTreeMap::new();

    for file in sources {
        let src = std::fs::read_to_string(&file.abs_path).map_err(|e| XlintError::Io {
            path: file.abs_path.display().to_string(),
            msg: e.to_string(),
        })?;
        let lexed = lex(&file.rel_path, &src)?;
        let ft = FileTokens::new(file, &lexed);
        check_file(&ft, &mut findings, &mut streams);
        suppressions.insert(
            file.rel_path.clone(),
            FileSuppressions {
                allows: lexed.allows.clone(),
                token_lines: lexed.tokens.iter().map(|t| t.line).collect(),
            },
        );
    }
    check_stream_uniqueness(&streams, &mut findings);

    let mut analysis = Analysis { files: sources.len(), ..Analysis::default() };
    for finding in findings {
        match suppressions.get(&finding.rel_path).and_then(|s| s.covering(&finding)) {
            Some(directive) if directive.reason.is_empty() => {
                // An allow with no reason is itself a contract violation:
                // the audit trail is the point.
                analysis.findings.push(Finding {
                    rule_id: "bad-allow",
                    severity: Severity::Deny,
                    rel_path: finding.rel_path.clone(),
                    line: directive.line,
                    col: 1,
                    message: format!(
                        "xlint::allow({}) has no reason — write \
                         xlint::allow({}, \"why this is sound\")",
                        finding.rule_id, finding.rule_id
                    ),
                });
            }
            Some(_) => analysis.suppressed += 1,
            None => analysis.findings.push(finding),
        }
    }
    analysis.findings.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.rel_path.cmp(&b.rel_path))
            .then_with(|| (a.line, a.col).cmp(&(b.line, b.col)))
    });
    Ok(analysis)
}
