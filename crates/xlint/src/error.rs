//! Error type for the linter itself.

use core::fmt;

/// Errors the linter can hit while reading or lexing the tree. Rule
/// violations are *findings*, not errors — see [`crate::rules::Finding`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum XlintError {
    /// An I/O failure reading a file or walking a directory.
    Io {
        /// Path involved.
        path: String,
        /// Underlying error, stringified.
        msg: String,
    },
    /// The lexer could not tokenize a file (unterminated literal/comment).
    Lex {
        /// Path of the offending file.
        path: String,
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
        /// What went wrong.
        msg: String,
    },
    /// A baseline file had a malformed line.
    BadBaseline {
        /// Path of the baseline file.
        path: String,
        /// 1-based line number of the malformed entry.
        line: u32,
    },
}

impl fmt::Display for XlintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XlintError::Io { path, msg } => write!(f, "{path}: {msg}"),
            XlintError::Lex { path, line, col, msg } => {
                write!(f, "{path}:{line}:{col}: lex error: {msg}")
            }
            XlintError::BadBaseline { path, line } => {
                write!(f, "{path}:{line}: malformed baseline entry")
            }
        }
    }
}

impl std::error::Error for XlintError {}
