//! Workspace walking and file classification.
//!
//! Rules care *where* code lives: panics are fine in tests and benches,
//! stream names may be replayed in tests, and the unit-safety rules only
//! bind outside the crates that own the escape hatch. This module maps
//! every `.rs` file under the root to a [`FileClass`] and skips the trees
//! that are not ours to lint (`target/`, the registry-dependent
//! `bench-criterion` island, and the linter's own violation fixtures).

use std::path::{Path, PathBuf};

use crate::error::XlintError;

/// Where a file sits in the workspace, which decides which rules bind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileClass {
    /// Library/binary code under `crates/<name>/src/`.
    Src {
        /// The crate directory name, e.g. `pstime`.
        crate_name: String,
    },
    /// Integration tests (`crates/*/tests/`, root `tests/`) and benches.
    Test,
    /// Example programs under `examples/`.
    Example,
    /// Cargo build scripts (`build.rs`, `crates/*/build.rs`). These run at
    /// compile time and feed generated code into the build, so the
    /// hermeticity rules (`no-adhoc-rng`, `no-wall-clock`) bind here too —
    /// a wall-clock read or ad-hoc seed in a build script makes the
    /// *artifact* nondeterministic before any test runs.
    BuildScript,
}

/// One file scheduled for linting.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the lint root, with `/` separators.
    pub rel_path: String,
    /// Absolute path on disk.
    pub abs_path: PathBuf,
    /// Classification.
    pub class: FileClass,
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "bench-criterion", "xlint_fixtures"];

/// Walk `root` and classify every `.rs` file the linter owns.
pub fn collect_sources(root: &Path) -> Result<Vec<SourceFile>, XlintError> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

fn walk(root: &Path, dir: &Path, files: &mut Vec<SourceFile>) -> Result<(), XlintError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| XlintError::Io { path: dir.display().to_string(), msg: e.to_string() })?;
    for entry in entries {
        let entry = entry
            .map_err(|e| XlintError::Io { path: dir.display().to_string(), msg: e.to_string() })?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, files)?;
        } else if name.ends_with(".rs") {
            let rel: String = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            if let Some(class) = classify(&rel) {
                files.push(SourceFile { rel_path: rel, abs_path: path, class });
            }
        }
    }
    Ok(())
}

/// Classify a root-relative path, or `None` if the file is out of scope.
pub fn classify(rel_path: &str) -> Option<FileClass> {
    let parts: Vec<&str> = rel_path.split('/').collect();
    match parts.as_slice() {
        ["crates", krate, "src", ..] => Some(FileClass::Src { crate_name: (*krate).to_string() }),
        ["crates", _, "tests", ..] | ["crates", _, "benches", ..] | ["tests", ..] => {
            Some(FileClass::Test)
        }
        ["examples", ..] | ["crates", _, "examples", ..] => Some(FileClass::Example),
        ["build.rs"] | ["crates", _, "build.rs"] => Some(FileClass::BuildScript),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_workspace_layout() {
        assert_eq!(
            classify("crates/pstime/src/duration.rs"),
            Some(FileClass::Src { crate_name: "pstime".to_string() })
        );
        assert_eq!(classify("crates/pecl/tests/proptests.rs"), Some(FileClass::Test));
        assert_eq!(classify("tests/determinism.rs"), Some(FileClass::Test));
        assert_eq!(classify("examples/quickstart.rs"), Some(FileClass::Example));
        assert_eq!(classify("Cargo.toml.rs"), None);
    }

    #[test]
    fn build_scripts_are_in_scope() {
        assert_eq!(classify("build.rs"), Some(FileClass::BuildScript));
        assert_eq!(classify("crates/pecl/build.rs"), Some(FileClass::BuildScript));
        // Only the canonical locations: a stray build.rs deeper in a tree
        // is ordinary source or out of scope, not a build script.
        assert_eq!(
            classify("crates/pecl/src/build.rs"),
            Some(FileClass::Src { crate_name: "pecl".to_string() })
        );
        assert_eq!(classify("scripts/build.rs"), None);
    }
}
