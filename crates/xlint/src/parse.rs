//! Recursive-descent item parser over the lexer's token stream.
//!
//! The token-pattern rules of v1 see code one window at a time; the
//! semantic rules (`panic-reachable`, `error-bridge-exhaustive`,
//! `exec-job-racy`) need *structure*: which function a token belongs to,
//! whether that function is `pub`, what it calls, which enum variants a
//! `From` impl covers. This module recovers exactly that structure — an
//! item tree of fns (with their call sites and panic sites), impls, enums,
//! and use-paths — from the flat token stream, with no `syn` and no
//! third-party dependencies.
//!
//! It is a *best-effort* parser by design: anything it cannot parse it
//! skips, never errors. The analyses built on top over-approximate calls
//! (a skipped construct can only hide a call, and the limits are
//! documented in DESIGN.md §5d), so parser gaps degrade into documented
//! false negatives rather than crashes or false positives.

use std::collections::BTreeSet;

use crate::lexer::Token;
use crate::lexer::TokenKind;

/// How a call site names its callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CallKind {
    /// `name(...)` — a free function call (or tuple-variant construction,
    /// which resolution simply fails to match).
    Free,
    /// `.name(...)` — a method call; the receiver type is unknown.
    Method,
    /// `Qual::name(...)` — a path call with its last qualifier segment.
    Qualified,
}

/// One call site inside a function body, deduplicated by callee.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Call {
    /// Shape of the call expression.
    pub kind: CallKind,
    /// Last path segment before the callee for [`CallKind::Qualified`]
    /// (`Duration` in `pstime::Duration::from_fs(..)`), `None` otherwise.
    pub qual: Option<String>,
    /// Callee name.
    pub name: String,
}

/// What kind of panic a [`PanicSite`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    Macro,
    /// `.unwrap()` / `.expect(..)`.
    UnwrapExpect,
    /// Indexing a function parameter with a non-literal index — the one
    /// indexing shape whose bound is caller-controlled and locally
    /// unprovable.
    Index,
}

/// A potential panic inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicSite {
    /// Classification.
    pub kind: PanicKind,
    /// Short description used in the reported call chain (`` `.unwrap()` ``,
    /// `` `xs[..]` ``).
    pub desc: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A blocking-API call site inside a function body — input to the
/// `event-loop-blocking` (R12) reachability pass. Only the shapes from
/// the event-loop contract are recorded: `.read_exact(..)` /
/// `.write_all(..)` on a stream, `.lock()`, a zero-argument `.join()`
/// (`JoinHandle::join` — `Vec::join`/`Path::join` take an argument),
/// `.set_nonblocking(false)`, and `thread::sleep`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockSite {
    /// Short description used in the report (`` `thread::sleep` ``).
    pub desc: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One parsed function (free fn, inherent/trait method, or default trait
/// method).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Enclosing impl target or trait name, `None` for free functions.
    pub qual: Option<String>,
    /// Whether the item carries any `pub` visibility (including
    /// `pub(crate)` — every widening is an entry point for reachability).
    pub is_pub: bool,
    /// Whether the item sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Parameter pattern names, in order (`self` included as written).
    pub params: Vec<String>,
    /// Declared type of each parameter as its space-joined identifiers
    /// (`&mut Reader<'_>` records as `"Reader"`, `self` as `""`),
    /// parallel to [`FnDef::params`]. The dataflow pass uses these to
    /// seed taint for wire-reader parameters.
    pub param_types: Vec<String>,
    /// Deduplicated call sites in the body (closures included).
    pub calls: Vec<Call>,
    /// Potential panic sites in the body.
    pub panics: Vec<PanicSite>,
    /// Blocking-API call sites in the body (R12 input).
    pub blocking: Vec<BlockSite>,
}

/// One parsed enum definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
}

/// One path imported by a `use` item, with groups expanded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsePath {
    /// Path segments (`exec`, `ExecPool`); `*` appears for glob imports.
    pub segments: Vec<String>,
    /// Rename from a trailing `as alias`.
    pub alias: Option<String>,
}

/// The item tree of one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedFile {
    /// Every function found at item level (any nesting of mod/impl/trait).
    pub fns: Vec<FnDef>,
    /// Body token span `[start, end)` of each function, parallel to
    /// [`ParsedFile::fns`]; `None` for body-less trait declarations.
    /// Token indices are a lexer-run artifact, so this never enters the
    /// fact cache — the dataflow pass consumes it at build time only.
    pub bodies: Vec<Option<(usize, usize)>>,
    /// Every enum definition.
    pub enums: Vec<EnumDef>,
    /// Every use-path, groups expanded.
    pub uses: Vec<UsePath>,
}

/// Keywords that look like `name(` call sites but are control flow.
pub(crate) const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "move", "let", "else", "in", "as",
    "break", "continue", "where", "impl", "dyn", "ref", "mut", "use", "pub", "crate", "super",
    "unsafe", "await",
];

/// Macros whose expansion unconditionally panics.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

struct Parser<'a> {
    toks: &'a [Token],
    in_test: &'a [bool],
    out: ParsedFile,
}

/// Parse the item tree of a lexed file. `in_test` is the `#[cfg(test)]`
/// token mask (same length as `toks`).
pub fn parse_items(toks: &[Token], in_test: &[bool]) -> ParsedFile {
    let mut parser = Parser { toks, in_test, out: ParsedFile::default() };
    parser.items(0, toks.len(), None);
    parser.out
}

impl<'a> Parser<'a> {
    fn tok(&self, i: usize) -> Option<&Token> {
        self.toks.get(i)
    }

    fn is_punct(&self, i: usize, s: &str) -> bool {
        self.tok(i).is_some_and(|t| t.kind == TokenKind::Punct && t.text == s)
    }

    fn ident(&self, i: usize) -> Option<&str> {
        self.tok(i).filter(|t| t.kind == TokenKind::Ident).map(|t| t.text.as_str())
    }

    /// Index just past the delimiter that closes the one opened at `open`.
    fn after_matching(&self, open: usize, end: usize, open_s: &str, close_s: &str) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < end {
            if self.is_punct(i, open_s) {
                depth += 1;
            } else if self.is_punct(i, close_s) {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        end
    }

    /// Index just past the `>` closing a generic-argument list opened at
    /// `open` (which must point at `<`). `->` arrows inside fn-pointer
    /// types do not close the list.
    fn after_generics(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < end {
            if self.is_punct(i, "<") {
                depth += 1;
            } else if self.is_punct(i, ">") && !(i > 0 && self.is_punct(i - 1, "-")) {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        end
    }

    /// Parse the items in `[start, end)` with the given impl/trait
    /// qualifier.
    fn items(&mut self, start: usize, end: usize, qual: Option<&str>) {
        let mut i = start;
        let mut is_pub = false;
        while i < end {
            // Attributes: `#[...]` and `#![...]`.
            if self.is_punct(i, "#") {
                let open = if self.is_punct(i + 1, "!") { i + 2 } else { i + 1 };
                if self.is_punct(open, "[") {
                    i = self.after_matching(open, end, "[", "]");
                    continue;
                }
                i += 1;
                continue;
            }
            match self.ident(i) {
                Some("pub") => {
                    is_pub = true;
                    i += 1;
                    if self.is_punct(i, "(") {
                        i = self.after_matching(i, end, "(", ")");
                    }
                }
                Some("fn") => {
                    i = self.fn_item(i, end, qual, is_pub);
                    is_pub = false;
                }
                Some("impl") => {
                    i = self.impl_item(i, end);
                    is_pub = false;
                }
                Some("trait") => {
                    let name = self.ident(i + 1).map(str::to_string);
                    i = self.braced_sub_items(i + 2, end, name.as_deref());
                    is_pub = false;
                }
                Some("mod") => {
                    // `mod name;` (file module) or `mod name { items }`.
                    if self.is_punct(i + 2, ";") {
                        i += 3;
                    } else {
                        i = self.braced_sub_items(i + 2, end, None);
                    }
                    is_pub = false;
                }
                Some("enum") => {
                    i = self.enum_item(i, end);
                    is_pub = false;
                }
                Some("use") => {
                    i = self.use_item(i, end);
                    is_pub = false;
                }
                Some("struct" | "type" | "const" | "static" | "macro_rules" | "extern") => {
                    i = self.skip_to_item_end(i + 1, end);
                    is_pub = false;
                }
                _ => {
                    i += 1;
                    is_pub = false;
                }
            }
        }
    }

    /// From a position at or before an item's opening `{`, recurse into
    /// the brace block as sub-items, returning the index past its close.
    fn braced_sub_items(&mut self, from: usize, end: usize, qual: Option<&str>) -> usize {
        let mut i = from;
        while i < end && !self.is_punct(i, "{") && !self.is_punct(i, ";") {
            i += 1;
        }
        if self.is_punct(i, ";") {
            return i + 1;
        }
        let past = self.after_matching(i, end, "{", "}");
        let inner_end = past.saturating_sub(1);
        if i < inner_end {
            self.items(i + 1, inner_end, qual);
        }
        past
    }

    /// Skip a struct/type/const/static/extern item: to `;` at depth zero,
    /// or past a brace block, whichever comes first.
    fn skip_to_item_end(&self, from: usize, end: usize) -> usize {
        let mut i = from;
        let mut angle = 0i32;
        while i < end {
            if self.is_punct(i, "<") {
                angle += 1;
            } else if self.is_punct(i, ">") && !(i > 0 && self.is_punct(i - 1, "-")) {
                angle -= 1;
            } else if self.is_punct(i, ";") && angle <= 0 {
                return i + 1;
            } else if self.is_punct(i, "{") && angle <= 0 {
                return self.after_matching(i, end, "{", "}");
            } else if self.is_punct(i, "(") {
                // Tuple struct body; the `;` after it terminates the item.
                i = self.after_matching(i, end, "(", ")");
                continue;
            }
            i += 1;
        }
        end
    }

    /// Parse `impl<G> Type { .. }` / `impl<G> Trait for Type { .. }`,
    /// recursing into the body with the target type as qualifier.
    fn impl_item(&mut self, at: usize, end: usize) -> usize {
        let mut i = at + 1;
        if self.is_punct(i, "<") {
            i = self.after_generics(i, end);
        }
        // Scan the head for the last path segment before `{`, preferring
        // the path after `for` when present.
        let mut target: Option<String> = None;
        let mut angle = 0i32;
        while i < end {
            if self.is_punct(i, "<") {
                angle += 1;
            } else if self.is_punct(i, ">") && !(i > 0 && self.is_punct(i - 1, "-")) {
                angle -= 1;
            } else if angle <= 0 {
                if self.is_punct(i, "{") {
                    break;
                }
                match self.ident(i) {
                    Some("for") => target = None,
                    Some("where") => break,
                    Some(name) if name != "dyn" && name != "mut" => {
                        // Keep the last path segment seen; `for` resets it
                        // so `impl Trait for Type` ends on `Type`.
                        target = Some(name.to_string());
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        // Skip a where clause to the body brace.
        while i < end && !self.is_punct(i, "{") && !self.is_punct(i, ";") {
            i += 1;
        }
        if self.is_punct(i, ";") {
            return i + 1;
        }
        let past = self.after_matching(i, end, "{", "}");
        let inner_end = past.saturating_sub(1);
        if i < inner_end {
            self.items(i + 1, inner_end, target.as_deref());
        }
        past
    }

    /// Parse one `fn`, returning the index past the item.
    fn fn_item(&mut self, at: usize, end: usize, qual: Option<&str>, is_pub: bool) -> usize {
        let (line, col) = self.tok(at).map_or((1, 1), |t| (t.line, t.col));
        let Some(name) = self.ident(at + 1).map(str::to_string) else {
            return at + 1;
        };
        let mut i = at + 2;
        if self.is_punct(i, "<") {
            i = self.after_generics(i, end);
        }
        if !self.is_punct(i, "(") {
            return i;
        }
        let params_end = self.after_matching(i, end, "(", ")");
        let (params, param_types) = self.param_list(i + 1, params_end.saturating_sub(1));
        // Return type and where clause: scan to the body `{` or a `;`
        // (trait method declaration) at angle/paren depth zero.
        let mut j = params_end;
        let mut angle = 0i32;
        let mut paren = 0i32;
        while j < end {
            if self.is_punct(j, "<") {
                angle += 1;
            } else if self.is_punct(j, ">") && !(j > 0 && self.is_punct(j - 1, "-")) {
                angle -= 1;
            } else if self.is_punct(j, "(") || self.is_punct(j, "[") {
                paren += 1;
            } else if self.is_punct(j, ")") || self.is_punct(j, "]") {
                paren -= 1;
            } else if (self.is_punct(j, "{") || self.is_punct(j, ";")) && angle <= 0 && paren <= 0 {
                break;
            }
            j += 1;
        }
        let in_test = self.in_test.get(at).copied().unwrap_or(false);
        if self.is_punct(j, ";") {
            self.out.fns.push(FnDef {
                name,
                qual: qual.map(str::to_string),
                is_pub,
                in_test,
                line,
                col,
                params,
                param_types,
                calls: Vec::new(),
                panics: Vec::new(),
                blocking: Vec::new(),
            });
            self.out.bodies.push(None);
            return j + 1;
        }
        let past = self.after_matching(j, end, "{", "}");
        let body_start = j + 1;
        let body_end = past.saturating_sub(1);
        let (calls, panics, blocking) = self.body_facts(body_start, body_end, &params);
        self.out.fns.push(FnDef {
            name,
            qual: qual.map(str::to_string),
            is_pub,
            in_test,
            line,
            col,
            params,
            param_types,
            calls,
            panics,
            blocking,
        });
        self.out.bodies.push(Some((body_start, body_end)));
        past
    }

    /// Collect top-level parameter pattern names and their declared types
    /// (space-joined type identifiers) from a param-list span.
    fn param_list(&self, start: usize, end: usize) -> (Vec<String>, Vec<String>) {
        let mut names = Vec::new();
        let mut types: Vec<String> = Vec::new();
        let mut depth = 0i32;
        let mut angle = 0i32;
        let mut expecting = true;
        let mut in_type = false;
        let mut i = start;
        while i < end {
            if self.is_punct(i, "(") || self.is_punct(i, "[") || self.is_punct(i, "{") {
                depth += 1;
            } else if self.is_punct(i, ")") || self.is_punct(i, "]") || self.is_punct(i, "}") {
                depth -= 1;
            } else if self.is_punct(i, "<") {
                angle += 1;
            } else if self.is_punct(i, ">") && !(i > 0 && self.is_punct(i - 1, "-")) {
                angle -= 1;
            } else if self.is_punct(i, ",") && depth == 0 && angle == 0 {
                expecting = true;
                in_type = false;
            } else if in_type {
                if let (Some(seg), Some(ty)) = (self.ident(i), types.last_mut()) {
                    if seg != "mut" && seg != "dyn" && seg != "impl" {
                        if !ty.is_empty() {
                            ty.push(' ');
                        }
                        ty.push_str(seg);
                    }
                }
            } else if expecting {
                match self.ident(i) {
                    Some("mut") => {}
                    Some("self") => {
                        names.push("self".to_string());
                        types.push(String::new());
                        expecting = false;
                    }
                    Some(name) if self.is_punct(i + 1, ":") && !self.is_punct(i + 2, ":") => {
                        names.push(name.to_string());
                        types.push(String::new());
                        expecting = false;
                        in_type = true;
                        i += 2;
                        continue;
                    }
                    Some(_) => expecting = false,
                    None => {}
                }
            }
            i += 1;
        }
        (names, types)
    }

    /// Extract deduplicated call sites, panic sites, and blocking-API
    /// sites from a body span (closure bodies included — they execute on
    /// behalf of the fn).
    fn body_facts(
        &self,
        start: usize,
        end: usize,
        params: &[String],
    ) -> (Vec<Call>, Vec<PanicSite>, Vec<BlockSite>) {
        let mut calls = BTreeSet::new();
        let mut panics = Vec::new();
        let mut blocking = Vec::new();
        let mut i = start;
        while i < end {
            let Some(tok) = self.tok(i) else { break };
            if tok.kind == TokenKind::Ident {
                let name = tok.text.as_str();
                // Panic macros.
                if PANIC_MACROS.contains(&name) && self.is_punct(i + 1, "!") {
                    panics.push(PanicSite {
                        kind: PanicKind::Macro,
                        desc: format!("`{name}!`"),
                        line: tok.line,
                        col: tok.col,
                    });
                    i += 2;
                    continue;
                }
                // Calls: `name(`, `.name(`, `Qual::name(`.
                if self.is_punct(i + 1, "(") {
                    if let Some(desc) = self.blocking_desc(name, i, end) {
                        blocking.push(BlockSite { desc, line: tok.line, col: tok.col });
                    }
                    if i > start && self.is_punct(i - 1, ".") {
                        if name == "unwrap" || name == "expect" {
                            panics.push(PanicSite {
                                kind: PanicKind::UnwrapExpect,
                                desc: format!("`.{name}()`"),
                                line: tok.line,
                                col: tok.col,
                            });
                        }
                        calls.insert(Call {
                            kind: CallKind::Method,
                            qual: None,
                            name: name.to_string(),
                        });
                    } else if i >= start + 2
                        && self.is_punct(i - 1, ":")
                        && self.is_punct(i - 2, ":")
                    {
                        let qual = if i >= start + 3 { self.ident(i - 3) } else { None };
                        calls.insert(Call {
                            kind: CallKind::Qualified,
                            qual: qual.map(str::to_string),
                            name: name.to_string(),
                        });
                    } else if !NON_CALL_KEYWORDS.contains(&name) {
                        calls.insert(Call {
                            kind: CallKind::Free,
                            qual: None,
                            name: name.to_string(),
                        });
                    }
                }
            }
            // Parameter indexing with a non-literal index.
            if self.is_punct(i, "[") {
                if let Some(prev) = i.checked_sub(1).and_then(|p| self.ident(p)) {
                    if params.iter().any(|p| p == prev) {
                        let close = self.after_matching(i, end, "[", "]");
                        let inner: Vec<&Token> =
                            (i + 1..close.saturating_sub(1)).filter_map(|k| self.tok(k)).collect();
                        let literal =
                            inner.len() == 1 && inner.iter().all(|t| t.kind == TokenKind::NumLit);
                        if !literal && !inner.is_empty() {
                            let (line, col) = self.tok(i).map_or((1, 1), |t| (t.line, t.col));
                            panics.push(PanicSite {
                                kind: PanicKind::Index,
                                desc: format!("`{prev}[..]`"),
                                line,
                                col,
                            });
                        }
                    }
                }
            }
            i += 1;
        }
        (calls.into_iter().collect(), panics, blocking)
    }

    /// If the call at `i` (an ident followed by `(`) is one of the
    /// blocking shapes the event-loop contract forbids, return its
    /// report description. `end` bounds the argument scan.
    fn blocking_desc(&self, name: &str, i: usize, end: usize) -> Option<String> {
        let dotted = i > 0 && self.is_punct(i - 1, ".");
        match name {
            "read_exact" | "write_all" if dotted => Some(format!("`.{name}(..)`")),
            "lock" if dotted => Some("`.lock()`".to_string()),
            // `JoinHandle::join` takes no argument; `Vec::join` and
            // `Path::join` take one, so empty parens disambiguate.
            "join" if dotted && self.is_punct(i + 2, ")") => Some("`.join()`".to_string()),
            "set_nonblocking" if dotted => {
                let close = self.after_matching(i + 1, end, "(", ")");
                (i + 2..close)
                    .any(|k| self.ident(k) == Some("false"))
                    .then(|| "`.set_nonblocking(false)`".to_string())
            }
            "sleep" => Some("`thread::sleep`".to_string()),
            _ => None,
        }
    }

    /// Parse `enum Name<G> { Variants }`.
    fn enum_item(&mut self, at: usize, end: usize) -> usize {
        let Some(name) = self.ident(at + 1).map(str::to_string) else {
            return at + 1;
        };
        let mut i = at + 2;
        if self.is_punct(i, "<") {
            i = self.after_generics(i, end);
        }
        while i < end && !self.is_punct(i, "{") && !self.is_punct(i, ";") {
            i += 1;
        }
        if !self.is_punct(i, "{") {
            return i + 1;
        }
        let past = self.after_matching(i, end, "{", "}");
        let body_end = past.saturating_sub(1);
        let mut variants = Vec::new();
        let mut depth = 0i32;
        let mut expecting = true;
        let mut k = i + 1;
        while k < body_end {
            if self.is_punct(k, "(") || self.is_punct(k, "[") || self.is_punct(k, "{") {
                depth += 1;
            } else if self.is_punct(k, ")") || self.is_punct(k, "]") || self.is_punct(k, "}") {
                depth -= 1;
            } else if self.is_punct(k, ",") && depth == 0 {
                expecting = true;
            } else if self.is_punct(k, "#") && depth == 0 && self.is_punct(k + 1, "[") {
                k = self.after_matching(k + 1, body_end, "[", "]");
                continue;
            } else if expecting && depth == 0 {
                if let Some(v) = self.ident(k) {
                    variants.push(v.to_string());
                    expecting = false;
                }
            }
            k += 1;
        }
        self.out.enums.push(EnumDef { name, variants });
        past
    }

    /// Parse `use path::{group, nested::leaf} as alias;` into flat paths.
    fn use_item(&mut self, at: usize, end: usize) -> usize {
        let mut stop = at + 1;
        let mut depth = 0i32;
        while stop < end {
            if self.is_punct(stop, "{") {
                depth += 1;
            } else if self.is_punct(stop, "}") {
                depth -= 1;
            } else if self.is_punct(stop, ";") && depth == 0 {
                break;
            }
            stop += 1;
        }
        let mut paths = Vec::new();
        self.use_paths(at + 1, stop, &[], &mut paths);
        self.out.uses.append(&mut paths);
        stop + 1
    }

    /// Expand the use-tree in `[start, end)` under `prefix`.
    fn use_paths(&self, start: usize, end: usize, prefix: &[String], out: &mut Vec<UsePath>) {
        let mut segments: Vec<String> = prefix.to_vec();
        let mut alias = None;
        let mut i = start;
        while i < end {
            if let Some(name) = self.ident(i) {
                if name == "as" {
                    alias = self.ident(i + 1).map(str::to_string);
                    i += 2;
                    continue;
                }
                segments.push(name.to_string());
            } else if self.is_punct(i, "*") {
                segments.push("*".to_string());
            } else if self.is_punct(i, "{") {
                // Group: split the inside on top-level commas, recursing
                // with the accumulated prefix.
                let past = self.after_matching(i, end, "{", "}");
                let inner_end = past.saturating_sub(1);
                let mut item_start = i + 1;
                let mut depth = 0i32;
                let mut k = i + 1;
                while k < inner_end {
                    if self.is_punct(k, "{") {
                        depth += 1;
                    } else if self.is_punct(k, "}") {
                        depth -= 1;
                    } else if self.is_punct(k, ",") && depth == 0 {
                        self.use_paths(item_start, k, &segments, out);
                        item_start = k + 1;
                    }
                    k += 1;
                }
                if item_start < inner_end {
                    self.use_paths(item_start, inner_end, &segments, out);
                }
                return;
            } else if self.is_punct(i, ",") {
                break;
            }
            i += 1;
        }
        if segments.len() > prefix.len() || alias.is_some() {
            out.push(UsePath { segments, alias });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::cfg_test_mask;

    fn parse(src: &str) -> ParsedFile {
        let lexed = lex("test.rs", src).expect("lex");
        let mask = cfg_test_mask(&lexed.tokens);
        parse_items(&lexed.tokens, &mask)
    }

    fn fn_named<'a>(parsed: &'a ParsedFile, name: &str) -> &'a FnDef {
        parsed.fns.iter().find(|f| f.name == name).expect("fn present")
    }

    #[test]
    fn generics_and_where_clauses_do_not_derail_fn_parsing() {
        let parsed = parse(
            "pub fn lookup<K: Ord, V>(map: &BTreeMap<K, V>, key: &K) -> Option<&V>\n\
             where\n    K: Clone,\n    V: PartialEq<V>,\n{ map.get(key) }\n\
             fn after() -> i32 { 0 }\n",
        );
        let f = fn_named(&parsed, "lookup");
        assert!(f.is_pub);
        assert_eq!(f.params, vec!["map".to_string(), "key".to_string()]);
        assert!(f.calls.contains(&Call {
            kind: CallKind::Method,
            qual: None,
            name: "get".to_string()
        }));
        // The where clause must not swallow the following item.
        assert!(parsed.fns.iter().any(|f| f.name == "after"));
    }

    #[test]
    fn nested_closures_attribute_calls_and_panics_to_the_enclosing_fn() {
        let parsed = parse(
            "pub fn outer(xs: &[u64]) -> u64 {\n\
                 let f = |a: u64| xs.iter().map(|b| helper(a + b)).sum::<u64>();\n\
                 let g = move || inner_val.unwrap();\n\
                 f(1) + g()\n\
             }\n",
        );
        let f = fn_named(&parsed, "outer");
        assert!(f.calls.contains(&Call {
            kind: CallKind::Free,
            qual: None,
            name: "helper".to_string()
        }));
        assert!(f.panics.iter().any(|p| p.kind == PanicKind::UnwrapExpect));
    }

    #[test]
    fn impl_blocks_qualify_methods_including_trait_impls() {
        let parsed = parse(
            "impl Sampler { pub fn arm(&mut self) { self.reset(); } }\n\
             impl core::fmt::Display for Sampler {\n\
                 fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { write_out(f) }\n\
             }\n",
        );
        let arm = fn_named(&parsed, "arm");
        assert_eq!(arm.qual.as_deref(), Some("Sampler"));
        assert!(arm.is_pub);
        let fmt = fn_named(&parsed, "fmt");
        assert_eq!(fmt.qual.as_deref(), Some("Sampler"));
        assert!(!fmt.is_pub);
    }

    #[test]
    fn param_indexing_is_a_panic_site_but_literal_and_local_indexing_are_not() {
        let parsed = parse(
            "pub fn pick(xs: &[u64], i: usize) -> u64 {\n\
                 let local = [1u64, 2];\n\
                 xs[i] + xs[0] + local[i]\n\
             }\n",
        );
        let f = fn_named(&parsed, "pick");
        let idx: Vec<_> = f.panics.iter().filter(|p| p.kind == PanicKind::Index).collect();
        assert_eq!(idx.len(), 1, "{:?}", f.panics);
        assert!(idx.iter().all(|p| p.desc.contains("xs")));
    }

    #[test]
    fn cfg_test_fns_are_marked_and_enums_record_variants() {
        let parsed = parse(
            "pub enum ExecError { JobPanicked { index: usize }, SpawnFailed(String), Missing }\n\
             #[cfg(test)]\nmod tests {\n    fn helper() { other(); }\n}\n",
        );
        let e = parsed.enums.first().expect("enum parsed");
        assert_eq!(e.name, "ExecError");
        assert_eq!(
            e.variants,
            vec!["JobPanicked".to_string(), "SpawnFailed".to_string(), "Missing".to_string()]
        );
        assert!(fn_named(&parsed, "helper").in_test);
    }

    #[test]
    fn use_groups_expand_and_aliases_are_kept() {
        let parsed = parse("use exec::{ExecPool, error::ExecError as EE};\nuse rng::SeedTree;\n");
        let paths: Vec<Vec<String>> = parsed.uses.iter().map(|u| u.segments.clone()).collect();
        assert!(paths.contains(&vec!["exec".to_string(), "ExecPool".to_string()]));
        assert!(paths.contains(&vec![
            "exec".to_string(),
            "error".to_string(),
            "ExecError".to_string()
        ]));
        assert!(paths.contains(&vec!["rng".to_string(), "SeedTree".to_string()]));
        let aliased = parsed.uses.iter().find(|u| u.alias.is_some()).expect("alias kept");
        assert_eq!(aliased.alias.as_deref(), Some("EE"));
    }

    #[test]
    fn qualified_calls_record_their_last_path_segment() {
        let parsed =
            parse("fn f() -> Duration { pstime::Duration::from_fs(1) + Duration::zero() }\n");
        let f = fn_named(&parsed, "f");
        assert!(f.calls.contains(&Call {
            kind: CallKind::Qualified,
            qual: Some("Duration".to_string()),
            name: "from_fs".to_string()
        }));
        assert!(f.calls.contains(&Call {
            kind: CallKind::Qualified,
            qual: Some("Duration".to_string()),
            name: "zero".to_string()
        }));
    }

    #[test]
    fn trait_decls_without_bodies_parse_and_do_not_consume_followers() {
        let parsed = parse(
            "trait Probe { fn strobe(&self) -> u64; fn name(&self) -> &str { default_name() } }\n\
             pub fn free() {}\n",
        );
        assert_eq!(fn_named(&parsed, "strobe").qual.as_deref(), Some("Probe"));
        assert!(fn_named(&parsed, "name").calls.iter().any(|c| c.name == "default_name"));
        assert!(parsed.fns.iter().any(|f| f.name == "free" && f.is_pub));
    }
}
