//! # gigatest-xlint — the workspace's own contract linter
//!
//! PR 1 made the whole stack hermetically deterministic: every stochastic
//! effect flows through `rng::SeedTree` named streams, every timing
//! quantity through `pstime` newtypes, every fallible library path through
//! a crate error type. Those are *contracts*, and nothing in `rustc` or
//! `clippy` knows about them — a future change can quietly xor a salt into
//! a seed, do picosecond math in bare `f64`, or `unwrap()` in a hot path,
//! and every test still passes while repeatability silently degrades.
//!
//! `xlint` closes that gap the same way the paper's authors close the
//! "is the delay chain really monotonic?" gap: with a checking layer you
//! can run, not a convention you have to remember. It is a
//! zero-third-party-dependency static analyzer — a hand-rolled lexer
//! (raw strings, nested block comments, lifetimes vs char literals, byte
//! strings) feeding token-pattern rules — so it builds offline with the
//! rest of the workspace and is itself subject to every rule it enforces.
//!
//! ## Rules
//!
//! See [`rules`] for the table of R1–R8 (`no-adhoc-rng`,
//! `stream-id-unique`, `no-raw-time-volt`, `no-panic-in-lib`,
//! `no-lossy-cast`, `no-wall-clock`, `forbid-unsafe-everywhere`,
//! `exec-job-racy`) and [`graph`] for the semantic passes built on the
//! item parser ([`parse`]): `panic-reachable` (interprocedural panic
//! reachability over the workspace call graph) and
//! `error-bridge-exhaustive` (every crate invoking `exec` bridges
//! `ExecError` completely into its own error type).
//!
//! ## Machine output and the incremental cache
//!
//! `--format json|sarif` renders findings through the first-party
//! byte-stable JSON layer ([`json`], [`output`]); the content-hash cache
//! ([`cache`], default `target/xlint-cache.json`) lets warm runs skip
//! per-file analysis for unchanged files while recomputing every
//! cross-file rule, so cold and warm findings are byte-identical.
//!
//! ## Suppressions and the ratchet
//!
//! A finding is silenced only by an inline comment that names the rule
//! *and* gives a reason:
//!
//! ```text
//! let fs = (ps * 1000.0) as i64; // xlint::allow(no-lossy-cast, "bounded by caller to ±10 ns")
//! ```
//!
//! A reason-less `xlint::allow` is itself a deny-tier finding
//! (`bad-allow`). Warn-tier findings are tracked in a committed baseline
//! (`xlint.baseline`): new ones fail CI, old ones burn down, and
//! `--fix-allowlist` re-captures the (smaller) remainder.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cache;
pub mod classify;
pub mod dataflow;
pub mod engine;
pub mod error;
pub mod facts;
pub mod graph;
pub mod json;
pub mod lexer;
pub mod output;
pub mod parse;
pub mod rules;
pub mod summary;

pub use baseline::{Baseline, Regression};
pub use classify::{classify, collect_sources, FileClass, SourceFile};
pub use engine::{analyze_files, analyze_root, analyze_root_cached, Analysis};
pub use error::XlintError;
pub use rules::{Finding, Severity, TIMING_PATHS};
