//! Wire message-vocabulary facts behind codec symmetry (R13).
//!
//! The wire-taint pass (R11) that used to live here was intraprocedural;
//! v4 moved it to [`crate::summary`], which extracts per-function flow
//! facts in the per-file phase and runs an interprocedural fixpoint in
//! the cross-file phase. This module keeps the message-vocabulary
//! extraction and the codec-symmetry check.
//!
//! ## Message-vocabulary facts (R13 `codec-symmetry`)
//!
//! Every constant declared in a `mod msg { .. }` block of a `Src` file
//! is a wire message type. Each `msg::NAME` reference is classified by
//! where it sits: inside an encode-shaped function (`to_*`, `*encode*`,
//! `parts`), a decode-shaped function (`from_*`, `*decode*`), or a
//! golden-vector test file (a [`FileClass::Test`] file whose path
//! contains `golden`). The cross-file pass then requires every message
//! type to appear in all three, so the THP vocabulary cannot drift
//! asymmetrically.

use std::collections::BTreeSet;

use crate::classify::{FileClass, SourceFile};
use crate::facts::{MsgConst, MsgCtx, MsgRef};
use crate::lexer::{Token, TokenKind};
use crate::parse::{FnDef, ParsedFile};
use crate::rules::{Finding, Severity};

// ---------------------------------------------------------------------------
// R13: wire message vocabulary facts + the cross-file symmetry check.
// ---------------------------------------------------------------------------

/// Extract the `mod msg` constant declarations and every classified
/// `msg::NAME` reference from one file.
pub fn msg_facts(
    file: &SourceFile,
    toks: &[Token],
    parsed: &ParsedFile,
) -> (Vec<MsgConst>, Vec<MsgRef>) {
    let mut consts = Vec::new();
    let mut refs: BTreeSet<(String, MsgCtx)> = BTreeSet::new();
    let is_src = matches!(file.class, FileClass::Src { .. });
    let golden = file.class == FileClass::Test && file.rel_path.contains("golden");

    let mut i = 0usize;
    while i < toks.len() {
        let is_ident = |k: usize, s: &str| {
            toks.get(k).is_some_and(|t| t.kind == TokenKind::Ident && t.text == s)
        };
        let is_punct = |k: usize, s: &str| {
            toks.get(k).is_some_and(|t| t.kind == TokenKind::Punct && t.text == s)
        };
        // Declarations: `mod msg { .. const NAME .. }` in Src files.
        if is_src && is_ident(i, "mod") && is_ident(i + 1, "msg") {
            let mut j = i + 2;
            while j < toks.len() && !is_punct(j, "{") && !is_punct(j, ";") {
                j += 1;
            }
            if is_punct(j, "{") {
                let mut depth = 0i32;
                while j < toks.len() {
                    if is_punct(j, "{") {
                        depth += 1;
                    } else if is_punct(j, "}") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if is_ident(j, "const") {
                        if let Some(tok) = toks.get(j + 1).filter(|t| t.kind == TokenKind::Ident) {
                            consts.push(MsgConst {
                                name: tok.text.clone(),
                                line: tok.line,
                                col: tok.col,
                            });
                        }
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
        }
        // References: `msg::NAME`.
        if is_ident(i, "msg") && is_punct(i + 1, ":") && is_punct(i + 2, ":") {
            if let Some(tok) = toks.get(i + 3).filter(|t| t.kind == TokenKind::Ident) {
                let ctx = if golden {
                    MsgCtx::Golden
                } else if is_src {
                    enclosing_fn(parsed, i + 3).map_or(MsgCtx::Other, |def| {
                        if def.in_test {
                            MsgCtx::Other
                        } else if is_encode_fn(&def.name) {
                            MsgCtx::Encode
                        } else if is_decode_fn(&def.name) {
                            MsgCtx::Decode
                        } else {
                            MsgCtx::Other
                        }
                    })
                } else {
                    MsgCtx::Other
                };
                refs.insert((tok.text.clone(), ctx));
            }
            i += 4;
            continue;
        }
        i += 1;
    }
    let refs = refs.into_iter().map(|(name, ctx)| MsgRef { name, ctx }).collect();
    (consts, refs)
}

fn enclosing_fn(parsed: &ParsedFile, tok_idx: usize) -> Option<&FnDef> {
    parsed
        .fns
        .iter()
        .zip(&parsed.bodies)
        .filter_map(|(def, body)| body.map(|(s, e)| (def, s, e)))
        .filter(|(_, s, e)| (*s..*e).contains(&tok_idx))
        // Innermost enclosing body (nested fns): the latest start wins.
        .max_by_key(|(_, s, _)| *s)
        .map(|(def, _, _)| def)
}

fn is_encode_fn(name: &str) -> bool {
    name.starts_with("to_") || name.contains("encode") || name == "parts"
}

fn is_decode_fn(name: &str) -> bool {
    name.starts_with("from_") || name.contains("decode")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::facts::build_facts;
    use std::path::PathBuf;

    #[test]
    fn msg_refs_classify_by_context() {
        let rel = "crates/fix/src/lib.rs";
        let class = classify(rel).expect("classifiable");
        let file = SourceFile { rel_path: rel.to_string(), abs_path: PathBuf::from(rel), class };
        let facts = build_facts(
            &file,
            "pub mod msg { pub const PING: u8 = 1; }\n\
             pub fn to_frame() -> u8 { msg::PING }\n\
             pub fn from_frame(code: u8) -> bool { code == msg::PING }\n\
             pub fn route(code: u8) -> bool { code == msg::PING }\n",
        )
        .expect("facts build");
        assert_eq!(facts.msg_consts.len(), 1);
        let ctxs: Vec<MsgCtx> = facts.msg_refs.iter().map(|r| r.ctx).collect();
        assert!(ctxs.contains(&MsgCtx::Encode) && ctxs.contains(&MsgCtx::Decode), "{ctxs:?}");
        assert!(ctxs.contains(&MsgCtx::Other), "{ctxs:?}");
    }
}

/// R13 `codec-symmetry`: every wire message type must appear in an
/// encode path, a decode path, and a golden-vector test.
pub fn check_codec_symmetry(facts: &[crate::facts::FileFacts], findings: &mut Vec<Finding>) {
    let mut enc: BTreeSet<&str> = BTreeSet::new();
    let mut dec: BTreeSet<&str> = BTreeSet::new();
    let mut gold: BTreeSet<&str> = BTreeSet::new();
    for fact in facts {
        for r in &fact.msg_refs {
            match r.ctx {
                MsgCtx::Encode => {
                    enc.insert(&r.name);
                }
                MsgCtx::Decode => {
                    dec.insert(&r.name);
                }
                MsgCtx::Golden => {
                    gold.insert(&r.name);
                }
                MsgCtx::Other => {}
            }
        }
    }
    for fact in facts {
        for c in &fact.msg_consts {
            let mut missing = Vec::new();
            if !enc.contains(c.name.as_str()) {
                missing.push("an encode path");
            }
            if !dec.contains(c.name.as_str()) {
                missing.push("a decode path");
            }
            if !gold.contains(c.name.as_str()) {
                missing.push("a golden-vector test");
            }
            if missing.is_empty() {
                continue;
            }
            findings.push(Finding {
                rule_id: "codec-symmetry",
                severity: Severity::Deny,
                rel_path: fact.rel_path.clone(),
                line: c.line,
                col: c.col,
                message: format!(
                    "wire message type `msg::{}` is missing from {} — every message code must \
                     round-trip (encode + decode) and be pinned by a golden vector",
                    c.name,
                    missing.join(" and ")
                ),
                related: Vec::new(),
            });
        }
    }
}
