//! Intraprocedural dataflow: wire-taint tracking (R11) and the wire
//! message-vocabulary facts behind codec symmetry (R13).
//!
//! ## The taint model (R11 `wire-taint`)
//!
//! The hostile boundary of the stack is the THP/1–THP/2 codec: every
//! integer a peer controls enters through `wire::decode*`, a
//! `Reader`, or `sniff`. The admission-hardening contract from the atd
//! PRs says such a value must pass a *sanitizer* — `JobSpec::validate`,
//! a comparison against a `proto::limits` bound, or a clamping
//! combinator — before it reaches a *sink*: an allocation it sizes
//! (`Vec::with_capacity`, `vec![_; n]`, `.reserve`), an exec entry point
//! (`run_on`, `par_map`, `par_map_reduce`), or raw `+`/`*` length
//! arithmetic (checked/saturating/wrapping combinators are methods and
//! therefore never flagged — the rule deliberately pushes wire values
//! toward them).
//!
//! The pass is intraprocedural and tracks provenance through named
//! bindings only: `let`/`=` assignments, `for` bindings, field and
//! method projections of a tainted base. Taint enters through calls to
//! the decoder surface, through `Reader::new`, through parameters whose
//! declared type names `Reader`, and through `self` in `impl Reader`
//! methods. `Reader::count` and `Reader::str` are *bounded by
//! construction* (the hostile-count ceiling), so their results are
//! clean, as are `.len()` / `.min(..)` / `.clamp(..)` projections.
//! Flows through a return value into another function are a documented
//! false negative, like every other name-resolution limit in
//! DESIGN.md §5d–§5e.
//!
//! ## Message-vocabulary facts (R13 `codec-symmetry`)
//!
//! Every constant declared in a `mod msg { .. }` block of a `Src` file
//! is a wire message type. Each `msg::NAME` reference is classified by
//! where it sits: inside an encode-shaped function (`to_*`, `*encode*`,
//! `parts`), a decode-shaped function (`from_*`, `*decode*`), or a
//! golden-vector test file (a [`FileClass::Test`] file whose path
//! contains `golden`). The cross-file pass then requires every message
//! type to appear in all three, so the THP vocabulary cannot drift
//! asymmetrically.

use std::collections::BTreeSet;

use crate::classify::{FileClass, SourceFile};
use crate::facts::{MsgConst, MsgCtx, MsgRef};
use crate::lexer::{Token, TokenKind};
use crate::parse::{FnDef, ParsedFile};
use crate::rules::{Finding, Severity};

/// Functions of the codec surface whose results are peer-controlled.
const SOURCE_FNS: &[&str] =
    &["sniff", "decode_frame", "decode_header", "decode_frame2", "decode_header2"];

/// Exec entry points a tainted value must never reach unvalidated.
const POOL_SINKS: &[&str] = &["run_on", "par_map", "par_map_reduce"];

/// Methods whose result is bounded by construction: projecting a
/// tainted value through one of these yields a clean binding.
const BOUNDING_METHODS: &[&str] = &["min", "clamp", "count", "len", "str"];

/// Run the wire-taint pass over every non-test function of a `Src`
/// file, appending deny findings. `toks`/`parsed` are the file's lexer
/// and parser output (the per-file build phase owns both).
pub fn check_wire_taint(
    file: &SourceFile,
    toks: &[Token],
    parsed: &ParsedFile,
    findings: &mut Vec<Finding>,
) {
    if !matches!(file.class, FileClass::Src { .. }) {
        return;
    }
    for (def, body) in parsed.fns.iter().zip(&parsed.bodies) {
        let Some((start, end)) = *body else { continue };
        if def.in_test {
            continue;
        }
        TaintScan::new(file, toks, def, start, end).run(findings);
    }
}

/// One function's linear taint scan.
struct TaintScan<'a> {
    file: &'a SourceFile,
    toks: &'a [Token],
    start: usize,
    end: usize,
    /// Currently wire-tainted binding names.
    tainted: BTreeSet<String>,
    /// A `let`/`for` binding set waiting to take effect once the scan
    /// passes the end of its initializer (so the initializer itself is
    /// evaluated against the *previous* bindings).
    pending: Option<(Vec<String>, bool, usize)>,
    /// Deduplicated findings: (line, col, message).
    hits: BTreeSet<(u32, u32, String)>,
}

impl<'a> TaintScan<'a> {
    fn new(
        file: &'a SourceFile,
        toks: &'a [Token],
        def: &'a FnDef,
        start: usize,
        end: usize,
    ) -> Self {
        let mut tainted = BTreeSet::new();
        for (name, ty) in def.params.iter().zip(&def.param_types) {
            if ty.split(' ').any(|seg| seg == "Reader") {
                tainted.insert(name.clone());
            }
        }
        if def.qual.as_deref() == Some("Reader") && def.params.iter().any(|p| p == "self") {
            tainted.insert("self".to_string());
        }
        TaintScan { file, toks, start, end, tainted, pending: None, hits: BTreeSet::new() }
    }

    fn is_punct(&self, i: usize, s: &str) -> bool {
        self.toks.get(i).is_some_and(|t| t.kind == TokenKind::Punct && t.text == s)
    }

    fn ident(&self, i: usize) -> Option<&str> {
        self.toks.get(i).filter(|t| t.kind == TokenKind::Ident).map(|t| t.text.as_str())
    }

    fn after_matching(&self, open: usize, open_s: &str, close_s: &str) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < self.end {
            if self.is_punct(i, open_s) {
                depth += 1;
            } else if self.is_punct(i, close_s) {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        self.end
    }

    /// Is the ident at `i` a use of a tainted binding (not a field or
    /// method name projected off something else)?
    fn tainted_use(&self, i: usize) -> bool {
        if i > self.start && self.is_punct(i - 1, ".") {
            return false;
        }
        self.ident(i).is_some_and(|name| self.tainted.contains(name))
    }

    /// Does the expression span contain a taint source: a decoder call,
    /// `Reader::new`, or a use of an already-tainted binding?
    fn span_tainted(&self, from: usize, to: usize) -> bool {
        let mut i = from;
        while i < to {
            if let Some(name) = self.ident(i) {
                if SOURCE_FNS.contains(&name) && self.is_punct(i + 1, "(") {
                    return true;
                }
                if name == "Reader" && self.is_punct(i + 1, ":") && self.is_punct(i + 2, ":") {
                    return true;
                }
                if self.tainted_use(i) {
                    return true;
                }
            }
            i += 1;
        }
        false
    }

    /// Does the expression span project through a bounding method
    /// (`.min(..)`, `.count(..)`, `.len()`, …)? Such an expression is
    /// clean regardless of what feeds it.
    fn span_bounded(&self, from: usize, to: usize) -> bool {
        (from..to).any(|i| {
            self.is_punct(i, ".")
                && self.ident(i + 1).is_some_and(|m| BOUNDING_METHODS.contains(&m))
                && self.is_punct(i + 2, "(")
        })
    }

    /// Scan a statement initializer: from the token after `=`/`in` to
    /// the terminator (`;` at depth 0, or `{` for a `for` loop).
    fn initializer_end(&self, from: usize, terminator: &str) -> usize {
        let mut depth = 0i32;
        let mut i = from;
        while i < self.end {
            if self.is_punct(i, "(") || self.is_punct(i, "[") {
                depth += 1;
            } else if self.is_punct(i, ")") || self.is_punct(i, "]") {
                depth -= 1;
            } else if self.is_punct(i, "{") && terminator == ";" {
                depth += 1;
            } else if self.is_punct(i, "}") && terminator == ";" {
                depth -= 1;
            } else if depth <= 0 && self.is_punct(i, terminator) {
                return i;
            }
            i += 1;
        }
        self.end
    }

    /// Lowercase idents bound by a pattern span (`let (a, mut b) = ..`,
    /// `let Some(n) = ..`, `for chunk in ..`). Uppercase idents are
    /// enum/struct constructors, not bindings.
    fn pattern_bindings(&self, from: usize, to: usize) -> Vec<String> {
        let mut names = Vec::new();
        for i in from..to {
            if let Some(name) = self.ident(i) {
                if name == "mut" || name == "ref" || name == "_" {
                    continue;
                }
                if name.chars().next().is_some_and(char::is_lowercase)
                    && !self.is_punct(i + 1, ":")
                    && !names.iter().any(|n| n == name)
                {
                    names.push(name.to_string());
                }
            }
        }
        names
    }

    fn finding_at(&mut self, i: usize, message: String) {
        if let Some(tok) = self.toks.get(i) {
            self.hits.insert((tok.line, tok.col, message));
        }
    }

    /// Is the token at `i` a bound the contract recognizes: a numeric
    /// literal, a `limits::` path, or a SHOUTING_CASE constant?
    fn is_bound_token(&self, i: usize) -> bool {
        if self.toks.get(i).is_some_and(|t| t.kind == TokenKind::NumLit) {
            return true;
        }
        self.ident(i).is_some_and(|name| {
            name == "limits"
                || (name.len() > 1 && name.chars().all(|c| c.is_ascii_uppercase() || c == '_'))
        })
    }

    /// The comparison operator starting at `i` (`<`, `>`, `<=`, `>=`,
    /// `==`), returned as its token width; `None` for shifts (`<<`,
    /// `>>`) and arrows.
    fn comparison_width(&self, i: usize) -> Option<usize> {
        let first = self.toks.get(i).filter(|t| t.kind == TokenKind::Punct)?;
        match first.text.as_str() {
            "<" | ">" => {
                if self.is_punct(i + 1, "=") {
                    Some(2)
                } else if self.is_punct(i + 1, "<") || self.is_punct(i + 1, ">") {
                    None
                } else {
                    Some(1)
                }
            }
            "=" if self.is_punct(i + 1, "=") => Some(2),
            _ => None,
        }
    }

    fn run(mut self, findings: &mut Vec<Finding>) {
        let mut i = self.start;
        while i < self.end {
            // A pending `let`/`for` binding takes effect once the scan
            // leaves its initializer.
            if let Some((names, taint, until)) = &self.pending {
                if i >= *until {
                    for name in names.clone() {
                        if *taint {
                            self.tainted.insert(name);
                        } else {
                            self.tainted.remove(&name);
                        }
                    }
                    self.pending = None;
                }
            }

            match self.ident(i) {
                Some("let") => {
                    // `let PATTERN = EXPR ;` — evaluate the initializer
                    // against current taint, bind after it ends.
                    let mut eq = i + 1;
                    let mut angle = 0i32;
                    while eq < self.end {
                        if self.is_punct(eq, "<") {
                            angle += 1;
                        } else if self.is_punct(eq, ">") {
                            angle -= 1;
                        } else if self.is_punct(eq, ";")
                            || (self.is_punct(eq, "=") && angle <= 0 && !self.is_punct(eq + 1, "="))
                        {
                            break;
                        }
                        eq += 1;
                    }
                    if self.is_punct(eq, "=") {
                        let stmt_end = self.initializer_end(eq + 1, ";");
                        let bindings = self.pattern_bindings(i + 1, eq);
                        let taint = self.span_tainted(eq + 1, stmt_end)
                            && !self.span_bounded(eq + 1, stmt_end);
                        if !bindings.is_empty() {
                            self.pending = Some((bindings, taint, stmt_end));
                        }
                    }
                }
                Some("for") => {
                    // `for PATTERN in EXPR {` — iterating a tainted
                    // collection taints the loop binding.
                    let mut in_kw = i + 1;
                    while in_kw < self.end
                        && self.ident(in_kw) != Some("in")
                        && !self.is_punct(in_kw, "{")
                    {
                        in_kw += 1;
                    }
                    if self.ident(in_kw) == Some("in") {
                        let body = self.initializer_end(in_kw + 1, "{");
                        let bindings = self.pattern_bindings(i + 1, in_kw);
                        let taint = self.span_tainted(in_kw + 1, body);
                        if !bindings.is_empty() {
                            self.pending = Some((bindings, taint, body));
                        }
                    }
                }
                Some("validate") if self.is_punct(i + 1, "(") => {
                    // Sanitizer: `x.validate()` clears the receiver;
                    // `validate(&x)` / `JobSpec::validate(x)` clear
                    // every tainted argument.
                    let close = self.after_matching(i + 1, "(", ")");
                    let mut cleared: Vec<String> = (i + 2..close)
                        .filter(|k| self.tainted_use(*k))
                        .filter_map(|k| self.ident(k).map(str::to_string))
                        .collect();
                    if i >= self.start + 2 && self.is_punct(i - 1, ".") {
                        if let Some(receiver) = self.ident(i - 2) {
                            cleared.push(receiver.to_string());
                        }
                    }
                    for name in cleared {
                        self.tainted.remove(&name);
                    }
                }
                Some("with_capacity" | "reserve") if self.is_punct(i + 1, "(") => {
                    self.check_args_sink(i, "sizes an allocation");
                }
                Some("vec") if self.is_punct(i + 1, "!") && self.is_punct(i + 2, "[") => {
                    // `vec![elem; n]` — only the length position is a
                    // sink.
                    let close = self.after_matching(i + 2, "[", "]");
                    let mut semi = i + 3;
                    let mut depth = 0i32;
                    while semi < close {
                        if self.is_punct(semi, "[") || self.is_punct(semi, "(") {
                            depth += 1;
                        } else if self.is_punct(semi, "]") || self.is_punct(semi, ")") {
                            depth -= 1;
                        } else if self.is_punct(semi, ";") && depth <= 0 {
                            break;
                        }
                        semi += 1;
                    }
                    if semi < close {
                        if let Some(k) = (semi..close).find(|k| self.tainted_use(*k)) {
                            let name = self.ident(k).unwrap_or("?").to_string();
                            self.finding_at(
                                i,
                                format!(
                                    "wire-tainted `{name}` sizes an allocation (`vec![_; \
                                     {name}]`) without a JobSpec::validate / proto::limits \
                                     bound — clamp or validate it first"
                                ),
                            );
                        }
                    }
                }
                Some(name) if POOL_SINKS.contains(&name) && self.is_punct(i + 1, "(") => {
                    let name = name.to_string();
                    self.check_args_sink(i, "reaches an exec entry point");
                    if i >= self.start + 2 && self.is_punct(i - 1, ".") && self.tainted_use(i - 2) {
                        let recv = self.ident(i - 2).unwrap_or("?").to_string();
                        self.finding_at(
                            i,
                            format!(
                                "wire-tainted `{recv}` reaches an exec entry point \
                                 (`.{name}(..)`) without JobSpec::validate / a proto::limits \
                                 bound — validate before executing"
                            ),
                        );
                    }
                }
                Some(_) if self.tainted_use(i) => {
                    self.check_var_site(i);
                }
                _ => {}
            }
            i += 1;
        }
        for (line, col, message) in self.hits {
            findings.push(Finding {
                rule_id: "wire-taint",
                severity: Severity::Deny,
                rel_path: self.file.rel_path.clone(),
                line,
                col,
                message,
            });
        }
    }

    /// Flag the call at `i` if any tainted binding appears in its
    /// argument list.
    fn check_args_sink(&mut self, i: usize, verb: &str) {
        let sink = self.ident(i).unwrap_or("?").to_string();
        let close = self.after_matching(i + 1, "(", ")");
        if let Some(k) = (i + 2..close).find(|k| self.tainted_use(*k)) {
            let name = self.ident(k).unwrap_or("?").to_string();
            self.finding_at(
                i,
                format!(
                    "wire-tainted `{name}` {verb} (`{sink}(..)`) without a JobSpec::validate / \
                     proto::limits bound — clamp or validate it first"
                ),
            );
        }
    }

    /// A use of a tainted binding: a comparison against a recognized
    /// bound sanitizes it; adjacency to raw `+`/`*` is the arithmetic
    /// sink.
    fn check_var_site(&mut self, i: usize) {
        let Some(name) = self.ident(i).map(str::to_string) else { return };
        // `x < limits::MAX` / `x <= MAX_PAYLOAD` / `x == 0` — and the
        // mirrored `limits::MAX > x` form — certify the value bounded.
        if let Some(w) = self.comparison_width(i + 1) {
            let mut bound = i + 1 + w;
            if self.ident(bound) == Some("limits") || self.is_bound_token(bound) {
                self.tainted.remove(&name);
                return;
            }
            // `wire::MAX_PAYLOAD`-style qualified bound.
            while bound + 2 < self.end && self.is_punct(bound + 1, ":") {
                bound += 3;
                if self.is_bound_token(bound - 1) || self.is_bound_token(bound) {
                    self.tainted.remove(&name);
                    return;
                }
            }
        }
        if i > self.start {
            if let Some(w) = i.checked_sub(2).and_then(|p| self.comparison_width(p + 1)) {
                let _ = w;
                if self.is_bound_token(i.saturating_sub(2)) {
                    self.tainted.remove(&name);
                    return;
                }
            }
            if i >= 3 && self.is_bound_token(i - 3) && self.comparison_width(i - 2) == Some(2) {
                self.tainted.remove(&name);
                return;
            }
        }
        // Arithmetic sink: `x + ..` / `x * ..` (but not `x += ..`), or
        // `.. + x` / `.. * x` where the left neighbor is a value.
        let after_plus = self.is_punct(i + 1, "+") && !self.is_punct(i + 2, "=");
        let after_star = self.is_punct(i + 1, "*");
        let before = i
            .checked_sub(1)
            .filter(|p| self.is_punct(*p, "+") || self.is_punct(*p, "*"))
            .and_then(|p| p.checked_sub(1))
            .is_some_and(|q| {
                self.toks.get(q).is_some_and(|t| {
                    matches!(t.kind, TokenKind::Ident | TokenKind::NumLit)
                        || (t.kind == TokenKind::Punct && (t.text == ")" || t.text == "]"))
                })
            });
        if after_plus || after_star || before {
            self.finding_at(
                i,
                format!(
                    "raw length arithmetic on wire-tainted `{name}` — use \
                     checked_*/saturating_* combinators or bound it against proto::limits first"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// R13: wire message vocabulary facts + the cross-file symmetry check.
// ---------------------------------------------------------------------------

/// Extract the `mod msg` constant declarations and every classified
/// `msg::NAME` reference from one file.
pub fn msg_facts(
    file: &SourceFile,
    toks: &[Token],
    parsed: &ParsedFile,
) -> (Vec<MsgConst>, Vec<MsgRef>) {
    let mut consts = Vec::new();
    let mut refs: BTreeSet<(String, MsgCtx)> = BTreeSet::new();
    let is_src = matches!(file.class, FileClass::Src { .. });
    let golden = file.class == FileClass::Test && file.rel_path.contains("golden");

    let mut i = 0usize;
    while i < toks.len() {
        let is_ident = |k: usize, s: &str| {
            toks.get(k).is_some_and(|t| t.kind == TokenKind::Ident && t.text == s)
        };
        let is_punct = |k: usize, s: &str| {
            toks.get(k).is_some_and(|t| t.kind == TokenKind::Punct && t.text == s)
        };
        // Declarations: `mod msg { .. const NAME .. }` in Src files.
        if is_src && is_ident(i, "mod") && is_ident(i + 1, "msg") {
            let mut j = i + 2;
            while j < toks.len() && !is_punct(j, "{") && !is_punct(j, ";") {
                j += 1;
            }
            if is_punct(j, "{") {
                let mut depth = 0i32;
                while j < toks.len() {
                    if is_punct(j, "{") {
                        depth += 1;
                    } else if is_punct(j, "}") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if is_ident(j, "const") {
                        if let Some(tok) = toks.get(j + 1).filter(|t| t.kind == TokenKind::Ident) {
                            consts.push(MsgConst {
                                name: tok.text.clone(),
                                line: tok.line,
                                col: tok.col,
                            });
                        }
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
        }
        // References: `msg::NAME`.
        if is_ident(i, "msg") && is_punct(i + 1, ":") && is_punct(i + 2, ":") {
            if let Some(tok) = toks.get(i + 3).filter(|t| t.kind == TokenKind::Ident) {
                let ctx = if golden {
                    MsgCtx::Golden
                } else if is_src {
                    enclosing_fn(parsed, i + 3).map_or(MsgCtx::Other, |def| {
                        if def.in_test {
                            MsgCtx::Other
                        } else if is_encode_fn(&def.name) {
                            MsgCtx::Encode
                        } else if is_decode_fn(&def.name) {
                            MsgCtx::Decode
                        } else {
                            MsgCtx::Other
                        }
                    })
                } else {
                    MsgCtx::Other
                };
                refs.insert((tok.text.clone(), ctx));
            }
            i += 4;
            continue;
        }
        i += 1;
    }
    let refs = refs.into_iter().map(|(name, ctx)| MsgRef { name, ctx }).collect();
    (consts, refs)
}

fn enclosing_fn(parsed: &ParsedFile, tok_idx: usize) -> Option<&FnDef> {
    parsed
        .fns
        .iter()
        .zip(&parsed.bodies)
        .filter_map(|(def, body)| body.map(|(s, e)| (def, s, e)))
        .filter(|(_, s, e)| (*s..*e).contains(&tok_idx))
        // Innermost enclosing body (nested fns): the latest start wins.
        .max_by_key(|(_, s, _)| *s)
        .map(|(def, _, _)| def)
}

fn is_encode_fn(name: &str) -> bool {
    name.starts_with("to_") || name.contains("encode") || name == "parts"
}

fn is_decode_fn(name: &str) -> bool {
    name.starts_with("from_") || name.contains("decode")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::facts::build_facts;
    use std::path::PathBuf;

    fn taint_findings(src: &str) -> Vec<Finding> {
        let rel = "crates/fix/src/lib.rs";
        let class = classify(rel).expect("classifiable");
        let file = SourceFile { rel_path: rel.to_string(), abs_path: PathBuf::from(rel), class };
        let facts = build_facts(&file, src).expect("facts build");
        facts.local_findings.into_iter().filter(|f| f.rule_id == "wire-taint").collect()
    }

    #[test]
    fn reader_param_taints_but_count_is_bounded() {
        let hits = taint_findings(
            "pub fn bad(r: &mut Reader<'_>) -> Vec<u8> {\n\
                 let n = r.u32();\n\
                 Vec::with_capacity(n)\n\
             }\n\
             pub fn good(r: &mut Reader<'_>) -> Vec<u8> {\n\
                 let n = r.count(4);\n\
                 Vec::with_capacity(n)\n\
             }\n",
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 3);
        assert!(hits[0].message.contains("`n`"), "{}", hits[0].message);
    }

    #[test]
    fn validate_and_limits_comparisons_sanitize() {
        let hits = taint_findings(
            "pub fn validated(spec_len: usize, r: &mut Reader<'_>) -> Vec<u8> {\n\
                 let spec = decode_frame(r);\n\
                 spec.validate();\n\
                 run_on(spec);\n\
                 Vec::new()\n\
             }\n\
             pub fn compared(r: &mut Reader<'_>) -> Vec<u8> {\n\
                 let n = decode_header(r);\n\
                 if n > limits::MAX_BITS { return Vec::new(); }\n\
                 Vec::with_capacity(n)\n\
             }\n",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn arithmetic_and_vec_macro_sinks_fire() {
        let hits = taint_findings(
            "pub fn arith(r: &mut Reader<'_>) -> usize {\n\
                 let n = sniff(r);\n\
                 n + 12\n\
             }\n\
             pub fn filled(r: &mut Reader<'_>) -> Vec<u8> {\n\
                 let n = sniff(r);\n\
                 vec![0u8; n]\n\
             }\n",
        );
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits.iter().any(|f| f.message.contains("arithmetic")), "{hits:?}");
        assert!(hits.iter().any(|f| f.message.contains("vec![_;")), "{hits:?}");
    }

    #[test]
    fn msg_refs_classify_by_context() {
        let rel = "crates/fix/src/lib.rs";
        let class = classify(rel).expect("classifiable");
        let file = SourceFile { rel_path: rel.to_string(), abs_path: PathBuf::from(rel), class };
        let facts = build_facts(
            &file,
            "pub mod msg { pub const PING: u8 = 1; }\n\
             pub fn to_frame() -> u8 { msg::PING }\n\
             pub fn from_frame(code: u8) -> bool { code == msg::PING }\n\
             pub fn route(code: u8) -> bool { code == msg::PING }\n",
        )
        .expect("facts build");
        assert_eq!(facts.msg_consts.len(), 1);
        let ctxs: Vec<MsgCtx> = facts.msg_refs.iter().map(|r| r.ctx).collect();
        assert!(ctxs.contains(&MsgCtx::Encode) && ctxs.contains(&MsgCtx::Decode), "{ctxs:?}");
        assert!(ctxs.contains(&MsgCtx::Other), "{ctxs:?}");
    }
}

/// R13 `codec-symmetry`: every wire message type must appear in an
/// encode path, a decode path, and a golden-vector test.
pub fn check_codec_symmetry(facts: &[crate::facts::FileFacts], findings: &mut Vec<Finding>) {
    let mut enc: BTreeSet<&str> = BTreeSet::new();
    let mut dec: BTreeSet<&str> = BTreeSet::new();
    let mut gold: BTreeSet<&str> = BTreeSet::new();
    for fact in facts {
        for r in &fact.msg_refs {
            match r.ctx {
                MsgCtx::Encode => {
                    enc.insert(&r.name);
                }
                MsgCtx::Decode => {
                    dec.insert(&r.name);
                }
                MsgCtx::Golden => {
                    gold.insert(&r.name);
                }
                MsgCtx::Other => {}
            }
        }
    }
    for fact in facts {
        for c in &fact.msg_consts {
            let mut missing = Vec::new();
            if !enc.contains(c.name.as_str()) {
                missing.push("an encode path");
            }
            if !dec.contains(c.name.as_str()) {
                missing.push("a decode path");
            }
            if !gold.contains(c.name.as_str()) {
                missing.push("a golden-vector test");
            }
            if missing.is_empty() {
                continue;
            }
            findings.push(Finding {
                rule_id: "codec-symmetry",
                severity: Severity::Deny,
                rel_path: fact.rel_path.clone(),
                line: c.line,
                col: c.col,
                message: format!(
                    "wire message type `msg::{}` is missing from {} — every message code must \
                     round-trip (encode + decode) and be pinned by a golden vector",
                    c.name,
                    missing.join(" and ")
                ),
            });
        }
    }
}
