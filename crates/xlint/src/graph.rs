//! Cross-file semantic passes over the parsed item facts: the workspace
//! call graph with interprocedural panic reachability, and the
//! `From<ExecError>` bridge-completeness check.
//!
//! Both passes run on [`FileFacts`] only — never on raw source — so they
//! can be recomputed on every run (cold or warm cache) from identical
//! inputs, which is what makes cached runs byte-identical.
//!
//! ## Resolution model (and its documented limits)
//!
//! The call graph is built from *names*, not types (there is no type
//! checker here). Resolution is deliberately conservative:
//!
//! - free calls resolve within the calling crate first, then through the
//!   calling file's `use` imports, then to a unique workspace-wide match;
//! - `Qual::name(..)` calls resolve via the qualifier's last path segment
//!   against impl targets (same crate preferred), with `Self` mapped to
//!   the calling function's own impl target;
//! - `.method(..)` calls resolve only when the method name is defined by
//!   exactly one impl target in the whole workspace *and* the name is not
//!   a common std method (see `METHOD_STOPLIST`) — otherwise a workspace
//!   method shadowing `Vec::get` would wire every `.get(..)` in the tree
//!   into the graph.
//!
//! Anything unresolved is a *false negative*, never a false positive:
//! a call edge we cannot establish simply is not traversed.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::classify::FileClass;
use crate::facts::FileFacts;
use crate::parse::{CallKind, FnDef};
use crate::rules::{Finding, Related, Severity};

/// Method names too generic to resolve by name alone: std types define
/// them, so a single workspace impl with the same name must not capture
/// every call site in the tree.
const METHOD_STOPLIST: &[&str] = &[
    "new",
    "from",
    "into",
    "clone",
    "default",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "next",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "push",
    "pop",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "collect",
    "map",
    "map_err",
    "filter",
    "filter_map",
    "flat_map",
    "fold",
    "sum",
    "product",
    "min",
    "max",
    "abs",
    "to_string",
    "as_str",
    "as_ref",
    "as_mut",
    "as_slice",
    "as_bytes",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "err",
    "ok_or",
    "ok_or_else",
    "and_then",
    "or_else",
    "take",
    "replace",
    "extend",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "clear",
    "drain",
    "join",
    "split",
    "trim",
    "parse",
    "write",
    "write_str",
    "read",
    "flush",
    "rev",
    "zip",
    "enumerate",
    "chain",
    "count",
    "any",
    "all",
    "find",
    "position",
    "first",
    "last",
    "copied",
    "cloned",
    "to_owned",
    "to_vec",
    "starts_with",
    "ends_with",
    "chars",
    "lines",
    "keys",
    "values",
    "entry",
    "range",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "saturating_add",
    "saturating_sub",
    "saturating_mul",
    "wrapping_add",
    "wrapping_sub",
    "wrapping_mul",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "checked_div",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "then",
    "then_some",
    "windows",
    "chunks",
    "skip",
    "step_by",
    "rem_euclid",
];

/// One node of the call graph: a function definition in a `Src` file.
pub(crate) struct Node<'a> {
    pub(crate) krate: &'a str,
    pub(crate) file_idx: usize,
    /// Index of [`Node::def`] within its file's `fns` vector, so parallel
    /// per-fn facts (e.g. the taint flows of [`crate::summary`]) can be
    /// looked up from a node id.
    pub(crate) fn_idx: usize,
    pub(crate) rel_path: &'a str,
    pub(crate) def: &'a FnDef,
}

impl Node<'_> {
    pub(crate) fn display_name(&self) -> String {
        match &self.def.qual {
            Some(q) => format!("{q}::{}", self.def.name),
            None => self.def.name.clone(),
        }
    }
}

/// The resolved workspace call graph: deterministic node order (facts are
/// path-sorted, fns in declaration order) and caller → callee edges.
/// Shared by the panic-reachability (reverse BFS), event-loop-blocking
/// (forward BFS), and wire-taint summary ([`crate::summary`]) passes so
/// all three traverse identical edges. Name resolution is factored into
/// [`CallGraph::resolve`] so the summary fixpoint can resolve per-call
/// flow records with exactly the semantics the edges were built with.
pub(crate) struct CallGraph<'a> {
    pub(crate) nodes: Vec<Node<'a>>,
    pub(crate) edges: Vec<BTreeSet<usize>>,
    pub(crate) facts: &'a [FileFacts],
    free_in_crate: BTreeMap<(String, String), Vec<usize>>,
    free_global: BTreeMap<String, Vec<usize>>,
    qual_global: BTreeMap<(String, String), Vec<usize>>,
    method_global: BTreeMap<String, Vec<usize>>,
    workspace_crates: BTreeSet<String>,
}

impl<'a> CallGraph<'a> {
    pub(crate) fn build(facts: &'a [FileFacts]) -> Self {
        let mut nodes: Vec<Node<'a>> = Vec::new();
        for (file_idx, fact) in facts.iter().enumerate() {
            let FileClass::Src { crate_name } = &fact.class else { continue };
            for (fn_idx, def) in fact.fns.iter().enumerate() {
                if def.in_test {
                    continue;
                }
                nodes.push(Node {
                    krate: crate_name,
                    file_idx,
                    fn_idx,
                    rel_path: &fact.rel_path,
                    def,
                });
            }
        }

        // Resolution maps.
        let mut free_in_crate: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut free_global: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut qual_global: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut method_global: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let workspace_crates: BTreeSet<String> =
            nodes.iter().map(|n| n.krate.to_string()).collect();
        for (id, node) in nodes.iter().enumerate() {
            match &node.def.qual {
                None => {
                    free_in_crate
                        .entry((node.krate.to_string(), node.def.name.clone()))
                        .or_default()
                        .push(id);
                    free_global.entry(node.def.name.clone()).or_default().push(id);
                }
                Some(q) => {
                    qual_global.entry((q.clone(), node.def.name.clone())).or_default().push(id);
                    method_global.entry(node.def.name.clone()).or_default().push(id);
                }
            }
        }

        let mut graph = CallGraph {
            nodes,
            edges: Vec::new(),
            facts,
            free_in_crate,
            free_global,
            qual_global,
            method_global,
            workspace_crates,
        };
        let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); graph.nodes.len()];
        for (id, edge_set) in edges.iter_mut().enumerate() {
            for call in &graph.nodes[id].def.calls {
                for t in graph.resolve(id, call.kind, call.qual.as_deref(), &call.name) {
                    if t != id {
                        edge_set.insert(t);
                    }
                }
            }
        }
        graph.edges = edges;
        graph
    }

    /// Resolve one call site of `caller` to its candidate target nodes,
    /// with the conservative semantics documented in the module header.
    /// An empty result means "unresolved": the callers must treat it as a
    /// false negative (no edge), never guess.
    pub(crate) fn resolve(
        &self,
        caller: usize,
        kind: CallKind,
        qual: Option<&str>,
        name: &str,
    ) -> Vec<usize> {
        let node = &self.nodes[caller];
        let key = (node.krate.to_string(), name.to_string());
        match kind {
            CallKind::Free => {
                if let Some(same) = self.free_in_crate.get(&key) {
                    return same.clone();
                }
                let fact = &self.facts[node.file_idx];
                if let Some(imported) = fact.uses.iter().find_map(|u| {
                    let leaf_matches = u.alias.as_deref() == Some(name)
                        || (u.alias.is_none() && u.segments.last().is_some_and(|s| s == name));
                    let first = u.segments.first()?;
                    if leaf_matches && self.workspace_crates.contains(first.as_str()) {
                        self.free_in_crate.get(&(first.clone(), name.to_string())).cloned()
                    } else {
                        None
                    }
                }) {
                    return imported;
                }
                // Unique workspace-wide match, else unresolved.
                let cands = self.free_global.get(name).cloned().unwrap_or_default();
                let crates: BTreeSet<&str> = cands.iter().map(|c| self.nodes[*c].krate).collect();
                if crates.len() == 1 {
                    cands
                } else {
                    Vec::new()
                }
            }
            CallKind::Qualified => {
                let q = match (qual, node.def.qual.as_deref()) {
                    (Some("Self"), Some(own)) => own,
                    (Some(q), _) => q,
                    (None, _) => return Vec::new(),
                };
                let cands = self
                    .qual_global
                    .get(&(q.to_string(), name.to_string()))
                    .cloned()
                    .unwrap_or_default();
                if cands.is_empty() {
                    // The qualifier may be a crate name: `exec::run(..)`.
                    self.free_in_crate
                        .get(&(q.to_string(), name.to_string()))
                        .cloned()
                        .unwrap_or_default()
                } else {
                    let same: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|c| self.nodes[*c].krate == node.krate)
                        .collect();
                    if same.is_empty() {
                        cands
                    } else {
                        same
                    }
                }
            }
            CallKind::Method => {
                if METHOD_STOPLIST.contains(&name) {
                    return Vec::new();
                }
                let cands = self.method_global.get(name).cloned().unwrap_or_default();
                let targets: BTreeSet<(&str, &str)> = cands
                    .iter()
                    .map(|c| {
                        (self.nodes[*c].krate, self.nodes[*c].def.qual.as_deref().unwrap_or(""))
                    })
                    .collect();
                if targets.len() == 1 {
                    cands
                } else {
                    Vec::new()
                }
            }
        }
    }
}

/// Flag every `pub` function in a `Src` crate that can transitively reach
/// a panic site through workspace-local calls, reporting the offending
/// call chain at the entry point.
pub fn check_panic_reachable(facts: &[FileFacts], findings: &mut Vec<Finding>) {
    let graph = CallGraph::build(facts);
    let (nodes, edges) = (&graph.nodes, &graph.edges);

    // Reverse BFS from nodes that own a panic site; `next[u]` is the
    // callee one step closer to the panic, for chain reconstruction.
    let mut reverse: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (u, callees) in edges.iter().enumerate() {
        for v in callees {
            reverse[*v].push(u);
        }
    }
    let mut dist: Vec<Option<u32>> = vec![None; nodes.len()];
    let mut next: Vec<Option<usize>> = vec![None; nodes.len()];
    let mut queue = VecDeque::new();
    for (id, node) in nodes.iter().enumerate() {
        if !node.def.panics.is_empty() {
            dist[id] = Some(0);
            queue.push_back(id);
        }
    }
    while let Some(u) = queue.pop_front() {
        let d = dist[u].unwrap_or(0);
        for w in &reverse[u] {
            if dist[*w].is_none() {
                dist[*w] = Some(d + 1);
                next[*w] = Some(u);
                queue.push_back(*w);
            }
        }
    }

    for (id, node) in nodes.iter().enumerate() {
        if !node.def.is_pub || dist[id].is_none() {
            continue;
        }
        // Reconstruct entry → … → panic-owning node.
        let mut chain = vec![id];
        let mut cur = id;
        while let Some(n) = next[cur] {
            chain.push(n);
            cur = n;
        }
        let names: Vec<String> = chain.iter().map(|n| nodes[*n].display_name()).collect();
        let sink = &nodes[cur];
        let Some(site) = sink.def.panics.first() else { continue };
        let related: Vec<Related> = chain
            .iter()
            .skip(1)
            .map(|h| Related {
                rel_path: nodes[*h].rel_path.to_string(),
                line: nodes[*h].def.line,
                col: nodes[*h].def.col,
                note: format!("`{}` continues the chain", nodes[*h].display_name()),
            })
            .chain(std::iter::once(Related {
                rel_path: sink.rel_path.to_string(),
                line: site.line,
                col: site.col,
                note: format!("the root panic site ({})", site.desc),
            }))
            .collect();
        findings.push(Finding {
            rule_id: "panic-reachable",
            severity: Severity::Deny,
            rel_path: node.rel_path.to_string(),
            line: node.def.line,
            col: node.def.col,
            message: format!(
                "pub fn `{}` can reach a panic: {}; `{}` has {} at {}:{}:{} — make the chain \
                 return the crate's error type, or justify the root site with \
                 xlint::allow(panic-reachable, ...)",
                node.def.name,
                names.join(" → "),
                sink.display_name(),
                site.desc,
                sink.rel_path,
                site.line,
                site.col
            ),
            related,
        });
    }
}

/// R12 `event-loop-blocking`: functions reachable from the nonblocking
/// server event loop must not call blocking APIs. Roots are every
/// non-test function defined in a `*/src/server.rs` file; a forward BFS
/// over the shared call graph finds each reachable blocking site and
/// reports it with the root → … → site chain, at the site itself (so an
/// `xlint::allow(event-loop-blocking, ..)` above the call suppresses it
/// at build time, exactly like panic sites).
pub fn check_event_loop_blocking(facts: &[FileFacts], findings: &mut Vec<Finding>) {
    let graph = CallGraph::build(facts);
    let (nodes, edges) = (&graph.nodes, &graph.edges);

    let mut prev: Vec<Option<usize>> = vec![None; nodes.len()];
    let mut reached: Vec<bool> = vec![false; nodes.len()];
    let mut queue = VecDeque::new();
    for (id, node) in nodes.iter().enumerate() {
        if node.rel_path.ends_with("/src/server.rs") {
            reached[id] = true;
            queue.push_back(id);
        }
    }
    while let Some(u) = queue.pop_front() {
        for v in &edges[u] {
            if !reached[*v] {
                reached[*v] = true;
                prev[*v] = Some(u);
                queue.push_back(*v);
            }
        }
    }

    for (id, node) in nodes.iter().enumerate() {
        if !reached[id] || node.def.blocking.is_empty() {
            continue;
        }
        // Reconstruct root → … → this node.
        let mut chain = vec![id];
        let mut cur = id;
        while let Some(p) = prev[cur] {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        let names: Vec<String> = chain.iter().map(|n| nodes[*n].display_name()).collect();
        let related: Vec<Related> = chain
            .iter()
            .take(chain.len().saturating_sub(1))
            .map(|h| Related {
                rel_path: nodes[*h].rel_path.to_string(),
                line: nodes[*h].def.line,
                col: nodes[*h].def.col,
                note: format!("reachable from the event loop via `{}`", nodes[*h].display_name()),
            })
            .collect();
        for site in &node.def.blocking {
            findings.push(Finding {
                rule_id: "event-loop-blocking",
                severity: Severity::Deny,
                rel_path: node.rel_path.to_string(),
                line: site.line,
                col: site.col,
                message: format!(
                    "{} blocks inside the event loop: reachable as {} — the nonblocking \
                     server must never stall on one connection; use nonblocking I/O or \
                     justify with xlint::allow(event-loop-blocking, ...)",
                    site.desc,
                    names.join(" → ")
                ),
                related: related.clone(),
            });
        }
    }
}

/// Enforce that every crate invoking `exec` bridges `ExecError` into its
/// own error type: either a local `impl From<ExecError> for E` (complete —
/// a wholesale wrap, or a `match` naming every variant), or a reference
/// to another crate's bridged error type it reuses.
pub fn check_error_bridges(facts: &[FileFacts], findings: &mut Vec<Finding>) {
    // The authoritative variant list comes from the workspace's own exec
    // crate, so the rule tracks the enum as it evolves.
    let variants: Vec<&str> = facts
        .iter()
        .filter(|f| matches!(&f.class, FileClass::Src { crate_name } if crate_name == "exec"))
        .flat_map(|f| &f.enums)
        .find(|e| e.name == "ExecError")
        .map(|e| e.variants.iter().map(String::as_str).collect())
        .unwrap_or_default();
    if variants.is_empty() {
        // No exec crate in this tree (e.g. a fixture workspace without
        // one): nothing to bridge against.
        return;
    }

    // Completeness of every bridge, and the set of soundly-bridged types.
    let mut bridged_types: BTreeSet<&str> = BTreeSet::new();
    let mut crates_with_bridge: BTreeSet<&str> = BTreeSet::new();
    for fact in facts {
        let FileClass::Src { crate_name } = &fact.class else { continue };
        for bridge in &fact.bridges {
            let missing: Vec<&str> = if bridge.uses_match {
                variants
                    .iter()
                    .copied()
                    .filter(|v| !bridge.mentioned.iter().any(|m| m == v))
                    .collect()
            } else {
                Vec::new()
            };
            if missing.is_empty() {
                bridged_types.insert(&bridge.target);
                crates_with_bridge.insert(crate_name);
            } else {
                crates_with_bridge.insert(crate_name);
                findings.push(Finding {
                    rule_id: "error-bridge-exhaustive",
                    severity: Severity::Deny,
                    rel_path: fact.rel_path.clone(),
                    line: bridge.line,
                    col: bridge.col,
                    message: format!(
                        "`From<ExecError> for {}` matches on variants but never names {} — \
                         handle every variant (ExecError is #[non_exhaustive]; keep the \
                         wildcard arm) or wrap the error wholesale",
                        bridge.target,
                        missing.join(", ")
                    ),
                    related: Vec::new(),
                });
            }
        }
    }

    // Every invoking crate needs a bridge: its own, or a reference to a
    // type some other crate bridged (e.g. bench reusing ate's AteError).
    let mut seen_crates: BTreeSet<&str> = BTreeSet::new();
    for fact in facts {
        let FileClass::Src { crate_name } = &fact.class else { continue };
        if crate_name == "exec" || seen_crates.contains(crate_name.as_str()) {
            continue;
        }
        let Some((line, col)) = fact.exec_invoke else { continue };
        seen_crates.insert(crate_name);
        if crates_with_bridge.contains(crate_name.as_str()) {
            continue;
        }
        let reuses_bridged = facts
            .iter()
            .filter(|f| matches!(&f.class, FileClass::Src { crate_name: c } if c == crate_name))
            .flat_map(|f| &f.error_mentions)
            .any(|m| bridged_types.contains(m.as_str()));
        if reuses_bridged {
            continue;
        }
        findings.push(Finding {
            rule_id: "error-bridge-exhaustive",
            severity: Severity::Deny,
            rel_path: fact.rel_path.clone(),
            line,
            col,
            message: format!(
                "crate `{crate_name}` invokes exec but defines no `From<ExecError>` bridge \
                 into its error type (and references no type that has one) — a pool failure \
                 here has no typed path back to callers"
            ),
            related: Vec::new(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, SourceFile};
    use crate::facts::build_facts;
    use std::path::PathBuf;

    fn facts_for(files: &[(&str, &str)]) -> Vec<FileFacts> {
        files
            .iter()
            .map(|(rel, src)| {
                let class = classify(rel).expect("classifiable");
                let file = SourceFile {
                    rel_path: (*rel).to_string(),
                    abs_path: PathBuf::from(rel),
                    class,
                };
                build_facts(&file, src).expect("facts")
            })
            .collect()
    }

    #[test]
    fn panic_reaches_through_a_cross_file_chain() {
        let facts = facts_for(&[
            (
                "crates/alpha/src/lib.rs",
                "pub fn entry(xs: &[u64], i: usize) -> u64 { middle(xs, i) }\n\
                 fn middle(xs: &[u64], i: usize) -> u64 { sink(xs, i) }\n",
            ),
            (
                "crates/alpha/src/sink.rs",
                "pub(crate) fn sink(xs: &[u64], i: usize) -> u64 { xs[i] }\n",
            ),
        ]);
        let mut findings = Vec::new();
        check_panic_reachable(&facts, &mut findings);
        let entry = findings.iter().find(|f| f.message.contains("`entry`")).expect("entry flagged");
        assert!(entry.message.contains("entry → middle → sink"), "{}", entry.message);
        assert!(entry.message.contains("crates/alpha/src/sink.rs"), "{}", entry.message);
    }

    #[test]
    fn clean_functions_are_not_flagged() {
        let facts = facts_for(&[(
            "crates/alpha/src/lib.rs",
            "pub fn entry(xs: &[u64], i: usize) -> u64 { xs.get(i).copied().unwrap_or(0) }\n",
        )]);
        let mut findings = Vec::new();
        check_panic_reachable(&facts, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn ambiguous_method_names_do_not_create_edges() {
        // Two impls define `probe`: resolution must refuse the edge, so
        // the caller stays clean.
        let facts = facts_for(&[(
            "crates/alpha/src/lib.rs",
            "pub struct A; pub struct B;\n\
             impl A { pub fn probe(&self, xs: &[u64], i: usize) -> u64 { xs[i] } }\n\
             impl B { pub fn probe(&self) -> u64 { 0 } }\n\
             pub fn caller(b: &B) -> u64 { b.probe() }\n",
        )]);
        let mut findings = Vec::new();
        check_panic_reachable(&facts, &mut findings);
        assert!(findings.iter().all(|f| !f.message.contains("`caller`")), "{findings:?}");
        // The panicking method itself is still an entry point.
        assert!(findings.iter().any(|f| f.message.contains("A::probe")));
    }

    #[test]
    fn bridge_rule_requires_a_bridge_in_invoking_crates() {
        let facts = facts_for(&[
            (
                "crates/exec/src/error.rs",
                "pub enum ExecError { JobPanicked { index: usize }, SpawnFailed, MissingResult }\n",
            ),
            (
                "crates/beta/src/lib.rs",
                "pub fn sweep(pool: &ExecPool) -> Vec<u64> { pool.par_map(4, |k| k as u64) }\n",
            ),
        ]);
        let mut findings = Vec::new();
        check_error_bridges(&facts, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("crate `beta`"));
    }

    #[test]
    fn incomplete_match_bridge_names_the_missing_variants() {
        let facts = facts_for(&[
            (
                "crates/exec/src/error.rs",
                "pub enum ExecError { JobPanicked { index: usize }, SpawnFailed, MissingResult }\n",
            ),
            (
                "crates/beta/src/error.rs",
                "pub enum BetaError { Pool(String) }\n\
                 impl From<exec::ExecError> for BetaError {\n\
                     fn from(e: exec::ExecError) -> Self {\n\
                         match e {\n\
                             exec::ExecError::JobPanicked { .. } => BetaError::Pool(String::new()),\n\
                             _ => BetaError::Pool(String::new()),\n\
                         }\n\
                     }\n\
                 }\n",
            ),
        ]);
        let mut findings = Vec::new();
        check_error_bridges(&facts, &mut findings);
        let incomplete =
            findings.iter().find(|f| f.rule_id == "error-bridge-exhaustive").expect("flagged");
        assert!(incomplete.message.contains("SpawnFailed"), "{}", incomplete.message);
        assert!(incomplete.message.contains("MissingResult"), "{}", incomplete.message);
    }

    #[test]
    fn wholesale_wrap_and_reused_bridge_types_pass() {
        let facts = facts_for(&[
            (
                "crates/exec/src/error.rs",
                "pub enum ExecError { JobPanicked { index: usize }, SpawnFailed, MissingResult }\n",
            ),
            (
                "crates/beta/src/error.rs",
                "pub enum BetaError { Exec(exec::ExecError) }\n\
                 impl From<exec::ExecError> for BetaError {\n\
                     fn from(e: exec::ExecError) -> Self { BetaError::Exec(e) }\n\
                 }\n\
                 pub fn sweep(pool: &ExecPool) -> Vec<u64> { pool.par_map(4, |k| u64::from(k as u32)) }\n",
            ),
            (
                "crates/gamma/src/lib.rs",
                "pub fn reuse(pool: &ExecPool) -> Result<(), BetaError> {\n\
                     let _ = pool.par_map(2, |k| k); Ok(())\n\
                 }\n",
            ),
        ]);
        let mut findings = Vec::new();
        check_error_bridges(&facts, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
