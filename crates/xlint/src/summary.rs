//! Interprocedural taint summaries: wire-taint (R11) v4.
//!
//! v3's taint pass stopped at function edges — a peer-controlled length
//! laundered through any helper (`plan::slice` → `merge::from_parts`)
//! escaped analysis entirely. v4 splits the rule into two phases that
//! mirror the engine's cache architecture:
//!
//! 1. **Per-file extraction** ([`extract_flows`]): a linear abstract
//!    scan of every non-test function producing one [`FnFlow`] per
//!    [`crate::parse::FnDef`] — which *sources* ([`Src`]) feed each call
//!    argument, each sink, and the return value. This is a pure function
//!    of the file bytes, so flows live in the fact cache.
//! 2. **Cross-file fixpoint** ([`check_wire_taint`]): a monotone
//!    fixpoint over the v2 call graph computing per-function summaries
//!    (does the return carry wire taint, which params flow to the
//!    return, which params reach a sink), then emitting findings — at
//!    the sink for locally-tainted flows (byte-identical to v3 for the
//!    hop-free case) and at the *call site* with the full fn-chain when
//!    the taint crosses functions, like `panic-reachable` already does.
//!
//! ## The abstract domain
//!
//! A binding's abstract value is a set of [`Src`] provenances plus an
//! optional [`Ceiling`] — the interval half of the lattice. A ceiling is
//! established by a clamping projection (`.min(..)`, `.clamp(..)`,
//! `.count(..)`, `.len()`, `.str(..)`), by a comparison against a
//! recognized bound (`limits::`, a SHOUTING constant, a literal), by a
//! literal initializer, or by `validate()`. A ceilinged value has no
//! sources — bounds survive joins and, via `ret`-summaries, across
//! calls: `fn clamp(n: usize) -> usize { n.min(limits::MAX) }` cleans
//! every transitive consumer of its result.
//!
//! Unresolved calls are *conservative pass-throughs*: the result carries
//! the union of the argument sources, which reproduces v3's "any tainted
//! ident in the initializer span taints the binding" behavior exactly.
//! Resolved calls use the callee summary instead — strictly more
//! precise, and the reason a sanitizer *in the callee* now cleans the
//! caller. Termination: both the per-node summaries and the expansion
//! visited-set grow monotonically in a finite lattice (params, call
//! sites, and sinks are all finite), so the fixpoint converges.

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};

use crate::classify::{FileClass, SourceFile};
use crate::facts::FileFacts;
use crate::graph::CallGraph;
use crate::lexer::{Token, TokenKind};
use crate::parse::{CallKind, ParsedFile, NON_CALL_KEYWORDS};
use crate::rules::{Finding, Related, Severity};

/// Functions of the codec surface whose results are peer-controlled.
pub(crate) const SOURCE_FNS: &[&str] =
    &["sniff", "decode_frame", "decode_header", "decode_frame2", "decode_header2"];

/// Exec entry points a tainted value must never reach unvalidated.
pub(crate) const POOL_SINKS: &[&str] = &["run_on", "par_map", "par_map_reduce"];

/// Methods whose result is bounded by construction: projecting a
/// tainted value through one of these yields a clean binding.
pub(crate) const BOUNDING_METHODS: &[&str] = &["min", "clamp", "count", "len", "str"];

/// Widen a serialized u32 index to usize without a lossy cast.
fn ix(n: u32) -> usize {
    usize::try_from(n).unwrap_or(usize::MAX)
}

/// Abstract provenance of a value inside one function.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Src {
    /// Wire-tainted in this very function: a decoder call, `Reader::`,
    /// a `Reader`-typed parameter, or `self` in `impl Reader`.
    Direct,
    /// Flows from the function's i-th parameter (0-based; `self` is
    /// parameter 0 of a method).
    Param(u32),
    /// Flows from the result of the k-th recorded call in this
    /// function's [`FnFlow::calls`].
    Call(u32),
}

/// A known upper bound — the interval half of the lattice. Only the
/// *existence* of a ceiling matters for taint (a bounded value is
/// clean); the bound itself is kept for diagnostics and the cache.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Ceiling {
    /// A numeric literal bound.
    Lit(u64),
    /// A symbolic bound (`limits::MAX_DIES`, a SHOUTING const, or the
    /// generic `"bounded"` for clamping projections).
    Sym(String),
}

/// One recorded call site with per-argument provenance. For method
/// calls the receiver is argument 0, aligning with `self` being
/// parameter 0 of the callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallFlow {
    /// Shape of the call expression.
    pub kind: CallKind,
    /// Qualifier for [`CallKind::Qualified`].
    pub qual: Option<String>,
    /// Callee name.
    pub name: String,
    /// Per-argument source sets (sorted, deduplicated).
    pub args: Vec<Vec<Src>>,
    /// Display name per argument (the first identifier of the argument
    /// expression), parallel to [`CallFlow::args`]; used in diagnostics.
    pub argv: Vec<String>,
    /// 1-based line of the callee name token.
    pub line: u32,
    /// 1-based column of the callee name token.
    pub col: u32,
}

/// What kind of sink a [`SinkFlow`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkKind {
    /// `with_capacity(..)` / `.reserve(..)` argument.
    Alloc,
    /// The length position of `vec![_; n]`.
    VecMacro,
    /// An argument of an exec entry point (`run_on`, `par_map`, …).
    PoolArg,
    /// The receiver of an exec entry point (`spec.run_on(..)`).
    PoolRecv,
    /// Raw `+`/`*` length arithmetic.
    Arith,
}

/// One sink site with the sources that reached it unsanitized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkFlow {
    /// Sink classification.
    pub kind: SinkKind,
    /// Sink name (`with_capacity`, `run_on`, …; `+`/`*` for
    /// [`SinkKind::Arith`]).
    pub sink: String,
    /// The offending value's display name.
    pub var: String,
    /// Sources feeding the sink (sorted, deduplicated).
    pub srcs: Vec<Src>,
    /// 1-based line of the sink.
    pub line: u32,
    /// 1-based column of the sink.
    pub col: u32,
}

/// The per-function taint-flow facts: everything the cross-file
/// fixpoint needs, and nothing tied to token indices — so it caches.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnFlow {
    /// Recorded call sites ([`Src::Call`] indexes into this).
    pub calls: Vec<CallFlow>,
    /// Sink sites with their unsanitized sources.
    pub sinks: Vec<SinkFlow>,
    /// Sources feeding the return value (tail expression and `return`
    /// statements); empty when the return is clean or bounded.
    pub ret: Vec<Src>,
    /// Ceiling on the returned value, when one is established.
    pub ret_ceiling: Option<Ceiling>,
}

/// Extract one [`FnFlow`] per parsed function of a `Src` file. The
/// result is parallel to `parsed.fns` (test and body-less functions get
/// an empty default, keeping index alignment with the cached fact).
pub fn extract_flows(file: &SourceFile, toks: &[Token], parsed: &ParsedFile) -> Vec<FnFlow> {
    let is_src = matches!(file.class, FileClass::Src { .. });
    parsed
        .fns
        .iter()
        .zip(&parsed.bodies)
        .map(|(def, body)| match body {
            Some((start, end)) if is_src && !def.in_test => {
                FlowScan::new(toks, def, *start, *end).run()
            }
            _ => FnFlow::default(),
        })
        .collect()
}

/// One binding's abstract value during extraction.
#[derive(Debug, Clone, Default)]
struct AbsVal {
    srcs: BTreeSet<Src>,
    ceiling: Option<Ceiling>,
}

impl AbsVal {
    fn clean(ceiling: Option<Ceiling>) -> Self {
        AbsVal { srcs: BTreeSet::new(), ceiling }
    }
}

/// One function's linear abstract scan (the v4 evolution of v3's
/// `TaintScan`).
struct FlowScan<'a> {
    toks: &'a [Token],
    start: usize,
    end: usize,
    /// Current abstract value per binding name.
    state: BTreeMap<String, AbsVal>,
    /// A `let`/`for` binding set waiting to take effect once the scan
    /// passes the end of its initializer.
    pending: Option<(Vec<String>, AbsVal, usize)>,
    /// Token index of each recorded call site → its `Src::Call` index.
    call_sites: BTreeMap<usize, u32>,
    flow: FnFlow,
}

impl<'a> FlowScan<'a> {
    fn new(toks: &'a [Token], def: &'a crate::parse::FnDef, start: usize, end: usize) -> Self {
        let mut state = BTreeMap::new();
        for (i, (name, ty)) in def.params.iter().zip(&def.param_types).enumerate() {
            let direct = ty.split(' ').any(|seg| seg == "Reader")
                || (name == "self" && def.qual.as_deref() == Some("Reader"));
            let src =
                if direct { Src::Direct } else { Src::Param(u32::try_from(i).unwrap_or(u32::MAX)) };
            state.insert(name.clone(), AbsVal { srcs: BTreeSet::from([src]), ceiling: None });
        }
        let mut scan = FlowScan {
            toks,
            start,
            end,
            state,
            pending: None,
            call_sites: BTreeMap::new(),
            flow: FnFlow::default(),
        };
        scan.record_call_sites();
        scan
    }

    fn is_punct(&self, i: usize, s: &str) -> bool {
        self.toks.get(i).is_some_and(|t| t.kind == TokenKind::Punct && t.text == s)
    }

    fn ident(&self, i: usize) -> Option<&str> {
        self.toks.get(i).filter(|t| t.kind == TokenKind::Ident).map(|t| t.text.as_str())
    }

    fn after_matching(&self, open: usize, open_s: &str, close_s: &str) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < self.end {
            if self.is_punct(i, open_s) {
                depth += 1;
            } else if self.is_punct(i, close_s) {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        self.end
    }

    /// Pre-pass: assign a stable index to every call site whose result
    /// the summary layer will reason about, in token order. Sources,
    /// sinks, sanitizers, bounding projections, keywords, macros, and
    /// uppercase constructors are not *recorded* — they have dedicated
    /// semantics in [`FlowScan::eval_span`].
    fn record_call_sites(&mut self) {
        let mut i = self.start;
        while i < self.end {
            let Some(name) = self.ident(i).map(str::to_string) else {
                i += 1;
                continue;
            };
            let name = name.as_str();
            if !self.is_punct(i + 1, "(")
                || NON_CALL_KEYWORDS.contains(&name)
                || !name.chars().next().is_some_and(char::is_lowercase)
                || SOURCE_FNS.contains(&name)
                || POOL_SINKS.contains(&name)
                || matches!(name, "validate" | "with_capacity" | "reserve")
            {
                i += 1;
                continue;
            }
            let dotted = i > self.start && self.is_punct(i - 1, ".");
            if dotted && BOUNDING_METHODS.contains(&name) {
                i += 1;
                continue;
            }
            let (kind, qual) = if dotted {
                (CallKind::Method, None)
            } else if i >= self.start + 2 && self.is_punct(i - 1, ":") && self.is_punct(i - 2, ":")
            {
                let q = if i >= self.start + 3 { self.ident(i - 3) } else { None };
                (CallKind::Qualified, q.map(str::to_string))
            } else {
                (CallKind::Free, None)
            };
            let (line, col) = self.toks.get(i).map_or((1, 1), |t| (t.line, t.col));
            let idx = u32::try_from(self.flow.calls.len()).unwrap_or(u32::MAX);
            self.call_sites.insert(i, idx);
            self.flow.calls.push(CallFlow {
                kind,
                qual,
                name: name.to_string(),
                args: Vec::new(),
                argv: Vec::new(),
                line,
                col,
            });
            i += 1;
        }
    }

    /// Does the expression span project through a bounding method
    /// (`.min(..)`, `.count(..)`, `.len()`, …)? Such an expression is
    /// clean regardless of what feeds it.
    fn span_bounded(&self, from: usize, to: usize) -> bool {
        (from..to).any(|i| {
            self.is_punct(i, ".")
                && self.ident(i + 1).is_some_and(|m| BOUNDING_METHODS.contains(&m))
                && self.is_punct(i + 2, "(")
        })
    }

    /// The ceiling a bounded span establishes: the first recognized
    /// bound token inside it, or the generic `"bounded"`.
    fn span_ceiling(&self, from: usize, to: usize) -> Ceiling {
        for i in from..to {
            if let Some(c) = self.bound_ceiling(i) {
                // `limits` alone is a path head, not the bound itself.
                if matches!(&c, Ceiling::Sym(s) if s == "limits") {
                    if let Some(leaf) = self.ident(i + 3) {
                        return Ceiling::Sym(format!("limits::{leaf}"));
                    }
                }
                return c;
            }
        }
        Ceiling::Sym("bounded".to_string())
    }

    /// Is the token at `i` a bound the contract recognizes: a numeric
    /// literal, a `limits::` path, or a SHOUTING_CASE constant?
    fn bound_ceiling(&self, i: usize) -> Option<Ceiling> {
        if let Some(t) = self.toks.get(i).filter(|t| t.kind == TokenKind::NumLit) {
            let digits: String = t.text.chars().take_while(|c| c.is_ascii_digit()).collect();
            return Some(
                digits.parse().map_or_else(|_| Ceiling::Sym(t.text.clone()), Ceiling::Lit),
            );
        }
        self.ident(i).and_then(|name| {
            (name == "limits"
                || (name.len() > 1 && name.chars().all(|c| c.is_ascii_uppercase() || c == '_')))
            .then(|| Ceiling::Sym(name.to_string()))
        })
    }

    fn is_bound_token(&self, i: usize) -> bool {
        self.bound_ceiling(i).is_some()
    }

    /// The comparison operator starting at `i` (`<`, `>`, `<=`, `>=`,
    /// `==`), returned as its token width; `None` for shifts and arrows.
    fn comparison_width(&self, i: usize) -> Option<usize> {
        let first = self.toks.get(i).filter(|t| t.kind == TokenKind::Punct)?;
        match first.text.as_str() {
            "<" | ">" => {
                if self.is_punct(i + 1, "=") {
                    Some(2)
                } else if self.is_punct(i + 1, "<") || self.is_punct(i + 1, ">") {
                    None
                } else {
                    Some(1)
                }
            }
            "=" if self.is_punct(i + 1, "=") => Some(2),
            _ => None,
        }
    }

    /// Is the ident at `i` a use of a binding (not a field or method
    /// name projected off something else)?
    fn binding_use(&self, i: usize) -> Option<(&str, &AbsVal)> {
        if i > self.start && self.is_punct(i - 1, ".") {
            return None;
        }
        let name = self.ident(i)?;
        self.state.get(name).map(|v| (name, v))
    }

    /// Abstract value of an expression span under the current state.
    fn eval_span(&self, from: usize, to: usize) -> AbsVal {
        if self.span_bounded(from, to) {
            return AbsVal::clean(Some(self.span_ceiling(from, to)));
        }
        let mut val = AbsVal::default();
        if to == from + 1 {
            if let Some(c) = self
                .toks
                .get(from)
                .filter(|t| t.kind == TokenKind::NumLit)
                .and_then(|_| self.bound_ceiling(from))
            {
                return AbsVal::clean(Some(c));
            }
            if let Some((_, v)) = self.binding_use(from) {
                return v.clone();
            }
        }
        let mut i = from;
        while i < to {
            if let Some(name) = self.ident(i) {
                if SOURCE_FNS.contains(&name) && self.is_punct(i + 1, "(") {
                    val.srcs.insert(Src::Direct);
                    i = self.after_matching(i + 1, "(", ")");
                    continue;
                }
                if name == "Reader" && self.is_punct(i + 1, ":") && self.is_punct(i + 2, ":") {
                    val.srcs.insert(Src::Direct);
                    i += 3;
                    continue;
                }
                if let Some(k) = self.call_sites.get(&i) {
                    // The callee's summary decides what flows through;
                    // its arguments are recorded on the CallFlow itself.
                    val.srcs.insert(Src::Call(*k));
                    i = self.after_matching(i + 1, "(", ")");
                    continue;
                }
                if (matches!(name, "validate" | "with_capacity" | "reserve")
                    || POOL_SINKS.contains(&name))
                    && self.is_punct(i + 1, "(")
                {
                    // Sinks and sanitizers contribute no value sources.
                    i = self.after_matching(i + 1, "(", ")");
                    continue;
                }
                if let Some((_, v)) = self.binding_use(i) {
                    val.srcs.extend(v.srcs.iter().cloned());
                }
            }
            i += 1;
        }
        val
    }

    /// The display name of an expression span: the first tainted
    /// binding, else the first call/source name, else `_`.
    fn span_name(&self, from: usize, to: usize) -> String {
        for i in from..to {
            if let Some((name, v)) = self.binding_use(i) {
                if !v.srcs.is_empty() {
                    return name.to_string();
                }
            }
        }
        for i in from..to {
            if let Some(name) = self.ident(i) {
                if self.is_punct(i + 1, "(")
                    && (self.call_sites.contains_key(&i) || SOURCE_FNS.contains(&name))
                {
                    return format!("{name}(..)");
                }
            }
        }
        for i in from..to {
            if let Some(name) = self.ident(i) {
                if !NON_CALL_KEYWORDS.contains(&name) {
                    return name.to_string();
                }
            }
        }
        "_".to_string()
    }

    /// Scan a statement initializer: from the token after `=`/`in` to
    /// the terminator (`;` at depth 0, or `{` for a `for` loop).
    fn initializer_end(&self, from: usize, terminator: &str) -> usize {
        let mut depth = 0i32;
        let mut i = from;
        while i < self.end {
            if self.is_punct(i, "(") || self.is_punct(i, "[") {
                depth += 1;
            } else if self.is_punct(i, ")") || self.is_punct(i, "]") {
                depth -= 1;
            } else if self.is_punct(i, "{") && terminator == ";" {
                depth += 1;
            } else if self.is_punct(i, "}") && terminator == ";" {
                depth -= 1;
            } else if depth <= 0 && self.is_punct(i, terminator) {
                return i;
            }
            i += 1;
        }
        self.end
    }

    /// Lowercase idents bound by a pattern span.
    fn pattern_bindings(&self, from: usize, to: usize) -> Vec<String> {
        let mut names = Vec::new();
        for i in from..to {
            if let Some(name) = self.ident(i) {
                if name == "mut" || name == "ref" || name == "_" {
                    continue;
                }
                if name.chars().next().is_some_and(char::is_lowercase)
                    && !self.is_punct(i + 1, ":")
                    && !names.iter().any(|n| n == name)
                {
                    names.push(name.to_string());
                }
            }
        }
        names
    }

    /// Fill the argument provenance of the recorded call at token `i`.
    fn fill_call_args(&mut self, i: usize, idx: u32) {
        let close = self.after_matching(i + 1, "(", ")");
        let args_end = close.saturating_sub(1);
        let mut args: Vec<Vec<Src>> = Vec::new();
        let mut argv: Vec<String> = Vec::new();
        // Method receiver is argument 0.
        if self.flow.calls.get(ix(idx)).is_some_and(|c| c.kind == CallKind::Method) {
            let recv = i
                .checked_sub(2)
                .filter(|p| *p >= self.start && !(*p > self.start && self.is_punct(p - 1, ".")))
                .and_then(|p| self.ident(p))
                .map(str::to_string);
            match recv.as_deref().and_then(|r| self.state.get(r)) {
                Some(v) => {
                    args.push(v.srcs.iter().cloned().collect());
                    argv.push(recv.unwrap_or_else(|| "_".to_string()));
                }
                None => {
                    args.push(Vec::new());
                    argv.push("_".to_string());
                }
            }
        }
        // Split the argument span on top-level commas.
        let mut arg_start = i + 2;
        let mut depth = 0i32;
        let mut k = i + 2;
        let push_arg = |scan: &Self,
                        args: &mut Vec<Vec<Src>>,
                        argv: &mut Vec<String>,
                        from: usize,
                        to: usize| {
            if from >= to {
                return;
            }
            let v = scan.eval_span(from, to);
            args.push(v.srcs.into_iter().collect());
            argv.push(scan.span_name(from, to));
        };
        while k < args_end {
            if self.is_punct(k, "(") || self.is_punct(k, "[") || self.is_punct(k, "{") {
                depth += 1;
            } else if self.is_punct(k, ")") || self.is_punct(k, "]") || self.is_punct(k, "}") {
                depth -= 1;
            } else if self.is_punct(k, ",") && depth == 0 {
                push_arg(self, &mut args, &mut argv, arg_start, k);
                arg_start = k + 1;
            }
            k += 1;
        }
        push_arg(self, &mut args, &mut argv, arg_start, args_end);
        if let Some(cf) = self.flow.calls.get_mut(ix(idx)) {
            cf.args = args;
            cf.argv = argv;
        }
    }

    fn record_sink(
        &mut self,
        kind: SinkKind,
        sink: &str,
        var: String,
        srcs: BTreeSet<Src>,
        i: usize,
    ) {
        if srcs.is_empty() {
            return;
        }
        let (line, col) = self.toks.get(i).map_or((1, 1), |t| (t.line, t.col));
        self.flow.sinks.push(SinkFlow {
            kind,
            sink: sink.to_string(),
            var,
            srcs: srcs.into_iter().collect(),
            line,
            col,
        });
    }

    /// Sink sources of an argument span: tainted binding uses plus the
    /// results of recorded/source calls (the interprocedural upgrade
    /// over v3, which only saw bindings).
    fn sink_arg_srcs(&self, from: usize, to: usize) -> BTreeSet<Src> {
        if self.span_bounded(from, to) {
            return BTreeSet::new();
        }
        self.eval_span(from, to).srcs
    }

    fn run(mut self) -> FnFlow {
        let mut i = self.start;
        while i < self.end {
            // A pending `let`/`for` binding takes effect once the scan
            // leaves its initializer.
            if let Some((names, val, until)) = &self.pending {
                if i >= *until {
                    let (names, val) = (names.clone(), val.clone());
                    for name in names {
                        self.state.insert(name, val.clone());
                    }
                    self.pending = None;
                }
            }
            if let Some(idx) = self.call_sites.get(&i).copied() {
                self.fill_call_args(i, idx);
                i += 1;
                continue;
            }

            match self.ident(i) {
                Some("let") => {
                    // `let PATTERN = EXPR ;` — evaluate the initializer
                    // against current state, bind after it ends.
                    let mut eq = i + 1;
                    let mut angle = 0i32;
                    while eq < self.end {
                        if self.is_punct(eq, "<") {
                            angle += 1;
                        } else if self.is_punct(eq, ">") {
                            angle -= 1;
                        } else if self.is_punct(eq, ";")
                            || (self.is_punct(eq, "=") && angle <= 0 && !self.is_punct(eq + 1, "="))
                        {
                            break;
                        }
                        eq += 1;
                    }
                    if self.is_punct(eq, "=") {
                        let stmt_end = self.initializer_end(eq + 1, ";");
                        let bindings = self.pattern_bindings(i + 1, eq);
                        if !bindings.is_empty() {
                            let val = self.eval_span(eq + 1, stmt_end);
                            self.pending = Some((bindings, val, stmt_end));
                        }
                    }
                }
                Some("for") => {
                    // `for PATTERN in EXPR {` — iterating a tainted
                    // collection taints the loop binding.
                    let mut in_kw = i + 1;
                    while in_kw < self.end
                        && self.ident(in_kw) != Some("in")
                        && !self.is_punct(in_kw, "{")
                    {
                        in_kw += 1;
                    }
                    if self.ident(in_kw) == Some("in") {
                        let body = self.initializer_end(in_kw + 1, "{");
                        let bindings = self.pattern_bindings(i + 1, in_kw);
                        if !bindings.is_empty() {
                            let val = self.eval_span(in_kw + 1, body);
                            self.pending = Some((bindings, val, body));
                        }
                    }
                }
                Some("validate") if self.is_punct(i + 1, "(") => {
                    // Sanitizer: `x.validate()` clears the receiver;
                    // `validate(&x)` / `JobSpec::validate(x)` clear
                    // every tainted argument.
                    let close = self.after_matching(i + 1, "(", ")");
                    let mut cleared: Vec<String> = (i + 2..close)
                        .filter_map(|k| self.binding_use(k).map(|(n, _)| n.to_string()))
                        .collect();
                    if i >= self.start + 2 && self.is_punct(i - 1, ".") {
                        if let Some(receiver) = self.ident(i - 2) {
                            cleared.push(receiver.to_string());
                        }
                    }
                    for name in cleared {
                        self.state.insert(
                            name,
                            AbsVal::clean(Some(Ceiling::Sym("validated".to_string()))),
                        );
                    }
                }
                Some("return") => {
                    let r_end = self.initializer_end(i + 1, ";");
                    let val = self.eval_span(i + 1, r_end);
                    self.merge_ret(val);
                }
                Some(name @ ("with_capacity" | "reserve")) if self.is_punct(i + 1, "(") => {
                    let name = name.to_string();
                    let close = self.after_matching(i + 1, "(", ")");
                    let srcs = self.sink_arg_srcs(i + 2, close.saturating_sub(1));
                    let var = self.span_name(i + 2, close.saturating_sub(1));
                    self.record_sink(SinkKind::Alloc, &name, var, srcs, i);
                }
                Some("vec") if self.is_punct(i + 1, "!") && self.is_punct(i + 2, "[") => {
                    // `vec![elem; n]` — only the length position is a
                    // sink.
                    let close = self.after_matching(i + 2, "[", "]");
                    let mut semi = i + 3;
                    let mut depth = 0i32;
                    while semi < close {
                        if self.is_punct(semi, "[") || self.is_punct(semi, "(") {
                            depth += 1;
                        } else if self.is_punct(semi, "]") || self.is_punct(semi, ")") {
                            depth -= 1;
                        } else if self.is_punct(semi, ";") && depth <= 0 {
                            break;
                        }
                        semi += 1;
                    }
                    if semi < close {
                        let len_end = close.saturating_sub(1);
                        let srcs = self.sink_arg_srcs(semi + 1, len_end);
                        let var = self.span_name(semi + 1, len_end);
                        self.record_sink(SinkKind::VecMacro, "vec", var, srcs, i);
                    }
                }
                Some(name) if POOL_SINKS.contains(&name) && self.is_punct(i + 1, "(") => {
                    let name = name.to_string();
                    let close = self.after_matching(i + 1, "(", ")");
                    let srcs = self.sink_arg_srcs(i + 2, close.saturating_sub(1));
                    let var = self.span_name(i + 2, close.saturating_sub(1));
                    self.record_sink(SinkKind::PoolArg, &name, var, srcs, i);
                    if i >= self.start + 2 && self.is_punct(i - 1, ".") {
                        if let Some((recv, v)) = i.checked_sub(2).and_then(|p| self.binding_use(p))
                        {
                            let (recv, srcs) = (recv.to_string(), v.srcs.clone());
                            self.record_sink(SinkKind::PoolRecv, &name, recv, srcs, i);
                        }
                    }
                }
                Some(_) if self.binding_use(i).is_some_and(|(_, v)| !v.srcs.is_empty()) => {
                    self.check_var_site(i);
                }
                _ => {}
            }
            i += 1;
        }
        // Tail expression: everything after the last top-level `;` or
        // block close. (An if/match tail is a documented false negative,
        // like every other name-resolution limit in DESIGN.md §5f.)
        let mut tail = self.start;
        let mut depth = 0i32;
        let mut k = self.start;
        while k < self.end {
            if self.is_punct(k, "(") || self.is_punct(k, "[") || self.is_punct(k, "{") {
                depth += 1;
            } else if self.is_punct(k, ")") || self.is_punct(k, "]") || self.is_punct(k, "}") {
                depth -= 1;
                // Only a top-level *block* close starts a new tail
                // candidate; a paren close is part of an expression.
                if depth == 0 && self.is_punct(k, "}") {
                    tail = k + 1;
                }
            } else if self.is_punct(k, ";") && depth == 0 {
                tail = k + 1;
            }
            k += 1;
        }
        if tail < self.end {
            let val = self.eval_span(tail, self.end);
            self.merge_ret(val);
        }
        self.flow
    }

    fn merge_ret(&mut self, val: AbsVal) {
        for s in val.srcs {
            if !self.flow.ret.contains(&s) {
                self.flow.ret.push(s);
            }
        }
        self.flow.ret.sort();
        match (&self.flow.ret_ceiling, val.ceiling) {
            (None, Some(c)) => self.flow.ret_ceiling = Some(c),
            (Some(old), Some(new)) if *old != new => {
                self.flow.ret_ceiling = Some(Ceiling::Sym("bounded".to_string()));
            }
            _ => {}
        }
    }

    /// A use of a tainted binding: a comparison against a recognized
    /// bound sanitizes it (and establishes a ceiling); adjacency to raw
    /// `+`/`*` is the arithmetic sink.
    fn check_var_site(&mut self, i: usize) {
        let Some(name) = self.ident(i).map(str::to_string) else { return };
        // `x < limits::MAX` / `x <= MAX_PAYLOAD` / `x == 0` — and the
        // mirrored `limits::MAX > x` form — certify the value bounded.
        if let Some(w) = self.comparison_width(i + 1) {
            let mut bound = i + 1 + w;
            if let Some(c) = self.bound_ceiling(bound) {
                let c = match c {
                    Ceiling::Sym(s) if s == "limits" => {
                        self.ident(bound + 3).map_or(Ceiling::Sym("limits".to_string()), |leaf| {
                            Ceiling::Sym(format!("limits::{leaf}"))
                        })
                    }
                    c => c,
                };
                self.state.insert(name, AbsVal::clean(Some(c)));
                return;
            }
            // `wire::MAX_PAYLOAD`-style qualified bound.
            while bound + 2 < self.end && self.is_punct(bound + 1, ":") {
                bound += 3;
                if self.is_bound_token(bound - 1) || self.is_bound_token(bound) {
                    let leaf = self.ident(bound).or_else(|| self.ident(bound - 1));
                    let c = Ceiling::Sym(leaf.unwrap_or("bounded").to_string());
                    self.state.insert(name, AbsVal::clean(Some(c)));
                    return;
                }
            }
        }
        if i > self.start {
            if i >= 2 && self.comparison_width(i - 1).is_some() && self.is_bound_token(i - 2) {
                let c = self.bound_ceiling(i - 2);
                self.state.insert(name, AbsVal::clean(c));
                return;
            }
            if i >= 3 && self.is_bound_token(i - 3) && self.comparison_width(i - 2) == Some(2) {
                let c = self.bound_ceiling(i - 3);
                self.state.insert(name, AbsVal::clean(c));
                return;
            }
        }
        // Arithmetic sink: `x + ..` / `x * ..` (but not `x += ..`), or
        // `.. + x` / `.. * x` where the left neighbor is a value.
        let after_plus = self.is_punct(i + 1, "+") && !self.is_punct(i + 2, "=");
        let after_star = self.is_punct(i + 1, "*");
        let before = i
            .checked_sub(1)
            .filter(|p| self.is_punct(*p, "+") || self.is_punct(*p, "*"))
            .and_then(|p| p.checked_sub(1))
            .is_some_and(|q| {
                self.toks.get(q).is_some_and(|t| {
                    matches!(t.kind, TokenKind::Ident | TokenKind::NumLit)
                        || (t.kind == TokenKind::Punct && (t.text == ")" || t.text == "]"))
                })
            });
        if after_plus || after_star || before {
            let srcs = self.state.get(&name).map(|v| v.srcs.clone()).unwrap_or_default();
            let op = if after_star { "*" } else { "+" };
            self.record_sink(SinkKind::Arith, op, name, srcs, i);
        }
    }
}

// ---------------------------------------------------------------------------
// Cross-file fixpoint and finding emission.
// ---------------------------------------------------------------------------

/// Where a parameter's value ends up: the call path (node ids, starting
/// at the summarized function itself, ending at the sink owner) and the
/// sink index inside the owner's flow.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SinkPath {
    chain: Vec<usize>,
    sink: usize,
}

/// One function's interprocedural summary.
#[derive(Debug, Clone, Default)]
struct NodeSum {
    /// The return value carries wire taint.
    ret_direct: bool,
    /// Call chain (node ids below this one) through which the taint
    /// reaches the return; empty when it originates locally.
    ret_via: Vec<usize>,
    /// Parameters whose value flows to the return unclean.
    ret_params: BTreeSet<u32>,
    /// Parameters that reach a sink, here or transitively.
    sink_params: BTreeMap<u32, SinkPath>,
}

/// Result of expanding a source set in one function's context.
#[derive(Debug, Default)]
struct Exp {
    /// Call chain through which [`Src::Direct`] taint arrives; `None`
    /// when the set carries no wire taint. Empty = locally direct.
    direct: Option<Vec<usize>>,
    /// Parameters of the *enclosing* function feeding the set.
    params: BTreeSet<u32>,
}

impl Exp {
    fn merge(&mut self, other: Exp) {
        if self.direct.is_none() {
            self.direct = other.direct;
        }
        self.params.extend(other.params);
    }
}

struct Fixpoint<'a> {
    graph: &'a CallGraph<'a>,
}

impl<'a> Fixpoint<'a> {
    fn flow(&self, node: usize) -> Option<&'a FnFlow> {
        let n = &self.graph.nodes[node];
        self.graph.facts.get(n.file_idx)?.flows.get(n.fn_idx)
    }

    /// Expand a source set in `node`'s context against the current
    /// summaries: through resolved calls via the callee summary, through
    /// unresolved calls as a conservative argument pass-through.
    fn expand(
        &self,
        node: usize,
        srcs: &[Src],
        sums: &[NodeSum],
        visited: &mut BTreeSet<(usize, u32)>,
    ) -> Exp {
        let mut exp = Exp::default();
        let Some(flow) = self.flow(node) else { return exp };
        for src in srcs {
            match src {
                Src::Direct => {
                    if exp.direct.is_none() {
                        exp.direct = Some(Vec::new());
                    }
                }
                Src::Param(p) => {
                    exp.params.insert(*p);
                }
                Src::Call(k) => {
                    if !visited.insert((node, *k)) {
                        continue;
                    }
                    let Some(cf) = flow.calls.get(ix(*k)) else { continue };
                    let targets = self.graph.resolve(node, cf.kind, cf.qual.as_deref(), &cf.name);
                    if targets.is_empty() {
                        // Conservative pass-through: the result carries
                        // the union of the argument sources (v3
                        // semantics for calls we cannot see into).
                        for arg in &cf.args {
                            exp.merge(self.expand(node, arg, sums, visited));
                        }
                        continue;
                    }
                    for t in targets {
                        let Some(sum) = sums.get(t) else { continue };
                        if sum.ret_direct && exp.direct.is_none() {
                            let mut chain = vec![t];
                            chain.extend(sum.ret_via.iter().copied());
                            exp.direct = Some(chain);
                        }
                        for p in &sum.ret_params {
                            if let Some(arg) = cf.args.get(ix(*p)) {
                                exp.merge(self.expand(node, arg, sums, visited));
                            }
                        }
                    }
                }
            }
        }
        exp
    }

    /// Run the monotone fixpoint to convergence.
    fn solve(&self) -> Vec<NodeSum> {
        let n = self.graph.nodes.len();
        let mut sums: Vec<NodeSum> = (0..n).map(|_| NodeSum::default()).collect();
        // Each pass can only grow the summaries; the lattice height is
        // bounded by (params + sinks) per node, so this terminates. The
        // iteration cap is belt-and-braces for the cyclic case.
        for _round in 0..n.max(4) {
            let mut changed = false;
            for node in 0..n {
                let Some(flow) = self.flow(node) else { continue };
                // Return summary.
                let ret_exp = self.expand(node, &flow.ret, &sums, &mut BTreeSet::new());
                let mut sum = sums[node].clone();
                if let Some(via) = ret_exp.direct {
                    if !sum.ret_direct {
                        sum.ret_direct = true;
                        sum.ret_via = via;
                        changed = true;
                    }
                }
                for p in ret_exp.params {
                    if sum.ret_params.insert(p) {
                        changed = true;
                    }
                }
                // Local sinks.
                for (si, sink) in flow.sinks.iter().enumerate() {
                    let e = self.expand(node, &sink.srcs, &sums, &mut BTreeSet::new());
                    for p in e.params {
                        if let Entry::Vacant(slot) = sum.sink_params.entry(p) {
                            slot.insert(SinkPath { chain: vec![node], sink: si });
                            changed = true;
                        }
                    }
                }
                // Call-propagated sinks: an argument that flows from one
                // of our params into a callee param that reaches a sink.
                for cf in &flow.calls {
                    for t in self.graph.resolve(node, cf.kind, cf.qual.as_deref(), &cf.name) {
                        let entries: Vec<(u32, SinkPath)> = sums[t]
                            .sink_params
                            .iter()
                            .map(|(p, path)| (*p, path.clone()))
                            .collect();
                        for (pt, path) in entries {
                            let Some(arg) = cf.args.get(ix(pt)) else { continue };
                            let e = self.expand(node, arg, &sums, &mut BTreeSet::new());
                            for p in e.params {
                                if let Entry::Vacant(slot) = sum.sink_params.entry(p) {
                                    let mut chain = vec![node];
                                    chain.extend(path.chain.iter().copied());
                                    slot.insert(SinkPath { chain, sink: path.sink });
                                    changed = true;
                                }
                            }
                        }
                    }
                }
                sums[node] = sum;
            }
            if !changed {
                break;
            }
        }
        sums
    }
}

/// The v3-compatible sink message for a locally-tainted flow.
fn sink_message(kind: SinkKind, sink: &str, var: &str) -> String {
    match kind {
        SinkKind::Alloc => format!(
            "wire-tainted `{var}` sizes an allocation (`{sink}(..)`) without a \
             JobSpec::validate / proto::limits bound — clamp or validate it first"
        ),
        SinkKind::VecMacro => format!(
            "wire-tainted `{var}` sizes an allocation (`vec![_; {var}]`) without a \
             JobSpec::validate / proto::limits bound — clamp or validate it first"
        ),
        SinkKind::PoolArg => format!(
            "wire-tainted `{var}` reaches an exec entry point (`{sink}(..)`) without a \
             JobSpec::validate / proto::limits bound — clamp or validate it first"
        ),
        SinkKind::PoolRecv => format!(
            "wire-tainted `{var}` reaches an exec entry point (`.{sink}(..)`) without \
             JobSpec::validate / a proto::limits bound — validate before executing"
        ),
        SinkKind::Arith => format!(
            "raw length arithmetic on wire-tainted `{var}` — use checked_*/saturating_* \
             combinators or bound it against proto::limits first"
        ),
    }
}

/// Short sink description used in cross-function call-site diagnostics.
fn sink_desc(kind: SinkKind, sink: &str) -> String {
    match kind {
        SinkKind::Alloc => format!("an allocation (`{sink}(..)`)"),
        SinkKind::VecMacro => "an allocation (`vec![_; ..]`)".to_string(),
        SinkKind::PoolArg | SinkKind::PoolRecv => {
            format!("an exec entry point (`{sink}(..)`)")
        }
        SinkKind::Arith => "raw length arithmetic".to_string(),
    }
}

/// R11 `wire-taint`, whole-workspace: run the summary fixpoint over the
/// call graph and emit deny findings — at the sink for flows that are
/// tainted within (or through calls made by) the sink's own function,
/// and at the call site with the full fn-chain when a locally-tainted
/// value is passed into a callee whose parameter reaches a sink.
pub fn check_wire_taint(facts: &[FileFacts], findings: &mut Vec<Finding>) {
    let graph = CallGraph::build(facts);
    let fx = Fixpoint { graph: &graph };
    let sums = fx.solve();

    // (path, line, col, message, related) — BTreeSet for dedup + order.
    let mut hits: BTreeSet<(String, u32, u32, String, Vec<Related>)> = BTreeSet::new();
    for node in 0..graph.nodes.len() {
        let Some(flow) = fx.flow(node) else { continue };
        let rel_path = graph.nodes[node].rel_path.to_string();
        // Mode 1: a sink whose sources expand to wire taint fires at the
        // sink, with the call chain (if any) appended.
        for sink in &flow.sinks {
            let e = fx.expand(node, &sink.srcs, &sums, &mut BTreeSet::new());
            let Some(chain) = e.direct else { continue };
            let mut msg = sink_message(sink.kind, &sink.sink, &sink.var);
            let mut related = Vec::new();
            if !chain.is_empty() {
                let names: Vec<String> =
                    chain.iter().map(|h| graph.nodes[*h].display_name()).collect();
                msg.push_str(&format!(" (wire value arrives via {})", names.join(" → ")));
                related = chain
                    .iter()
                    .map(|h| Related {
                        rel_path: graph.nodes[*h].rel_path.to_string(),
                        line: graph.nodes[*h].def.line,
                        col: graph.nodes[*h].def.col,
                        note: format!(
                            "`{}` returns the wire value",
                            graph.nodes[*h].display_name()
                        ),
                    })
                    .collect();
            }
            hits.insert((rel_path.clone(), sink.line, sink.col, msg, related));
        }
        // Mode 2: a locally wire-tainted argument passed into a callee
        // whose parameter reaches a sink fires at the call site.
        for cf in &flow.calls {
            for t in graph.resolve(node, cf.kind, cf.qual.as_deref(), &cf.name) {
                for (pt, path) in &sums[t].sink_params {
                    let Some(arg) = cf.args.get(ix(*pt)) else { continue };
                    let e = fx.expand(node, arg, &sums, &mut BTreeSet::new());
                    if e.direct.is_none() {
                        continue;
                    }
                    let owner = *path.chain.last().unwrap_or(&t);
                    let Some(owner_flow) = fx.flow(owner) else { continue };
                    let Some(s) = owner_flow.sinks.get(path.sink) else { continue };
                    let arg_name = cf.argv.get(ix(*pt)).cloned().unwrap_or_else(|| "_".to_string());
                    let names: Vec<String> =
                        path.chain.iter().map(|h| graph.nodes[*h].display_name()).collect();
                    let msg = format!(
                        "wire-tainted `{}` passed to `{}(..)` reaches {} in `{}` without a \
                         JobSpec::validate / proto::limits bound: {} — clamp or validate it \
                         before the call",
                        arg_name,
                        cf.name,
                        sink_desc(s.kind, &s.sink),
                        graph.nodes[owner].display_name(),
                        names.join(" → "),
                    );
                    let mut related: Vec<Related> = path
                        .chain
                        .iter()
                        .map(|h| Related {
                            rel_path: graph.nodes[*h].rel_path.to_string(),
                            line: graph.nodes[*h].def.line,
                            col: graph.nodes[*h].def.col,
                            note: format!(
                                "`{}` propagates the wire value",
                                graph.nodes[*h].display_name()
                            ),
                        })
                        .collect();
                    related.push(Related {
                        rel_path: graph.nodes[owner].rel_path.to_string(),
                        line: s.line,
                        col: s.col,
                        note: "the unvalidated sink".to_string(),
                    });
                    hits.insert((rel_path.clone(), cf.line, cf.col, msg, related));
                }
            }
        }
    }
    for (rel_path, line, col, message, related) in hits {
        findings.push(Finding {
            rule_id: "wire-taint",
            severity: Severity::Deny,
            rel_path,
            line,
            col,
            message,
            related,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::facts::build_facts;
    use std::path::PathBuf;

    fn facts_for(files: &[(&str, &str)]) -> Vec<FileFacts> {
        files
            .iter()
            .map(|(rel, src)| {
                let class = classify(rel).expect("classifiable");
                let file = SourceFile {
                    rel_path: (*rel).to_string(),
                    abs_path: PathBuf::from(rel),
                    class,
                };
                build_facts(&file, src).expect("facts")
            })
            .collect()
    }

    fn taint_findings(src: &str) -> Vec<Finding> {
        let facts = facts_for(&[("crates/fix/src/lib.rs", src)]);
        let mut findings = Vec::new();
        check_wire_taint(&facts, &mut findings);
        findings.retain(|f| f.rule_id == "wire-taint");
        findings
    }

    #[test]
    fn reader_param_taints_but_count_is_bounded() {
        let hits = taint_findings(
            "pub fn bad(r: &mut Reader<'_>) -> Vec<u8> {\n\
                 let n = r.u32();\n\
                 Vec::with_capacity(n)\n\
             }\n\
             pub fn good(r: &mut Reader<'_>) -> Vec<u8> {\n\
                 let n = r.count(4);\n\
                 Vec::with_capacity(n)\n\
             }\n",
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 3);
        assert!(hits[0].message.contains("`n`"), "{}", hits[0].message);
    }

    #[test]
    fn validate_and_limits_comparisons_sanitize() {
        let hits = taint_findings(
            "pub fn validated(spec_len: usize, r: &mut Reader<'_>) -> Vec<u8> {\n\
                 let spec = decode_frame(r);\n\
                 spec.validate();\n\
                 run_on(spec);\n\
                 Vec::new()\n\
             }\n\
             pub fn compared(r: &mut Reader<'_>) -> Vec<u8> {\n\
                 let n = decode_header(r);\n\
                 if n > limits::MAX_BITS { return Vec::new(); }\n\
                 Vec::with_capacity(n)\n\
             }\n",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn arithmetic_and_vec_macro_sinks_fire() {
        let hits = taint_findings(
            "pub fn arith(r: &mut Reader<'_>) -> usize {\n\
                 let n = sniff(r);\n\
                 n + 12\n\
             }\n\
             pub fn filled(r: &mut Reader<'_>) -> Vec<u8> {\n\
                 let n = sniff(r);\n\
                 vec![0u8; n]\n\
             }\n",
        );
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits.iter().any(|f| f.message.contains("arithmetic")), "{hits:?}");
        assert!(hits.iter().any(|f| f.message.contains("vec![_;")), "{hits:?}");
    }

    #[test]
    fn taint_crosses_two_call_hops_and_fires_at_the_call_site() {
        let hits = taint_findings(
            "pub fn ingest(bytes: &[u8]) -> Vec<u64> {\n\
                 let n = decode_header2(bytes);\n\
                 build_table(n)\n\
             }\n\
             fn build_table(n: usize) -> Vec<u64> {\n\
                 reserve_slots(n)\n\
             }\n\
             fn reserve_slots(n: usize) -> Vec<u64> {\n\
                 Vec::with_capacity(n)\n\
             }\n",
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 3, "fires at the call site: {hits:?}");
        assert!(
            hits[0].message.contains("build_table")
                && hits[0].message.contains("reserve_slots")
                && hits[0].message.contains("with_capacity"),
            "{}",
            hits[0].message
        );
        assert_eq!(hits[0].related.len(), 3, "two fn hops plus the sink: {:?}", hits[0].related);
    }

    #[test]
    fn callee_sanitizer_cleans_the_caller() {
        let hits = taint_findings(
            "pub mod limits { pub const MAX_HEADS: usize = 64; }\n\
             pub fn ingest(bytes: &[u8]) -> Vec<u64> {\n\
                 let n = decode_header2(bytes);\n\
                 build_bounded(n)\n\
             }\n\
             fn build_bounded(n: usize) -> Vec<u64> {\n\
                 let m = n.min(limits::MAX_HEADS);\n\
                 Vec::with_capacity(m)\n\
             }\n\
             pub fn ingest_via_clamp(bytes: &[u8]) -> Vec<u64> {\n\
                 let n = clamp_heads(decode_header2(bytes));\n\
                 Vec::with_capacity(n)\n\
             }\n\
             fn clamp_heads(n: usize) -> usize {\n\
                 n.min(limits::MAX_HEADS)\n\
             }\n",
        );
        assert!(hits.is_empty(), "a bounding callee must clean every consumer: {hits:?}");
    }

    #[test]
    fn tainted_return_values_propagate_to_caller_sinks() {
        let hits = taint_findings(
            "pub fn caller(bytes: &[u8]) -> Vec<u8> {\n\
                 let n = peek_len(bytes);\n\
                 Vec::with_capacity(n)\n\
             }\n\
             fn peek_len(bytes: &[u8]) -> usize {\n\
                 decode_header(bytes)\n\
             }\n",
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 3, "fires at the sink in the caller: {hits:?}");
        assert!(
            hits[0].message.contains("peek_len"),
            "the chain names the laundering fn: {}",
            hits[0].message
        );
    }

    #[test]
    fn flows_are_extracted_per_function_and_cached() {
        let facts = facts_for(&[(
            "crates/fix/src/lib.rs",
            "pub fn f(r: &mut Reader<'_>) -> usize { helper(r.u32()) }\n\
             fn helper(n: usize) -> usize { n }\n",
        )]);
        let f = &facts[0];
        assert_eq!(f.flows.len(), f.fns.len(), "flows stay parallel to fns");
        let helper_flow = &f.flows[1];
        assert_eq!(helper_flow.ret, vec![Src::Param(0)], "{helper_flow:?}");
    }
}
