//! Content-hash incremental cache (`target/xlint-cache.json`).
//!
//! The cache stores the [`FileFacts`] of every analyzed file keyed by the
//! FNV-1a 64 hash of its bytes. On a warm run, an unchanged file skips
//! lexing, parsing, and the per-file rules entirely; the cross-file passes
//! (stream uniqueness, panic reachability, error bridges) are *always*
//! recomputed from the full fact set, so cold and warm runs emit
//! byte-identical findings.
//!
//! The cache is strictly best-effort: any read, parse, shape, or version
//! mismatch is treated as an absent cache, and a failed write never fails
//! the lint.

use std::collections::BTreeMap;
use std::path::Path;

use crate::facts::FileFacts;
use crate::json::{parse, Json};

/// Bumped whenever rules, facts, or serialization change shape, so stale
/// caches from older binaries self-invalidate.
pub const CACHE_VERSION: i64 = 3;

/// FNV-1a 64 fingerprint of the active rule set plus the binary's build
/// identity (crate version, the `XLINT_BUILD_ID` source hash emitted by
/// `build.rs`, and the cache schema). Folded into the cache key so a
/// rule-set change — or any analyzer source change at all — can never
/// serve findings computed under the old rules, even if someone forgets
/// the manual [`CACHE_VERSION`] bump.
pub fn fingerprint_for(rules: &[&str]) -> u64 {
    let mut bytes = Vec::new();
    for r in rules {
        bytes.extend_from_slice(r.as_bytes());
        bytes.push(0);
    }
    bytes.extend_from_slice(env!("CARGO_PKG_VERSION").as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(env!("XLINT_BUILD_ID").as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(&CACHE_VERSION.to_be_bytes());
    crate::facts::fnv1a(&bytes)
}

/// The fingerprint of the rules this binary was built with.
pub fn fingerprint() -> u64 {
    fingerprint_for(crate::facts::RULE_IDS)
}

/// Load a cache file into a by-path map. Any problem yields an empty map.
pub fn load(path: &Path) -> BTreeMap<String, FileFacts> {
    let mut map = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(path) else { return map };
    let Some(doc) = parse(&text) else { return map };
    if doc.get("version").and_then(Json::as_int) != Some(CACHE_VERSION) {
        return map;
    }
    let fp = doc.get("fingerprint").and_then(Json::as_str);
    if fp != Some(format!("{:016x}", fingerprint()).as_str()) {
        return map;
    }
    let Some(files) = doc.get("files").and_then(Json::as_arr) else { return map };
    for entry in files {
        let Some(facts) = FileFacts::from_json(entry) else {
            // One malformed entry means the whole file is untrustworthy.
            return BTreeMap::new();
        };
        map.insert(facts.rel_path.clone(), facts);
    }
    map
}

/// Render the cache document for a fact set (already path-sorted).
pub fn render(facts: &[FileFacts]) -> String {
    Json::obj(vec![
        ("version", Json::Int(CACHE_VERSION)),
        ("fingerprint", Json::Str(format!("{:016x}", fingerprint()))),
        ("files", Json::Arr(facts.iter().map(FileFacts::to_json).collect())),
    ])
    .render()
}

/// Write the cache, creating the parent directory if needed. Best-effort:
/// failures are swallowed — an unwritable target dir must not fail a lint.
pub fn save(path: &Path, facts: &[FileFacts]) {
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let _ = std::fs::write(path, render(facts));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, SourceFile};
    use crate::facts::build_facts;
    use std::path::PathBuf;

    #[test]
    fn round_trips_and_rejects_bad_versions() {
        let rel = "crates/alpha/src/lib.rs";
        let file = SourceFile {
            rel_path: rel.to_string(),
            abs_path: PathBuf::from(rel),
            class: classify(rel).expect("classifiable"),
        };
        let facts = build_facts(&file, "pub fn f() -> u64 { 1 }\n").expect("facts");
        let rendered = render(std::slice::from_ref(&facts));

        let dir = std::env::temp_dir().join("xlint-cache-test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("cache.json");
        std::fs::write(&path, &rendered).expect("write");
        let loaded = load(&path);
        assert_eq!(loaded.get(rel), Some(&facts));

        std::fs::write(&path, rendered.replace("\"version\":3", "\"version\":999")).expect("write");
        assert!(load(&path).is_empty());

        std::fs::write(&path, "not json at all").expect("write");
        assert!(load(&path).is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rule_set_change_flips_the_fingerprint_and_forces_recompute() {
        // Flipping any rule (here: dropping the last one) must change the
        // fingerprint, and a cache written under a different rule set
        // must load as empty — i.e. every file recomputes.
        let current = fingerprint_for(crate::facts::RULE_IDS);
        let mut flipped: Vec<&str> = crate::facts::RULE_IDS.to_vec();
        flipped.pop();
        assert_ne!(current, fingerprint_for(&flipped));
        let renamed: Vec<&str> = crate::facts::RULE_IDS
            .iter()
            .map(|r| if *r == "wire-taint" { "wire-taintt" } else { *r })
            .collect();
        assert_ne!(current, fingerprint_for(&renamed));

        let rel = "crates/alpha/src/lib.rs";
        let file = SourceFile {
            rel_path: rel.to_string(),
            abs_path: PathBuf::from(rel),
            class: classify(rel).expect("classifiable"),
        };
        let facts = build_facts(&file, "pub fn f() -> u64 { 1 }\n").expect("facts");
        let rendered = render(std::slice::from_ref(&facts));
        let dir = std::env::temp_dir().join("xlint-cache-fp-test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("cache.json");

        // Same fingerprint: served. Foreign fingerprint: recomputed.
        std::fs::write(&path, &rendered).expect("write");
        assert!(!load(&path).is_empty());
        let foreign = format!("{:016x}", fingerprint_for(&flipped));
        let ours = format!("{:016x}", fingerprint());
        std::fs::write(&path, rendered.replace(&ours, &foreign)).expect("write");
        assert!(load(&path).is_empty(), "a rule flip must invalidate the cache");
        let _ = std::fs::remove_file(&path);
    }
}
