//! Per-file analysis facts: the unit of incremental caching.
//!
//! The engine splits analysis into a *per-file* phase (lex, parse, local
//! token rules) and a *cross-file* phase (stream uniqueness, call-graph
//! panic reachability, error-bridge completeness). Everything the
//! cross-file phase needs from one file is captured here as [`FileFacts`]
//! — a pure function of the file's bytes — so a warm run can skip the
//! per-file phase for unchanged files and still re-run every cross-file
//! rule over the full workspace. Cold and warm runs therefore produce
//! byte-identical findings by construction.
//!
//! [`FileFacts`] round-trips through the first-party JSON layer
//! ([`crate::json`]) for `target/xlint-cache.json`.

use crate::classify::{FileClass, SourceFile};
use crate::error::XlintError;
use crate::json::Json;
use crate::lexer::{lex, AllowDirective};
use crate::parse::{
    parse_items, BlockSite, Call, CallKind, EnumDef, FnDef, PanicKind, PanicSite, UsePath,
};
use crate::rules::{check_file_local, FileTokens, Finding, Related, Severity};
use crate::summary::{CallFlow, Ceiling, FnFlow, SinkFlow, SinkKind, Src};

/// Every rule id the linter can emit, used to re-intern cached findings
/// into `&'static str`. A cache mentioning an unknown id is stale.
pub const RULE_IDS: &[&str] = &[
    "no-adhoc-rng",
    "stream-id-unique",
    "no-raw-time-volt",
    "no-panic-in-lib",
    "no-lossy-cast",
    "no-wall-clock",
    "forbid-unsafe-everywhere",
    "bad-allow",
    "exec-job-racy",
    "panic-reachable",
    "error-bridge-exhaustive",
    "wire-taint",
    "event-loop-blocking",
    "codec-symmetry",
    "stale-allow",
];

/// Re-intern a rule id string into the static table.
pub fn intern_rule(id: &str) -> Option<&'static str> {
    RULE_IDS.iter().find(|r| **r == id).copied()
}

/// One `StreamId` label use site (R2 input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamFact {
    /// The domain label string.
    pub label: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One `impl From<..ExecError..> for Target` bridge found in a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BridgeFact {
    /// The bridged-into type name.
    pub target: String,
    /// Whether the impl body matches on variants (a wholesale wrap like
    /// `Self::Exec(e)` is exhaustive by construction).
    pub uses_match: bool,
    /// Capitalized identifiers mentioned in the impl body — the variant
    /// names a `match` arm set can cover.
    pub mentioned: Vec<String>,
    /// 1-based line of the impl.
    pub line: u32,
    /// 1-based column of the impl.
    pub col: u32,
}

/// Which codec-side context a `msg::NAME` reference sits in (R13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MsgCtx {
    /// Inside an encode-shaped function (`to_*`, `*encode*`, `parts`).
    Encode,
    /// Inside a decode-shaped function (`from_*`, `*decode*`).
    Decode,
    /// In a golden-vector test file.
    Golden,
    /// Anywhere else (match arms in handlers, docs, non-golden tests).
    Other,
}

/// One wire message constant declared in a `mod msg { .. }` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsgConst {
    /// The constant's name (e.g. `SUBMIT`).
    pub name: String,
    /// 1-based line of the declaration.
    pub line: u32,
    /// 1-based column of the declaration.
    pub col: u32,
}

/// One deduplicated `msg::NAME` reference with its classified context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsgRef {
    /// The referenced constant's name.
    pub name: String,
    /// The context class of the reference site.
    pub ctx: MsgCtx,
}

/// Everything the cross-file phase needs from one source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileFacts {
    /// Root-relative path with `/` separators.
    pub rel_path: String,
    /// Classification (decides rule scope).
    pub class: FileClass,
    /// FNV-1a 64 hash of the file bytes, the cache key.
    pub hash: u64,
    /// Findings from the per-file rules (R1, R3–R8), pre-suppression.
    pub local_findings: Vec<Finding>,
    /// Suppression directives in the file.
    pub allows: Vec<AllowDirective>,
    /// Lines carrying at least one token (directive coverage resolution).
    pub token_lines: Vec<u32>,
    /// `StreamId` label uses (R2 input), non-test code only.
    pub streams: Vec<StreamFact>,
    /// Parsed functions with calls and surviving panic sites.
    pub fns: Vec<FnDef>,
    /// Parsed enums (the `ExecError` variant list comes from here).
    pub enums: Vec<EnumDef>,
    /// Parsed use-paths (call resolution input).
    pub uses: Vec<UsePath>,
    /// First exec-API invocation site in the file, if any.
    pub exec_invoke: Option<(u32, u32)>,
    /// `From<ExecError>` bridges defined in the file.
    pub bridges: Vec<BridgeFact>,
    /// Deduplicated `*Error` type names the file mentions (bridge-by-
    /// reference detection for crates that reuse another crate's error).
    pub error_mentions: Vec<String>,
    /// Wire message constants declared in this file (R13 input).
    pub msg_consts: Vec<MsgConst>,
    /// Classified `msg::NAME` references in this file (R13 input).
    pub msg_refs: Vec<MsgRef>,
    /// Per-function taint flows (R11 input), parallel to [`FileFacts::fns`].
    pub flows: Vec<FnFlow>,
    /// `(rule_id, directive line)` of every allow consumed at build time
    /// (panic/blocking sites dropped by a reasoned directive) — seed data
    /// for the stale-allow pass, which otherwise could not see that these
    /// directives did suppress something.
    pub used_allows: Vec<(String, u32)>,
}

/// FNV-1a 64-bit hash of a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Does some allow directive for `rule_id` cover `line`? A directive on
/// line L covers L and the next token-bearing line after L (the "comment
/// above the offending line" idiom). Shared by the engine's suppression
/// pass and the fact builder's panic-site filtering.
pub fn allow_covers(
    allows: &[AllowDirective],
    token_lines: &[u32],
    rule_id: &str,
    line: u32,
) -> bool {
    covering_directive(allows, token_lines, rule_id, line).is_some()
}

/// The reasoned directive covering `(rule_id, line)`, if any — the same
/// coverage window as [`allow_covers`], returned by reference so callers
/// can record the directive as *used* (the stale-allow pass's input).
pub fn covering_directive<'a>(
    allows: &'a [AllowDirective],
    token_lines: &[u32],
    rule_id: &str,
    line: u32,
) -> Option<&'a AllowDirective> {
    allows.iter().find(|d| {
        d.rule_id == rule_id
            && !d.reason.is_empty()
            && (d.line == line
                || token_lines.iter().find(|t| **t > d.line).is_some_and(|next| *next == line))
    })
}

/// Build the facts for one file from its contents. This is the whole
/// per-file phase; the result is a pure function of `(rel_path, src)`.
pub fn build_facts(file: &SourceFile, src: &str) -> Result<FileFacts, XlintError> {
    let lexed = lex(&file.rel_path, src)?;
    let ft = FileTokens::new(file, &lexed);
    let mut local_findings = Vec::new();
    let mut streams = Vec::new();
    check_file_local(&ft, &mut local_findings, &mut streams);

    let token_lines: Vec<u32> = {
        let mut lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        lines.dedup();
        lines.sort_unstable();
        lines.dedup();
        lines
    };

    let parsed = parse_items(&lexed.tokens, &ft.in_test);
    // Per-fn flow facts feed the cross-file summary fixpoint; extracting
    // them here keeps them a pure function of the bytes, so they cache.
    let flows = crate::summary::extract_flows(file, &lexed.tokens, &parsed);
    let (msg_consts, msg_refs) = crate::dataflow::msg_facts(file, &lexed.tokens, &parsed);
    // Drop panic sites justified at the source: a reasoned allow for
    // either the syntactic rule (R4) or the reachability rule means the
    // site is a documented invariant, not a reachable abort. Blocking
    // sites get the same treatment for the event-loop rule. Each drop
    // records the consuming directive so stale-allow sees it as used.
    let mut used_allows: Vec<(String, u32)> = Vec::new();
    let mut fns = parsed.fns;
    for f in &mut fns {
        f.panics.retain(|p| {
            let hit = covering_directive(&lexed.allows, &token_lines, "panic-reachable", p.line)
                .or_else(|| {
                    covering_directive(&lexed.allows, &token_lines, "no-panic-in-lib", p.line)
                });
            match hit {
                Some(d) => {
                    used_allows.push((d.rule_id.clone(), d.line));
                    false
                }
                None => true,
            }
        });
        f.blocking.retain(|b| {
            match covering_directive(&lexed.allows, &token_lines, "event-loop-blocking", b.line) {
                Some(d) => {
                    used_allows.push((d.rule_id.clone(), d.line));
                    false
                }
                None => true,
            }
        });
    }
    used_allows.sort();
    used_allows.dedup();

    let (exec_invoke, bridges, error_mentions) = exec_facts(&ft);

    Ok(FileFacts {
        rel_path: file.rel_path.clone(),
        class: file.class.clone(),
        hash: fnv1a(src.as_bytes()),
        local_findings,
        allows: lexed.allows,
        token_lines,
        streams,
        fns,
        enums: parsed.enums,
        uses: parsed.uses,
        exec_invoke,
        bridges,
        error_mentions,
        msg_consts,
        msg_refs,
        flows,
        used_allows,
    })
}

/// Token-level exec facts: first exec invocation, `From<ExecError>`
/// bridges, and `*Error` type mentions.
fn exec_facts(ft: &FileTokens<'_>) -> (Option<(u32, u32)>, Vec<BridgeFact>, Vec<String>) {
    let mut invoke = None;
    let mut bridges = Vec::new();
    let mut mentions: Vec<String> = Vec::new();
    let toks = ft.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        let Some(tok) = toks.get(i) else { break };
        let in_test = ft.in_test.get(i).copied().unwrap_or(false);
        if tok.kind == crate::lexer::TokenKind::Ident && !in_test {
            let name = tok.text.as_str();
            // Invocation: `ExecPool` anywhere, or an `exec::` path that is
            // not inside a `use` item (imports alone don't invoke).
            if invoke.is_none()
                && (name == "ExecPool"
                    || (name == "exec"
                        && ft.is_punct(i + 1, ":")
                        && ft.is_punct(i + 2, ":")
                        && !(i > 0 && ft.is_ident(i - 1, "use"))))
            {
                invoke = Some((tok.line, tok.col));
            }
            if name.ends_with("Error") && !mentions.iter().any(|m| m == name) {
                mentions.push(name.to_string());
            }
            // Bridge: `impl From < .. ExecError .. > for Target { body }`.
            if name == "impl" {
                if let Some(bridge) = parse_bridge(ft, i) {
                    bridges.push(bridge);
                }
            }
        }
        i += 1;
    }
    mentions.sort_unstable();
    (invoke, bridges, mentions)
}

/// Parse a `From<..ExecError..>` impl starting at the `impl` token.
fn parse_bridge(ft: &FileTokens<'_>, at: usize) -> Option<BridgeFact> {
    let toks = ft.tokens;
    let mut i = at + 1;
    // Optional impl generics.
    if ft.is_punct(i, "<") {
        i = skip_angles(ft, i);
    }
    if !ft.is_ident(i, "From") || !ft.is_punct(i + 1, "<") {
        return None;
    }
    let args_end = skip_angles(ft, i + 1);
    let has_exec_error =
        (i + 2..args_end).any(|k| toks.get(k).is_some_and(|t| t.text == "ExecError"));
    if !has_exec_error {
        return None;
    }
    if !ft.is_ident(args_end, "for") {
        return None;
    }
    // Target: last ident before the body brace.
    let mut j = args_end + 1;
    let mut target = None;
    while j < toks.len() && !ft.is_punct(j, "{") {
        if let Some(t) = toks.get(j) {
            if t.kind == crate::lexer::TokenKind::Ident {
                target = Some(t.text.clone());
            }
        }
        j += 1;
    }
    let target = target?;
    let (line, col) = toks.get(at).map(|t| (t.line, t.col))?;
    // Body: capitalized idents + whether a `match` appears.
    let mut depth = 0i32;
    let mut uses_match = false;
    let mut mentioned: Vec<String> = Vec::new();
    while j < toks.len() {
        if ft.is_punct(j, "{") {
            depth += 1;
        } else if ft.is_punct(j, "}") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if let Some(t) = toks.get(j) {
            if t.kind == crate::lexer::TokenKind::Ident {
                if t.text == "match" {
                    uses_match = true;
                } else if t.text.chars().next().is_some_and(char::is_uppercase)
                    && !mentioned.contains(&t.text)
                {
                    mentioned.push(t.text.clone());
                }
            }
        }
        j += 1;
    }
    mentioned.sort_unstable();
    Some(BridgeFact { target, uses_match, mentioned, line, col })
}

fn skip_angles(ft: &FileTokens<'_>, open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < ft.tokens.len() {
        if ft.is_punct(i, "<") {
            depth += 1;
        } else if ft.is_punct(i, ">") && !(i > 0 && ft.is_punct(i - 1, "-")) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

// ---------------------------------------------------------------------------
// JSON (de)serialization for the cache.
// ---------------------------------------------------------------------------

fn u32_json(v: u32) -> Json {
    Json::Int(i64::from(v))
}

fn json_u32(j: Option<&Json>) -> Option<u32> {
    j.and_then(Json::as_int).and_then(|n| u32::try_from(n).ok())
}

impl FileFacts {
    /// Serialize for the cache file.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("path", Json::str(&self.rel_path)),
            ("class", class_to_json(&self.class)),
            ("hash", Json::Str(format!("{:016x}", self.hash))),
            ("findings", Json::Arr(self.local_findings.iter().map(finding_to_json).collect())),
            (
                "allows",
                Json::Arr(
                    self.allows
                        .iter()
                        .map(|a| {
                            Json::obj(vec![
                                ("rule", Json::str(&a.rule_id)),
                                ("reason", Json::str(&a.reason)),
                                ("line", u32_json(a.line)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("token_lines", Json::Arr(self.token_lines.iter().map(|l| u32_json(*l)).collect())),
            (
                "streams",
                Json::Arr(
                    self.streams
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("label", Json::str(&s.label)),
                                ("line", u32_json(s.line)),
                                ("col", u32_json(s.col)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("fns", Json::Arr(self.fns.iter().map(fn_to_json).collect())),
            (
                "enums",
                Json::Arr(
                    self.enums
                        .iter()
                        .map(|e| {
                            Json::obj(vec![
                                ("name", Json::str(&e.name)),
                                (
                                    "variants",
                                    Json::Arr(e.variants.iter().map(|v| Json::str(v)).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "uses",
                Json::Arr(
                    self.uses
                        .iter()
                        .map(|u| {
                            let mut pairs = vec![(
                                "segs",
                                Json::Arr(u.segments.iter().map(|s| Json::str(s)).collect()),
                            )];
                            if let Some(alias) = &u.alias {
                                pairs.push(("alias", Json::str(alias)));
                            }
                            Json::obj(pairs)
                        })
                        .collect(),
                ),
            ),
            (
                "exec_invoke",
                match self.exec_invoke {
                    Some((line, col)) => Json::Arr(vec![u32_json(line), u32_json(col)]),
                    None => Json::Null,
                },
            ),
            (
                "bridges",
                Json::Arr(
                    self.bridges
                        .iter()
                        .map(|b| {
                            Json::obj(vec![
                                ("target", Json::str(&b.target)),
                                ("uses_match", Json::Bool(b.uses_match)),
                                (
                                    "mentioned",
                                    Json::Arr(b.mentioned.iter().map(|m| Json::str(m)).collect()),
                                ),
                                ("line", u32_json(b.line)),
                                ("col", u32_json(b.col)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "error_mentions",
                Json::Arr(self.error_mentions.iter().map(|m| Json::str(m)).collect()),
            ),
            (
                "msg_consts",
                Json::Arr(
                    self.msg_consts
                        .iter()
                        .map(|c| {
                            Json::obj(vec![
                                ("name", Json::str(&c.name)),
                                ("line", u32_json(c.line)),
                                ("col", u32_json(c.col)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "msg_refs",
                Json::Arr(
                    self.msg_refs
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("name", Json::str(&r.name)),
                                ("ctx", Json::str(msg_ctx_label(r.ctx))),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("flows", Json::Arr(self.flows.iter().map(flow_to_json).collect())),
            (
                "used_allows",
                Json::Arr(
                    self.used_allows
                        .iter()
                        .map(|(rule, line)| Json::Arr(vec![Json::str(rule), u32_json(*line)]))
                        .collect(),
                ),
            ),
        ])
    }

    /// Deserialize from the cache file; `None` on any shape mismatch.
    pub fn from_json(j: &Json) -> Option<FileFacts> {
        let rel_path = j.get("path")?.as_str()?.to_string();
        let class = class_from_json(j.get("class")?)?;
        let hash = u64::from_str_radix(j.get("hash")?.as_str()?, 16).ok()?;
        let local_findings = j
            .get("findings")?
            .as_arr()?
            .iter()
            .map(finding_from_json)
            .collect::<Option<Vec<_>>>()?;
        let allows = j
            .get("allows")?
            .as_arr()?
            .iter()
            .map(|a| {
                Some(AllowDirective {
                    rule_id: a.get("rule")?.as_str()?.to_string(),
                    reason: a.get("reason")?.as_str()?.to_string(),
                    line: json_u32(a.get("line"))?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let token_lines = j
            .get("token_lines")?
            .as_arr()?
            .iter()
            .map(|l| json_u32(Some(l)))
            .collect::<Option<Vec<_>>>()?;
        let streams = j
            .get("streams")?
            .as_arr()?
            .iter()
            .map(|s| {
                Some(StreamFact {
                    label: s.get("label")?.as_str()?.to_string(),
                    line: json_u32(s.get("line"))?,
                    col: json_u32(s.get("col"))?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let fns = j.get("fns")?.as_arr()?.iter().map(fn_from_json).collect::<Option<Vec<_>>>()?;
        let enums = j
            .get("enums")?
            .as_arr()?
            .iter()
            .map(|e| {
                Some(EnumDef {
                    name: e.get("name")?.as_str()?.to_string(),
                    variants: strings(e.get("variants")?)?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let uses = j
            .get("uses")?
            .as_arr()?
            .iter()
            .map(|u| {
                Some(UsePath {
                    segments: strings(u.get("segs")?)?,
                    alias: match u.get("alias") {
                        Some(a) => Some(a.as_str()?.to_string()),
                        None => None,
                    },
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let exec_invoke = match j.get("exec_invoke")? {
            Json::Null => None,
            Json::Arr(items) => Some((json_u32(items.first())?, json_u32(items.get(1))?)),
            _ => return None,
        };
        let bridges = j
            .get("bridges")?
            .as_arr()?
            .iter()
            .map(|b| {
                Some(BridgeFact {
                    target: b.get("target")?.as_str()?.to_string(),
                    uses_match: b.get("uses_match")?.as_bool()?,
                    mentioned: strings(b.get("mentioned")?)?,
                    line: json_u32(b.get("line"))?,
                    col: json_u32(b.get("col"))?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let error_mentions = strings(j.get("error_mentions")?)?;
        let msg_consts = j
            .get("msg_consts")?
            .as_arr()?
            .iter()
            .map(|c| {
                Some(MsgConst {
                    name: c.get("name")?.as_str()?.to_string(),
                    line: json_u32(c.get("line"))?,
                    col: json_u32(c.get("col"))?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let msg_refs = j
            .get("msg_refs")?
            .as_arr()?
            .iter()
            .map(|r| {
                Some(MsgRef {
                    name: r.get("name")?.as_str()?.to_string(),
                    ctx: msg_ctx_from_label(r.get("ctx")?.as_str()?)?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let flows =
            j.get("flows")?.as_arr()?.iter().map(flow_from_json).collect::<Option<Vec<_>>>()?;
        let used_allows = j
            .get("used_allows")?
            .as_arr()?
            .iter()
            .map(|u| {
                let items = u.as_arr()?;
                Some((items.first()?.as_str()?.to_string(), json_u32(items.get(1))?))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(FileFacts {
            rel_path,
            class,
            hash,
            local_findings,
            allows,
            token_lines,
            streams,
            fns,
            enums,
            uses,
            exec_invoke,
            bridges,
            error_mentions,
            msg_consts,
            msg_refs,
            flows,
            used_allows,
        })
    }
}

fn msg_ctx_label(ctx: MsgCtx) -> &'static str {
    match ctx {
        MsgCtx::Encode => "enc",
        MsgCtx::Decode => "dec",
        MsgCtx::Golden => "gold",
        MsgCtx::Other => "other",
    }
}

fn msg_ctx_from_label(label: &str) -> Option<MsgCtx> {
    match label {
        "enc" => Some(MsgCtx::Encode),
        "dec" => Some(MsgCtx::Decode),
        "gold" => Some(MsgCtx::Golden),
        "other" => Some(MsgCtx::Other),
        _ => None,
    }
}

fn strings(j: &Json) -> Option<Vec<String>> {
    j.as_arr()?.iter().map(|s| s.as_str().map(str::to_string)).collect()
}

fn class_to_json(class: &FileClass) -> Json {
    match class {
        FileClass::Src { crate_name } => Json::obj(vec![("src", Json::str(crate_name))]),
        FileClass::Test => Json::str("test"),
        FileClass::Example => Json::str("example"),
        FileClass::BuildScript => Json::str("build"),
    }
}

fn class_from_json(j: &Json) -> Option<FileClass> {
    match j {
        Json::Str(s) if s == "test" => Some(FileClass::Test),
        Json::Str(s) if s == "example" => Some(FileClass::Example),
        Json::Str(s) if s == "build" => Some(FileClass::BuildScript),
        Json::Obj(_) => Some(FileClass::Src { crate_name: j.get("src")?.as_str()?.to_string() }),
        _ => None,
    }
}

fn severity_label(sev: Severity) -> &'static str {
    sev.label()
}

fn finding_to_json(f: &Finding) -> Json {
    let mut pairs = vec![
        ("rule", Json::str(f.rule_id)),
        ("sev", Json::str(severity_label(f.severity))),
        ("path", Json::str(&f.rel_path)),
        ("line", u32_json(f.line)),
        ("col", u32_json(f.col)),
        ("msg", Json::str(&f.message)),
    ];
    if !f.related.is_empty() {
        pairs.push((
            "rel",
            Json::Arr(
                f.related
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("path", Json::str(&r.rel_path)),
                            ("line", u32_json(r.line)),
                            ("col", u32_json(r.col)),
                            ("note", Json::str(&r.note)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    Json::obj(pairs)
}

fn finding_from_json(j: &Json) -> Option<Finding> {
    let severity = match j.get("sev")?.as_str()? {
        "warn" => Severity::Warn,
        "deny" => Severity::Deny,
        _ => return None,
    };
    let related = match j.get("rel") {
        Some(arr) => arr
            .as_arr()?
            .iter()
            .map(|r| {
                Some(Related {
                    rel_path: r.get("path")?.as_str()?.to_string(),
                    line: json_u32(r.get("line"))?,
                    col: json_u32(r.get("col"))?,
                    note: r.get("note")?.as_str()?.to_string(),
                })
            })
            .collect::<Option<Vec<_>>>()?,
        None => Vec::new(),
    };
    Some(Finding {
        rule_id: intern_rule(j.get("rule")?.as_str()?)?,
        severity,
        rel_path: j.get("path")?.as_str()?.to_string(),
        line: json_u32(j.get("line"))?,
        col: json_u32(j.get("col"))?,
        message: j.get("msg")?.as_str()?.to_string(),
        related,
    })
}

fn call_kind_label(kind: CallKind) -> &'static str {
    match kind {
        CallKind::Free => "free",
        CallKind::Method => "method",
        CallKind::Qualified => "qual",
    }
}

fn fn_to_json(f: &FnDef) -> Json {
    Json::obj(vec![
        ("name", Json::str(&f.name)),
        (
            "qual",
            match &f.qual {
                Some(q) => Json::str(q),
                None => Json::Null,
            },
        ),
        ("pub", Json::Bool(f.is_pub)),
        ("test", Json::Bool(f.in_test)),
        ("line", u32_json(f.line)),
        ("col", u32_json(f.col)),
        ("params", Json::Arr(f.params.iter().map(|p| Json::str(p)).collect())),
        ("ptypes", Json::Arr(f.param_types.iter().map(|p| Json::str(p)).collect())),
        (
            "calls",
            Json::Arr(
                f.calls
                    .iter()
                    .map(|c| {
                        let mut pairs = vec![
                            ("k", Json::str(call_kind_label(c.kind))),
                            ("n", Json::str(&c.name)),
                        ];
                        if let Some(q) = &c.qual {
                            pairs.push(("q", Json::str(q)));
                        }
                        Json::obj(pairs)
                    })
                    .collect(),
            ),
        ),
        (
            "panics",
            Json::Arr(
                f.panics
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            (
                                "k",
                                Json::str(match p.kind {
                                    PanicKind::Macro => "macro",
                                    PanicKind::UnwrapExpect => "unwrap",
                                    PanicKind::Index => "index",
                                }),
                            ),
                            ("d", Json::str(&p.desc)),
                            ("line", u32_json(p.line)),
                            ("col", u32_json(p.col)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "blocking",
            Json::Arr(
                f.blocking
                    .iter()
                    .map(|b| {
                        Json::obj(vec![
                            ("d", Json::str(&b.desc)),
                            ("line", u32_json(b.line)),
                            ("col", u32_json(b.col)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn fn_from_json(j: &Json) -> Option<FnDef> {
    let calls = j
        .get("calls")?
        .as_arr()?
        .iter()
        .map(|c| {
            let kind = match c.get("k")?.as_str()? {
                "free" => CallKind::Free,
                "method" => CallKind::Method,
                "qual" => CallKind::Qualified,
                _ => return None,
            };
            Some(Call {
                kind,
                qual: match c.get("q") {
                    Some(q) => Some(q.as_str()?.to_string()),
                    None => None,
                },
                name: c.get("n")?.as_str()?.to_string(),
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let panics = j
        .get("panics")?
        .as_arr()?
        .iter()
        .map(|p| {
            let kind = match p.get("k")?.as_str()? {
                "macro" => PanicKind::Macro,
                "unwrap" => PanicKind::UnwrapExpect,
                "index" => PanicKind::Index,
                _ => return None,
            };
            Some(PanicSite {
                kind,
                desc: p.get("d")?.as_str()?.to_string(),
                line: json_u32(p.get("line"))?,
                col: json_u32(p.get("col"))?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let blocking = j
        .get("blocking")?
        .as_arr()?
        .iter()
        .map(|b| {
            Some(BlockSite {
                desc: b.get("d")?.as_str()?.to_string(),
                line: json_u32(b.get("line"))?,
                col: json_u32(b.get("col"))?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some(FnDef {
        name: j.get("name")?.as_str()?.to_string(),
        qual: match j.get("qual")? {
            Json::Null => None,
            q => Some(q.as_str()?.to_string()),
        },
        is_pub: j.get("pub")?.as_bool()?,
        in_test: j.get("test")?.as_bool()?,
        line: json_u32(j.get("line"))?,
        col: json_u32(j.get("col"))?,
        params: strings(j.get("params")?)?,
        param_types: strings(j.get("ptypes")?)?,
        calls,
        panics,
        blocking,
    })
}

fn src_label(s: &Src) -> String {
    match s {
        Src::Direct => "d".to_string(),
        Src::Param(p) => format!("p{p}"),
        Src::Call(k) => format!("c{k}"),
    }
}

fn src_from_label(l: &str) -> Option<Src> {
    if l == "d" {
        return Some(Src::Direct);
    }
    if l.len() < 2 {
        return None;
    }
    let (head, rest) = l.split_at(1);
    let n = rest.parse().ok()?;
    match head {
        "p" => Some(Src::Param(n)),
        "c" => Some(Src::Call(n)),
        _ => None,
    }
}

fn srcs_to_json(srcs: &[Src]) -> Json {
    Json::Arr(srcs.iter().map(|s| Json::Str(src_label(s))).collect())
}

fn srcs_from_json(j: &Json) -> Option<Vec<Src>> {
    j.as_arr()?.iter().map(|s| src_from_label(s.as_str()?)).collect()
}

fn ceiling_to_json(c: &Ceiling) -> Json {
    match c {
        Ceiling::Lit(n) => Json::Int(i64::try_from(*n).unwrap_or(i64::MAX)),
        Ceiling::Sym(s) => Json::str(s),
    }
}

fn ceiling_from_json(j: &Json) -> Option<Ceiling> {
    match j {
        Json::Int(n) => Some(Ceiling::Lit(u64::try_from(*n).ok()?)),
        Json::Str(s) => Some(Ceiling::Sym(s.clone())),
        _ => None,
    }
}

fn sink_kind_label(kind: SinkKind) -> &'static str {
    match kind {
        SinkKind::Alloc => "alloc",
        SinkKind::VecMacro => "vecmac",
        SinkKind::PoolArg => "poolarg",
        SinkKind::PoolRecv => "poolrecv",
        SinkKind::Arith => "arith",
    }
}

fn sink_kind_from_label(label: &str) -> Option<SinkKind> {
    match label {
        "alloc" => Some(SinkKind::Alloc),
        "vecmac" => Some(SinkKind::VecMacro),
        "poolarg" => Some(SinkKind::PoolArg),
        "poolrecv" => Some(SinkKind::PoolRecv),
        "arith" => Some(SinkKind::Arith),
        _ => None,
    }
}

fn flow_to_json(f: &FnFlow) -> Json {
    let mut pairs = vec![
        (
            "calls",
            Json::Arr(
                f.calls
                    .iter()
                    .map(|c| {
                        let mut cp = vec![
                            ("k", Json::str(call_kind_label(c.kind))),
                            ("n", Json::str(&c.name)),
                            ("args", Json::Arr(c.args.iter().map(|a| srcs_to_json(a)).collect())),
                            ("argv", Json::Arr(c.argv.iter().map(|v| Json::str(v)).collect())),
                            ("line", u32_json(c.line)),
                            ("col", u32_json(c.col)),
                        ];
                        if let Some(q) = &c.qual {
                            cp.push(("q", Json::str(q)));
                        }
                        Json::obj(cp)
                    })
                    .collect(),
            ),
        ),
        (
            "sinks",
            Json::Arr(
                f.sinks
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("k", Json::str(sink_kind_label(s.kind))),
                            ("sink", Json::str(&s.sink)),
                            ("var", Json::str(&s.var)),
                            ("srcs", srcs_to_json(&s.srcs)),
                            ("line", u32_json(s.line)),
                            ("col", u32_json(s.col)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("ret", srcs_to_json(&f.ret)),
    ];
    if let Some(c) = &f.ret_ceiling {
        pairs.push(("ceil", ceiling_to_json(c)));
    }
    Json::obj(pairs)
}

fn flow_from_json(j: &Json) -> Option<FnFlow> {
    let calls = j
        .get("calls")?
        .as_arr()?
        .iter()
        .map(|c| {
            let kind = match c.get("k")?.as_str()? {
                "free" => CallKind::Free,
                "method" => CallKind::Method,
                "qual" => CallKind::Qualified,
                _ => return None,
            };
            Some(CallFlow {
                kind,
                qual: match c.get("q") {
                    Some(q) => Some(q.as_str()?.to_string()),
                    None => None,
                },
                name: c.get("n")?.as_str()?.to_string(),
                args: c
                    .get("args")?
                    .as_arr()?
                    .iter()
                    .map(srcs_from_json)
                    .collect::<Option<Vec<_>>>()?,
                argv: strings(c.get("argv")?)?,
                line: json_u32(c.get("line"))?,
                col: json_u32(c.get("col"))?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let sinks = j
        .get("sinks")?
        .as_arr()?
        .iter()
        .map(|s| {
            Some(SinkFlow {
                kind: sink_kind_from_label(s.get("k")?.as_str()?)?,
                sink: s.get("sink")?.as_str()?.to_string(),
                var: s.get("var")?.as_str()?.to_string(),
                srcs: srcs_from_json(s.get("srcs")?)?,
                line: json_u32(s.get("line"))?,
                col: json_u32(s.get("col"))?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let ret = srcs_from_json(j.get("ret")?)?;
    let ret_ceiling = match j.get("ceil") {
        Some(c) => Some(ceiling_from_json(c)?),
        None => None,
    };
    Some(FnFlow { calls, sinks, ret, ret_ceiling })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use std::path::PathBuf;

    fn facts_for(rel_path: &str, src: &str) -> FileFacts {
        let class = classify(rel_path).expect("classifiable");
        let file =
            SourceFile { rel_path: rel_path.to_string(), abs_path: PathBuf::from(rel_path), class };
        build_facts(&file, src).expect("facts build")
    }

    #[test]
    fn facts_round_trip_through_json() {
        let facts = facts_for(
            "crates/signal/src/x.rs",
            "use exec::ExecPool;\n\
             pub enum SignalError { Exec(exec::ExecError), Other }\n\
             impl From<exec::ExecError> for SignalError {\n\
                 fn from(e: exec::ExecError) -> Self { SignalError::Exec(e) }\n\
             }\n\
             pub fn f(xs: &[u64], i: usize) -> u64 { helper(); xs[i] }\n\
             fn helper() {}\n",
        );
        let json = facts.to_json();
        let back = FileFacts::from_json(&json).expect("round trip");
        assert_eq!(back, facts);
        // Byte stability of the serialized form.
        assert_eq!(back.to_json().render(), json.render());
    }

    #[test]
    fn allowed_panic_sites_are_dropped_at_build_time() {
        let facts = facts_for(
            "crates/signal/src/x.rs",
            "pub fn f(xs: &[u64], i: usize) -> u64 {\n\
                 // xlint::allow(panic-reachable, i is taken modulo len by every caller)\n\
                 xs[i]\n\
             }\n\
             pub fn g(ys: &[u64], i: usize) -> u64 { ys[i] }\n",
        );
        let f = facts.fns.iter().find(|f| f.name == "f").expect("f");
        assert!(f.panics.is_empty(), "{:?}", f.panics);
        let g = facts.fns.iter().find(|f| f.name == "g").expect("g");
        assert_eq!(g.panics.len(), 1);
    }

    #[test]
    fn bridge_and_invoke_facts_are_collected() {
        let facts = facts_for(
            "crates/minitester/src/error.rs",
            "pub enum MiniTesterError { Exec(exec::ExecError) }\n\
             impl From<exec::ExecError> for MiniTesterError {\n\
                 fn from(e: exec::ExecError) -> Self {\n\
                     match e {\n\
                         exec::ExecError::JobPanicked { .. } => MiniTesterError::Exec(e),\n\
                         other => MiniTesterError::Exec(other),\n\
                     }\n\
                 }\n\
             }\n",
        );
        assert!(facts.exec_invoke.is_some());
        let bridge = facts.bridges.first().expect("bridge found");
        assert_eq!(bridge.target, "MiniTesterError");
        assert!(bridge.uses_match);
        assert!(bridge.mentioned.iter().any(|m| m == "JobPanicked"));
        assert!(facts.error_mentions.iter().any(|m| m == "MiniTesterError"));
    }

    #[test]
    fn hash_tracks_content() {
        let a = fnv1a(b"hello");
        let b = fnv1a(b"hello!");
        assert_ne!(a, b);
        assert_eq!(a, fnv1a(b"hello"));
    }
}
