//! The warn-tier ratchet.
//!
//! Deny findings fail immediately; warn findings are compared against a
//! committed allowlist of pre-existing debt. Each baseline entry caps the
//! number of findings of one rule in one file. New findings push a count
//! over its cap and fail CI; fixing old ones leaves headroom that
//! `--fix-allowlist` shrinks back down — the ratchet only turns one way.

use std::collections::BTreeMap;
use std::path::Path;

use crate::error::XlintError;
use crate::rules::{Finding, Severity};

/// Allowed warn-finding counts keyed by `(rule_id, rel_path)`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<(String, String), usize>,
}

/// One `(rule, file)` group whose current findings exceed the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    /// Rule id.
    pub rule_id: String,
    /// Root-relative path.
    pub rel_path: String,
    /// Findings now.
    pub current: usize,
    /// Findings allowed by the baseline.
    pub allowed: usize,
}

impl Baseline {
    /// Load a baseline file; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Result<Self, XlintError> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Self::default()),
            Err(e) => {
                return Err(XlintError::Io { path: path.display().to_string(), msg: e.to_string() })
            }
        };
        let mut counts = BTreeMap::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let entry = (|| {
                let count: usize = parts.next()?.parse().ok()?;
                let rule = parts.next()?.to_string();
                let path = parts.next()?.to_string();
                Some(((rule, path), count))
            })();
            match entry {
                Some((key, count)) => {
                    counts.insert(key, count);
                }
                None => {
                    return Err(XlintError::BadBaseline {
                        path: path.display().to_string(),
                        line: u32::try_from(idx).unwrap_or(u32::MAX).saturating_add(1),
                    })
                }
            }
        }
        Ok(Baseline { counts })
    }

    /// Build a baseline capturing the current warn-tier findings.
    pub fn capture(findings: &[Finding]) -> Self {
        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for f in findings.iter().filter(|f| f.severity == Severity::Warn) {
            *counts.entry((f.rule_id.to_string(), f.rel_path.clone())).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Serialize in the committed-file format.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# xlint warn-tier baseline — pre-existing findings allowed while they burn down.\n\
             # Regenerate with `cargo run -p gigatest-xlint --release --offline -- --fix-allowlist`\n\
             # after reducing counts; never regenerate to admit new findings.\n\
             # format: <count> <rule-id> <path>\n",
        );
        for ((rule, path), count) in &self.counts {
            out.push_str(&format!("{count} {rule} {path}\n"));
        }
        out
    }

    /// Compare current warn findings against the baseline. Returns the
    /// `(rule, file)` groups that regressed, and the number of groups
    /// with burn-down headroom (current < allowed).
    pub fn compare(&self, findings: &[Finding]) -> (Vec<Regression>, usize) {
        let current = Baseline::capture(findings);
        let mut regressions = Vec::new();
        let mut improved = 0usize;
        for (key, &count) in &current.counts {
            let allowed = self.counts.get(key).copied().unwrap_or(0);
            if count > allowed {
                regressions.push(Regression {
                    rule_id: key.0.clone(),
                    rel_path: key.1.clone(),
                    current: count,
                    allowed,
                });
            } else if count < allowed {
                improved += 1;
            }
        }
        // Entries that vanished entirely also count as burn-down.
        improved += self.counts.keys().filter(|k| !current.counts.contains_key(*k)).count();
        (regressions, improved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warn(rule: &'static str, path: &str) -> Finding {
        Finding {
            rule_id: rule,
            severity: Severity::Warn,
            rel_path: path.to_string(),
            line: 1,
            col: 1,
            message: String::new(),
            related: Vec::new(),
        }
    }

    #[test]
    fn ratchet_fails_on_new_findings_and_tolerates_burn_down() {
        let old = [warn("no-lossy-cast", "a.rs"), warn("no-lossy-cast", "a.rs")];
        let baseline = Baseline::capture(&old);

        // Same count: clean. One fewer: improved. One more: regression.
        assert!(baseline.compare(&old).0.is_empty());
        let (regs, improved) = baseline.compare(&old[..1]);
        assert!(regs.is_empty());
        assert_eq!(improved, 1);
        let more = [
            warn("no-lossy-cast", "a.rs"),
            warn("no-lossy-cast", "a.rs"),
            warn("no-lossy-cast", "a.rs"),
        ];
        let (regs, _) = baseline.compare(&more);
        assert_eq!(regs.len(), 1);
        assert_eq!((regs[0].current, regs[0].allowed), (3, 2));
    }

    #[test]
    fn render_and_reload_round_trip() {
        let baseline =
            Baseline::capture(&[warn("no-raw-time-volt", "crates/signal/src/jitter.rs")]);
        let dir = std::env::temp_dir().join("xlint-baseline-test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("baseline.txt");
        std::fs::write(&path, baseline.render()).expect("write");
        let loaded = Baseline::load(&path).expect("load");
        assert_eq!(loaded, baseline);
    }

    #[test]
    fn missing_file_is_empty_and_garbage_is_rejected() {
        let missing = Path::new("/nonexistent/xlint-baseline");
        assert_eq!(Baseline::load(missing).expect("empty"), Baseline::default());
        let dir = std::env::temp_dir().join("xlint-baseline-test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("bad.txt");
        std::fs::write(&path, "not-a-count some-rule some-path\n").expect("write");
        assert!(Baseline::load(&path).is_err());
    }
}
