//! # gigatest-bench — experiment harness reproducing every paper figure
//!
//! One function per figure/table of Keezer et al. (DATE 2005). Each runs
//! the corresponding experiment on the simulated system and returns
//! [`ate::Report`] rows comparing the paper's number with this
//! reproduction's measurement. The `figures` binary prints the full report;
//! the Criterion benches in `benches/` time the same experiments.
//!
//! The paper has no numbered tables — its evaluation is Figures 4 and 6–19
//! plus the summary claims — so the experiment ids are figure numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ate::calibration::{placement_audit, worst_placement_error};
use ate::cost::CostComparison;
use ate::measurement::{Comparison, PaperValue, Report};
use ate::{AteError, TestProgram, TestSystem};
use minitester::{MiniTesterDatapath, ProbeArray};
use pecl::SignalChain;
use pstime::{DataRate, Duration};
use rng::SeedTree;
use signal::measure::{
    edge_jitter_from_acquisitions, measure_levels, measure_transition, transition_time_stats,
};
use signal::{BitStream, EyeDiagram};
use testbed::frame::SlotTiming;
use testbed::scaling::ScalingPoint;
use vortex::traffic::{run_load, Pattern};
use vortex::VortexParams;

/// Number of PRBS bits used for eye experiments (enough edges for stable
/// p-p statistics, small enough to keep the harness fast).
pub const EYE_BITS: usize = 4_096;

/// Fig. 4 — the packet-slot timing structure: every segment duration the
/// figure annotates, checked against the generated frame.
///
/// # Errors
///
/// Currently infallible; returns `Result` for a uniform figure API.
pub fn fig04_packet_slot() -> Result<Report, AteError> {
    let t = SlotTiming::paper();
    let mut report = Report::new();
    let mut row = |quantity: &str, paper_ns: f64, measured: Duration| {
        report.push(Comparison::new(
            "FIG4",
            quantity,
            "ns",
            PaperValue::new(paper_ns, 0.0),
            measured.as_ns_f64(),
        ));
    };
    row("packet slot (64 bits)", 25.6, t.slot_duration());
    row("dead time (8 bits)", 3.2, t.dead_duration());
    row("guard time (5 bits)", 2.0, t.guard_duration());
    row("valid data (32 bits)", 12.8, t.data_duration());
    row("clock/data window (46 bits)", 18.4, t.window_duration());
    Ok(report)
}

/// Fig. 6 — 2.5 Gbps transmitter signals with 70–75 ps transitions.
///
/// # Errors
///
/// Propagates rate-limit errors from the PECL chain.
pub fn fig06_tx_waveforms(seed: u64) -> Result<Report, AteError> {
    let chain = SignalChain::testbed_transmitter();
    let rate = DataRate::from_gbps(2.5);
    // Four 32-bit words serialized, as in the figure.
    let words = [0xDEAD_BEEFu32, 0x0123_4567, 0x8BAD_F00D, 0x5555_AAAA];
    let mut rise_all = signal::RunningStats::new();
    let mut fall_all = signal::RunningStats::new();
    let tree = SeedTree::new(seed).stream("bench.fig06");
    for (i, w) in words.iter().enumerate() {
        let bits = BitStream::from_word_msb_first(u64::from(*w), 32);
        let wave = chain.render(&bits, rate, tree.index(i as u64).seed())?;
        if let Ok((rise, fall)) = transition_time_stats(&wave, rate) {
            rise_all.merge(&rise);
            fall_all.merge(&fall);
        }
    }
    let mut report = Report::new();
    report.push(Comparison::new(
        "FIG6",
        "rise time 20-80%",
        "ps",
        PaperValue::new(72.5, 0.07), // "70 to 75 ps"
        rise_all.mean(),
    ));
    report.push(Comparison::new(
        "FIG6",
        "fall time 20-80%",
        "ps",
        PaperValue::new(72.5, 0.07),
        fall_all.mean(),
    ));
    Ok(report)
}

fn eye_experiment(
    id: &str,
    system: &mut TestSystem,
    gbps: f64,
    paper_jitter_pp: Option<f64>,
    paper_opening: f64,
    seed: u64,
) -> Result<Report, AteError> {
    let rate = DataRate::from_gbps(gbps);
    let result = system.run(&TestProgram::prbs_eye(rate, EYE_BITS), seed)?;
    let mut report = Report::new();
    if let Some(pp) = paper_jitter_pp {
        report.push(Comparison::new(
            id,
            "jitter p-p at crossover",
            "ps",
            PaperValue::new(pp, 0.15),
            result.eye.jitter_pp().as_ps_f64(),
        ));
    }
    report.push(Comparison::new(
        id,
        "eye opening",
        "UI",
        PaperValue::new(paper_opening, 0.06),
        result.eye.opening_ui().value(),
    ));
    Ok(report)
}

/// Fig. 7 — 2.5 Gbps PRBS eye: 46.7 ps p-p jitter, 0.88 UI opening.
///
/// # Errors
///
/// Propagates system-boot and eye-program errors.
pub fn fig07_eye_2g5(seed: u64) -> Result<Report, AteError> {
    let mut system = TestSystem::optical_testbed()?;
    eye_experiment("FIG7", &mut system, 2.5, Some(46.7), 0.88, seed)
}

/// Fig. 8 — 4.0 Gbps PRBS eye: 47.2 ps p-p jitter, 0.81 UI opening.
///
/// # Errors
///
/// Propagates system-boot and eye-program errors.
pub fn fig08_eye_4g0(seed: u64) -> Result<Report, AteError> {
    let mut system = TestSystem::optical_testbed()?;
    eye_experiment("FIG8", &mut system, 4.0, Some(47.2), 0.81, seed)
}

/// Fig. 9 — single-edge jitter: 24 ps p-p, 3.2 ps rms over repeated
/// acquisitions (no data-dependent effects).
///
/// Each acquisition renders an independently seeded edge, so the loop fans
/// out over the default [`exec::ExecPool`] with bit-identical results for
/// every thread count.
///
/// # Errors
///
/// Propagates render, edge-measurement, and execution errors.
pub fn fig09_edge_jitter(acquisitions: usize, seed: u64) -> Result<Report, AteError> {
    fig09_edge_jitter_with_pool(acquisitions, seed, &exec::ExecPool::from_env())
}

/// [`fig09_edge_jitter`] with an explicit worker pool — the hook used by
/// benchmarks and thread-count-invariance tests.
///
/// # Errors
///
/// Propagates render, edge-measurement, and execution errors.
pub fn fig09_edge_jitter_with_pool(
    acquisitions: usize,
    seed: u64,
    pool: &exec::ExecPool,
) -> Result<Report, AteError> {
    let chain = SignalChain::testbed_transmitter();
    let rate = DataRate::from_gbps(2.5);
    let bits = BitStream::from_str_bits("1100");
    let tree = SeedTree::new(seed).stream("bench.fig09");
    let outcome = pool.run(acquisitions, |i| -> Result<pstime::Instant, AteError> {
        let wave = chain.render(&bits, rate, tree.index(i as u64).seed())?;
        Ok(measure_transition(&wave, 0, rate)?.mid_crossing)
    })?;
    let times: Vec<pstime::Instant> = outcome.results.into_iter().collect::<Result<_, _>>()?;
    let m = edge_jitter_from_acquisitions(times, 64)?;
    let mut report = Report::new();
    report.push(Comparison::new(
        "FIG9",
        "single-edge jitter p-p",
        "ps",
        PaperValue::new(24.0, 0.25),
        m.peak_to_peak().as_ps_f64(),
    ));
    report.push(Comparison::new(
        "FIG9",
        "single-edge jitter rms",
        "ps",
        PaperValue::new(3.2, 0.15),
        m.rms().as_ps_f64(),
    ));
    Ok(report)
}

/// Figs. 10–11 — programmable output levels: VOH in 100 mV steps at
/// 1.25 Gbps; amplitude swing in 200 mV steps at 2.5 Gbps.
///
/// # Errors
///
/// Propagates DAC-sweep, render, and level-measurement errors.
pub fn fig10_fig11_levels(seed: u64) -> Result<Report, AteError> {
    use pecl::levels::LevelKnob;
    use pecl::VoltageTuningDac;

    let mut report = Report::new();
    let chain = SignalChain::testbed_transmitter();
    let dac = VoltageTuningDac::new();

    // Fig. 10: four VOH codes at 1.25 Gbps.
    let rate = DataRate::from_gbps(1.25);
    let bits = BitStream::alternating(256);
    let tree_voh = SeedTree::new(seed).stream("bench.fig10.voh");
    for (code, levels) in dac.sweep(LevelKnob::High, 4)?.iter().enumerate() {
        let mut chain = chain.clone();
        chain.set_levels(*levels);
        let wave = chain.render(&bits, rate, tree_voh.index(code as u64).seed())?;
        let m = measure_levels(&wave, rate)?;
        report.push(Comparison::new(
            "FIG10",
            format!("VOH at code {code}"),
            "mV",
            PaperValue::new(f64::from(-900 - 100 * code as i32), 0.02),
            m.voh_mv,
        ));
    }

    // Fig. 11: three swing codes at 2.5 Gbps.
    let rate = DataRate::from_gbps(2.5);
    let tree_swing = SeedTree::new(seed).stream("bench.fig11.swing");
    for (code, levels) in dac.sweep(LevelKnob::Swing, 3)?.iter().enumerate() {
        let mut chain = chain.clone();
        chain.set_levels(*levels);
        let wave = chain.render(&bits, rate, tree_swing.index(code as u64).seed())?;
        let m = measure_levels(&wave, rate)?;
        report.push(Comparison::new(
            "FIG11",
            format!("swing at code {code}"),
            "mV",
            PaperValue::new(f64::from(800 - 200 * code as i32), 0.04),
            m.swing_mv(),
        ));
    }
    Ok(report)
}

/// Fig. 13 — parallel multi-site probing: "increasing production
/// throughput by an order of magnitude".
///
/// # Errors
///
/// Currently infallible; returns `Result` for a uniform figure API.
pub fn fig13_parallel_probe() -> Result<Report, AteError> {
    let serial = ProbeArray::new(1);
    let array = ProbeArray::new(16);
    let speedup = array.throughput_speedup(&serial, 256);
    let mut report = Report::new();
    report.push(Comparison::new(
        "FIG13",
        "16-site throughput speedup",
        "x",
        PaperValue::new(16.0, 0.01),
        speedup,
    ));
    Ok(report)
}

fn mini_eye(
    id: &str,
    gbps: f64,
    paper_opening: f64,
    paper_jitter: Option<f64>,
    seed: u64,
) -> Result<Report, AteError> {
    let rate = DataRate::from_gbps(gbps);
    let mut path = MiniTesterDatapath::new()?;
    let wave = path.prbs_stimulus(rate, EYE_BITS, seed)?;
    let eye = EyeDiagram::analyze(&wave, rate)?;
    let mut report = Report::new();
    if let Some(pp) = paper_jitter {
        report.push(Comparison::new(
            id,
            "jitter p-p at crossover",
            "ps",
            PaperValue::new(pp, 0.15),
            eye.jitter_pp().as_ps_f64(),
        ));
    }
    report.push(Comparison::new(
        id,
        "eye opening",
        "UI",
        PaperValue::new(paper_opening, 0.06),
        eye.opening_ui().value(),
    ));
    Ok(report)
}

/// Fig. 16 — mini-tester 1.0 Gbps eye: ~50 ps p-p jitter, ~0.95 UI.
///
/// # Errors
///
/// Propagates datapath and eye-analysis errors.
pub fn fig16_mini_eye_1g0(seed: u64) -> Result<Report, AteError> {
    mini_eye("FIG16", 1.0, 0.95, Some(50.0), seed)
}

/// Fig. 17 — mini-tester 2.5 Gbps eye: ~0.87 UI.
///
/// # Errors
///
/// Propagates datapath and eye-analysis errors.
pub fn fig17_mini_eye_2g5(seed: u64) -> Result<Report, AteError> {
    mini_eye("FIG17", 2.5, 0.87, None, seed)
}

/// Fig. 18 — 5.0 Gbps patterns: 120 ps 20–80 % rise and swing compression
/// relative to low rates.
///
/// # Errors
///
/// Propagates datapath and transition-measurement errors.
pub fn fig18_mini_5g_pattern(seed: u64) -> Result<Report, AteError> {
    let mut path = MiniTesterDatapath::new()?;
    let mut report = Report::new();
    let tree = SeedTree::new(seed).stream("bench.fig18");

    // Rise time on a pattern slow enough to settle.
    let rate_slow = DataRate::from_gbps(1.0);
    let wave = path.pattern_stimulus(
        &BitStream::from_str_bits("0011").repeat(64),
        rate_slow,
        tree.channel(0).seed(),
    )?;
    let (rise, _) = transition_time_stats(&wave, rate_slow)?;
    report.push(Comparison::new(
        "FIG18",
        "I/O buffer rise 20-80%",
        "ps",
        PaperValue::new(120.0, 0.05),
        rise.mean(),
    ));

    // Swing compression at 5 Gbps: isolated-1 peak amplitude vs settled.
    let rate = DataRate::from_gbps(5.0);
    let wave5 = path.pattern_stimulus(
        &BitStream::from_str_bits("0000000100000000").repeat(16),
        rate,
        tree.channel(1).seed(),
    )?;
    let digital = wave5.digital();
    let (lo, hi) = wave5.range_over(digital.start(), digital.end(), Duration::from_ps(5));
    let peak_swing = hi - lo;
    let settled_swing = wave5.levels().swing().as_f64();
    report.push(Comparison::new(
        "FIG18",
        "isolated-1 swing ratio at 5 Gbps",
        "frac",
        // The figure shows visible amplitude limiting but quotes no
        // number; a logistic 120 ps edge at a 200 ps UI analytically peaks
        // at ~0.8 of full swing (2*L(UI/2tau) - 1 with tau = tr/2.77).
        PaperValue::new(0.80, 0.06),
        peak_swing / settled_swing,
    ));
    Ok(report)
}

/// Fig. 19 — mini-tester 5.0 Gbps eye: ~50 ps jitter, ~0.75 UI.
///
/// # Errors
///
/// Propagates datapath and eye-analysis errors.
pub fn fig19_mini_eye_5g0(seed: u64) -> Result<Report, AteError> {
    mini_eye("FIG19", 5.0, 0.75, Some(50.0), seed)
}

/// SUMMARY — ±25 ps timing accuracy and 10 ps placement resolution.
///
/// # Errors
///
/// Propagates placement-audit errors.
pub fn summary_timing_accuracy() -> Result<Report, AteError> {
    let points = placement_audit(Duration::from_ns(10), Duration::from_ps(137))?;
    let worst = worst_placement_error(&points);
    let mut report = Report::new();
    // The paper claims a ±25 ps bound; our measured worst-case placement
    // error must sit inside it (tolerance 1.0 accepts anything ≤ 2x, and
    // the integration tests assert the hard bound).
    report.push(Comparison::new(
        "SUMMARY",
        "worst edge-placement error",
        "ps",
        PaperValue::new(25.0, 1.0),
        worst.as_ps_f64(),
    ));
    report.push(Comparison::new(
        "SUMMARY",
        "delay vernier step",
        "ps",
        PaperValue::new(10.0, 0.0),
        pecl::ProgrammableDelayLine::standard().step().as_ps_f64(),
    ));
    Ok(report)
}

/// DV — the Data Vortex under test-bed traffic: full delivery with virtual
/// buffering at moderate load (the behaviour reference \[4\] demonstrates).
///
/// # Errors
///
/// Currently infallible; returns `Result` for a uniform figure API.
pub fn datavortex_routing(seed: u64) -> Result<Report, AteError> {
    let stats = run_load(VortexParams::eight_node(), Pattern::UniformRandom, 0.4, 400, seed);
    let mut report = Report::new();
    report.push(Comparison::new(
        "FIG3/DV",
        "packet delivery ratio",
        "frac",
        PaperValue::new(1.0, 0.0),
        stats.delivery_ratio(),
    ));
    report.push(Comparison::new(
        "FIG3/DV",
        "min latency (cylinders)",
        "slots",
        PaperValue::new(3.0, 0.0),
        f64::from(u32::try_from(stats.latency.min()).unwrap_or(u32::MAX)),
    ));
    Ok(report)
}

/// EXT — the paper's end-goal scaling arithmetic: 64 λ × 10 Gbps ≈
/// "order of a Terabit-per-second".
///
/// # Errors
///
/// Currently infallible; returns `Result` for a uniform figure API.
pub fn ext_terabit_scaling() -> Result<Report, AteError> {
    let goal = ScalingPoint::end_goal();
    let mut report = Report::new();
    report.push(Comparison::new(
        "EXT",
        "aggregate at end goal",
        "Gbps",
        PaperValue::new(640.0, 0.0),
        goal.aggregate().as_gbps(),
    ));
    report.push(Comparison::new(
        "EXT",
        "payload-effective aggregate",
        "Gbps",
        PaperValue::new(320.0, 0.0),
        goal.effective(&SlotTiming::paper()).as_gbps(),
    ));
    Ok(report)
}

/// COST — "significantly lower in cost than conventional ATE": the BOM
/// comparison for both systems.
///
/// # Errors
///
/// Currently infallible; returns `Result` for a uniform figure API.
pub fn cost_comparison() -> Result<Report, AteError> {
    let testbed = CostComparison::optical_testbed();
    let mini = CostComparison::mini_tester();
    let mut report = Report::new();
    report.push(Comparison::new(
        "COST",
        "test-bed savings factor",
        "x",
        PaperValue::new(20.0, 0.5), // "significantly lower": order 10-30x
        testbed.savings_factor(),
    ));
    report.push(Comparison::new(
        "COST",
        "mini-tester savings factor",
        "x",
        PaperValue::new(6.0, 0.5),
        mini.savings_factor(),
    ));
    Ok(report)
}

/// Runs every experiment and aggregates one full report, in paper order.
///
/// # Errors
///
/// Propagates the first failure from any experiment.
pub fn full_report(seed: u64) -> Result<Report, AteError> {
    let mut report = Report::new();
    for part in [
        fig04_packet_slot()?,
        fig06_tx_waveforms(seed)?,
        fig07_eye_2g5(seed)?,
        fig08_eye_4g0(seed)?,
        fig09_edge_jitter(2_000, seed)?,
        fig10_fig11_levels(seed)?,
        fig13_parallel_probe()?,
        fig16_mini_eye_1g0(seed)?,
        fig17_mini_eye_2g5(seed)?,
        fig18_mini_5g_pattern(seed)?,
        fig19_mini_eye_5g0(seed)?,
        summary_timing_accuracy()?,
        datavortex_routing(seed)?,
        ext_terabit_scaling()?,
        cost_comparison()?,
    ] {
        report.extend(part.rows().iter().cloned());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig04_is_exact() {
        let r = fig04_packet_slot().expect("experiment runs");
        assert_eq!(r.rows().len(), 5);
        assert!(r.all_within_tolerance(), "{r}");
    }

    #[test]
    fn fig13_and_ext_and_cost_are_exact() {
        assert!(fig13_parallel_probe().expect("experiment runs").all_within_tolerance());
        assert!(ext_terabit_scaling().expect("experiment runs").all_within_tolerance());
        assert!(cost_comparison().expect("experiment runs").all_within_tolerance());
    }

    #[test]
    fn summary_meets_bound() {
        let r = summary_timing_accuracy().expect("audit runs");
        assert!(r.all_within_tolerance(), "{r}");
        // Hard bound: measured worst error actually under 25 ps.
        assert!(r.rows()[0].measured <= 25.0);
    }

    #[test]
    fn eye_experiments_within_tolerance() {
        assert!(fig07_eye_2g5(11).expect("runs").all_within_tolerance());
        assert!(fig16_mini_eye_1g0(11).expect("runs").all_within_tolerance());
    }

    #[test]
    fn vortex_experiment() {
        let r = datavortex_routing(5).expect("experiment runs");
        assert!(r.all_within_tolerance(), "{r}");
    }

    #[test]
    fn fig09_is_thread_count_invariant() {
        let serial = fig09_edge_jitter_with_pool(200, 9, &exec::ExecPool::serial()).expect("runs");
        let wide = fig09_edge_jitter_with_pool(200, 9, &exec::ExecPool::new(4)).expect("runs");
        assert_eq!(serial.rows().len(), wide.rows().len());
        for (a, b) in serial.rows().iter().zip(wide.rows()) {
            assert_eq!(a.measured.to_bits(), b.measured.to_bits());
        }
    }
}
