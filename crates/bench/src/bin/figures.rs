//! Prints the full paper-versus-measured report for every figure.
//!
//! ```text
//! cargo run --release -p gigatest-bench --bin figures
//! ```

fn main() {
    let seed = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2005u64);
    println!("Gigatest reproduction — Keezer et al., DATE 2005");
    println!("seed = {seed}\n");
    let report = match bench_support::full_report(seed) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(2);
        }
    };
    println!("{report}");
    if !report.all_within_tolerance() {
        std::process::exit(1);
    }
}
