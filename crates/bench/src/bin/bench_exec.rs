//! Times the exec-powered sweeps serial vs parallel and emits
//! `BENCH_exec.json`.
//!
//! ```text
//! cargo run --release -p gigatest-bench --bin bench_exec           # timings
//! cargo run --release -p gigatest-bench --bin bench_exec -- --canary
//! ```
//!
//! The default mode runs each sweep workload with a 1-thread pool and an
//! N-thread pool (`EXEC_THREADS`, default 4), takes the best of three wall
//! times for each, and writes the comparison as JSON. Timings are the ONLY
//! wall-clock-dependent data in the workspace, and they never feed back
//! into any result — which is why the reads below carry xlint allows.
//!
//! `--canary` prints the deterministic *outputs* of the same sweeps and no
//! timings at all: CI runs it under `EXEC_THREADS=1` and `EXEC_THREADS=4`
//! and diffs the two, proving thread-count invariance end to end.

use std::time::Instant; // xlint::allow(no-wall-clock, benchmark harness: wall time is the measurand here and never feeds back into results)

use ate::AteError;
use exec::ExecPool;
use minitester::multisite::{run_wafer_with_pool, WaferRunConfig};
use minitester::{EtCapture, MiniTesterDatapath, ShmooConfig, ShmooPlot};
use pecl::SignalChain;
use pstime::DataRate;
use rng::SeedTree;
use signal::measure::measure_transition;
use signal::{AnalogWaveform, BathtubCurve, BitStream};

/// Wall-time repetitions per measurement; the best (least-disturbed) run
/// is reported.
const REPS: u32 = 3;

/// One timed workload row for the JSON report.
struct WorkloadRow {
    name: &'static str,
    jobs: usize,
    serial_s: f64,
    parallel_s: f64,
}

impl WorkloadRow {
    fn speedup(&self) -> f64 {
        if self.parallel_s > 0.0 {
            self.serial_s / self.parallel_s
        } else {
            0.0
        }
    }
}

fn best_of<F>(f: F) -> Result<f64, AteError>
where
    F: Fn() -> Result<(), AteError>,
{
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        f()?;
        best = best.min(t0.elapsed().as_secs_f64());
    }
    Ok(best)
}

/// The shmoo/eye stimulus shared by several workloads.
fn prbs_setup(gbps: f64, bits: usize) -> Result<(AnalogWaveform, DataRate, BitStream), AteError> {
    let rate = DataRate::from_gbps(gbps);
    let mut path = MiniTesterDatapath::new()?;
    let expected = path.expected_prbs(rate, bits)?;
    let mut path2 = MiniTesterDatapath::new()?;
    let wave = path2.prbs_stimulus(rate, bits, 17)?;
    Ok((wave, rate, expected))
}

fn wafer_config() -> WaferRunConfig {
    WaferRunConfig { dies: 24, columns: 6, sites: 8, test_bits: 256, ..WaferRunConfig::default() }
}

fn bathtub() -> BathtubCurve {
    let chain = SignalChain::minitester_datapath();
    BathtubCurve::new(chain.rj_rms(), chain.dj_pp(), DataRate::from_gbps(2.5), 0.5)
}

/// Acquisition count for the edge-jitter workload.
const JITTER_ACQS: usize = 400;

/// Runs the fig09-style acquisition loop directly on `pool` so the run's
/// [`exec::ExecStats`] are observable.
fn jitter_acquisitions(pool: &ExecPool) -> Result<exec::ExecStats, AteError> {
    let chain = SignalChain::testbed_transmitter();
    let rate = DataRate::from_gbps(2.5);
    let bits = BitStream::from_str_bits("1100");
    let tree = SeedTree::new(9).stream("bench.exec.jitter");
    let outcome = pool.run(JITTER_ACQS, |i| -> Result<pstime::Instant, AteError> {
        let wave = chain.render(&bits, rate, tree.index(i as u64).seed())?; // xlint::allow(no-lossy-cast, acquisition index widens losslessly to u64)
        Ok(measure_transition(&wave, 0, rate)?.mid_crossing)
    })?;
    for t in outcome.results {
        t?;
    }
    Ok(outcome.stats)
}

/// Prints deterministic sweep outputs and nothing else; byte-identical
/// output for every `EXEC_THREADS` is the cross-layer determinism proof.
fn canary() -> Result<(), AteError> {
    let (wave, rate, expected) = prbs_setup(2.5, 512)?;
    let plot = ShmooPlot::run(&wave, rate, &expected, &ShmooConfig::pecl(), 1)?;
    println!("== shmoo ==\n{plot}");

    let report = minitester::multisite::run_wafer(&wafer_config())?;
    println!("== wafer ==\n{report}");

    let scan =
        EtCapture::new().eye_scan_with_pool(&wave, rate, &expected, 5, &ExecPool::from_env())?;
    println!("== eye ==\n{scan}");

    let jitter = bench_support::fig09_edge_jitter(JITTER_ACQS, 9)?;
    println!("== jitter ==\n{jitter}");

    let sweep = bathtub().sweep_with_pool(10_001, &ExecPool::from_env())?;
    let digest = sweep
        .iter()
        .fold(0u64, |acc, (phase, ber)| acc ^ phase.to_bits() ^ ber.to_bits().rotate_left(17));
    println!("== ber ==\ndigest {digest:016x}");
    Ok(())
}

fn bench() -> Result<(), AteError> {
    let threads =
        exec::env::parse_positive_usize(std::env::var(exec::EXEC_THREADS_ENV).ok().as_deref())
            .filter(|n| *n > 1)
            .unwrap_or(4);
    let serial = ExecPool::serial();
    let parallel = ExecPool::new(threads);
    let available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!("bench_exec: serial vs {threads} threads (machine has {available})");

    let mut rows = Vec::new();

    let (wave, rate, expected) = prbs_setup(2.5, 512)?;
    let config = ShmooConfig::pecl();
    let plot = ShmooPlot::run_with_pool(&wave, rate, &expected, &config, 1, &serial)
        .map_err(AteError::from)?;
    rows.push(WorkloadRow {
        name: "shmoo",
        jobs: plot.thresholds().len() * plot.phases().len(),
        serial_s: best_of(|| {
            ShmooPlot::run_with_pool(&wave, rate, &expected, &config, 1, &serial)
                .map(|_| ())
                .map_err(AteError::from)
        })?,
        parallel_s: best_of(|| {
            ShmooPlot::run_with_pool(&wave, rate, &expected, &config, 1, &parallel)
                .map(|_| ())
                .map_err(AteError::from)
        })?,
    });
    eprintln!("  shmoo done");

    let wafer = wafer_config();
    rows.push(WorkloadRow {
        name: "wafer",
        jobs: wafer.dies,
        serial_s: best_of(|| {
            run_wafer_with_pool(&wafer, &serial).map(|_| ()).map_err(AteError::from)
        })?,
        parallel_s: best_of(|| {
            run_wafer_with_pool(&wafer, &parallel).map(|_| ()).map_err(AteError::from)
        })?,
    });
    eprintln!("  wafer done");

    let (eye_wave, eye_rate, eye_expected) = prbs_setup(2.5, 1_024)?;
    let cap = EtCapture::new();
    rows.push(WorkloadRow {
        name: "eye_scan",
        jobs: 40,
        serial_s: best_of(|| {
            cap.eye_scan_with_pool(&eye_wave, eye_rate, &eye_expected, 5, &serial)
                .map(|_| ())
                .map_err(AteError::from)
        })?,
        parallel_s: best_of(|| {
            cap.eye_scan_with_pool(&eye_wave, eye_rate, &eye_expected, 5, &parallel)
                .map(|_| ())
                .map_err(AteError::from)
        })?,
    });
    eprintln!("  eye_scan done");

    rows.push(WorkloadRow {
        name: "edge_jitter",
        jobs: JITTER_ACQS,
        serial_s: best_of(|| jitter_acquisitions(&serial).map(|_| ()))?,
        parallel_s: best_of(|| jitter_acquisitions(&parallel).map(|_| ()))?,
    });
    let stats = jitter_acquisitions(&parallel)?;
    eprintln!("  edge_jitter done ({stats})");

    let tub = bathtub();
    rows.push(WorkloadRow {
        name: "ber_sweep",
        jobs: 100_001,
        serial_s: best_of(|| {
            tub.sweep_with_pool(100_001, &serial).map(|_| ()).map_err(AteError::from)
        })?,
        parallel_s: best_of(|| {
            tub.sweep_with_pool(100_001, &parallel).map(|_| ()).map_err(AteError::from)
        })?,
    });
    eprintln!("  ber_sweep done");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"available_parallelism\": {available},\n"));
    json.push_str(&format!(
        "  \"jitter_stats\": {{ \"workers\": {}, \"steals\": {}, \"max_share\": {:.4} }},\n",
        stats.workers,
        stats.steals,
        stats.max_share()
    ));
    json.push_str("  \"workloads\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"jobs\": {}, \"serial_s\": {:.6}, \"parallel_s\": {:.6}, \"speedup\": {:.3} }}{}\n",
            row.name,
            row.jobs,
            row.serial_s,
            row.parallel_s,
            row.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    match std::fs::write("BENCH_exec.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_exec.json"),
        Err(e) => {
            eprintln!("failed to write BENCH_exec.json: {e}");
            std::process::exit(2);
        }
    }
    print!("{json}");
    Ok(())
}

fn main() {
    let is_canary = std::env::args().any(|a| a == "--canary");
    let result = if is_canary { canary() } else { bench() };
    if let Err(e) = result {
        eprintln!("bench_exec failed: {e}");
        std::process::exit(2);
    }
}
