//! Jitter spectrum: TIE analysis in the frequency domain.
//!
//! Peak-to-peak and rms numbers say *how much* jitter a signal has; the
//! spectrum says *where it comes from*. Supply ripple shows up as a tone at
//! the converter frequency, a noisy PLL as a skirt, data-dependent jitter
//! as rate-related harmonics. This module computes the classic
//! time-interval-error (TIE) spectrum: per-UI edge displacements (zero-order
//! held across missing edges), Hann-windowed, discrete-Fourier-transformed,
//! with a dominant-tone finder — the diagnostic the paper's team would run
//! when Fig. 9's histogram turned out non-Gaussian.

use pstime::{DataRate, Frequency};

use crate::digital::DigitalWaveform;
use crate::{Result, SignalError};

/// A one-sided TIE amplitude spectrum.
#[derive(Debug, Clone, PartialEq)]
pub struct JitterSpectrum {
    bin_hz: f64,
    amplitude_ps: Vec<f64>,
    rms_ps: f64,
    n_ui: usize,
}

impl JitterSpectrum {
    /// Frequency resolution (Hz per bin).
    pub fn bin_hz(&self) -> f64 {
        self.bin_hz
    }

    /// Number of unit intervals analyzed.
    pub fn n_ui(&self) -> usize {
        self.n_ui
    }

    /// rms of the (mean-removed) TIE series, in picoseconds.
    pub fn tie_rms_ps(&self) -> f64 {
        self.rms_ps
    }

    /// Amplitude (ps, sine-peak equivalent) per positive-frequency bin;
    /// bin `k` is centred at `k × bin_hz` (bin 0, the DC residue, is
    /// forced to zero).
    pub fn amplitudes_ps(&self) -> &[f64] {
        &self.amplitude_ps
    }

    /// The frequency of bin `k`.
    pub fn bin_frequency(&self, k: usize) -> Frequency {
        Frequency::from_hz(((k as f64) * self.bin_hz).max(1.0).round() as u64)
    }

    /// The dominant spectral tone `(frequency, amplitude in ps)`, if any
    /// bin rises more than `threshold_ratio` above the median bin —
    /// a Gaussian-only spectrum has no such tone.
    pub fn dominant_tone(&self, threshold_ratio: f64) -> Option<(Frequency, f64)> {
        let mut sorted: Vec<f64> = self.amplitude_ps.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let (k, peak) = self.amplitude_ps.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1))?;
        if (median <= 0.0 || *peak / median >= threshold_ratio) && *peak > 0.0 {
            return Some((self.bin_frequency(k), *peak));
        }
        None
    }
}

/// Computes the TIE spectrum of a waveform at `rate`.
///
/// The TIE series is sampled once per UI (edge displacement from the ideal
/// grid, zero-order held where the data pattern has no edge), truncated to
/// a power-of-two length for the radix-2 FFT, Hann-windowed, and scaled to
/// sine-peak amplitudes.
///
/// # Errors
///
/// [`SignalError::InsufficientTransitions`] when the waveform has fewer
/// than 64 UI or no edges at all.
pub fn jitter_spectrum(wave: &DigitalWaveform, rate: DataRate) -> Result<JitterSpectrum> {
    let ui = rate.unit_interval();
    let n_total = (wave.span() / ui) as usize;
    if n_total < 64 || wave.num_edges() == 0 {
        return Err(SignalError::InsufficientTransitions {
            found: wave.num_edges().min(n_total),
            required: 64,
        });
    }

    // Build the per-UI TIE series with zero-order hold.
    let mut tie = Vec::with_capacity(n_total);
    let mut edges = wave.edges().iter().peekable();
    let mut held = 0.0f64;
    for k in 0..n_total {
        let ideal = wave.start() + ui * k as i64 + ui;
        // Consume edges belonging to this UI boundary (within half a UI).
        while let Some(e) = edges.peek() {
            if e.at <= ideal + ui / 2 {
                held = (e.at - ideal).as_ps_f64();
                edges.next();
            } else {
                break;
            }
        }
        tie.push(held);
    }

    // Truncate to a power of two.
    let n = tie.len().next_power_of_two() >> 1;
    let n = n.min(tie.len());
    tie.truncate(n);

    // Remove the mean and compute rms.
    let mean = tie.iter().sum::<f64>() / n as f64;
    for x in &mut tie {
        *x -= mean;
    }
    let rms = (tie.iter().map(|x| x * x).sum::<f64>() / n as f64).sqrt();

    // Hann window (coherent gain 0.5).
    let mut re: Vec<f64> = tie
        .iter()
        .enumerate()
        .map(|(i, x)| {
            let w = 0.5 - 0.5 * (2.0 * core::f64::consts::PI * i as f64 / (n as f64 - 1.0)).cos();
            x * w
        })
        .collect();
    let mut im = vec![0.0f64; n];
    fft_radix2(&mut re, &mut im);

    // One-sided sine-peak amplitudes: |X|/N × 2 (one-sided) / 0.5 (Hann).
    let half = n / 2;
    let mut amplitude_ps: Vec<f64> = (0..half)
        .map(|k| {
            let mag = (re[k] * re[k] + im[k] * im[k]).sqrt();
            mag / n as f64 * 2.0 / 0.5
        })
        .collect();
    if let Some(dc) = amplitude_ps.first_mut() {
        *dc = 0.0;
    }

    let sample_rate_hz = rate.as_bps() as f64; // one TIE sample per UI
    Ok(JitterSpectrum { bin_hz: sample_rate_hz / n as f64, amplitude_ps, rms_ps: rms, n_ui: n })
}

/// In-place radix-2 Cooley–Tukey FFT.
///
/// # Panics
///
/// Panics if the length is not a power of two or the buffers mismatch.
fn fft_radix2(re: &mut [f64], im: &mut [f64]) {
    let n = re.len();
    assert_eq!(n, im.len(), "FFT buffers must match");
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * core::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let half = len / 2;
        for start in (0..n).step_by(len) {
            // Split each block into its two halves once, so the butterfly
            // body indexes bounds-checked locals instead of the raw buffers.
            let block_r = &mut re[start..start + len]; // xlint::allow(panic-reachable, len divides n so start + len <= n == re.len())
            let block_i = &mut im[start..start + len];
            let (ra, rb) = block_r.split_at_mut(half);
            let (ia, ib) = block_i.split_at_mut(half);
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..half {
                let tr = rb[k] * cr - ib[k] * ci;
                let ti = rb[k] * ci + ib[k] * cr;
                rb[k] = ra[k] - tr;
                ib[k] = ia[k] - ti;
                ra[k] += tr;
                ia[k] += ti;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jitter::{JitterBudget, NoJitter, PeriodicJitter, RandomJitter};
    use crate::BitStream;
    use pstime::Duration;

    fn wave_with(budget: &JitterBudget, n_bits: usize, seed: u64) -> DigitalWaveform {
        DigitalWaveform::from_bits(
            &BitStream::alternating(n_bits),
            DataRate::from_gbps(2.5),
            budget,
            seed,
        )
    }

    #[test]
    fn fft_matches_a_known_tone() {
        // A pure cosine at bin 8 of 64.
        let n = 64;
        let mut re: Vec<f64> = (0..n)
            .map(|i| (2.0 * core::f64::consts::PI * 8.0 * i as f64 / n as f64).cos())
            .collect();
        let mut im = vec![0.0; n];
        fft_radix2(&mut re, &mut im);
        for k in 0..n {
            let mag = (re[k] * re[k] + im[k] * im[k]).sqrt();
            if k == 8 || k == n - 8 {
                assert!((mag - n as f64 / 2.0).abs() < 1e-9, "bin {k} mag {mag}");
            } else {
                assert!(mag < 1e-9, "leakage at bin {k}: {mag}");
            }
        }
    }

    #[test]
    fn finds_an_injected_periodic_tone() {
        // 5 ps of PJ at 50 MHz on a 2.5 Gbps clock pattern.
        let pj_freq = Frequency::from_mhz(50);
        let budget =
            JitterBudget::new().with_pj(Duration::from_ps(5), pj_freq, 0.3).with_rj_rms_ps(0.5);
        let wave = wave_with(&budget, 8_192, 3);
        let spectrum = jitter_spectrum(&wave, DataRate::from_gbps(2.5)).unwrap();
        assert_eq!(spectrum.n_ui(), 4_096);
        let (freq, amp) = spectrum.dominant_tone(5.0).expect("tone present");
        let err_hz = (freq.as_hz() as f64 - 50e6).abs();
        assert!(err_hz < 2.0 * spectrum.bin_hz(), "tone at {freq}, want 50 MHz");
        assert!((amp - 5.0).abs() < 1.5, "amplitude {amp} ps, want ~5");
    }

    #[test]
    fn gaussian_jitter_has_no_dominant_tone() {
        let budget = JitterBudget::new().with_model(RandomJitter::from_rms_ps(3.0));
        let wave = wave_with(&budget, 8_192, 9);
        let spectrum = jitter_spectrum(&wave, DataRate::from_gbps(2.5)).unwrap();
        // White floor: the peak stays within ~6x of the median bin.
        assert!(spectrum.dominant_tone(8.0).is_none());
        assert!((spectrum.tie_rms_ps() - 3.0).abs() < 0.5, "rms {}", spectrum.tie_rms_ps());
    }

    #[test]
    fn clean_signal_is_silent() {
        let wave = wave_with(&JitterBudget::new(), 1_024, 0);
        let spectrum = jitter_spectrum(&wave, DataRate::from_gbps(2.5)).unwrap();
        assert!(spectrum.tie_rms_ps() < 1e-9);
        assert!(spectrum.amplitudes_ps().iter().all(|a| *a < 1e-9));
        assert!(spectrum.dominant_tone(3.0).is_none());
    }

    #[test]
    fn two_tones_the_larger_wins() {
        let budget = JitterBudget::new()
            .with_pj(Duration::from_ps(6), Frequency::from_mhz(40), 0.0)
            .with_pj(Duration::from_ps(2), Frequency::from_mhz(90), 1.0);
        let wave = wave_with(&budget, 8_192, 5);
        let spectrum = jitter_spectrum(&wave, DataRate::from_gbps(2.5)).unwrap();
        let (freq, _) = spectrum.dominant_tone(3.0).expect("tones present");
        assert!(
            (freq.as_hz() as f64 - 40e6).abs() < 2.0 * spectrum.bin_hz(),
            "dominant at {freq}, want 40 MHz"
        );
    }

    #[test]
    fn requires_enough_signal() {
        let short = wave_with(&JitterBudget::new(), 32, 0);
        assert!(matches!(
            jitter_spectrum(&short, DataRate::from_gbps(2.5)),
            Err(SignalError::InsufficientTransitions { .. })
        ));
        let quiet = DigitalWaveform::from_bits(
            &BitStream::ones(256),
            DataRate::from_gbps(2.5),
            &NoJitter,
            0,
        );
        assert!(jitter_spectrum(&quiet, DataRate::from_gbps(2.5)).is_err());
    }

    #[test]
    fn bin_frequencies() {
        let wave = wave_with(&JitterBudget::new(), 1_024, 0);
        let spectrum = jitter_spectrum(&wave, DataRate::from_gbps(2.5)).unwrap();
        // 2.5 GHz sample rate over 512 bins.
        assert!((spectrum.bin_hz() - 2.5e9 / 512.0).abs() < 1.0);
        assert_eq!(spectrum.bin_frequency(0).as_hz(), 1); // clamped DC
        let f10 = spectrum.bin_frequency(10).as_hz() as f64;
        assert!((f10 - 10.0 * spectrum.bin_hz()).abs() < 1.0);
    }

    #[test]
    fn pj_model_sanity_via_spectrum_and_histogram() {
        // The same PJ seen by the spectrum matches the PeriodicJitter
        // model's bound.
        let pj = PeriodicJitter::new(Duration::from_ps(4), Frequency::from_mhz(25), 0.0);
        let budget = JitterBudget::new().with_model(pj);
        let wave = wave_with(&budget, 4_096, 1);
        let spectrum = jitter_spectrum(&wave, DataRate::from_gbps(2.5)).unwrap();
        let (_, amp) = spectrum.dominant_tone(4.0).expect("tone");
        assert!(amp <= 4.5, "spectral amplitude {amp} must respect the model bound");
        // Sine rms = A/sqrt(2).
        assert!((spectrum.tie_rms_ps() - 4.0 / 2f64.sqrt()).abs() < 0.5);
    }
}
