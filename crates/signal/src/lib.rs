//! # gigatest-signal — picosecond-domain waveforms, jitter, and eye analysis
//!
//! This crate is the measurement substrate for the Gigatest reproduction of
//! Keezer et al. (DATE 2005). The paper's entire evaluation is a set of
//! oscilloscope observations — eye diagrams, crossover-point jitter, 20–80 %
//! rise times, programmable voltage levels — so this crate implements both
//! the *signals* (exact-time digital edge waveforms, analytic analog
//! waveforms) and the *instruments* (eye-diagram folding, jitter histograms,
//! transition-time measurement, BER estimation).
//!
//! ## Layers
//!
//! * [`BitStream`] — the logical bit sequence a pattern generator emits.
//! * [`DigitalWaveform`] — an NRZ signal as a list of timed edges, each
//!   displaced from its ideal position by jitter (see [`jitter`]).
//! * [`AnalogWaveform`] — an analytic continuous-time model: logistic step
//!   transitions with a finite 20–80 % rise time between programmable
//!   [`LevelSet`] voltages. Because the model is analytic (not a sample
//!   array), threshold crossings can be located with femtosecond precision —
//!   matching the 10 ps claims under test requires this.
//! * [`EyeDiagram`] / [`measure`] — the virtual sampling oscilloscope.
//!
//! ## Example: measure an eye like the paper's Fig. 7
//!
//! ```
//! use pstime::DataRate;
//! use signal::jitter::JitterBudget;
//! use signal::{AnalogWaveform, BitStream, DigitalWaveform, EdgeShape, EyeDiagram, LevelSet};
//!
//! let rate = DataRate::from_gbps(2.5);
//! let bits = BitStream::alternating(2_000);
//! let jitter = JitterBudget::new().with_rj_rms_ps(3.2).with_dcd_ps(10.0);
//! let digital = DigitalWaveform::from_bits(&bits, rate, &jitter, 7);
//! let analog = AnalogWaveform::new(digital, LevelSet::pecl(), EdgeShape::from_rise_2080_ps(72.0));
//! let eye = EyeDiagram::analyze(&analog, rate)?;
//! assert!(eye.opening_ui().value() > 0.8);
//! # Ok::<(), signal::SignalError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analog;
mod ber;
mod bits;
pub mod decompose;
mod digital;
mod error;
mod eye;
pub mod jitter;
pub mod mask;
pub mod measure;
mod quant;
pub mod render;
pub mod spectrum;
mod stats;

pub use analog::{AnalogWaveform, EdgeShape, LevelSet};
pub use ber::{ber_from_q, q_from_ber, BathtubCurve, BathtubSweep, BerEstimate};
pub use bits::BitStream;
pub use decompose::JitterDecomposition;
pub use digital::{DigitalWaveform, Edge, EdgePolarity};
pub use error::SignalError;
pub use eye::{EyeDiagram, EyeRaster};
pub use mask::{mask_margin, mask_test, EyeMask, MaskTest};
pub use spectrum::{jitter_spectrum, JitterSpectrum};
pub use stats::{erfc, Histogram, RunningStats};

/// Convenient result alias for fallible signal operations.
pub type Result<T> = core::result::Result<T, SignalError>;
