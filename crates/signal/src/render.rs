//! ASCII rendering of waveforms and eye diagrams.
//!
//! The paper's figures are oscilloscope photographs; the closest honest
//! equivalent in a terminal is an ASCII persistence plot. Examples and bench
//! reports use these renderers so a human can eyeball "that's an open eye at
//! 2.5 Gbps" the same way the paper's readers do.

use pstime::{Duration, Instant};

use crate::analog::AnalogWaveform;
use crate::eye::EyeRaster;

/// Density ramp used for persistence plots, dimmest to brightest.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders an [`EyeRaster`] as an ASCII persistence plot, one character per
/// cell, brightness proportional to hit density.
///
/// # Examples
///
/// ```
/// use pstime::DataRate;
/// use signal::jitter::NoJitter;
/// use signal::render::render_eye;
/// use signal::{AnalogWaveform, BitStream, DigitalWaveform, EdgeShape, EyeRaster, LevelSet};
///
/// let rate = DataRate::from_gbps(2.5);
/// let d = DigitalWaveform::from_bits(&BitStream::alternating(64), rate, &NoJitter, 0);
/// let a = AnalogWaveform::new(d, LevelSet::pecl(), EdgeShape::default());
/// let txt = render_eye(&EyeRaster::build(&a, rate, 60, 16));
/// assert!(txt.lines().count() >= 16);
/// ```
pub fn render_eye(raster: &EyeRaster) -> String {
    let peak = raster.peak_count().max(1);
    let mut out = String::with_capacity((raster.cols() + 3) * (raster.rows() + 2));
    let (v_lo, v_hi) = raster.voltage_range();
    out.push_str(&format!(
        "eye persistence plot (2 UI = {} wide, {:.0}..{:.0} mV)\n",
        raster.unit_interval() * 2,
        v_lo,
        v_hi
    ));
    for row in 0..raster.rows() {
        out.push('|');
        for col in 0..raster.cols() {
            let c = raster.count(row, col);
            let idx = if c == 0 {
                0
            } else {
                1 + ((c - 1) as usize * (RAMP.len() - 2) / peak as usize).min(RAMP.len() - 2)
            };
            out.push(RAMP[idx] as char);
        }
        out.push_str("|\n");
    }
    out
}

/// Renders a time-domain strip chart of `wave` over `[t0, t0 + span]` as a
/// `cols × rows` ASCII grid with a `*` trace.
///
/// # Panics
///
/// Panics if `cols`/`rows` is zero or `span` is not positive.
pub fn render_waveform(
    wave: &AnalogWaveform,
    t0: Instant,
    span: Duration,
    cols: usize,
    rows: usize,
) -> String {
    assert!(cols > 0 && rows > 0, "render grid must be nonzero");
    assert!(span > Duration::ZERO, "render span must be positive");
    let swing = wave.levels().swing().as_f64();
    let v_lo = wave.levels().vol().as_f64() - 0.1 * swing;
    let v_hi = wave.levels().voh().as_f64() + 0.1 * swing;
    let mut grid = vec![b' '; cols * rows];
    for col in 0..cols {
        let t = t0 + span.mul_f64(col as f64 / (cols - 1).max(1) as f64);
        let v = wave.value_at(t);
        let frac = ((v - v_lo) / (v_hi - v_lo)).clamp(0.0, 1.0);
        let row = ((1.0 - frac) * (rows - 1) as f64).round() as usize;
        grid[row * cols + col] = b'*';
    }
    let mut out = String::with_capacity((cols + 3) * (rows + 2));
    out.push_str(&format!("waveform {} .. {} ({:.0}..{:.0} mV)\n", t0, t0 + span, v_lo, v_hi));
    for row in 0..rows {
        out.push('|');
        out.extend(grid[row * cols..(row + 1) * cols].iter().map(|b| char::from(*b)));
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jitter::NoJitter;
    use crate::{BitStream, DigitalWaveform, EdgeShape, EyeRaster, LevelSet};
    use pstime::DataRate;

    fn sample_wave() -> (AnalogWaveform, DataRate) {
        let rate = DataRate::from_gbps(2.5);
        let d = DigitalWaveform::from_bits(&BitStream::alternating(32), rate, &NoJitter, 0);
        (AnalogWaveform::new(d, LevelSet::pecl(), EdgeShape::default()), rate)
    }

    #[test]
    fn eye_render_dimensions() {
        let (a, rate) = sample_wave();
        let raster = EyeRaster::build(&a, rate, 40, 12);
        let txt = render_eye(&raster);
        let lines: Vec<&str> = txt.lines().collect();
        assert_eq!(lines.len(), 13); // header + 12 rows
        assert!(lines[1].len() >= 42);
        assert!(txt.contains('@') || txt.contains('#') || txt.contains('%'));
    }

    #[test]
    fn waveform_render_traces_transitions() {
        let (a, _) = sample_wave();
        let txt = render_waveform(&a, Instant::ZERO, Duration::from_ps(1600), 64, 10);
        let lines: Vec<&str> = txt.lines().collect();
        assert_eq!(lines.len(), 11);
        // Trace visits near-top and near-bottom rows (settled rails sit
        // just inside the 10 % display margin).
        let star_rows: Vec<usize> =
            lines.iter().enumerate().filter(|(_, l)| l.contains('*')).map(|(i, _)| i).collect();
        assert!(*star_rows.iter().min().unwrap() <= 2, "rows {star_rows:?}");
        assert!(*star_rows.iter().max().unwrap() >= 8, "rows {star_rows:?}");
        // Every column has exactly one sample.
        let stars: usize = txt.matches('*').count();
        assert_eq!(stars, 64);
    }

    #[test]
    #[should_panic(expected = "render span must be positive")]
    fn zero_span_panics() {
        let (a, _) = sample_wave();
        let _ = render_waveform(&a, Instant::ZERO, Duration::ZERO, 10, 10);
    }
}
