//! Error type for signal construction and analysis.

use core::fmt;

/// Errors produced while constructing or analyzing waveforms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SignalError {
    /// A waveform was empty (no bits / no edges) where content was required.
    EmptyWaveform {
        /// What the caller was trying to do.
        context: &'static str,
    },
    /// Not enough signal transitions to form the requested measurement.
    InsufficientTransitions {
        /// Transitions found.
        found: usize,
        /// Transitions required.
        required: usize,
    },
    /// A threshold crossing could not be located in the search window.
    CrossingNotFound {
        /// Description of the search target.
        context: &'static str,
    },
    /// A numeric parameter was out of its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
    /// Error from the parallel execution engine.
    Exec(exec::ExecError),
}

impl fmt::Display for SignalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalError::EmptyWaveform { context } => {
                write!(f, "empty waveform while {context}")
            }
            SignalError::InsufficientTransitions { found, required } => write!(
                f,
                "insufficient transitions for measurement: found {found}, need {required}"
            ),
            SignalError::CrossingNotFound { context } => {
                write!(f, "threshold crossing not found: {context}")
            }
            SignalError::InvalidParameter { name, constraint } => {
                write!(f, "invalid parameter `{name}`: {constraint}")
            }
            SignalError::Exec(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for SignalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SignalError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<exec::ExecError> for SignalError {
    fn from(e: exec::ExecError) -> Self {
        SignalError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SignalError::EmptyWaveform { context: "building an eye" };
        assert_eq!(e.to_string(), "empty waveform while building an eye");
        let e = SignalError::InsufficientTransitions { found: 1, required: 2 };
        assert!(e.to_string().contains("found 1, need 2"));
        let e = SignalError::CrossingNotFound { context: "rise 20%" };
        assert!(e.to_string().contains("rise 20%"));
        let e = SignalError::InvalidParameter { name: "sigma", constraint: "must be >= 0" };
        assert!(e.to_string().contains("`sigma`"));
        let e = SignalError::from(exec::ExecError::MissingResult { index: 1 });
        assert!(e.to_string().contains("execution"));
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn is_error_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<SignalError>();
    }
}
