//! RJ/DJ jitter decomposition from measured crossing populations.
//!
//! The paper quotes its jitter the way instruments report it: a Gaussian
//! **random** component (rms) and a bounded **deterministic** component
//! (peak-to-peak). Given only a population of measured crossing times, the
//! standard way to separate the two is the **dual-Dirac tail fit**: the
//! deterministic jitter collapses to two Dirac impulses separated by
//! `DJ(δδ)`, each convolved with the same Gaussian of width σ, so the
//! extreme quantiles of the distribution are linear on the Q-scale with
//! slope σ and intercepts at the two Dirac positions.
//!
//! This module implements that fit, so the virtual oscilloscope can report
//! "RJ = 3.2 ps rms, DJ = 23 ps" from raw data — and the calibrated chain
//! budgets in `pecl` can be *verified* rather than assumed.

use core::fmt;

use pstime::Duration;

use crate::stats::erfc;
use crate::{Result, SignalError};

/// Result of a dual-Dirac RJ/DJ separation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitterDecomposition {
    /// Estimated Gaussian (random) jitter, rms.
    pub rj_rms: Duration,
    /// Estimated dual-Dirac deterministic jitter, peak-to-peak.
    pub dj_pp: Duration,
    /// Observed total peak-to-peak of the population.
    pub total_pp: Duration,
    /// Population size.
    pub samples: usize,
}

impl JitterDecomposition {
    /// Separates RJ and DJ from a population of crossing displacements
    /// (picoseconds; any common offset is removed internally).
    ///
    /// Uses tail quantile pairs at 0.5 % and 5 % of the total population.
    /// In the dual-Dirac model each tail carries half the samples, so a
    /// total-population quantile `p` sits at `2p` of its own Dirac's
    /// Gaussian: `σ ≈ (x(5%) − x(0.5%)) / (z(1%) − z(10%))`, and the two
    /// Dirac positions follow by extrapolating each tail to Q = 0.
    ///
    /// # Errors
    ///
    /// [`SignalError::InsufficientTransitions`] with fewer than 400
    /// samples (the 0.5 % quantile needs at least a couple of points).
    pub fn from_displacements_ps(samples: &[f64]) -> Result<JitterDecomposition> {
        const MIN_SAMPLES: usize = 400;
        if samples.len() < MIN_SAMPLES {
            return Err(SignalError::InsufficientTransitions {
                found: samples.len(),
                required: MIN_SAMPLES,
            });
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let n = sorted.len();
        let q = |p: f64| -> f64 {
            let idx = ((n as f64 - 1.0) * p).round() as usize;
            sorted[idx.min(n - 1)]
        };

        let (p1, p2) = (0.005, 0.05);
        // Each Dirac carries half the population: total-quantile p maps to
        // 2p within its own Gaussian.
        let (z1, z2) = (normal_quantile(1.0 - 2.0 * p1), normal_quantile(1.0 - 2.0 * p2));

        // Left tail: x(p) ≈ mu_l − z(1−p)·σ.
        let sigma_left = (q(p2) - q(p1)) / (z1 - z2);
        // Right tail: x(1−p) ≈ mu_r + z(1−p)·σ.
        let sigma_right = (q(1.0 - p1) - q(1.0 - p2)) / (z1 - z2);
        let sigma = (0.5 * (sigma_left + sigma_right)).max(0.0);

        // Extrapolate each tail to its Dirac position.
        let mu_left = q(p1) + z1 * sigma;
        let mu_right = q(1.0 - p1) - z1 * sigma;
        let mut dj = (mu_right - mu_left).max(0.0);
        let mut sigma = sigma;

        // Degenerate case: when the fitted Diracs overlap within ~1.5σ
        // the population is indistinguishable from a single Gaussian (the
        // 2p tail mapping then reports a spurious DJ ≈ σ). Refit with the
        // single-Gaussian quantile mapping and call DJ zero.
        if dj <= 1.5 * sigma {
            let (g1, g2) = (normal_quantile(1.0 - p1), normal_quantile(1.0 - p2));
            let s_left = (q(p2) - q(p1)) / (g1 - g2);
            let s_right = (q(1.0 - p1) - q(1.0 - p2)) / (g1 - g2);
            sigma = (0.5 * (s_left + s_right)).max(0.0);
            dj = 0.0;
        }

        Ok(JitterDecomposition {
            rj_rms: Duration::from_ps_f64(sigma),
            dj_pp: Duration::from_ps_f64(dj),
            total_pp: Duration::from_ps_f64(sorted[n - 1] - sorted[0]),
            samples: n,
        })
    }

    /// Decomposes the crossing population of a measured eye.
    ///
    /// # Errors
    ///
    /// As [`from_displacements_ps`](Self::from_displacements_ps).
    pub fn from_eye(eye: &crate::EyeDiagram) -> Result<JitterDecomposition> {
        Self::from_displacements_ps(&eye.crossing_phases_ps())
    }

    /// Total jitter at a BER via dual-Dirac: `DJ + 2·Q(BER)·RJ`.
    ///
    /// # Panics
    ///
    /// Panics if `ber` is not in `(0, 0.5]`.
    pub fn total_jitter_at_ber(&self, ber: f64) -> Duration {
        let qv = crate::ber::q_from_ber(ber);
        self.dj_pp + self.rj_rms.mul_f64(2.0 * qv)
    }
}

impl fmt::Display for JitterDecomposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RJ {} rms, DJ(δδ) {} p-p (total {} p-p over {} crossings)",
            self.rj_rms, self.dj_pp, self.total_pp, self.samples
        )
    }
}

/// Inverse standard-normal CDF (quantile function), by bisection on the
/// [`erfc`]-based CDF. Accurate to ~1e-9 over the range jitter fits use.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile probability must be in (0, 1)");
    let cdf = |x: f64| 0.5 * erfc(-x / core::f64::consts::SQRT_2);
    let (mut lo, mut hi) = (-9.0f64, 9.0f64);
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if cdf(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rng::SeedTree;

    /// Synthesizes a dual-Dirac + Gaussian population.
    fn population(rj: f64, dj: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SeedTree::new(seed).stream("signal.decompose.population").rng();
        (0..n)
            .map(|i| {
                let dirac = if i % 2 == 0 { -dj / 2.0 } else { dj / 2.0 };
                dirac + rj * rng.gaussian()
            })
            .collect()
    }

    #[test]
    fn normal_quantile_reference_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-5);
        assert!((normal_quantile(0.8413447) - 1.0).abs() < 1e-4);
        assert!((normal_quantile(0.9772499) - 2.0).abs() < 1e-4);
        assert!((normal_quantile(0.0227501) + 2.0).abs() < 1e-4);
        // Symmetry (limited by the erfc approximation's 1e-7 accuracy).
        for p in [0.01, 0.1, 0.3] {
            assert!((normal_quantile(p) + normal_quantile(1.0 - p)).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "quantile probability")]
    fn bad_quantile_panics() {
        let _ = normal_quantile(0.0);
    }

    #[test]
    fn recovers_known_rj_dj_mixture() {
        // The paper's budget: 3.2 ps rms RJ + ~23 ps DJ.
        let pop = population(3.2, 23.0, 20_000, 42);
        let d = JitterDecomposition::from_displacements_ps(&pop).unwrap();
        let rj = d.rj_rms.as_ps_f64();
        let dj = d.dj_pp.as_ps_f64();
        assert!((rj - 3.2).abs() < 0.5, "RJ {rj}, want ~3.2");
        assert!((dj - 23.0).abs() < 3.0, "DJ {dj}, want ~23");
        assert_eq!(d.samples, 20_000);
        assert!(d.total_pp.as_ps_f64() > 40.0);
        assert!(d.to_string().contains("RJ"));
    }

    #[test]
    fn pure_gaussian_has_negligible_dj() {
        let pop = population(5.0, 0.0, 20_000, 7);
        let d = JitterDecomposition::from_displacements_ps(&pop).unwrap();
        assert!((d.rj_rms.as_ps_f64() - 5.0).abs() < 0.6, "RJ {}", d.rj_rms);
        assert_eq!(d.dj_pp.as_ps_f64(), 0.0, "DJ {} should be 0", d.dj_pp);
    }

    #[test]
    fn pure_dj_has_negligible_rj() {
        let pop = population(0.05, 30.0, 10_000, 9);
        let d = JitterDecomposition::from_displacements_ps(&pop).unwrap();
        assert!(d.rj_rms.as_ps_f64() < 1.0, "RJ {}", d.rj_rms);
        assert!((d.dj_pp.as_ps_f64() - 30.0).abs() < 2.0, "DJ {}", d.dj_pp);
    }

    #[test]
    fn needs_enough_samples() {
        let pop = population(1.0, 0.0, 100, 3);
        assert!(matches!(
            JitterDecomposition::from_displacements_ps(&pop),
            Err(SignalError::InsufficientTransitions { .. })
        ));
    }

    #[test]
    fn offset_invariance() {
        let base = population(2.0, 10.0, 8_000, 11);
        let shifted: Vec<f64> = base.iter().map(|x| x + 1234.5).collect();
        let a = JitterDecomposition::from_displacements_ps(&base).unwrap();
        let b = JitterDecomposition::from_displacements_ps(&shifted).unwrap();
        assert!((a.rj_rms.as_ps_f64() - b.rj_rms.as_ps_f64()).abs() < 1e-9);
        assert!((a.dj_pp.as_ps_f64() - b.dj_pp.as_ps_f64()).abs() < 1e-9);
    }

    #[test]
    fn tj_extrapolation_exceeds_observed_pp() {
        let pop = population(3.0, 20.0, 5_000, 5);
        let d = JitterDecomposition::from_displacements_ps(&pop).unwrap();
        // At BER 1e-12 the extrapolated TJ must exceed what 5k samples saw.
        assert!(d.total_jitter_at_ber(1e-12) > d.total_pp);
    }

    #[test]
    fn decomposes_a_measured_eye() {
        use crate::jitter::JitterBudget;
        use crate::{AnalogWaveform, BitStream, DigitalWaveform, EdgeShape, EyeDiagram, LevelSet};
        use pstime::DataRate;

        let rate = DataRate::from_gbps(2.5);
        // DCD is the deterministic part here: 20 ps p-p.
        let budget = JitterBudget::new().with_rj_rms_ps(3.0).with_dcd_ps(20.0);
        let bits = BitStream::alternating(6_000);
        let d = DigitalWaveform::from_bits(&bits, rate, &budget, 13);
        let wave = AnalogWaveform::new(d, LevelSet::pecl(), EdgeShape::default());
        let eye = EyeDiagram::analyze(&wave, rate).unwrap();
        let dec = JitterDecomposition::from_eye(&eye).unwrap();
        let rj = dec.rj_rms.as_ps_f64();
        let dj = dec.dj_pp.as_ps_f64();
        assert!((rj - 3.0).abs() < 0.6, "RJ {rj}");
        assert!((dj - 20.0).abs() < 3.0, "DJ {dj}");
    }
}
