//! Float→index quantization boundaries.
//!
//! The one place in the crate where a float is deliberately rounded to a
//! grid index; every other conversion in the crate is lossless. Keeping
//! the saturating cast here means call sites stay cast-free and the
//! clamping that makes it exact lives next to it.

/// Rounds `x` to the nearest index, clamped into `0..=max`.
pub(crate) fn round_idx(x: f64, max: usize) -> usize {
    let clamped = x.round().clamp(0.0, count_f64(max));
    clamped as usize // xlint::allow(no-lossy-cast, clamped to [0, max] on the line above so the saturating cast is exact)
}

/// Exact `f64` view of a small count such as a grid dimension or sample
/// total (saturates at `u32::MAX`, far beyond any raster or record).
pub(crate) fn count_f64(n: usize) -> f64 {
    f64::from(u32::try_from(n).unwrap_or(u32::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_idx_clamps_and_rounds() {
        assert_eq!(round_idx(-3.0, 10), 0);
        assert_eq!(round_idx(4.4, 10), 4);
        assert_eq!(round_idx(4.6, 10), 5);
        assert_eq!(round_idx(99.0, 10), 10);
        assert_eq!(round_idx(f64::NAN, 10), 0);
    }

    #[test]
    fn count_f64_is_exact_for_small_counts() {
        assert_eq!(count_f64(0), 0.0);
        assert_eq!(count_f64(4095), 4095.0);
    }
}
